(* The worked example of §4.3 (Fig. 2): LTF and R-LTF on the 7-task
   workflow with eps = 1 and T = 0.05, on 8 and 10 processors, with the
   full mapping and an ASCII Gantt chart of the simulated execution.

     dune exec examples/worked_example.exe
*)

let show name outcome ~throughput =
  Printf.printf "--- %s ---\n" name;
  match outcome with
  | Error f -> Printf.printf "fails: %s\n\n" (Types.failure_to_string f)
  | Ok mapping ->
      Format.printf "%a@." Mapping.pp mapping;
      let result = Engine.run mapping in
      let times id =
        match (result.Engine.start_time 0 id, result.Engine.finish_time 0 id) with
        | Some s, Some f -> Some (s, f)
        | _ -> None
      in
      print_string (Gantt.render ~width:64 mapping ~times);
      Printf.printf "stages S = %d, latency bound = %.0f, messages = %d\n\n"
        (Metrics.stage_depth mapping)
        (Metrics.latency_bound mapping ~throughput)
        (Mapping.n_messages mapping)

let () =
  let dag = Classic.fig2_graph in
  let throughput = 0.05 in
  List.iter
    (fun m ->
      let platform = Classic.fig2_platform ~m in
      let problem = Types.problem ~dag ~platform ~eps:1 ~throughput in
      show (Printf.sprintf "LTF, m = %d" m) (Ltf.schedule problem) ~throughput;
      show (Printf.sprintf "R-LTF, m = %d" m) (Rltf.schedule problem) ~throughput)
    [ 8; 10 ]
