(* A realistic streaming scenario: a surveillance-camera analytics
   pipeline, the kind of workload the paper's introduction motivates
   (video encoding/decoding, DSP).  Per frame:

     capture -> demux -> decode -> {denoise, motion-detect} ->
     object-track -> {annotate, re-encode} -> mux -> publish

   The platform is a small heterogeneous edge cluster (two fast servers,
   four slower nodes) that must keep up with 25 frames/s and survive one
   node failure.  We compare LTF and R-LTF and replay a failure.

     dune exec examples/video_pipeline.exe
*)

let pipeline =
  let b = Dag.Builder.create ~name:"video-analytics" 10 in
  let task i label weight =
    Dag.Builder.set_label b i label;
    Dag.Builder.set_exec b i weight
  in
  task 0 "capture" 2.0;
  task 1 "demux" 1.0;
  task 2 "decode" 8.0;
  task 3 "denoise" 6.0;
  task 4 "motion" 5.0;
  task 5 "track" 7.0;
  task 6 "annotate" 3.0;
  task 7 "encode" 9.0;
  task 8 "mux" 1.0;
  task 9 "publish" 1.0;
  let edge ?(volume = 1.0) src dst = Dag.Builder.add_edge b ~volume src dst in
  edge 0 1 ~volume:8.0;
  edge 1 2 ~volume:8.0;
  edge 2 3 ~volume:4.0;
  edge 2 4 ~volume:4.0;
  edge 3 5 ~volume:2.0;
  edge 4 5 ~volume:1.0;
  edge 5 6 ~volume:1.0;
  edge 5 7 ~volume:2.0;
  edge 6 8 ~volume:1.0;
  edge 7 8 ~volume:4.0;
  edge 8 9 ~volume:4.0;
  Dag.Builder.build b

let cluster =
  Platform.create ~name:"edge-cluster"
    ~speeds:[| 4.0; 4.0; 1.5; 1.5; 1.5; 1.5 |]
    ~bandwidth:
      (Array.init 6 (fun i ->
           Array.init 6 (fun j ->
               if i = j then 0.0
               else if i < 2 && j < 2 then 8.0 (* fast link between servers *)
               else 2.0)))
    ()

let frame_rate = 25.0
let period = 1.0 /. frame_rate

(* Work units are calibrated so that the whole pipeline (43 units) at
   cluster speed keeps a comfortable margin at 25 fps. *)
let scale = 1.0 /. 250.0

let () =
  let dag = Dag.map_weights ~exec:(fun _ w -> w *. scale)
      ~volume:(fun _ _ v -> v *. scale) pipeline
  in
  let throughput = 1.0 /. period in
  let problem = Types.problem ~dag ~platform:cluster ~eps:1 ~throughput in
  Printf.printf "Target: %.0f frames/s (period %.3f s), tolerate 1 node loss\n\n"
    frame_rate period;
  let report name outcome =
    Printf.printf "--- %s ---\n" name;
    match outcome with
    | Error f -> Printf.printf "fails: %s\n\n" (Types.failure_to_string f)
    | Ok mapping ->
        print_string (Gantt.summary mapping);
        Printf.printf "stages S = %d, end-to-end latency bound = %.3f s\n"
          (Metrics.stage_depth mapping)
          (Metrics.latency_bound mapping ~throughput);
        Printf.printf "sustained rate = %.1f frames/s\n"
          (Metrics.achieved_throughput mapping);
        (* Replay 1 s of video with node 0 (a fast server) failing. *)
        let healthy = Engine.latency mapping in
        let degraded = Engine.latency ~failed:[ 0 ] mapping in
        (match (healthy, degraded) with
        | Some h, Some d ->
            Printf.printf "frame latency: %.4f s healthy, %.4f s with server-0 down\n"
              h d
        | _ -> print_endline "frame lost (unexpected)");
        (match Validate.all mapping ~throughput with
        | [] -> print_endline "validated: throughput + 1-failure tolerance"
        | errs ->
            List.iter
              (fun e -> Printf.printf "validation: %s\n" (Validate.error_to_string e))
              errs);
        print_newline ()
  in
  report "LTF" (Ltf.schedule problem);
  report "R-LTF" (Rltf.schedule problem)
