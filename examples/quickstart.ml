(* Quickstart: schedule a small streaming workflow on a heterogeneous
   platform so that it survives one processor failure, sustains a desired
   throughput, and has low pipelined latency.

     dune exec examples/quickstart.exe
*)

let () =
  (* A 6-task workflow: source -> two parallel filters -> merge -> two
     post-processing steps.  Weights are work units; edge volumes are data
     units. *)
  let dag =
    Dag.of_edges ~name:"quickstart"
      ~exec:[| 4.0; 3.0; 5.0; 2.0; 3.0; 1.0 |]
      [
        (0, 1, 1.0);
        (0, 2, 1.0);
        (1, 3, 0.5);
        (2, 3, 0.5);
        (3, 4, 1.0);
        (4, 5, 0.5);
      ]
  in
  (* Four processors, two fast and two slow, fully connected. *)
  let platform =
    Platform.create ~name:"quickstart-platform"
      ~speeds:[| 2.0; 1.0; 2.0; 1.0 |]
      ~bandwidth:(Array.make_matrix 4 4 2.0)
      ()
  in
  (* Tolerate one failure, process one item every 12 time units. *)
  let problem = Types.problem ~dag ~platform ~eps:1 ~throughput:(1.0 /. 12.0) in
  match Rltf.schedule problem with
  | Error failure ->
      Printf.printf "R-LTF could not schedule: %s\n"
        (Types.failure_to_string failure)
  | Ok mapping ->
      Format.printf "%a@." Mapping.pp mapping;
      Printf.printf "pipeline stages   S = %d\n" (Metrics.stage_depth mapping);
      Printf.printf "latency bound     L = (2S-1)/T = %.1f\n"
        (Metrics.latency_bound mapping ~throughput:problem.Types.throughput);
      Printf.printf "achieved period   %.2f (desired %.2f)\n"
        (Metrics.period mapping)
        (Types.period problem);
      (* The validator re-checks the fault-tolerance guarantee from first
         principles: every single-processor failure leaves all outputs
         reachable. *)
      (match Validate.all mapping ~throughput:problem.Types.throughput with
      | [] -> print_endline "validation        ok (throughput + 1-failure tolerance)"
      | errors ->
          List.iter
            (fun e -> Printf.printf "validation error: %s\n" (Validate.error_to_string e))
            errors);
      (* Replay the schedule through the one-port discrete-event engine,
         once healthy and once with processor 0 failed. *)
      (match Engine.latency mapping with
      | Some l -> Printf.printf "simulated latency %.2f (no failures)\n" l
      | None -> print_endline "simulation lost the outputs (unexpected)");
      match Engine.latency ~failed:[ 0 ] mapping with
      | Some l -> Printf.printf "simulated latency %.2f (processor 0 failed)\n" l
      | None -> print_endline "outputs lost when P0 failed (unexpected)"
