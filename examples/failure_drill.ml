(* Failure drill: exhaustively fail every subset of processors up to the
   tolerated size on a scheduled FFT workflow and verify the outputs
   survive with bounded degradation — then push beyond the tolerance and
   watch the schedule break.  Demonstrates the difference between the
   designed guarantee (eps failures) and actual behaviour beyond it.

     dune exec examples/failure_drill.exe
*)

let rec subsets_of_size k lo m =
  if k = 0 then [ [] ]
  else if lo >= m then []
  else
    List.map (fun rest -> lo :: rest) (subsets_of_size (k - 1) (lo + 1) m)
    @ subsets_of_size k (lo + 1) m

let () =
  let platform =
    Platform.homogeneous ~name:"drill" ~m:10 ~speed:1.0 ~bandwidth:2.0 ()
  in
  let dag =
    Calibrate.normalize_time (Classic.fft ~p:3 ~exec:5.0 ~volume:2.0) platform
  in
  let eps = 2 in
  let throughput = 1.0 /. 16.0 in
  let problem = Types.problem ~dag ~platform ~eps ~throughput in
  match Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) problem with
  | Error f -> Printf.printf "scheduling failed: %s\n" (Types.failure_to_string f)
  | Ok mapping ->
      Printf.printf "FFT-8 workflow (%d tasks), eps = %d, m = 10\n\n"
        (Dag.size dag) eps;
      let m = Platform.size platform in
      let drill k =
        let sets = subsets_of_size k 0 m in
        let survived = ref 0 and lost = ref 0 in
        let worst = ref 0.0 in
        List.iter
          (fun failed ->
            match Engine.latency ~failed mapping with
            | Some l ->
                incr survived;
                if l > !worst then worst := l
            | None -> incr lost)
          sets;
        Printf.printf
          "%d failure(s): %4d/%-4d subsets survive; worst latency %.2f%s\n" k
          !survived (List.length sets) !worst
          (if !lost > 0 then Printf.sprintf "  (%d subsets LOSE output)" !lost
           else "")
      in
      (* Within the guarantee: every subset must survive. *)
      for k = 0 to eps do
        drill k
      done;
      (* Beyond it: some subsets are expected to lose the outputs. *)
      for k = eps + 1 to eps + 2 do
        drill k
      done;
      (* Recovery: after two real crashes the schedule has spent its whole
         tolerance; restoring the replication degree makes it survive two
         fresh failures again. *)
      print_newline ();
      let crashed = [ 0; 1 ] in
      (match Recovery.restore ~throughput mapping ~failed:crashed with
      | Error e ->
          Printf.printf "recovery failed: %s\n" (Recovery.error_to_string e)
      | Ok restored ->
          let fresh = subsets_of_size eps 2 m in
          let ok =
            List.for_all
              (fun extra -> Validate.survives restored ~failed:(crashed @ extra))
              fresh
          in
          Printf.printf
            "after crashing {P0, P1} and recovering: %d fresh %d-failure \
             subsets all survive: %b\n"
            (List.length fresh) eps ok)
