(* Failure drill: exhaustively fail every subset of processors up to the
   tolerated size on a scheduled FFT workflow and verify the outputs
   survive with bounded degradation — then push beyond the tolerance and
   watch the schedule break.  Demonstrates the difference between the
   designed guarantee (eps failures) and actual behaviour beyond it.

     dune exec examples/failure_drill.exe
*)

let rec subsets_of_size k lo m =
  if k = 0 then [ [] ]
  else if lo >= m then []
  else
    List.map (fun rest -> lo :: rest) (subsets_of_size (k - 1) (lo + 1) m)
    @ subsets_of_size k (lo + 1) m

let () =
  let platform =
    Platform.homogeneous ~name:"drill" ~m:10 ~speed:1.0 ~bandwidth:2.0 ()
  in
  let dag =
    Calibrate.normalize_time (Classic.fft ~p:3 ~exec:5.0 ~volume:2.0) platform
  in
  let eps = 2 in
  let throughput = 1.0 /. 16.0 in
  let problem = Types.problem ~dag ~platform ~eps ~throughput in
  match Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) problem with
  | Error f -> Printf.printf "scheduling failed: %s\n" (Types.failure_to_string f)
  | Ok mapping ->
      Printf.printf "FFT-8 workflow (%d tasks), eps = %d, m = 10\n\n"
        (Dag.size dag) eps;
      let m = Platform.size platform in
      let drill k =
        let sets = subsets_of_size k 0 m in
        let survived = ref 0 and lost = ref 0 in
        let worst = ref 0.0 in
        List.iter
          (fun failed ->
            match Engine.latency ~failed mapping with
            | Some l ->
                incr survived;
                if l > !worst then worst := l
            | None -> incr lost)
          sets;
        Printf.printf
          "%d failure(s): %4d/%-4d subsets survive; worst latency %.2f%s\n" k
          !survived (List.length sets) !worst
          (if !lost > 0 then Printf.sprintf "  (%d subsets LOSE output)" !lost
           else "")
      in
      (* Within the guarantee: every subset must survive. *)
      for k = 0 to eps do
        drill k
      done;
      (* Beyond it: some subsets are expected to lose the outputs. *)
      for k = eps + 1 to eps + 2 do
        drill k
      done;
      (* Recovery: after two real crashes the schedule has spent its whole
         tolerance; restoring the replication degree makes it survive two
         fresh failures again. *)
      print_newline ();
      let crashed = [ 0; 1 ] in
      (match Recovery.restore ~throughput mapping ~failed:crashed with
      | Error e ->
          Printf.printf "recovery failed: %s\n" (Recovery.error_to_string e)
      | Ok restored ->
          let fresh = subsets_of_size eps 2 m in
          let ok =
            List.for_all
              (fun extra -> Validate.survives restored ~failed:(crashed @ extra))
              fresh
          in
          Printf.printf
            "after crashing {P0, P1} and recovering: %d fresh %d-failure \
             subsets all survive: %b\n"
            (List.length fresh) eps ok);
      (* Gray-failure drill: faults that do not kill anything.  A
         straggler makes the busiest processor 3x slower — every item
         still arrives, just later.  A retry storm adds transient faults
         on top: attempts fail and are re-driven after backoff, so
         latency climbs again while availability stays high. *)
      print_newline ();
      let prog = Engine.compile mapping in
      let n_items = 50 in
      let busiest =
        let load = Array.make m 0 in
        Mapping.iter mapping (fun r ->
            load.(r.Replica.proc) <- load.(r.Replica.proc) + 1);
        let best = ref 0 in
        Array.iteri (fun u c -> if c > load.(!best) then best := u) load;
        !best
      in
      let run faults =
        let r =
          Engine.simulate
            ~config:
              (Engine.Run.with_faults faults
                 (Engine.Run.closed ~n_items ()))
            prog
        in
        let sojourns = Engine.sojourns r in
        let availability =
          float_of_int (List.length sojourns) /. float_of_int n_items
        in
        let mean =
          List.fold_left ( +. ) 0.0 sojourns
          /. float_of_int (max 1 (List.length sojourns))
        in
        (availability, mean, r.Engine.faults.Engine.retries)
      in
      let straggler =
        {
          Faults.Gray.stragglers =
            [
              ( busiest,
                { Faults.Gray.g_from = 0.0; g_until = 1e15; factor = 3.0 } );
            ];
          links = [];
        }
      in
      let gray = { Faults.none with Faults.gray = straggler } in
      let storm =
        {
          Faults.transient =
            {
              Faults.Transient.none with
              Faults.Transient.exec_rate = 0.1;
              comm_rate = 0.1;
              seed = 42;
            };
          retry =
            Faults.Backoff.make
              ~base_delay:(0.5 *. Engine.program_period prog)
              ~max_retries:4 ();
          gray = straggler;
        }
      in
      let a0, l0, _ = run Faults.none in
      let a1, l1, _ = run gray in
      let a2, l2, retries = run storm in
      Printf.printf
        "gray drill (%d items): clean availability %.2f, mean latency %.2f\n"
        n_items a0 l0;
      Printf.printf
        "  straggler on P%d (3x slower): availability %.2f, mean latency \
         %.2f\n"
        busiest a1 l1;
      Printf.printf
        "  + retry storm (10%% faults, 4 retries): availability %.2f, mean \
         latency %.2f, %d retries\n"
        a2 l2 retries;
      (* Gray failures degrade, they do not lose: the straggler must
         deliver everything, and the retry storm must stay near-complete
         while strictly inflating latency. *)
      assert (a0 = 1.0 && a1 = 1.0);
      assert (a2 >= 0.9);
      assert (l1 >= l0);
      assert (l2 > l1);
      assert (retries > 0)
