(* Driving the library from workflow/platform description files — the
   text format of Workflow_io — and trimming the platform to the cheapest
   subset that still meets all three criteria (Platform_cost, §6).

     dune exec examples/custom_workflow.exe
*)

let workflow_file =
  {|workflow sensor-fusion
# a radar/camera fusion pipeline
task radar-in    2.0
task camera-in   3.0
task radar-dsp   6.0
task camera-dsp  8.0
task align       2.0
task fuse        5.0
task classify    7.0
task alert       1.0
edge radar-in  radar-dsp  2.0
edge camera-in camera-dsp 6.0
edge radar-dsp  align     1.0
edge camera-dsp align     2.0
edge align fuse           2.0
edge fuse classify        1.0
edge classify alert       0.5
|}

let platform_file =
  {|platform fusion-rack
proc gpu-a  4.0
proc gpu-b  4.0
proc cpu-1  1.0
proc cpu-2  1.0
proc cpu-3  1.0
proc cpu-4  1.0
default-bandwidth 4.0
link gpu-a gpu-b 16.0
|}

let () =
  let dag =
    match Workflow_io.parse_workflow workflow_file with
    | Ok dag -> dag
    | Error e -> failwith (Workflow_io.error_to_string e)
  in
  let platform =
    match Workflow_io.parse_platform platform_file with
    | Ok p -> p
    | Error e -> failwith (Workflow_io.error_to_string e)
  in
  Printf.printf "Loaded %S (%d tasks) on %S (%d processors)\n\n" (Dag.name dag)
    (Dag.size dag)
    (Platform.name platform)
    (Platform.size platform);
  let throughput = 1.0 /. 10.0 in
  let eps = 1 in
  let problem = Types.problem ~dag ~platform ~eps ~throughput in
  match Rltf.schedule problem with
  | Error f -> Printf.printf "unschedulable: %s\n" (Types.failure_to_string f)
  | Ok mapping ->
      Printf.printf "full rack: S = %d, latency bound = %.1f\n"
        (Metrics.stage_depth mapping)
        (Metrics.latency_bound mapping ~throughput);
      (* How much of the rack do we actually need to rent? *)
      let latency_bound = 1.5 *. Metrics.latency_bound mapping ~throughput in
      (match
         Platform_cost.minimize ~latency_bound ~dag ~platform ~eps ~throughput ()
       with
      | None -> print_endline "cost minimization found nothing feasible"
      | Some r ->
          Printf.printf
            "cheapest subset: {%s} — cost %.1f of %.1f (%d oracle calls)\n"
            (String.concat ", "
               (List.map (Printf.sprintf "P%d") r.Platform_cost.kept))
            r.Platform_cost.cost r.Platform_cost.full_cost
            r.Platform_cost.evaluations;
          Printf.printf "reduced rack: S = %d, latency bound = %.1f\n"
            (Metrics.stage_depth r.Platform_cost.mapping)
            (Metrics.latency_bound r.Platform_cost.mapping ~throughput));
      (* Export artefacts of the full-rack schedule. *)
      let result = Engine.run mapping in
      let svg = Filename.temp_file "sensor-fusion" ".svg" in
      Svg_gantt.save svg mapping result;
      let trace = Filename.temp_file "sensor-fusion" ".json" in
      Trace.save_chrome_json trace mapping result;
      Printf.printf "\nSVG Gantt: %s\nChrome trace: %s\n" svg trace
