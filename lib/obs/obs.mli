(** Zero-dependency observability: monotonic counters, log-scale float
    histograms and nestable timed spans, collected into per-domain
    registries.

    Instrumented code calls the module-level probes ({!incr}, {!observe},
    {!with_span}); each probe writes to the calling domain's own registry,
    so concurrent workers (e.g. a [Domain_pool]) never contend and never
    race.  Probes are gated on a global {!enabled} flag (default [off]):
    when disabled they return immediately and record nothing, so the
    instrumented build behaves — and outputs — exactly like an
    uninstrumented one.  Instrumentation is purely observational either
    way: enabling it never changes results, only records them.

    Worker domains fold their registry into a shared parent accumulator
    with {!publish} (the repo's [Domain_pool] does this automatically when
    a worker exits); the main domain then reads the union of everything
    recorded so far with {!snapshot}. *)

val enabled : unit -> bool
(** Whether probes record anything.  Off by default. *)

val set_enabled : bool -> unit
(** Toggle recording, for every domain at once (the flag is shared). *)

(** A tiny JSON tree, enough to export and re-read metric dumps without
    depending on an external JSON library. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering.  Integral numbers print without a decimal point;
      other floats print with enough digits to round-trip. *)

  val parse : string -> (t, string) result
  (** Parse a complete JSON document ([Error] carries a position-annotated
      message).  Supports the standard escapes; [\uXXXX] below 0x80 is
      decoded, higher code points are replaced by ['?']. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] on other constructors. *)
end

(** A mutable bag of named metrics.  Not thread-safe by itself — the
    point of the per-domain design is that each registry has a single
    writer. *)
module Registry : sig
  type t

  (** Exported histogram state.  Values are bucketed on a fixed log₂
      scale: bucket 0 catches [v <= 2⁻³²] (and non-positive values),
      bucket [i >= 1] covers [[2^(i-32), 2^(i-31))], and everything at or
      beyond [2³¹] lands in the last (64th) bucket. *)
  type histogram = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
        (** non-empty buckets as (lower bound, count), increasing *)
  }

  type span_stat = { calls : int; total : float  (** seconds, wall-clock *) }

  val create : unit -> t
  val clear : t -> unit
  val is_empty : t -> bool

  val incr : ?by:int -> t -> string -> unit
  (** Add [by] (default 1) to a counter, creating it at 0 first — so
      [incr ~by:0] registers a counter without counting anything. *)

  val observe : t -> string -> float -> unit
  (** Record one value into a histogram. *)

  val span_add : t -> string -> float -> unit
  (** Record one span occurrence of the given duration (seconds). *)

  val merge : into:t -> t -> unit
  (** Fold the second registry into [into]: counters and span statistics
      add, histograms add bucket-wise and combine min/max.  Associative
      and commutative (up to float addition), with the empty registry as
      neutral element. *)

  val counter : t -> string -> int
  (** Current value; [0] when the counter was never touched. *)

  val counters : t -> (string * int) list
  (** All registered counters, sorted by name. *)

  val histogram : t -> string -> histogram option
  val histograms : t -> (string * histogram) list
  val span_stats : t -> string -> span_stat option
  val spans : t -> (string * span_stat) list

  val to_json_value : t -> Json.t
  val to_json : t -> string
  (** [{"counters": {...}, "histograms": {...}, "spans": {...}}] with all
      keys sorted, so equal registries render identically. *)

  val of_json : string -> (t, string) result
  (** Inverse of {!to_json}: [of_json (to_json r)] rebuilds a registry
      that renders to the same JSON. *)

  val pp_text : Format.formatter -> t -> unit
  (** Human-readable dump, one metric per line. *)
end

val current : unit -> Registry.t
(** The calling domain's registry. *)

val incr : ?by:int -> string -> unit
(** Bump a counter in the current domain's registry (no-op when
    disabled). *)

val touch : string -> unit
(** Register a counter at 0 without counting — keeps the exported key set
    stable even when an event never fires. *)

val observe : string -> float -> unit
(** Record a histogram value (no-op when disabled). *)

val with_span : string -> (unit -> 'a) -> 'a
(** Time the thunk (wall-clock) and record the duration under the given
    span name; the result (or exception) passes through.  Spans nest
    freely — each records its own elapsed time.  When disabled, the thunk
    runs with no timing at all. *)

val publish : unit -> unit
(** Merge the current domain's registry into the shared accumulator and
    reset it.  Called by worker domains before they exit. *)

val snapshot : unit -> Registry.t
(** A fresh registry holding everything published so far plus the current
    domain's registry.  Does not reset anything. *)

val reset : unit -> unit
(** Clear the shared accumulator and the current domain's registry. *)
