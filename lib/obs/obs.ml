let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape_to buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  (* Integral values print as integers; everything else with enough digits
     to round-trip through float_of_string. *)
  let num_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s -> escape_to buf s
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            write buf item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_to buf k;
            Buffer.add_char buf ':';
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    write buf t;
    Buffer.contents buf

  exception Parse_error of int * string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let error msg = raise (Parse_error (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> error (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else error (Printf.sprintf "expected '%s'" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then error "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then error "unterminated escape");
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then error "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> error "bad \\u escape"
              in
              Buffer.add_char buf (if code < 0x80 then Char.chr code else '?')
          | _ -> error "unknown escape");
          loop ()
        end
        else begin
          Buffer.add_char buf c;
          loop ()
        end
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      if !pos = start then error "expected a number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> error "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> error "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((key, v) :: acc)
              | _ -> error "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> error "expected ',' or ']'"
            in
            Arr (items [])
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then error "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error (at, msg) ->
        Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

module Registry = struct
  type histogram = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  type span_stat = { calls : int; total : float }

  let n_buckets = 64

  type hist_cell = {
    mutable h_count : int;
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    h_buckets : int array;
  }

  type span_cell = { mutable s_calls : int; mutable s_total : float }

  type t = {
    c_tbl : (string, int ref) Hashtbl.t;
    h_tbl : (string, hist_cell) Hashtbl.t;
    s_tbl : (string, span_cell) Hashtbl.t;
  }

  let create () =
    {
      c_tbl = Hashtbl.create 32;
      h_tbl = Hashtbl.create 16;
      s_tbl = Hashtbl.create 16;
    }

  let clear t =
    Hashtbl.reset t.c_tbl;
    Hashtbl.reset t.h_tbl;
    Hashtbl.reset t.s_tbl

  let is_empty t =
    Hashtbl.length t.c_tbl = 0
    && Hashtbl.length t.h_tbl = 0
    && Hashtbl.length t.s_tbl = 0

  (* Bucket 0 is the underflow bucket; bucket i >= 1 covers
     [2^(i-32), 2^(i-31)), clamped at the top. *)
  let bucket_of v =
    if v <= 0.0 then 0
    else begin
      let _, e = Float.frexp v in
      min (n_buckets - 1) (max 0 (e + 31))
    end

  let bucket_lo i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 32)

  let incr ?(by = 1) t name =
    match Hashtbl.find_opt t.c_tbl name with
    | Some cell -> cell := !cell + by
    | None -> Hashtbl.add t.c_tbl name (ref by)

  let hist_cell t name =
    match Hashtbl.find_opt t.h_tbl name with
    | Some cell -> cell
    | None ->
        let cell =
          {
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
            h_buckets = Array.make n_buckets 0;
          }
        in
        Hashtbl.add t.h_tbl name cell;
        cell

  let observe t name v =
    let cell = hist_cell t name in
    cell.h_count <- cell.h_count + 1;
    cell.h_sum <- cell.h_sum +. v;
    if v < cell.h_min then cell.h_min <- v;
    if v > cell.h_max then cell.h_max <- v;
    let b = bucket_of v in
    cell.h_buckets.(b) <- cell.h_buckets.(b) + 1

  let span_cell t name =
    match Hashtbl.find_opt t.s_tbl name with
    | Some cell -> cell
    | None ->
        let cell = { s_calls = 0; s_total = 0.0 } in
        Hashtbl.add t.s_tbl name cell;
        cell

  let span_add t name dt =
    let cell = span_cell t name in
    cell.s_calls <- cell.s_calls + 1;
    cell.s_total <- cell.s_total +. dt

  let merge ~into src =
    Hashtbl.iter (fun name cell -> incr ~by:!cell into name) src.c_tbl;
    Hashtbl.iter
      (fun name cell ->
        let dst = hist_cell into name in
        dst.h_count <- dst.h_count + cell.h_count;
        dst.h_sum <- dst.h_sum +. cell.h_sum;
        if cell.h_min < dst.h_min then dst.h_min <- cell.h_min;
        if cell.h_max > dst.h_max then dst.h_max <- cell.h_max;
        Array.iteri
          (fun i c -> dst.h_buckets.(i) <- dst.h_buckets.(i) + c)
          cell.h_buckets)
      src.h_tbl;
    Hashtbl.iter
      (fun name cell ->
        let dst = span_cell into name in
        dst.s_calls <- dst.s_calls + cell.s_calls;
        dst.s_total <- dst.s_total +. cell.s_total)
      src.s_tbl

  let counter t name =
    match Hashtbl.find_opt t.c_tbl name with Some c -> !c | None -> 0

  let sorted_keys tbl =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

  let counters t =
    sorted_keys t.c_tbl |> List.map (fun k -> (k, counter t k))

  let export_hist cell =
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      if cell.h_buckets.(i) > 0 then
        buckets := (bucket_lo i, cell.h_buckets.(i)) :: !buckets
    done;
    {
      count = cell.h_count;
      sum = cell.h_sum;
      min = cell.h_min;
      max = cell.h_max;
      buckets = !buckets;
    }

  let histogram t name = Option.map export_hist (Hashtbl.find_opt t.h_tbl name)

  let histograms t =
    sorted_keys t.h_tbl
    |> List.map (fun k -> (k, export_hist (Hashtbl.find t.h_tbl k)))

  let span_stats t name =
    Option.map
      (fun c -> { calls = c.s_calls; total = c.s_total })
      (Hashtbl.find_opt t.s_tbl name)

  let spans t =
    sorted_keys t.s_tbl
    |> List.map (fun k ->
           let c = Hashtbl.find t.s_tbl k in
           (k, { calls = c.s_calls; total = c.s_total }))

  let to_json_value t =
    let counters =
      Json.Obj
        (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) (counters t))
    in
    let histograms =
      Json.Obj
        (List.map
           (fun (k, h) ->
             ( k,
               Json.Obj
                 [
                   ("count", Json.Num (float_of_int h.count));
                   ("sum", Json.Num h.sum);
                   ("min", Json.Num h.min);
                   ("max", Json.Num h.max);
                   ( "buckets",
                     Json.Arr
                       (List.map
                          (fun (lo, c) ->
                            Json.Arr [ Json.Num lo; Json.Num (float_of_int c) ])
                          h.buckets) );
                 ] ))
           (histograms t))
    in
    let spans =
      Json.Obj
        (List.map
           (fun (k, s) ->
             ( k,
               Json.Obj
                 [
                   ("calls", Json.Num (float_of_int s.calls));
                   ("total_s", Json.Num s.total);
                 ] ))
           (spans t))
    in
    Json.Obj
      [ ("counters", counters); ("histograms", histograms); ("spans", spans) ]

  let to_json t = Json.to_string (to_json_value t)

  let of_json s =
    let ( let* ) = Result.bind in
    let num = function
      | Json.Num f -> Ok f
      | _ -> Error "expected a number"
    in
    let field name obj =
      match Json.member name obj with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name)
    in
    let fields = function
      | Json.Obj kvs -> Ok kvs
      | _ -> Error "expected an object"
    in
    let* root = Json.parse s in
    let t = create () in
    let* cs = field "counters" root in
    let* cs = fields cs in
    let* () =
      List.fold_left
        (fun acc (name, v) ->
          let* () = acc in
          let* f = num v in
          incr ~by:(int_of_float f) t name;
          Ok ())
        (Ok ()) cs
    in
    let* hs = field "histograms" root in
    let* hs = fields hs in
    let* () =
      List.fold_left
        (fun acc (name, v) ->
          let* () = acc in
          let* count = Result.bind (field "count" v) num in
          let* sum = Result.bind (field "sum" v) num in
          let* mn = Result.bind (field "min" v) num in
          let* mx = Result.bind (field "max" v) num in
          let* buckets = field "buckets" v in
          let cell = hist_cell t name in
          cell.h_count <- int_of_float count;
          cell.h_sum <- sum;
          cell.h_min <- mn;
          cell.h_max <- mx;
          match buckets with
          | Json.Arr pairs ->
              List.fold_left
                (fun acc pair ->
                  let* () = acc in
                  match pair with
                  | Json.Arr [ Json.Num lo; Json.Num c ] ->
                      let i = bucket_of lo in
                      cell.h_buckets.(i) <-
                        cell.h_buckets.(i) + int_of_float c;
                      Ok ()
                  | _ -> Error "expected a [lower_bound, count] pair")
                (Ok ()) pairs
          | _ -> Error "expected a bucket array")
        (Ok ()) hs
    in
    let* ss = field "spans" root in
    let* ss = fields ss in
    let* () =
      List.fold_left
        (fun acc (name, v) ->
          let* () = acc in
          let* calls = Result.bind (field "calls" v) num in
          let* total = Result.bind (field "total_s" v) num in
          let cell = span_cell t name in
          cell.s_calls <- int_of_float calls;
          cell.s_total <- total;
          Ok ())
        (Ok ()) ss
    in
    Ok t

  let pp_text ppf t =
    let open Format in
    fprintf ppf "counters:@\n";
    List.iter
      (fun (k, v) -> fprintf ppf "  %-42s %d@\n" k v)
      (counters t);
    fprintf ppf "histograms:@\n";
    List.iter
      (fun (k, h) ->
        fprintf ppf "  %-42s count=%d min=%g max=%g mean=%g@\n" k h.count h.min
          h.max
          (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count))
      (histograms t);
    fprintf ppf "spans:@\n";
    List.iter
      (fun (k, s) ->
        fprintf ppf "  %-42s calls=%d total=%.6fs@\n" k s.calls s.total)
      (spans t)
end

(* One registry per domain: probes never contend.  Workers fold their
   registry into [accum] via [publish] before exiting. *)
let dls_key : Registry.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Registry.create ())

let current () = Domain.DLS.get dls_key

let accum = Registry.create ()
let accum_mutex = Mutex.create ()

let publish () =
  let r = current () in
  if not (Registry.is_empty r) then begin
    Mutex.lock accum_mutex;
    Registry.merge ~into:accum r;
    Mutex.unlock accum_mutex;
    Domain.DLS.set dls_key (Registry.create ())
  end

let snapshot () =
  let out = Registry.create () in
  Mutex.lock accum_mutex;
  Registry.merge ~into:out accum;
  Mutex.unlock accum_mutex;
  Registry.merge ~into:out (current ());
  out

let reset () =
  Mutex.lock accum_mutex;
  Registry.clear accum;
  Mutex.unlock accum_mutex;
  Registry.clear (current ())

let incr ?by name = if enabled () then Registry.incr ?by (current ()) name
let touch name = if enabled () then Registry.incr ~by:0 (current ()) name
let observe name v = if enabled () then Registry.observe (current ()) name v

let with_span name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        Registry.span_add (current ()) name (Unix.gettimeofday () -. t0))
      f
  end
