type elt = int

(* Little-endian words, [Sys.int_size] bits each, normalized: the last
   word is never 0.  Normalization makes structural equality and the
   polymorphic order agree with set semantics. *)
type t = int array

let word_bits = Sys.int_size

let empty : t = [||]
let is_empty s = Array.length s = 0

let check_elt name x =
  if x < 0 then invalid_arg ("Bitset." ^ name ^ ": negative element")

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let singleton x =
  check_elt "singleton" x;
  let w = x / word_bits in
  let a = Array.make (w + 1) 0 in
  a.(w) <- 1 lsl (x mod word_bits);
  a

let mem x s =
  x >= 0
  &&
  let w = x / word_bits in
  w < Array.length s && s.(w) land (1 lsl (x mod word_bits)) <> 0

let add x s =
  check_elt "add" x;
  if mem x s then s
  else begin
    let w = x / word_bits in
    let a = Array.make (max (w + 1) (Array.length s)) 0 in
    Array.blit s 0 a 0 (Array.length s);
    a.(w) <- a.(w) lor (1 lsl (x mod word_bits));
    a
  end

let remove x s =
  if not (mem x s) then s
  else begin
    let a = Array.copy s in
    let w = x / word_bits in
    a.(w) <- a.(w) land lnot (1 lsl (x mod word_bits));
    normalize a
  end

let union a b =
  let short, long = if Array.length a <= Array.length b then (a, b) else (b, a) in
  if Array.length short = 0 then long
  else begin
    let r = Array.copy long in
    for i = 0 to Array.length short - 1 do
      r.(i) <- r.(i) lor short.(i)
    done;
    r
  end

let inter a b =
  let n = min (Array.length a) (Array.length b) in
  normalize (Array.init n (fun i -> a.(i) land b.(i)))

let diff a b =
  let r = Array.copy a in
  let n = min (Array.length a) (Array.length b) in
  for i = 0 to n - 1 do
    r.(i) <- r.(i) land lnot b.(i)
  done;
  normalize r

let disjoint a b =
  let n = min (Array.length a) (Array.length b) in
  let rec scan i = i >= n || (a.(i) land b.(i) = 0 && scan (i + 1)) in
  scan 0

let subset a b =
  let nb = Array.length b in
  let rec scan i =
    i >= Array.length a
    || ((i < nb && a.(i) land lnot b.(i) = 0) && scan (i + 1))
  in
  scan 0

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let complement ~universe s =
  if universe < 0 then invalid_arg "Bitset.complement: negative universe";
  if universe = 0 then empty
  else begin
    let words = ((universe - 1) / word_bits) + 1 in
    let r = Array.make words 0 in
    for i = 0 to words - 1 do
      let full =
        if i = words - 1 && universe mod word_bits <> 0 then
          (1 lsl (universe mod word_bits)) - 1
        else -1
      in
      let have = if i < Array.length s then s.(i) else 0 in
      r.(i) <- full land lnot have
    done;
    normalize r
  end

let min_elt s =
  let n = Array.length s in
  let rec scan i =
    if i >= n then None
    else if s.(i) = 0 then scan (i + 1)
    else begin
      let lsb = s.(i) land - s.(i) in
      Some ((i * word_bits) + popcount (lsb - 1))
    end
  in
  scan 0

let fold f s init =
  let acc = ref init in
  Array.iteri
    (fun i w ->
      let base = i * word_bits in
      let rec bits w =
        if w <> 0 then begin
          let lsb = w land -w in
          acc := f (base + popcount (lsb - 1)) !acc;
          bits (w land (w - 1))
        end
      in
      bits w)
    s;
  !acc

let iter f s = fold (fun x () -> f x) s ()

let elements s = List.rev (fold (fun x acc -> x :: acc) s [])

let of_list l = List.fold_left (fun s x -> add x s) empty l
