(** Packed bitsets over small dense integer universes.

    Kill sets (§4's locked-processor sets) are subsets of the [m]
    processors, and the scheduler probes them with [disjoint] / [cardinal]
    / [union] on every candidate placement.  A balanced-tree
    [Set.Make (Int)] pays O(n log n) pointer chasing per operation; here a
    set is a normalized array of bit words, so the same operations cost
    O(m / word_size) word instructions and no per-element allocation.

    Values are immutable and normalized (no trailing zero words), so
    structural equality and polymorphic comparison coincide with set
    equality and a total order — the representation can be stored, hashed
    and compared freely, like the [Set.S] values it replaces.  Elements
    must be non-negative. *)

type elt = int

type t

val empty : t
val is_empty : t -> bool

val singleton : elt -> t
(** @raise Invalid_argument on a negative element. *)

val add : elt -> t -> t
val remove : elt -> t -> t
val mem : elt -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is the set of elements of [a] not in [b]. *)

val disjoint : t -> t -> bool
(** No allocation: a word-wise scan that stops at the first overlap. *)

val subset : t -> t -> bool
(** [subset a b]: every element of [a] is in [b]. *)

val cardinal : t -> int
(** Population count over the words. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val complement : universe:int -> t -> t
(** [complement ~universe s] is [{0 .. universe-1} \ s]: the elements of
    the dense universe not in [s].  Elements of [s] at or above
    [universe] are ignored.  The inclusion–exclusion sweeps of the
    reliability calculus use this to split a kill-set support from the
    untouched processors.
    @raise Invalid_argument on a negative universe. *)

val min_elt : t -> elt option
(** Smallest element, or [None] on the empty set — the pivot choice of
    the Shannon-decomposition evaluator. *)

val elements : t -> elt list
(** In increasing order, as [Set.Make (Int)] returns them. *)

val of_list : elt list -> t
val iter : (elt -> unit) -> t -> unit
(** In increasing order. *)

val fold : (elt -> 'a -> 'a) -> t -> 'a -> 'a
(** In increasing order. *)
