(* Bounded LRU caches of per-mapping compiled artifacts, keyed by a
   content digest of the mapping (DAG weights, platform speeds and
   bandwidths, replica placements and source sets).  A digest key — not
   physical identity — because mappings are mutable: a mapping edited
   after a lookup digests differently on the next lookup and recompiles,
   so the caches can never serve a stale artifact for changed content. *)

let hits_total = Atomic.make 0
let misses_total = Atomic.make 0

let digest m =
  let dag = Mapping.dag m and plat = Mapping.platform m in
  let buf = Buffer.create 4096 in
  (* Raw bit patterns rather than formatted text: the digest sits on the
     cache's hot path (a lookup must beat a compile), and [Printf "%h"]
     formatting dominated the old key's cost by an order of magnitude.
     Float bits distinguish everything [compile] can see — including
     signed zeros — and every variable-length list below is preceded by
     its length, so the encoding is prefix-free. *)
  let addf x = Buffer.add_int64_ne buf (Int64.bits_of_float x) in
  let addi x = Buffer.add_int64_ne buf (Int64.of_int x) in
  addi (Dag.size dag);
  Dag.iter_tasks dag (fun t -> addf (Dag.exec dag t));
  Dag.iter_edges dag (fun src dst vol ->
      addi src;
      addi dst;
      addf vol);
  let m_procs = Platform.size plat in
  addi m_procs;
  for u = 0 to m_procs - 1 do
    addf (Platform.speed plat u)
  done;
  for u = 0 to m_procs - 1 do
    for v = 0 to m_procs - 1 do
      if u <> v then addf (Platform.bandwidth plat u v)
    done
  done;
  addi (Mapping.n_copies m);
  (* Placements and source sets — the same content [Mapping_io.print]
     writes, dumped raw.  [Mapping.iter] enumerates placed replicas in a
     fixed task-major order, so equal mapping content yields equal
     bytes. *)
  Mapping.iter m (fun r ->
      addi r.Replica.id.Replica.task;
      addi r.Replica.id.Replica.copy;
      addi r.Replica.proc;
      addi (List.length r.Replica.sources);
      List.iter
        (fun ((pred : Dag.task), (srcs : Replica.id list)) ->
          addi pred;
          addi (List.length srcs);
          List.iter
            (fun (s : Replica.id) ->
              addi s.Replica.task;
              addi s.Replica.copy)
            srcs)
        r.Replica.sources);
  Digest.string (Buffer.contents buf)

type 'v entry = { value : 'v; mutable stamp : int }

type 'v t = {
  capacity : int;
  build : Mapping.t -> 'v;
  table : (string, 'v entry) Hashtbl.t;
  mutable clock : int;  (* LRU stamp source, monotone per lookup *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  lock : Mutex.t;
}

let create ~capacity build =
  if capacity < 1 then invalid_arg "Program_cache.create: capacity < 1";
  {
    capacity;
    build;
    table = Hashtbl.create (2 * capacity);
    clock = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    lock = Mutex.create ();
  }

let evict_lru c =
  (* O(capacity) scan — capacities are small and eviction is the rare
     path (a miss past capacity). *)
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, s) when s <= e.stamp -> ()
      | _ -> victim := Some (key, e.stamp))
    c.table;
  match !victim with None -> () | Some (key, _) -> Hashtbl.remove c.table key

let find c m =
  let key = digest m in
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) @@ fun () ->
  c.clock <- c.clock + 1;
  match Hashtbl.find_opt c.table key with
  | Some e ->
      e.stamp <- c.clock;
      Atomic.incr c.hits;
      Atomic.incr hits_total;
      Obs.incr "sim.cache.hits";
      e.value
  | None ->
      Atomic.incr c.misses;
      Atomic.incr misses_total;
      Obs.incr "sim.cache.misses";
      (* Built under the lock: concurrent misses on one mapping compile
         once, and the compile (ms) dwarfs the hold time anyway. *)
      let value = c.build m in
      if Hashtbl.length c.table >= c.capacity then evict_lru c;
      Hashtbl.replace c.table key { value; stamp = c.clock };
      value

let mem c m =
  let key = digest m in
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) @@ fun () ->
  Hashtbl.mem c.table key

let length c =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) @@ fun () ->
  Hashtbl.length c.table

let capacity c = c.capacity
let hits c = Atomic.get c.hits
let misses c = Atomic.get c.misses

let clear c =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) @@ fun () ->
  Hashtbl.reset c.table

(* The shared compiled-program instance.  64 mappings comfortably covers
   a recovery chain's restoration history or a figure trial's working
   set.  (The stage-latency plan cache lives in [Stage_latency] itself:
   hosting it here would close a module cycle, since [Stage_latency]
   depends on [Crash] which depends on this cache.) *)
let default_capacity = 64
let programs : Engine.program t = create ~capacity:default_capacity Engine.compile
let program m = find programs m
