type outcome = {
  failed : Platform.proc list;
  latency : float option;
  defeated : bool;
}

type stats = {
  mean : float option;
  draws : int;
  defeated_draws : int;
}

type exact = {
  p_defeat : float;
  degraded_mean : float option;
  evaluations : int;
}

let defeat_rate s =
  if s.draws = 0 then nan
  else float_of_int s.defeated_draws /. float_of_int s.draws

(* ---- shared internals: every public shape is a view over these -------- *)

let replay ?state p ~failed =
  let latency = Engine.latency_compiled ?state ~failed p in
  { failed; latency; defeated = latency = None }

let draw_distinct ~rand_int ~count ~bound =
  let rec pick chosen remaining =
    if remaining = 0 then List.rev chosen
    else begin
      let candidate = rand_int bound in
      if List.mem candidate chosen then pick chosen remaining
      else pick (candidate :: chosen) (remaining - 1)
    end
  in
  pick [] count

let sample_impl ?state ~rand_int ~crashes p =
  Obs.with_span "sim.crash.sample" (fun () ->
      Obs.incr "sim.crash.draws";
      Obs.touch "sim.crash.defeats";
      let n_procs = Platform.size (Mapping.platform (Engine.program_mapping p)) in
      if crashes > n_procs then
        invalid_arg "Crash.sample: more crashes than processors";
      let failed = draw_distinct ~rand_int ~count:crashes ~bound:n_procs in
      let outcome = replay ?state p ~failed in
      if outcome.defeated then Obs.incr "sim.crash.defeats";
      outcome)

let int_binom n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let r = ref 1 in
    for i = 1 to k do
      r := !r * (n - k + i) / i
    done;
    !r
  end

(* Every one of the choose (m, c) failure sets replayed through the
   engine: the exact analogue of the sampled mean under the engine's own
   latency semantics, with the enumeration count as the only cost knob. *)
let exact_stats_impl ?(max_evaluations = 1_000_000) ~crashes p =
  Obs.with_span "sim.crash.exact" (fun () ->
      let n_procs = Platform.size (Mapping.platform (Engine.program_mapping p)) in
      if crashes < 0 || crashes > n_procs then
        invalid_arg "Crash.exact_latency_stats: crash count outside [0, m]";
      let total = int_binom n_procs crashes in
      if total > max_evaluations then
        invalid_arg "Crash.exact_latency_stats: enumeration over budget";
      (* One arena for the whole enumeration. *)
      let state = Engine.Run_state.create p in
      let sum = ref 0.0 and survivors = ref 0 and defeated = ref 0 in
      (* next processor to pick >= [from]; [chosen] in decreasing order *)
      let rec enumerate chosen from remaining =
        if remaining = 0 then begin
          match (replay ~state p ~failed:(List.rev chosen)).latency with
          | Some l ->
              sum := !sum +. l;
              incr survivors
          | None -> incr defeated
        end
        else
          for u = from to n_procs - remaining do
            enumerate (u :: chosen) (u + 1) (remaining - 1)
          done
      in
      enumerate [] 0 crashes;
      {
        p_defeat = float_of_int !defeated /. float_of_int total;
        degraded_mean =
          (if !survivors = 0 then None
           else Some (!sum /. float_of_int !survivors));
        evaluations = total;
      })

(* ---- the one entry point ---------------------------------------------- *)

type source = Of_mapping of Mapping.t | Of_program of Engine.program

type method_ =
  | Fixed of Platform.proc list
  | Sampled of { crashes : int; draws : int; rng : Rng.t }
  | Exact of { crashes : int; max_evaluations : int option }

type estimate = {
  est_crashes : int;
  est_draws : int;
  est_evaluations : int;
  est_defeated : int;
  est_p_defeat : float;
  est_mean : float option;
  est_failed : Platform.proc list;
}

let program_of = function
  | Of_mapping m -> Program_cache.program m
  | Of_program p -> p

(* Draws are processed in fixed-size chunks whose partial sums are folded
   in chunk-index order.  The chunking is a function of the draw count
   alone — never of the worker count — so the float-addition order (and
   therefore the estimate, bitwise) is the same at every [jobs], and
   [jobs = 1] takes the very same fold. *)
let chunk_size = 32

let estimate ?pool ?(jobs = 1) ~source ~method_ () =
  let p = program_of source in
  match method_ with
  | Fixed failed ->
      let o = replay p ~failed in
      {
        est_crashes = List.length failed;
        est_draws = 0;
        est_evaluations = 1;
        est_defeated = (if o.defeated then 1 else 0);
        est_p_defeat = (if o.defeated then 1.0 else 0.0);
        est_mean = o.latency;
        est_failed = failed;
      }
  | Sampled { crashes; draws; rng } ->
      if draws < 0 then
        invalid_arg "Crash.mean_latency_stats: negative run count";
      (* One child generator per draw, split off up front: draw [i]'s
         failure set depends only on the caller's seed and [i] (common
         random numbers), so growing [draws] extends the draw sequence
         without disturbing its prefix, and workers need no shared RNG. *)
      let seeds = Array.init draws (fun _ -> Rng.split rng) in
      let n_chunks = (draws + chunk_size - 1) / chunk_size in
      let run_chunk ci =
        let state = Engine.Run_state.create p in
        let lo = ci * chunk_size in
        let hi = min draws (lo + chunk_size) in
        let total = ref 0.0 and count = ref 0 and defeated = ref 0 in
        let last = ref [] in
        for i = lo to hi - 1 do
          let rng_i = seeds.(i) in
          let o =
            sample_impl ~state ~rand_int:(fun b -> Rng.int rng_i b) ~crashes p
          in
          (match o.latency with
          | Some l ->
              total := !total +. l;
              incr count
          | None -> incr defeated);
          last := o.failed
        done;
        (!total, !count, !defeated, !last)
      in
      let partials =
        Parallel.map_seeded ?pool ~jobs run_chunk (List.init n_chunks Fun.id)
      in
      let total, count, defeated, last =
        List.fold_left
          (fun (t, c, d, _) (t', c', d', l') -> (t +. t', c + c', d + d', l'))
          (0.0, 0, 0, []) partials
      in
      {
        est_crashes = crashes;
        est_draws = draws;
        est_evaluations = draws;
        est_defeated = defeated;
        est_p_defeat =
          (if draws = 0 then nan
           else float_of_int defeated /. float_of_int draws);
        est_mean =
          (if count = 0 then None else Some (total /. float_of_int count));
        est_failed = last;
      }
  | Exact { crashes; max_evaluations } ->
      let e = exact_stats_impl ?max_evaluations ~crashes p in
      {
        est_crashes = crashes;
        est_draws = 0;
        est_evaluations = e.evaluations;
        est_defeated =
          int_of_float
            (Float.round (e.p_defeat *. float_of_int e.evaluations));
        est_p_defeat = e.p_defeat;
        est_mean = e.degraded_mean;
        est_failed = [];
      }
