type outcome = {
  failed : Platform.proc list;
  latency : float option;
  defeated : bool;
}

type stats = {
  mean : float option;
  draws : int;
  defeated_draws : int;
}

let defeat_rate s =
  if s.draws = 0 then nan
  else float_of_int s.defeated_draws /. float_of_int s.draws

let with_failures_compiled p ~failed =
  let latency = Engine.latency_compiled ~failed p in
  { failed; latency; defeated = latency = None }

let with_failures m ~failed = with_failures_compiled (Engine.compile m) ~failed

let draw_distinct ~rand_int ~count ~bound =
  let rec pick chosen remaining =
    if remaining = 0 then List.rev chosen
    else begin
      let candidate = rand_int bound in
      if List.mem candidate chosen then pick chosen remaining
      else pick (candidate :: chosen) (remaining - 1)
    end
  in
  pick [] count

let sample_compiled ~rand_int ~crashes p =
  Obs.with_span "sim.crash.sample" (fun () ->
      Obs.incr "sim.crash.draws";
      Obs.touch "sim.crash.defeats";
      let n_procs = Platform.size (Mapping.platform (Engine.program_mapping p)) in
      if crashes > n_procs then
        invalid_arg "Crash.sample: more crashes than processors";
      let failed = draw_distinct ~rand_int ~count:crashes ~bound:n_procs in
      let outcome = with_failures_compiled p ~failed in
      if outcome.defeated then Obs.incr "sim.crash.defeats";
      outcome)

let sample ~rand_int ~crashes m = sample_compiled ~rand_int ~crashes (Engine.compile m)

let mean_latency_stats_compiled ~rand_int ~crashes ~runs p =
  let rec loop i total count defeated =
    if i >= runs then
      {
        mean = (if count = 0 then None else Some (total /. float_of_int count));
        draws = runs;
        defeated_draws = defeated;
      }
    else begin
      match (sample_compiled ~rand_int ~crashes p).latency with
      | Some l -> loop (i + 1) (total +. l) (count + 1) defeated
      | None -> loop (i + 1) total count (defeated + 1)
    end
  in
  loop 0 0.0 0 0

(* Compile once, replay per draw: the program carries every per-mapping
   table, so the draw loop only pays the event simulation itself. *)
let mean_latency_stats ~rand_int ~crashes ~runs m =
  mean_latency_stats_compiled ~rand_int ~crashes ~runs (Engine.compile m)

let mean_latency ~rand_int ~crashes ~runs m =
  (mean_latency_stats ~rand_int ~crashes ~runs m).mean
