type outcome = {
  failed : Platform.proc list;
  latency : float option;
  defeated : bool;
}

type stats = {
  mean : float option;
  draws : int;
  defeated_draws : int;
}

type exact = {
  p_defeat : float;
  degraded_mean : float option;
  evaluations : int;
}

let defeat_rate s =
  if s.draws = 0 then nan
  else float_of_int s.defeated_draws /. float_of_int s.draws

let with_failures_compiled p ~failed =
  let latency = Engine.latency_compiled ~failed p in
  { failed; latency; defeated = latency = None }

let with_failures m ~failed = with_failures_compiled (Engine.compile m) ~failed

let draw_distinct ~rand_int ~count ~bound =
  let rec pick chosen remaining =
    if remaining = 0 then List.rev chosen
    else begin
      let candidate = rand_int bound in
      if List.mem candidate chosen then pick chosen remaining
      else pick (candidate :: chosen) (remaining - 1)
    end
  in
  pick [] count

let sample_compiled ~rand_int ~crashes p =
  Obs.with_span "sim.crash.sample" (fun () ->
      Obs.incr "sim.crash.draws";
      Obs.touch "sim.crash.defeats";
      let n_procs = Platform.size (Mapping.platform (Engine.program_mapping p)) in
      if crashes > n_procs then
        invalid_arg "Crash.sample: more crashes than processors";
      let failed = draw_distinct ~rand_int ~count:crashes ~bound:n_procs in
      let outcome = with_failures_compiled p ~failed in
      if outcome.defeated then Obs.incr "sim.crash.defeats";
      outcome)

let sample ~rand_int ~crashes m = sample_compiled ~rand_int ~crashes (Engine.compile m)

let mean_latency_stats_compiled ~rand_int ~crashes ~runs p =
  if runs < 0 then invalid_arg "Crash.mean_latency_stats: negative run count";
  let rec loop i total count defeated =
    if i >= runs then
      {
        mean = (if count = 0 then None else Some (total /. float_of_int count));
        draws = runs;
        defeated_draws = defeated;
      }
    else begin
      match (sample_compiled ~rand_int ~crashes p).latency with
      | Some l -> loop (i + 1) (total +. l) (count + 1) defeated
      | None -> loop (i + 1) total count (defeated + 1)
    end
  in
  loop 0 0.0 0 0

(* Compile once, replay per draw: the program carries every per-mapping
   table, so the draw loop only pays the event simulation itself. *)
let mean_latency_stats ~rand_int ~crashes ~runs m =
  mean_latency_stats_compiled ~rand_int ~crashes ~runs (Engine.compile m)

let mean_latency ~rand_int ~crashes ~runs m =
  (mean_latency_stats ~rand_int ~crashes ~runs m).mean

(* ---- exact siblings: the availability calculus instead of draws ------- *)

let exact_defeat_rate ~crashes m =
  if crashes < 0 || crashes > Platform.size (Mapping.platform m) then
    invalid_arg "Crash.exact_defeat_rate: crash count outside [0, m]";
  let t = Reliability.analyze ~max_cut_card:crashes m in
  Reliability.defeat_probability t (Reliability.Uniform_crashes crashes)

let exact_defeat_rate_compiled ~crashes p =
  exact_defeat_rate ~crashes (Engine.program_mapping p)

let int_binom n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let r = ref 1 in
    for i = 1 to k do
      r := !r * (n - k + i) / i
    done;
    !r
  end

(* Every one of the choose (m, c) failure sets replayed through the
   engine: the exact analogue of [mean_latency_stats_compiled] under the
   engine's own latency semantics, with the enumeration count as the only
   cost knob. *)
let exact_latency_stats_compiled ?(max_evaluations = 1_000_000) ~crashes p =
  Obs.with_span "sim.crash.exact" (fun () ->
      let n_procs = Platform.size (Mapping.platform (Engine.program_mapping p)) in
      if crashes < 0 || crashes > n_procs then
        invalid_arg "Crash.exact_latency_stats: crash count outside [0, m]";
      let total = int_binom n_procs crashes in
      if total > max_evaluations then
        invalid_arg "Crash.exact_latency_stats: enumeration over budget";
      let sum = ref 0.0 and survivors = ref 0 and defeated = ref 0 in
      (* next processor to pick >= [from]; [chosen] in decreasing order *)
      let rec enumerate chosen from remaining =
        if remaining = 0 then begin
          match (with_failures_compiled p ~failed:(List.rev chosen)).latency with
          | Some l ->
              sum := !sum +. l;
              incr survivors
          | None -> incr defeated
        end
        else
          for u = from to n_procs - remaining do
            enumerate (u :: chosen) (u + 1) (remaining - 1)
          done
      in
      enumerate [] 0 crashes;
      {
        p_defeat = float_of_int !defeated /. float_of_int total;
        degraded_mean =
          (if !survivors = 0 then None
           else Some (!sum /. float_of_int !survivors));
        evaluations = total;
      })

let exact_latency_stats ?max_evaluations ~crashes m =
  exact_latency_stats_compiled ?max_evaluations ~crashes (Engine.compile m)
