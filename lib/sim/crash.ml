type outcome = {
  failed : Platform.proc list;
  latency : float option;
}

let with_failures m ~failed = { failed; latency = Engine.latency ~failed m }

let draw_distinct ~rand_int ~count ~bound =
  let rec pick chosen remaining =
    if remaining = 0 then List.rev chosen
    else begin
      let candidate = rand_int bound in
      if List.mem candidate chosen then pick chosen remaining
      else pick (candidate :: chosen) (remaining - 1)
    end
  in
  pick [] count

let sample ~rand_int ~crashes m =
  Obs.with_span "sim.crash.sample" (fun () ->
      Obs.incr "sim.crash.draws";
      let n_procs = Platform.size (Mapping.platform m) in
      if crashes > n_procs then
        invalid_arg "Crash.sample: more crashes than processors";
      let failed = draw_distinct ~rand_int ~count:crashes ~bound:n_procs in
      with_failures m ~failed)

let mean_latency ~rand_int ~crashes ~runs m =
  let rec loop i total count =
    if i >= runs then
      if count = 0 then None else Some (total /. float_of_int count)
    else begin
      match (sample ~rand_int ~crashes m).latency with
      | Some l -> loop (i + 1) (total +. l) (count + 1)
      | None -> loop (i + 1) total count
    end
  in
  loop 0 0.0 0
