(** A minimal binary min-heap keyed by floats, used as the event queue of the
    discrete-event simulator.  Ties are served in insertion order so runs are
    deterministic.

    The representation is exposed on purpose: keys are stored unboxed in a
    [float array], and the engine's event loop reads [h.keys.(0)] and [h.len]
    directly so that peeking at the next event time allocates nothing (an
    accessor returning [float] across the module boundary would box). *)

type 'a t = {
  mutable keys : float array;  (** heap-ordered keys, unboxed *)
  mutable seqs : int array;  (** insertion numbers, the tie-break *)
  mutable vals : 'a array;
  mutable len : int;  (** live prefix of the three arrays *)
  mutable next_seq : int;
}

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val clear : 'a t -> unit
(** Empty the heap and restart the insertion numbering, keeping the
    backing storage.  A cleared heap behaves exactly like a fresh one
    (same tie-break order), which is what the run-state arena relies
    on. *)

val add : 'a t -> float -> 'a -> unit
(** Insert an element with the given key. *)

val add_unboxed : 'a t -> float array -> 'a -> unit
(** [add_unboxed h slot v] inserts [v] with key [slot.(0)].  Passing the
    key through a caller-owned one-slot float array keeps the call free
    of float boxing (a [float] parameter would allocate at every call
    without flambda); behaviour is otherwise exactly [add]. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the element with the smallest key; among equal keys,
    the earliest inserted. *)

val unsafe_pop : 'a t -> 'a
(** Remove the minimum element and return its value without allocating.
    The caller must check [h.len > 0] first (and read [h.keys.(0)] before
    popping if it needs the key); undefined on an empty heap. *)

val min_key : 'a t -> float option
