(** Stage-synchronous "real execution" latency (§5).

    In the steady-state pipelined execution, every stage consumes one
    period for computation and one period per processor change for
    communication, so a data item's latency is [(2·S_eff − 1)/T] where
    [S_eff] is the effective pipeline depth of the item's path to the
    exits.  The paper's upper bound uses the worst replica stage [S]
    (waiting for the slowest source of every replica); the "real execution
    time for a given schedule" lets every replica proceed with the {e
    first} available input per predecessor and takes, for each exit task,
    the {e earliest} surviving replica — which is what this module
    computes, with an optional fail-silent failure set.

    Failures can only increase the result: surviving replicas may be
    forced to wait for later-stage sources, and the earliest exit replica
    may be lost. *)

type plan
(** The stage model compiled into dense arrays (replica processors and
    source sets as CSR): built once per mapping, replayed per failure
    draw. *)

val compile : Mapping.t -> plan

val depth_of_plan : ?failed:Platform.proc list -> plan -> int option
(** {!effective_depth} against a compiled plan; identical result. *)

val latency_of_plan :
  ?failed:Platform.proc list -> plan -> throughput:float -> float option
(** {!latency} against a compiled plan; identical result. *)

val mean_crash_latency_stats_of_plan :
  rand_int:(int -> int) ->
  crashes:int ->
  runs:int ->
  throughput:float ->
  plan ->
  Crash.stats
(** {!mean_crash_latency_stats} against a compiled plan; consumes
    [rand_int] identically. *)

val effective_depth : ?failed:Platform.proc list -> Mapping.t -> int option
(** [S_eff]: the maximum over exit tasks of the minimum, over alive
    replicas of that task, of the replica's effective stage (per
    predecessor, the best alive source).  [None] when some exit task has
    no alive replica (the failure set defeats the schedule); [Some 0] for
    the empty graph. *)

val latency :
  ?failed:Platform.proc list -> Mapping.t -> throughput:float -> float option
(** [(2·S_eff − 1) / T]. *)

val mean_crash_latency_stats :
  rand_int:(int -> int) ->
  crashes:int ->
  runs:int ->
  throughput:float ->
  Mapping.t ->
  Crash.stats
(** Average {!latency} over [runs] uniform draws of [crashes] distinct
    failed processors, with the draws that defeated the schedule counted
    in {!Crash.stats.defeated_draws} instead of silently dropped.
    Compiles the mapping once and replays the plan per draw. *)

val mean_crash_latency :
  rand_int:(int -> int) ->
  crashes:int ->
  runs:int ->
  throughput:float ->
  Mapping.t ->
  float option
(** The mean of {!mean_crash_latency_stats}; draws that defeat the
    schedule are excluded.  [None] if every draw did. *)

val exact_crash_latency_stats :
  crashes:int -> throughput:float -> Mapping.t -> Crash.exact
(** The exact values {!mean_crash_latency_stats} estimates, from the
    {!Reliability} calculus: defeat probability and mean degraded latency
    conditioned on survival, for [crashes] uniformly chosen distinct dead
    processors.  Consumes no randomness and replays nothing
    ([evaluations = 0]).
    @raise Invalid_argument if [crashes] is outside [0, m]. *)

val plans : plan Program_cache.t
(** The global stage-latency plan cache (capacity 64), used by the
    figure harness ([Fig_common]).  Lives here rather than in
    {!Program_cache} because this module depends on [Crash], which
    depends on [Program_cache]. *)

val cached_plan : Mapping.t -> plan
(** [Program_cache.find plans m] — {!compile} through the shared cache:
    repeated lookups on the same mapping content pay the compile once. *)
