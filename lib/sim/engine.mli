(** Discrete-event execution of a replicated mapping under the
    bi-directional one-port model.

    The engine plays the streaming execution of [n_items] consecutive data
    items through a complete mapping, with optional fail-silent processor
    failures effective from time 0.  Semantics:

    - item [k] enters the system at time [k · period];
    - a replica instance (item, task, copy) is {e dead} when its processor
      failed or when, for some predecessor task, every replica in its source
      set is dead; dead instances never execute nor send;
    - an alive instance becomes {e enabled} once, for every predecessor, the
      data of at least one alive source replica has reached its processor
      (local outputs are available the instant the source finishes);
    - each processor runs one instance at a time, picking among enabled
      instances the one with the lowest item index and then the highest task
      priority (bottom level on averaged weights), so earlier items drain
      first;
    - a finished instance sends one message per consumer replica on a remote
      processor; a message occupies the sender's send port and the
      receiver's receive port for [volume / bandwidth] time units, both
      ports being single-occupancy (messages are started greedily, earliest
      feasible first, ties broken by destination priority then identifier);
    - computation and communication overlap fully.

    With [n_items = 1] and actual weights this yields the paper's "real
    execution time for a given schedule" used in the crash experiments of
    §5.

    The engine is split into a {e compile} phase and a {e run} phase.
    {!compile} flattens the mapping + DAG into dense int-indexed tables
    (dense replica ids, CSR consumer and source-set arrays, precomputed
    execution and transfer durations, task priorities, the achieved
    period) built once per mapping; {!run_compiled} plays any number of
    scenarios — crash draws, resumed epochs — against the same program.
    [run_compiled] reproduces the legacy event order exactly (same
    (key, seqno) heap discipline, same destination-priority tie-breaks),
    so results are bit-identical to {!run}, which is now a thin
    compile-then-run wrapper. *)

(** Surviving-state snapshot an epoch resumes from (the operations layer
    drives one {!run} per epoch instead of replaying from time 0):
    [clock] is the absolute time the epoch starts — item [k] of the run is
    injected at [clock + k · period] and every failure instant is
    interpreted on the same absolute axis — and [down] lists the
    processors that already crashed in earlier epochs (statically dead,
    exactly like [failed]). *)
type snapshot = { clock : float; down : Platform.proc list }

val boot : snapshot
(** [{ clock = 0.0; down = [] }]: the fresh-stream state.  [run] without
    [?snapshot] behaves exactly as before the epoch API existed. *)

type instance = { item : int; rep : Replica.id }

type message = {
  msg_src : instance;
  msg_dst : instance;
  msg_start : float;
  msg_finish : float;
}

type result = {
  start_time : (int -> Replica.id -> float option);
      (** execution start of an instance; [None] when dead *)
  finish_time : (int -> Replica.id -> float option);
  item_latency : float option array;
      (** per item: availability time of the last exit task minus the item's
          injection time; [None] when some exit task lost all replicas *)
  period : float;  (** injection period the run used *)
  makespan : float;  (** time the last event completed *)
  messages : message list;  (** completed transfers, by start time *)
}

type program
(** A mapping compiled for repeated simulation: immutable dense tables
    shared by every run.  Compile once per mapping, then call
    {!run_compiled} per crash draw or epoch. *)

val compile : Mapping.t -> program
(** Flatten the mapping into a {!program}.  Performs all per-mapping work:
    priorities (bottom levels on averaged weights), the consumer table and
    predecessor index as CSR arrays, per-replica execution and transfer
    durations, and the mapping's achieved period (the default [?period]).
    @raise Invalid_argument if the mapping is incomplete. *)

val program_mapping : program -> Mapping.t
(** The mapping the program was compiled from. *)

val program_period : program -> float
(** The mapping's achieved period, cached at compile time; equals
    [Metrics.period (program_mapping p)]. *)

val run_compiled :
  ?snapshot:snapshot ->
  ?n_items:int ->
  ?period:float ->
  ?failed:Platform.proc list ->
  ?timed_failures:(Platform.proc * float) list ->
  program ->
  result
(** Play one scenario against a compiled program.  Arguments and recorded
    metrics are exactly those of {!run}; the result is bit-identical to
    [run (program_mapping p)] with the same arguments.  A program holds no
    per-run state, so it may be reused across any number of calls.
    @raise Invalid_argument as {!run}, except the incomplete-mapping case
    which {!compile} raises. *)

val run :
  ?snapshot:snapshot ->
  ?n_items:int ->
  ?period:float ->
  ?failed:Platform.proc list ->
  ?timed_failures:(Platform.proc * float) list ->
  Mapping.t ->
  result
(** [compile] then {!run_compiled}.  [snapshot] defaults to {!boot},
    [n_items] to 1, [period] to the mapping's achieved period (irrelevant
    when [n_items = 1]), [failed] to no failures.

    [timed_failures] crashes processors mid-stream (fail-stop): work or
    transfers that would complete strictly after the processor's crash
    instant are lost, in-flight messages from the crashed sender never
    arrive, and nothing starts on it afterwards; results produced up to the
    crash remain valid.  [failed] is shorthand for a crash at time 0.  A
    crash at or before the snapshot clock is fail-silent-from-the-start:
    the replicas on that processor are pruned statically.

    With [?snapshot] the run records [sim.epoch.resumes] (clock > 0) and a
    [sim.epoch.items] histogram sample; without it the recorded metrics
    are exactly the pre-epoch ones.
    @raise Invalid_argument if the mapping is incomplete, [n_items < 1],
    [period < 0], a failure time is negative, a processor appears twice in
    [timed_failures], or the snapshot clock is negative or not finite. *)

val latency : ?failed:Platform.proc list -> Mapping.t -> float option
(** Single-item latency: [run ~n_items:1] and the first {!result.item_latency}. *)

val latency_compiled : ?failed:Platform.proc list -> program -> float option
(** {!latency} against a compiled program. *)

val sustained_throughput : result -> float option
(** [(n - 1) / (t_last - t_first)] over the items that completed, using
    exit-availability times; [None] when fewer than two items completed.
    Measures the throughput the pipeline actually sustains. *)
