(** Discrete-event execution of a replicated mapping under the
    bi-directional one-port model.

    The engine plays the streaming execution of consecutive data items
    through a complete mapping, with optional fail-silent processor
    failures effective from time 0.  Semantics:

    - in the {e closed-system} mode, item [k] enters the system at time
      [k · period]; in the {e open-system} mode items arrive when an
      {!Arrival} process says they do, each replica owns a bounded FIFO
      input queue, and a full queue exerts backpressure (see {!Run});
    - a replica instance (item, task, copy) is {e dead} when its processor
      failed or when, for some predecessor task, every replica in its source
      set is dead; dead instances never execute nor send;
    - an alive instance becomes {e enabled} once, for every predecessor, the
      data of at least one alive source replica has reached its processor
      (local outputs are available the instant the source finishes);
    - each processor runs one instance at a time, picking among enabled
      instances the one with the lowest item index and then the highest task
      priority (bottom level on averaged weights), so earlier items drain
      first;
    - a finished instance sends one message per consumer replica on a remote
      processor; a message occupies the sender's send port and the
      receiver's receive port for [volume / bandwidth] time units, both
      ports being single-occupancy (messages are started greedily, earliest
      feasible first, ties broken by destination priority then identifier);
    - computation and communication overlap fully.

    With [n_items = 1] and actual weights this yields the paper's "real
    execution time for a given schedule" used in the crash experiments of
    §5.

    The engine is split into a {e compile} phase and a {e run} phase.
    {!compile} flattens the mapping + DAG into dense int-indexed tables
    (dense replica ids, CSR consumer and source-set arrays, precomputed
    execution and transfer durations, task priorities, the achieved
    period) built once per mapping; {!simulate} plays any number of
    scenarios — crash draws, resumed epochs, traffic profiles — against
    the same program.  Every scenario knob lives in one {!Run.config}
    record; {!run} and {!run_compiled} are thin closed-system defaults
    of the same entry point and reproduce the legacy event order exactly
    (same (key, seqno) heap discipline, same destination-priority
    tie-breaks), so their results are bit-identical to the pre-config
    API. *)

(** Surviving-state snapshot an epoch resumes from (the operations layer
    drives one {!run} per epoch instead of replaying from time 0):
    [clock] is the absolute time the epoch starts — item [k] of the run is
    injected at [clock + k · period] (closed) or [clock + offset k] (open)
    and every failure instant is interpreted on the same absolute axis —
    and [down] lists the processors that already crashed in earlier epochs
    (statically dead, exactly like [failed]). *)
type snapshot = { clock : float; down : Platform.proc list }

val boot : snapshot
(** [{ clock = 0.0; down = [] }]: the fresh-stream state.  [run] without
    [?snapshot] behaves exactly as before the epoch API existed. *)

type instance = { item : int; rep : Replica.id }

type message = {
  msg_src : instance;
  msg_dst : instance;
  msg_start : float;
  msg_finish : float;
}

(** Fault-model accounting of one run: what the transient / gray fault
    machinery actually did.  All zeros (and an empty [exhausted_on])
    when the run's {!Faults.t} is {!Faults.none} — the fault-free fast
    path does not allocate the ledger. *)
type fault_stats = {
  retries : int;  (** re-driven attempts (execution + transfer) *)
  backoff_time : float;  (** total backoff delay inserted before retries *)
  exec_faults : int;  (** transient execution faults suffered *)
  comm_faults : int;  (** transient transfer faults suffered *)
  exhausted : int;  (** work units abandoned after the retry budget *)
  exhausted_on : int array;
      (** per-processor exhaustion counts (executor for execution
          faults, sender for transfer faults) — the signal the
          operations layer's eviction policy reads *)
  slowed_attempts : int;  (** executions stretched by a straggler window *)
  degraded_transfers : int;  (** transfers stretched by a link window *)
}

val no_faults : fault_stats
(** The all-zero ledger of a fault-free run. *)

type result = {
  start_time : (int -> Replica.id -> float option);
      (** execution start of an instance; [None] when dead *)
  finish_time : (int -> Replica.id -> float option);
  item_latency : float option array;
      (** per item: availability time of the last exit task minus the item's
          arrival time (sojourn — in the open mode it includes any wait in
          the source backlog); [None] when some exit task lost all replicas,
          the item was shed, or it was still stalled at the source when the
          run drained *)
  period : float;
      (** injection period of a closed run; the program's achieved period
          in the open mode (where arrivals, not a period, pace the run) *)
  makespan : float;  (** time the last event completed *)
  messages : message list;  (** completed transfers, by start time *)
  arrivals : float array;
      (** absolute arrival instant of each item (closed mode: the
          injection grid [clock + k · period]) *)
  injections : float array;
      (** absolute instant each item was admitted into the pipeline;
          [nan] when it was shed or still stalled.  Closed mode: equals
          [arrivals]. *)
  dropped : int;  (** items shed by [Drop_newest]; [0] in closed mode *)
  stalled : int;
      (** items still blocked at the source when the run drained
          (a [Block]ed source wedged by a crashed shard); [0] closed *)
  peak_queue : int;
      (** high-water per-replica input-queue occupancy; [0] closed *)
  stall_time : float;
      (** total backpressure wait [Σ (injection - arrival)] over the
          admitted items; [0.] closed *)
  faults : fault_stats;
      (** what the fault model did to this run; {!no_faults} when the
          config's [faults] is {!Faults.none} *)
}

type program
(** A mapping compiled for repeated simulation: immutable dense tables
    shared by every run.  Compile once per mapping, then call
    {!simulate} per crash draw, epoch or traffic profile. *)

val compile : Mapping.t -> program
(** Flatten the mapping into a {!program}.  Performs all per-mapping work:
    priorities (bottom levels on averaged weights), the consumer table and
    predecessor index as CSR arrays, per-replica execution and transfer
    durations, and the mapping's achieved period (the default [?period]).
    @raise Invalid_argument if the mapping is incomplete. *)

val program_mapping : program -> Mapping.t
(** The mapping the program was compiled from. *)

val program_period : program -> float
(** The mapping's achieved period, cached at compile time; equals
    [Metrics.period (program_mapping p)]. *)

(** The one run-scenario record: traffic (closed or open), failures,
    epoch snapshot and metrics gate for a single {!simulate} call. *)
module Run : sig
  (** What happens when an item arrives and an entry replica's input
      queue is full. *)
  type drop_policy =
    | Block
        (** the source blocks (backpressure): the item waits in a FIFO
            backlog and is admitted when every live entry replica has
            room; its sojourn keeps growing while it waits *)
    | Drop_newest
        (** the arriving item is shed immediately (load shedding);
            counted in {!result.dropped} and in the [sim.drops]
            counter *)

  type traffic =
    | Closed of { n_items : int; period : float option }
        (** the legacy steady-state source: item [k] injected at
            [clock + k · period] ([period] defaults to the program's
            achieved period), no queue bound, no backpressure *)
    | Open of {
        arrival : Arrival.t;
        n_items : int;
        rng : Rng.t option;
            (** consumed by randomized arrival processes; may be [None]
                for [Deterministic] / [Trace] *)
        queue_bound : int option;
            (** per-replica input-queue capacity; [None] = unbounded.
                An instance occupies its replica's queue from the moment
                data is first committed toward it (or, for an entry
                task, from admission) until it finishes executing.
                Transfers towards a full replica wait — occupying their
                sender's attention and eventually the source — unless
                the destination instance is already in the queue (its
                remaining inputs must flow or the pipeline would
                deadlock). *)
        policy : drop_policy;
      }
        (** the open-system source: items arrive per [arrival], are
            admitted FIFO when every live entry replica has queue room,
            and otherwise block or shed per [policy] *)

  type config = {
    traffic : traffic;
    snapshot : snapshot option;  (** [None] = {!boot} *)
    failed : Platform.proc list;  (** fail-silent from time 0 *)
    timed_failures : (Platform.proc * float) list;  (** fail-stop *)
    metrics : bool;
        (** per-run metrics gate: [false] skips every [sim.*] counter,
            histogram and span of this run even when {!Obs.enabled} —
            for probe runs that must not pollute a profile *)
    record_messages : bool;
        (** [false] skips the per-transfer message log entirely:
            {!result.messages} comes back [[]] and the run allocates no
            per-message records.  Every other field of the result is
            bit-identical to a [true] run — the gate exists for draw
            loops (crash sampling, epochs) that never read the log.
            The builders default to [true]. *)
    faults : Faults.t;
        (** transient faults, retry policy and gray failures applied to
            the run.  {!Faults.none} (the builders' default) takes a
            fast path that is bit-identical to the pre-faults engine.
            Semantics: a transient execution fault consumes the whole
            attempt duration on its processor before being detected (a
            timeout), a transient transfer fault holds both ports for
            the whole attempt; retries are re-driven after the backoff
            delay and charged against the same one-port model, so
            faults genuinely inflate latency.  A work unit that fails
            [max_retries + 1] times is abandoned: the instance (and
            everything downstream of it that has no other alive source)
            never completes, and the exhaustion is counted against its
            processor in {!result.faults}[.exhausted_on].  Gray
            straggler / link windows multiply the duration of attempts
            starting inside them. *)
  }

  val closed : ?n_items:int -> ?period:float -> unit -> config
  (** A closed-system config with no failures, the {!boot} snapshot and
      metrics on — exactly what {!run} passes.  [n_items] defaults
      to 1. *)

  val open_ :
    ?queue_bound:int ->
    ?policy:drop_policy ->
    ?rng:Rng.t ->
    n_items:int ->
    Arrival.t ->
    config
  (** An open-system config with no failures, the {!boot} snapshot and
      metrics on.  [queue_bound] defaults to unbounded and [policy] to
      {!Block} — the degenerate point where a [Deterministic] arrival
      process reproduces the closed system bit-identically. *)

  val with_faults : Faults.t -> config -> config
  (** [{ config with faults }] — attach a fault scenario to any
      config. *)

  val without_messages : config -> config
  (** [{ config with record_messages = false }] — turn the message log
      off for a draw loop. *)
end

(** The reusable run-state arena: every per-run array slab the engine
    needs (instance tables, port state, ready/pending heaps, the event
    queue, the message log), allocated once per program and reused
    across runs.  A draw loop — crash sampling, resumed epochs, traffic
    sweeps — creates one arena and passes it to every {!simulate} call,
    reducing per-draw allocation to the handful of words of the result
    record itself. *)
module Run_state : sig
  type t

  val create : program -> t
  (** An arena sized for [program]'s processor and replica counts.  The
      per-item slabs start at single-item capacity and grow on demand
      (geometrically, so a sweep over increasing [n_items] settles).
      Counted under [sim.arena.creates]. *)

  val reset : t -> unit
  (** Return the arena to its post-{!create} condition, releasing the
      references the previous run retained.  Calling it between draws
      is {e optional}: {!simulate} re-initializes every slab range it
      uses, so a reused arena is bit-identical to a fresh one either
      way. *)
end

val simulate : ?state:Run_state.t -> config:Run.config -> program -> result
(** Play one scenario against a compiled program.  A program holds no
    per-run state, so it may be reused across any number of calls.

    [?state] supplies a reusable {!Run_state} arena; omitted, a private
    one is created for the run.  Results are bit-identical with and
    without an arena, and at any reuse count.  {b Validity}: the
    result's [start_time] / [finish_time] closures read the arena's
    slabs, so they are valid only until the next run on (or [reset] of)
    the same arena; [item_latency] and every other field are plain
    values and stay valid forever.  Arenas are single-threaded — give
    each domain its own.  Reuses are counted under [sim.arena.reuses].

    Closed traffic reproduces the legacy engine bit-identically.  Open
    traffic materializes the arrival process ({!Arrival.times}), admits
    items FIFO against the per-replica queue bound, and accounts
    backpressure ({!result.stall_time}), load shedding
    ({!result.dropped}) and queue occupancy ({!result.peak_queue});
    when a queue frees, waiting in-pipeline data beats new source
    admissions.  Open runs record [sim.queue.enqueued],
    [sim.queue.blocked], [sim.drops] and the [sim.queue.occupancy]
    histogram.
    @raise Invalid_argument as {!run}; additionally if an open config
    has [n_items < 1], [queue_bound < 1], an arrival process that
    needs randomness with [rng = None], or [?state] was created for a
    program of a different shape. *)

val run_compiled :
  ?snapshot:snapshot ->
  ?n_items:int ->
  ?period:float ->
  ?failed:Platform.proc list ->
  ?timed_failures:(Platform.proc * float) list ->
  program ->
  result
(** {!simulate} with closed-system traffic — the optional-argument
    default the pre-open-system API exposed; results are bit-identical
    to it.  Arguments and recorded metrics are exactly those of {!run}. *)

val run :
  ?snapshot:snapshot ->
  ?n_items:int ->
  ?period:float ->
  ?failed:Platform.proc list ->
  ?timed_failures:(Platform.proc * float) list ->
  Mapping.t ->
  result
(** [compile] then {!run_compiled}.  [snapshot] defaults to {!boot},
    [n_items] to 1, [period] to the mapping's achieved period (irrelevant
    when [n_items = 1]), [failed] to no failures.

    [timed_failures] crashes processors mid-stream (fail-stop): work or
    transfers that would complete strictly after the processor's crash
    instant are lost, in-flight messages from the crashed sender never
    arrive, and nothing starts on it afterwards; results produced up to the
    crash remain valid.  [failed] is shorthand for a crash at time 0.  A
    crash at or before the snapshot clock is fail-silent-from-the-start:
    the replicas on that processor are pruned statically.

    With [?snapshot] the run records [sim.epoch.resumes] (clock > 0) and a
    [sim.epoch.items] histogram sample; without it the recorded metrics
    are exactly the pre-epoch ones.
    @raise Invalid_argument if the mapping is incomplete, [n_items < 1],
    [period < 0], a failure time is negative, a processor appears twice in
    [timed_failures], or the snapshot clock is negative or not finite. *)

val latency : ?failed:Platform.proc list -> Mapping.t -> float option
(** Single-item latency: [run ~n_items:1] and the first {!result.item_latency}. *)

val latency_compiled :
  ?state:Run_state.t -> ?failed:Platform.proc list -> program -> float option
(** {!latency} against a compiled program — the crash-draw hot path.
    Skips the message log (this caller never reads it) and accepts an
    arena, so a sampling loop replays with zero per-draw slab
    allocation; the returned latency is identical to {!latency}'s. *)

val sojourns : result -> float list
(** The delivered items' sojourn latencies in item order — the sample
    the percentile summaries ({!Stats} in the experiment layer) are
    computed over.  Shed, stalled and defeated items are absent. *)

val sojourns_into : result -> float array -> int
(** Allocation-free {!sojourns}: write the delivered sojourns into a
    caller-owned buffer (at least [Array.length item_latency] long) and
    return how many were written — the prefix length the quantile
    helpers ([Stats.quantiles_slice]) consume.  A sweep allocates the
    buffer once and reuses it across runs.
    @raise Invalid_argument when the buffer is too short. *)

val sustained_throughput : result -> float option
(** [(n - 1) / (t_last - t_first)] over the items that completed, using
    exit-availability times ([arrival + sojourn]); [None] when fewer
    than two items completed.  Measures the throughput the pipeline
    actually sustains. *)
