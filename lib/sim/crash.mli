(** Crash experiments (§5): latency of a schedule when [c] processors fail.

    The paper evaluates each schedule by "computing the real execution time
    for a given schedule rather than just bounds", with the failing
    processors "chosen uniformly from the range [1, 20]".  This module draws
    failure sets with a caller-supplied random source and replays the
    schedule through {!Engine}. *)

type outcome = {
  failed : Platform.proc list;  (** the processors that were failed *)
  latency : float option;
      (** single-item real latency; [None] when the failure set defeats the
          schedule (more failures than it tolerates, or an invalid
          schedule) *)
  defeated : bool;
      (** [latency = None]: the draw defeated the schedule.  Exposed as a
          first-class flag so aggregations can count defeats instead of
          silently dropping them. *)
}

type stats = {
  mean : float option;
      (** mean latency over the surviving draws; [None] if every draw
          defeated the schedule *)
  draws : int;  (** total draws taken *)
  defeated_draws : int;  (** draws excluded from the mean *)
}

(** Exact (draw-free) counterpart of {!stats}, computed either by full
    enumeration of the failure sets or by the {!Reliability} calculus. *)
type exact = {
  p_defeat : float;  (** probability that the failure set defeats the schedule *)
  degraded_mean : float option;
      (** mean latency conditioned on survival; [None] when every failure
          set defeats the schedule *)
  evaluations : int;
      (** failure sets actually replayed ([0] on the purely analytic
          paths) *)
}

val defeat_rate : stats -> float
(** [defeated_draws / draws].

    NaN policy: with [draws = 0] there is no estimate, and this returns
    [nan] rather than [0.0] — a zero would silently read as "never
    defeated".  [nan] propagates through downstream means and plots as a
    gap instead of a lie; callers that need a total value must check
    [draws] first.  The all-defeated case is well-defined and returns
    [1.0] (with [stats.mean = None]). *)

val with_failures : Mapping.t -> failed:Platform.proc list -> outcome
(** Deterministic single run. *)

val with_failures_compiled :
  Engine.program -> failed:Platform.proc list -> outcome
(** {!with_failures} against a compiled program (compile once, replay per
    failure set). *)

val sample :
  rand_int:(int -> int) ->
  crashes:int ->
  Mapping.t ->
  outcome
(** Fail [crashes] distinct processors drawn uniformly with [rand_int]
    (where [rand_int n] returns a value in [0 .. n-1]) and replay.
    Records a [sim.crash.defeats] counter tick when the draw defeats the
    schedule.
    @raise Invalid_argument if [crashes] exceeds the processor count. *)

val sample_compiled :
  rand_int:(int -> int) ->
  crashes:int ->
  Engine.program ->
  outcome
(** {!sample} against a compiled program; consumes [rand_int] and records
    metrics exactly as {!sample}. *)

val mean_latency_stats :
  rand_int:(int -> int) ->
  crashes:int ->
  runs:int ->
  Mapping.t ->
  stats
(** {!sample} latency averaged over [runs] draws, with the defeated draws
    counted rather than silently excluded.  Compiles the mapping once and
    replays the program per draw.  [runs = 0] yields the empty statistic
    ([mean = None], [draws = 0] — and a [nan] {!defeat_rate}).
    @raise Invalid_argument if [runs < 0]. *)

val mean_latency_stats_compiled :
  rand_int:(int -> int) ->
  crashes:int ->
  runs:int ->
  Engine.program ->
  stats
(** {!mean_latency_stats} against an already-compiled program. *)

val mean_latency :
  rand_int:(int -> int) ->
  crashes:int ->
  runs:int ->
  Mapping.t ->
  float option
(** [(mean_latency_stats ...).mean] — kept for callers that only need the
    mean.  Draws that defeat the schedule are excluded (with
    [crashes <= ε] none should be). *)

(** {2 Exact evaluation}

    The same questions answered without sampling: the defeat probability
    from the {!Reliability} cut-set calculus, and — when the platform is
    small enough — the engine-exact mean over every failure set. *)

val exact_defeat_rate : crashes:int -> Mapping.t -> float
(** Exact probability that [crashes] uniformly chosen distinct dead
    processors defeat the schedule; the analytic value that
    [defeat_rate (mean_latency_stats ~runs ...)] estimates.  Consumes no
    randomness.
    @raise Invalid_argument if [crashes] is outside [0, m]. *)

val exact_defeat_rate_compiled : crashes:int -> Engine.program -> float
(** {!exact_defeat_rate} of the program's mapping. *)

val exact_latency_stats :
  ?max_evaluations:int -> crashes:int -> Mapping.t -> exact
(** Replay all [choose (m, crashes)] failure sets through the engine:
    exact defeat probability and exact mean degraded latency under the
    engine's own semantics.  Compiles once and replays per set.
    [max_evaluations] (default 1_000_000) bounds the enumeration.
    @raise Invalid_argument if [crashes] is outside [0, m] or the
    enumeration exceeds [max_evaluations]. *)

val exact_latency_stats_compiled :
  ?max_evaluations:int -> crashes:int -> Engine.program -> exact
(** {!exact_latency_stats} against an already-compiled program. *)
