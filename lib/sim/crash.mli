(** Crash experiments (§5): latency of a schedule when [c] processors fail.

    The paper evaluates each schedule by "computing the real execution time
    for a given schedule rather than just bounds", with the failing
    processors "chosen uniformly from the range [1, 20]".  This module draws
    failure sets with a caller-supplied random source and replays the
    schedule through {!Engine}. *)

type outcome = {
  failed : Platform.proc list;  (** the processors that were failed *)
  latency : float option;
      (** single-item real latency; [None] when the failure set defeats the
          schedule (more failures than it tolerates, or an invalid
          schedule) *)
  defeated : bool;
      (** [latency = None]: the draw defeated the schedule.  Exposed as a
          first-class flag so aggregations can count defeats instead of
          silently dropping them. *)
}

type stats = {
  mean : float option;
      (** mean latency over the surviving draws; [None] if every draw
          defeated the schedule *)
  draws : int;  (** total draws taken *)
  defeated_draws : int;  (** draws excluded from the mean *)
}

val defeat_rate : stats -> float
(** [defeated_draws / draws]; [nan] when no draw was taken. *)

val with_failures : Mapping.t -> failed:Platform.proc list -> outcome
(** Deterministic single run. *)

val with_failures_compiled :
  Engine.program -> failed:Platform.proc list -> outcome
(** {!with_failures} against a compiled program (compile once, replay per
    failure set). *)

val sample :
  rand_int:(int -> int) ->
  crashes:int ->
  Mapping.t ->
  outcome
(** Fail [crashes] distinct processors drawn uniformly with [rand_int]
    (where [rand_int n] returns a value in [0 .. n-1]) and replay.
    Records a [sim.crash.defeats] counter tick when the draw defeats the
    schedule.
    @raise Invalid_argument if [crashes] exceeds the processor count. *)

val sample_compiled :
  rand_int:(int -> int) ->
  crashes:int ->
  Engine.program ->
  outcome
(** {!sample} against a compiled program; consumes [rand_int] and records
    metrics exactly as {!sample}. *)

val mean_latency_stats :
  rand_int:(int -> int) ->
  crashes:int ->
  runs:int ->
  Mapping.t ->
  stats
(** {!sample} latency averaged over [runs] draws, with the defeated draws
    counted rather than silently excluded.  Compiles the mapping once and
    replays the program per draw. *)

val mean_latency_stats_compiled :
  rand_int:(int -> int) ->
  crashes:int ->
  runs:int ->
  Engine.program ->
  stats
(** {!mean_latency_stats} against an already-compiled program. *)

val mean_latency :
  rand_int:(int -> int) ->
  crashes:int ->
  runs:int ->
  Mapping.t ->
  float option
(** [(mean_latency_stats ...).mean] — kept for callers that only need the
    mean.  Draws that defeat the schedule are excluded (with
    [crashes <= ε] none should be). *)
