(** Crash experiments (§5): latency of a schedule when [c] processors fail.

    The paper evaluates each schedule by "computing the real execution time
    for a given schedule rather than just bounds", with the failing
    processors "chosen uniformly from the range [1, 20]".  This module
    replays failure scenarios through {!Engine} behind one entry point:
    {!estimate} evaluates a {!source} (a mapping, or a program already
    compiled) under a {!method_} — a fixed failure set, Monte-Carlo
    sampling, or exact enumeration.  (The pre-[estimate] per-shape
    functions lived one release as deprecated wrappers and are gone;
    the CI grep guard keeps them from coming back.) *)

type outcome = {
  failed : Platform.proc list;  (** the processors that were failed *)
  latency : float option;
      (** single-item real latency; [None] when the failure set defeats the
          schedule (more failures than it tolerates, or an invalid
          schedule) *)
  defeated : bool;
      (** [latency = None]: the draw defeated the schedule.  Exposed as a
          first-class flag so aggregations can count defeats instead of
          silently dropping them. *)
}

type stats = {
  mean : float option;
      (** mean latency over the surviving draws; [None] if every draw
          defeated the schedule *)
  draws : int;  (** total draws taken *)
  defeated_draws : int;  (** draws excluded from the mean *)
}

(** Exact (draw-free) counterpart of {!stats}, computed either by full
    enumeration of the failure sets or by the {!Reliability} calculus. *)
type exact = {
  p_defeat : float;  (** probability that the failure set defeats the schedule *)
  degraded_mean : float option;
      (** mean latency conditioned on survival; [None] when every failure
          set defeats the schedule *)
  evaluations : int;
      (** failure sets actually replayed ([0] on the purely analytic
          paths) *)
}

val defeat_rate : stats -> float
(** [defeated_draws / draws].

    NaN policy: with [draws = 0] there is no estimate, and this returns
    [nan] rather than [0.0] — a zero would silently read as "never
    defeated".  [nan] propagates through downstream means and plots as a
    gap instead of a lie; callers that need a total value must check
    [draws] first.  The all-defeated case is well-defined and returns
    [1.0] (with [stats.mean = None]). *)

(** {2 The one estimation entry point} *)

(** What to evaluate: a mapping (compiled internally, once) or a program
    the caller already compiled — the compile-once-replay-per-draw
    discipline made explicit instead of doubling every function into a
    [_compiled] sibling. *)
type source = Of_mapping of Mapping.t | Of_program of Engine.program

(** How to evaluate it. *)
type method_ =
  | Fixed of Platform.proc list
      (** one deterministic replay with exactly these processors failed *)
  | Sampled of { crashes : int; draws : int; rng : Rng.t }
      (** [draws] independent uniform draws of [crashes] distinct
          processors, replayed through the engine.  [rng] is consumed
          only to {!Rng.split} one child generator per draw, up front:
          draw [i] depends on the caller's seed and [i] alone (common
          random numbers), so growing [draws] extends the sequence
          without disturbing its prefix, and the draws parallelize.
          Each draw records the [sim.crash.draws] / [sim.crash.defeats]
          counters under a [sim.crash.sample] span, exactly like the
          deprecated [sample]. *)
  | Exact of { crashes : int; max_evaluations : int option }
      (** every one of the [choose (m, crashes)] failure sets replayed
          through the engine under a [sim.crash.exact] span;
          [max_evaluations] (default 1_000_000) bounds the enumeration *)

type estimate = {
  est_crashes : int;  (** failure-set cardinality of the method *)
  est_draws : int;
      (** random draws consumed: [Sampled] draws; [0] for [Fixed] /
          [Exact] (deterministic) *)
  est_evaluations : int;  (** engine replays performed *)
  est_defeated : int;  (** evaluations that defeated the schedule *)
  est_p_defeat : float;
      (** defeat probability: exact under [Exact], the Monte-Carlo
          estimate [est_defeated / est_draws] under [Sampled] (with the
          {!defeat_rate} NaN-on-zero-draws policy), and 0 or 1 under
          [Fixed] *)
  est_mean : float option;
      (** mean latency over the surviving evaluations; [None] when every
          evaluation was defeated (or none ran) *)
  est_failed : Platform.proc list;
      (** the failure set of the last evaluation — the [Fixed] set, the
          last [Sampled] draw, or [[]] under [Exact] (no single set) *)
}

val estimate :
  ?pool:Domain_pool.t ->
  ?jobs:int ->
  source:source ->
  method_:method_ ->
  unit ->
  estimate
(** Evaluate [source] under [method_].  [Of_mapping] compiles at most
    once — through the shared {!Program_cache}, so repeated estimates on
    the same mapping content skip even that; pass [Of_program] to hold
    the program yourself.

    [Sampled] draws run through one reusable {!Engine.Run_state} arena
    per worker (zero per-draw slab allocation) and fan out across
    domains: [?jobs] (default 1) spawns a {!Domain_pool} of that size
    for the call, [?pool] reuses a caller-owned pool instead (taking
    precedence over [jobs]).  The estimate is {e bit-identical} at every
    worker count: draws use per-draw child seeds and the partial sums
    merge in draw order, so parallelism changes wall-clock, never the
    result.  [Fixed] and [Exact] ignore [jobs] (a [Fixed] replay is one
    run; [Exact] enumerates sequentially through one arena).
    @raise Invalid_argument if the mapping is incomplete, [crashes] is
    outside [0, m], [draws < 0], or an [Exact] enumeration exceeds its
    [max_evaluations] budget. *)
