(** Bounded LRU caches of per-mapping compiled artifacts, shared by the
    crash estimator, the stage-latency model, the figure sweeps and the
    operations layer's epoch resume — so revisiting a mapping (recovery
    chains, repeated estimates, convergence sweeps) pays the compile
    once.

    Keys are {!digest}s of the mapping's {e content} — DAG weights and
    edges, platform speeds and bandwidths, replica placements and source
    sets — not physical identity.  Mappings are mutable; content keying
    makes the caches self-correcting: a mapping edited after a lookup
    digests differently next time and is recompiled.  (As everywhere
    else, a compiled artifact snapshots the mapping at compile time —
    mutating the mapping does not retroactively change programs already
    in hand.)

    Lookups are thread-safe (one mutex per cache, shared across domains;
    the per-domain [sim.cache.hits] / [sim.cache.misses] counters merge
    at {!Obs.publish} like every other counter) and additionally kept in
    per-cache {!Atomic} tallies readable without the observability layer
    enabled. *)

type 'v t

val create : capacity:int -> (Mapping.t -> 'v) -> 'v t
(** A cache holding at most [capacity] artifacts, building misses with
    the given function under the cache lock (concurrent misses on one
    mapping build once).  Past capacity the least-recently-used entry is
    evicted.
    @raise Invalid_argument when [capacity < 1]. *)

val digest : Mapping.t -> string
(** The content key: a 16-byte MD5 over the DAG (task weights, edges and
    volumes), the platform (per-processor speeds, pairwise bandwidths),
    the replication degree and the serialized placement ({!Mapping_io.print},
    which covers replica placements and source sets). *)

val find : 'v t -> Mapping.t -> 'v
(** The artifact for this mapping content — cached, or built and
    remembered.  Counts a hit or a miss (atomics + [sim.cache.*]). *)

val mem : 'v t -> Mapping.t -> bool
(** Whether the mapping's content is currently cached (no counters, no
    build — for tests and introspection). *)

val length : 'v t -> int
(** Entries currently held ([<= capacity]). *)

val capacity : 'v t -> int

val hits : 'v t -> int
(** Lifetime hit count of this cache (atomic; independent of
    {!Obs.enabled}). *)

val misses : 'v t -> int

val clear : 'v t -> unit
(** Drop every entry (counters keep their lifetime values). *)

(** {2 The shared instances} *)

val programs : Engine.program t
(** The global compiled-program cache (capacity 64), used by
    [Crash.estimate ~source:(Of_mapping m)], the traffic sweeps and the
    operations layer's per-epoch programs. *)

val program : Mapping.t -> Engine.program
(** [find programs m]. *)

(** The stage-latency plan counterpart ([Stage_latency.cached_plan])
    lives in [Stage_latency] — [Stage_latency] depends on [Crash], which
    depends on this module, so hosting the plan cache here would close a
    module cycle. *)
