(* Structure-of-arrays binary heap ordered by (key, insertion sequence
   number).  Keys live in a [float array] so they are stored unboxed and
   [add]/[unsafe_pop] allocate nothing per element — the engine's event
   loop runs allocation-free over this heap. *)

type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; len = 0; next_seq = 0 }
let is_empty h = h.len = 0
let size h = h.len

(* Resetting [next_seq] is load-bearing: equal-key ties are served in
   insertion order, so a reused heap must renumber from 0 to replay the
   exact event order a fresh heap would. *)
let clear h =
  h.len <- 0;
  h.next_seq <- 0

let less h i j =
  h.keys.(i) < h.keys.(j) || (h.keys.(i) = h.keys.(j) && h.seqs.(i) < h.seqs.(j))

let swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let s = h.seqs.(i) in
  h.seqs.(i) <- h.seqs.(j);
  h.seqs.(j) <- s;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

(* The value array is filled with the element being inserted — the heap
   is polymorphic and has no other witness of ['a]. *)
let grow h value =
  let cap = max 16 (2 * Array.length h.keys) in
  let keys = Array.make cap 0.0 in
  let seqs = Array.make cap 0 in
  let vals = Array.make cap value in
  Array.blit h.keys 0 keys 0 h.len;
  Array.blit h.seqs 0 seqs 0 h.len;
  Array.blit h.vals 0 vals 0 h.len;
  h.keys <- keys;
  h.seqs <- seqs;
  h.vals <- vals

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less h l !smallest then smallest := l;
  if r < h.len && less h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h key value =
  if h.len = Array.length h.keys then grow h value;
  let i = h.len in
  h.keys.(i) <- key;
  h.seqs.(i) <- h.next_seq;
  h.vals.(i) <- value;
  h.next_seq <- h.next_seq + 1;
  h.len <- i + 1;
  sift_up h i

(* The key arrives through a caller-owned one-slot float array instead
   of a [float] parameter: without flambda a float argument is boxed at
   every call, while the slot is just a pointer and its read below is an
   unboxed load.  This is the engine's zero-allocation scheduling path;
   the body must not delegate to [add] (the inner call would box). *)
let add_unboxed h slot value =
  if h.len = Array.length h.keys then grow h value;
  let i = h.len in
  h.keys.(i) <- slot.(0);
  h.seqs.(i) <- h.next_seq;
  h.vals.(i) <- value;
  h.next_seq <- h.next_seq + 1;
  h.len <- i + 1;
  sift_up h i

let remove_min h =
  let last = h.len - 1 in
  h.len <- last;
  if last > 0 then begin
    h.keys.(0) <- h.keys.(last);
    h.seqs.(0) <- h.seqs.(last);
    h.vals.(0) <- h.vals.(last);
    sift_down h 0
  end

let unsafe_pop h =
  let v = h.vals.(0) in
  remove_min h;
  v

let pop_min h =
  if h.len = 0 then None
  else begin
    let key = h.keys.(0) in
    Some (key, unsafe_pop h)
  end

let min_key h = if h.len = 0 then None else Some h.keys.(0)
