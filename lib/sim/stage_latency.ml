(* The stage model compiled into dense arrays: per replica (dense id
   rid = task * copies + copy) its processor, and its source sets as CSR
   over (source rid, hop cost eta).  Built once per mapping, replayed per
   failure draw — the per-draw work is a single topological sweep over
   int arrays. *)
type plan = {
  l_tasks : int;
  l_copies : int;
  l_rids : int;
  l_procs : int;
  l_topo : int array;
  l_placed : bool array;  (* per rid: the mapping has this replica *)
  l_proc : int array;  (* per rid *)
  l_grp_off : int array;  (* rid -> groups, length l_rids + 1 *)
  l_src_off : int array;  (* group -> sources, length n_groups + 1 *)
  l_src : int array;  (* source rid *)
  l_eta : int array;  (* 0 when co-located with the consumer, else 1 *)
  l_exits : int array;
}

let compile m =
  let dag = Mapping.dag m in
  let copies = Mapping.n_copies m in
  let n_tasks = Dag.size dag in
  let n_rids = n_tasks * copies in
  let placed = Array.make n_rids false in
  let proc_of = Array.make n_rids (-1) in
  for task = 0 to n_tasks - 1 do
    for copy = 0 to copies - 1 do
      match Mapping.replica m task copy with
      | None -> ()
      | Some r ->
          placed.((task * copies) + copy) <- true;
          proc_of.((task * copies) + copy) <- r.Replica.proc
    done
  done;
  let grp_off = Array.make (n_rids + 1) 0 in
  for task = 0 to n_tasks - 1 do
    for copy = 0 to copies - 1 do
      let rid = (task * copies) + copy in
      let n =
        match Mapping.replica m task copy with
        | None -> 0
        | Some r -> List.length r.Replica.sources
      in
      grp_off.(rid + 1) <- grp_off.(rid) + n
    done
  done;
  let n_groups = grp_off.(n_rids) in
  let src_off = Array.make (n_groups + 1) 0 in
  let src_lists = Array.make (max 1 n_groups) [] in
  let g = ref 0 in
  for task = 0 to n_tasks - 1 do
    for copy = 0 to copies - 1 do
      match Mapping.replica m task copy with
      | None -> ()
      | Some r ->
          List.iter
            (fun (_, ids) ->
              src_off.(!g + 1) <- src_off.(!g) + List.length ids;
              src_lists.(!g) <- ids;
              incr g)
            r.Replica.sources
    done
  done;
  let n_srcs = src_off.(n_groups) in
  let src = Array.make (max 1 n_srcs) 0 in
  let eta = Array.make (max 1 n_srcs) 0 in
  let gi = ref 0 in
  for task = 0 to n_tasks - 1 do
    for copy = 0 to copies - 1 do
      match Mapping.replica m task copy with
      | None -> ()
      | Some r ->
          List.iter
            (fun (_, ids) ->
              List.iteri
                (fun i (s : Replica.id) ->
                  let srid = (s.task * copies) + s.copy in
                  src.(src_off.(!gi) + i) <- srid;
                  eta.(src_off.(!gi) + i) <-
                    (if proc_of.(srid) = r.Replica.proc then 0 else 1))
                ids;
              incr gi)
            r.Replica.sources
    done
  done;
  {
    l_tasks = n_tasks;
    l_copies = copies;
    l_rids = n_rids;
    l_procs = Platform.size (Mapping.platform m);
    l_topo = Topo.order dag;
    l_placed = placed;
    l_proc = proc_of;
    l_grp_off = grp_off;
    l_src_off = src_off;
    l_src = src;
    l_eta = eta;
    l_exits = Array.of_list (Dag.exits dag);
  }

let depth_of_plan ?(failed = []) pl =
  let copies = pl.l_copies in
  let dead_proc = Array.make pl.l_procs false in
  List.iter (fun p -> dead_proc.(p) <- true) failed;
  (* stage 0 = dead; alive replicas have stage >= 1 *)
  let stage = Array.make pl.l_rids 0 in
  Array.iter
    (fun task ->
      for copy = 0 to copies - 1 do
        let rid = (task * copies) + copy in
        if pl.l_placed.(rid) && not dead_proc.(pl.l_proc.(rid)) then begin
          (* Per predecessor, the best alive source; the replica is dead
             if some predecessor has none. *)
          let acc = ref 1 and starved = ref false in
          let g = ref pl.l_grp_off.(rid) in
          let g_end = pl.l_grp_off.(rid + 1) in
          while (not !starved) && !g < g_end do
            let best = ref max_int in
            for k = pl.l_src_off.(!g) to pl.l_src_off.(!g + 1) - 1 do
              let s = stage.(pl.l_src.(k)) in
              if s > 0 && s + pl.l_eta.(k) < !best then best := s + pl.l_eta.(k)
            done;
            if !best = max_int then starved := true
            else if !best > !acc then acc := !best;
            incr g
          done;
          if not !starved then stage.(rid) <- !acc
        end
      done)
    pl.l_topo;
  let rec max_over_exits acc i =
    if i >= Array.length pl.l_exits then Some acc
    else begin
      let exit_task = pl.l_exits.(i) in
      let best = ref max_int in
      for copy = 0 to copies - 1 do
        let s = stage.((exit_task * copies) + copy) in
        if s > 0 && s < !best then best := s
      done;
      if !best = max_int then None
      else max_over_exits (max acc !best) (i + 1)
    end
  in
  max_over_exits 0 0

let effective_depth ?failed m = depth_of_plan ?failed (compile m)

let latency_of_plan ?failed pl ~throughput =
  Option.map
    (fun depth -> float_of_int ((2 * depth) - 1) /. throughput)
    (depth_of_plan ?failed pl)

let latency ?failed m ~throughput = latency_of_plan ?failed (compile m) ~throughput

let mean_crash_latency_stats_of_plan ~rand_int ~crashes ~runs ~throughput pl =
  let n_procs = pl.l_procs in
  if crashes > n_procs then
    invalid_arg "Stage_latency.mean_crash_latency: more crashes than processors";
  if runs < 0 then
    invalid_arg "Stage_latency.mean_crash_latency: negative run count";
  let draw () =
    let rec pick chosen remaining =
      if remaining = 0 then chosen
      else begin
        let candidate = rand_int n_procs in
        if List.mem candidate chosen then pick chosen remaining
        else pick (candidate :: chosen) (remaining - 1)
      end
    in
    pick [] crashes
  in
  let rec loop i total count defeated =
    if i >= runs then
      {
        Crash.mean =
          (if count = 0 then None else Some (total /. float_of_int count));
        draws = runs;
        defeated_draws = defeated;
      }
    else begin
      match latency_of_plan ~failed:(draw ()) pl ~throughput with
      | Some l -> loop (i + 1) (total +. l) (count + 1) defeated
      | None -> loop (i + 1) total count (defeated + 1)
    end
  in
  loop 0 0.0 0 0

(* Compile once per mapping; every draw then replays the plan. *)
let mean_crash_latency_stats ~rand_int ~crashes ~runs ~throughput m =
  mean_crash_latency_stats_of_plan ~rand_int ~crashes ~runs ~throughput
    (compile m)

let mean_crash_latency ~rand_int ~crashes ~runs ~throughput m =
  (mean_crash_latency_stats ~rand_int ~crashes ~runs ~throughput m).Crash.mean

(* Fully analytic: the cut-set calculus answers both the defeat
   probability and the conditional mean of (2 S_eff - 1)/T, with the cut
   horizon pinned to the crash count so families stay small. *)
let exact_crash_latency_stats ~crashes ~throughput m =
  let n_procs = Platform.size (Mapping.platform m) in
  if crashes < 0 || crashes > n_procs then
    invalid_arg "Stage_latency.exact_crash_latency_stats: crashes outside [0, m]";
  let t = Reliability.analyze ~max_cut_card:crashes m in
  let model = Reliability.Uniform_crashes crashes in
  {
    Crash.p_defeat = Reliability.defeat_probability t model;
    degraded_mean = Reliability.expected_latency t ~throughput model;
    evaluations = 0;
  }

(* The shared plan cache.  Hosted here rather than in [Program_cache]
   because this module depends on [Crash] (for the stats record types),
   which depends on [Program_cache] — the cache instance living there
   would close a module cycle. *)
let plans : plan Program_cache.t = Program_cache.create ~capacity:64 compile
let cached_plan m = Program_cache.find plans m
