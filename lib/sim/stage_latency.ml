let effective_depth ?(failed = []) m =
  let dag = Mapping.dag m in
  let copies = Mapping.n_copies m in
  let n_procs = Platform.size (Mapping.platform m) in
  let dead_proc = Array.make n_procs false in
  List.iter (fun p -> dead_proc.(p) <- true) failed;
  (* stage 0 = dead; alive replicas have stage >= 1 *)
  let stage = Array.init (Dag.size dag) (fun _ -> Array.make copies 0) in
  Array.iter
    (fun task ->
      for copy = 0 to copies - 1 do
        match Mapping.replica m task copy with
        | None -> ()
        | Some r ->
            if not dead_proc.(r.Replica.proc) then begin
              (* Per predecessor, the best alive source; the replica is
                 dead if some predecessor has none. *)
              let rec over_preds acc = function
                | [] -> acc
                | (_, ids) :: rest -> (
                    let best =
                      List.fold_left
                        (fun best (src : Replica.id) ->
                          let s = stage.(src.task).(src.copy) in
                          if s = 0 then best
                          else begin
                            let src_proc =
                              (Mapping.replica_exn m src.task src.copy)
                                .Replica.proc
                            in
                            let eta = if src_proc = r.Replica.proc then 0 else 1 in
                            match best with
                            | Some b -> Some (min b (s + eta))
                            | None -> Some (s + eta)
                          end)
                        None ids
                    in
                    match best with
                    | None -> None (* starved *)
                    | Some b -> over_preds (Option.map (max b) acc) rest)
              in
              match over_preds (Some 1) r.Replica.sources with
              | Some s -> stage.(task).(copy) <- s
              | None -> ()
            end
      done)
    (Topo.order dag);
  let exits = Dag.exits dag in
  let rec max_over_exits acc = function
    | [] -> Some acc
    | exit_task :: rest -> (
        let alive_stages =
          Array.to_list stage.(exit_task) |> List.filter (fun s -> s > 0)
        in
        match alive_stages with
        | [] -> None
        | stages -> max_over_exits (max acc (List.fold_left min max_int stages)) rest)
  in
  max_over_exits 0 exits

let latency ?failed m ~throughput =
  Option.map
    (fun depth -> float_of_int ((2 * depth) - 1) /. throughput)
    (effective_depth ?failed m)

let mean_crash_latency_stats ~rand_int ~crashes ~runs ~throughput m =
  let n_procs = Platform.size (Mapping.platform m) in
  if crashes > n_procs then
    invalid_arg "Stage_latency.mean_crash_latency: more crashes than processors";
  let draw () =
    let rec pick chosen remaining =
      if remaining = 0 then chosen
      else begin
        let candidate = rand_int n_procs in
        if List.mem candidate chosen then pick chosen remaining
        else pick (candidate :: chosen) (remaining - 1)
      end
    in
    pick [] crashes
  in
  let rec loop i total count defeated =
    if i >= runs then
      {
        Crash.mean =
          (if count = 0 then None else Some (total /. float_of_int count));
        draws = runs;
        defeated_draws = defeated;
      }
    else begin
      match latency ~failed:(draw ()) m ~throughput with
      | Some l -> loop (i + 1) (total +. l) (count + 1) defeated
      | None -> loop (i + 1) total count (defeated + 1)
    end
  in
  loop 0 0.0 0 0

let mean_crash_latency ~rand_int ~crashes ~runs ~throughput m =
  (mean_crash_latency_stats ~rand_int ~crashes ~runs ~throughput m).Crash.mean
