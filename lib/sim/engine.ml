type snapshot = { clock : float; down : Platform.proc list }

let boot = { clock = 0.0; down = [] }

type instance = { item : int; rep : Replica.id }

type message = {
  msg_src : instance;
  msg_dst : instance;
  msg_start : float;
  msg_finish : float;
}

type result = {
  start_time : int -> Replica.id -> float option;
  finish_time : int -> Replica.id -> float option;
  item_latency : float option array;
  period : float;
  makespan : float;
  messages : message list;
}

(* A transfer waiting for its data and for both ports. *)
type pending_msg = {
  p_src : instance;
  p_dst : instance;
  p_dur : float;
  p_ready : float;
  p_dst_alive : bool; (* does the destination replica actually run? *)
}

type event =
  | Inject of instance           (* an entry instance becomes ready *)
  | Finish of instance
  | Arrival of pending_msg * float (* commit-time start *)
  | Port_free
      (* wake-up when a crash-lost transfer releases its ports: the
         transfer never arrives, but other pending messages must get a
         chance to claim the port *)

let replica_dead m ~failed_procs =
  let dag = Mapping.dag m in
  let copies = Mapping.n_copies m in
  let dead = Array.init (Dag.size dag) (fun _ -> Array.make copies true) in
  Array.iter
    (fun task ->
      for copy = 0 to copies - 1 do
        match Mapping.replica m task copy with
        | None -> ()
        | Some r ->
            if not failed_procs.(r.Replica.proc) then begin
              let starved =
                List.exists
                  (fun (_, ids) ->
                    List.for_all
                      (fun (src : Replica.id) -> dead.(src.task).(src.copy))
                      ids)
                  r.Replica.sources
              in
              dead.(task).(copy) <- starved
            end
      done)
    (Topo.order dag);
  dead

(* Consumers of every replica: dst replica and edge volume, precomputed in
   one pass over the source sets. *)
let consumer_table m =
  let dag = Mapping.dag m in
  let copies = Mapping.n_copies m in
  let table = Array.init (Dag.size dag) (fun _ -> Array.make copies []) in
  Mapping.iter m (fun (r : Replica.t) ->
      List.iter
        (fun (pred, ids) ->
          let vol = Dag.volume dag pred r.id.task in
          List.iter
            (fun (src : Replica.id) ->
              table.(src.task).(src.copy) <-
                (r.id, vol) :: table.(src.task).(src.copy))
            ids)
        r.sources);
  Array.map (Array.map List.rev) table

let run_impl ~snapshot ~n_items ~period ~failed ~timed_failures m =
  if not (Mapping.is_complete m) then invalid_arg "Engine.run: incomplete mapping";
  if n_items < 1 then invalid_arg "Engine.run: n_items < 1";
  let clock = snapshot.clock in
  if clock < 0.0 || not (Float.is_finite clock) then
    invalid_arg "Engine.run: snapshot clock must be finite and non-negative";
  let dag = Mapping.dag m and plat = Mapping.platform m in
  let copies = Mapping.n_copies m in
  let n_tasks = Dag.size dag and n_procs = Platform.size plat in
  let period =
    match period with
    | Some p -> if p < 0.0 then invalid_arg "Engine.run: negative period" else p
    | None -> Metrics.period m
  in
  (* fail_time.(p) is when the processor crashes (fail-stop): work and
     transfers completing strictly later are lost.  A crash at or before
     the snapshot clock is the paper's fail-silent-from-the-start case and
     also prunes replicas statically (they can never produce anything). *)
  let fail_time = Array.make n_procs infinity in
  List.iter (fun p -> fail_time.(p) <- 0.0) (failed @ snapshot.down);
  let seen_timed = Array.make n_procs false in
  List.iter
    (fun (p, t) ->
      if t < 0.0 then invalid_arg "Engine.run: negative failure time";
      if seen_timed.(p) then
        invalid_arg "Engine.run: duplicate processor in timed_failures";
      seen_timed.(p) <- true;
      fail_time.(p) <- Float.min fail_time.(p) t)
    timed_failures;
  let failed_procs =
    Array.map (fun t -> t <= clock) (Array.init n_procs (fun p -> fail_time.(p)))
  in
  let dead = replica_dead m ~failed_procs in
  let consumers = consumer_table m in
  (* Task priority: bottom level on platform-averaged weights. *)
  let priority =
    let weights =
      {
        Levels.node = (fun t -> Dag.exec dag t *. Platform.mean_inverse_speed plat);
        Levels.edge = (fun _ _ vol -> vol *. Platform.mean_unit_delay plat);
      }
    in
    Levels.bottom dag weights
  in
  let proc_of = Array.init n_tasks (fun task ->
      Array.init copies (fun copy ->
          match Mapping.replica m task copy with
          | Some r -> r.Replica.proc
          | None -> -1))
  in
  (* Per-instance state, indexed [item][task][copy]. *)
  let idx item task copy = (((item * n_tasks) + task) * copies) + copy in
  let total = n_items * n_tasks * copies in
  let starts = Array.make total nan and finishes = Array.make total nan in
  let unsatisfied = Array.make total 0 in
  (* Which predecessor positions are already satisfied. *)
  let pred_index = Array.init n_tasks (fun task ->
      List.mapi (fun i (p, _) -> (p, i)) (Dag.preds dag task))
  in
  let sat = Array.make total [||] in
  (* Alive source counts per pred drive enabling. *)
  let alive t c = not dead.(t).(c) in
  for item = 0 to n_items - 1 do
    for task = 0 to n_tasks - 1 do
      for copy = 0 to copies - 1 do
        if alive task copy then begin
          let n_preds = List.length (Dag.preds dag task) in
          unsatisfied.(idx item task copy) <- n_preds;
          sat.(idx item task copy) <- Array.make n_preds false
        end
      done
    done
  done;
  (* Processor and port state. *)
  let busy_until = Array.make n_procs 0.0 in
  let running = Array.make n_procs false in
  let send_free = Array.make n_procs 0.0 and recv_free = Array.make n_procs 0.0 in
  let ready : instance list array = Array.make n_procs [] in
  let pending : pending_msg list ref = ref [] in
  let events : event Event_heap.t = Event_heap.create () in
  let observe_heap () =
    if Obs.enabled () then
      Obs.observe "sim.heap_size" (float_of_int (Event_heap.size events))
  in
  let log = ref [] in
  let makespan = ref clock in
  let enqueue_ready inst =
    let p = proc_of.(inst.rep.Replica.task).(inst.rep.Replica.copy) in
    ready.(p) <- inst :: ready.(p)
  in
  let satisfy inst pred time =
    let i = idx inst.item inst.rep.Replica.task inst.rep.Replica.copy in
    let pos = List.assoc pred pred_index.(inst.rep.Replica.task) in
    if not sat.(i).(pos) then begin
      sat.(i).(pos) <- true;
      unsatisfied.(i) <- unsatisfied.(i) - 1;
      if unsatisfied.(i) = 0 then enqueue_ready inst
    end;
    ignore time
  in
  (* Start the best ready instance on every idle processor. *)
  let better (a : instance) b =
    let pa = priority.(a.rep.Replica.task) and pb = priority.(b.rep.Replica.task) in
    if a.item <> b.item then a.item < b.item
    else if pa <> pb then pa > pb
    else Replica.compare_id a.rep b.rep < 0
  in
  let dispatch_procs now =
    for p = 0 to n_procs - 1 do
      if (not running.(p)) && busy_until.(p) <= now && ready.(p) <> []
         && now < fail_time.(p)
      then begin
        let best =
          List.fold_left
            (fun acc inst ->
              match acc with
              | Some b when better b inst -> acc
              | _ -> Some inst)
            None ready.(p)
        in
        match best with
        | None -> ()
        | Some inst ->
            ready.(p) <- List.filter (fun i -> i <> inst) ready.(p);
            let work = Dag.exec dag inst.rep.Replica.task in
            let dur = Platform.exec_time plat p work in
            let i = idx inst.item inst.rep.Replica.task inst.rep.Replica.copy in
            starts.(i) <- now;
            running.(p) <- true;
            busy_until.(p) <- now +. dur;
            if now +. dur <= fail_time.(p) then begin
              Event_heap.add events (now +. dur) (Finish inst);
              observe_heap ()
            end
            (* else: the crash interrupts this execution; the processor
               never frees and the result is lost *)
      end
    done
  in
  (* Greedily commit every transfer whose data and both ports are free. *)
  let rec dispatch_msgs now =
    let eligible msg =
      let sp = proc_of.(msg.p_src.rep.Replica.task).(msg.p_src.rep.Replica.copy) in
      msg.p_ready <= now
      && now < fail_time.(sp)
      && send_free.(sp) <= now
      && (fail_time.(proc_of.(msg.p_dst.rep.Replica.task).(msg.p_dst.rep.Replica.copy))
          <= now
          || recv_free.(proc_of.(msg.p_dst.rep.Replica.task).(msg.p_dst.rep.Replica.copy))
             <= now)
    in
    let best =
      List.fold_left
        (fun acc msg ->
          if not (eligible msg) then acc
          else
            match acc with
            | Some b
              when priority.(b.p_dst.rep.Replica.task)
                   > priority.(msg.p_dst.rep.Replica.task)
                   || (priority.(b.p_dst.rep.Replica.task)
                       = priority.(msg.p_dst.rep.Replica.task)
                      && compare
                           (b.p_dst.item, b.p_dst.rep)
                           (msg.p_dst.item, msg.p_dst.rep)
                         <= 0) ->
                acc
            | _ -> Some msg)
        None !pending
    in
    match best with
    | None -> ()
    | Some msg ->
        pending := List.filter (fun m' -> m' != msg) !pending;
        let sp = proc_of.(msg.p_src.rep.Replica.task).(msg.p_src.rep.Replica.copy) in
        let dp = proc_of.(msg.p_dst.rep.Replica.task).(msg.p_dst.rep.Replica.copy) in
        send_free.(sp) <- now +. msg.p_dur;
        if fail_time.(dp) > now then recv_free.(dp) <- now +. msg.p_dur;
        if now +. msg.p_dur <= fail_time.(sp) && now +. msg.p_dur <= fail_time.(dp)
        then Event_heap.add events (now +. msg.p_dur) (Arrival (msg, now))
        else
          (* the crash loses the transfer in flight, but the ports still
             free up and waiting messages must be woken *)
          Event_heap.add events (now +. msg.p_dur) Port_free;
        observe_heap ();
        dispatch_msgs now
  in
  (* Seed: entry instances of every item at their injection times. *)
  for item = 0 to n_items - 1 do
    List.iter
      (fun task ->
        for copy = 0 to copies - 1 do
          if alive task copy then begin
            Event_heap.add events
              (clock +. (float_of_int item *. period))
              (Inject { item; rep = { Replica.task; copy } });
            observe_heap ()
          end
        done)
      (Dag.entries dag)
  done;
  let handle now = function
    | Inject inst -> enqueue_ready inst
    | Finish inst ->
        let task = inst.rep.Replica.task and copy = inst.rep.Replica.copy in
        let p = proc_of.(task).(copy) in
        finishes.(idx inst.item task copy) <- now;
        running.(p) <- false;
        makespan := Float.max !makespan now;
        List.iter
          (fun ((dst : Replica.id), vol) ->
            let dst_proc = proc_of.(dst.task).(dst.copy) in
            let dst_alive = alive dst.task dst.copy in
            let dst_inst = { item = inst.item; rep = dst } in
            if dst_proc = p then begin
              if dst_alive then satisfy dst_inst task now
            end
            else begin
              let dur = Platform.comm_time plat p dst_proc vol in
              pending :=
                {
                  p_src = inst;
                  p_dst = dst_inst;
                  p_dur = dur;
                  p_ready = now;
                  p_dst_alive = dst_alive;
                }
                :: !pending
            end)
          consumers.(task).(copy)
    | Arrival (msg, started) ->
        makespan := Float.max !makespan now;
        log :=
          {
            msg_src = msg.p_src;
            msg_dst = msg.p_dst;
            msg_start = started;
            msg_finish = now;
          }
          :: !log;
        if msg.p_dst_alive then
          satisfy msg.p_dst msg.p_src.rep.Replica.task now
    | Port_free -> makespan := Float.max !makespan now
  in
  let rec loop () =
    match Event_heap.pop_min events with
    | None -> ()
    | Some (now, ev) ->
        Obs.incr "sim.events_popped";
        handle now ev;
        (* Drain simultaneous events before dispatching decisions. *)
        let rec drain () =
          match Event_heap.min_key events with
          | Some k when k <= now ->
              (match Event_heap.pop_min events with
              | Some (_, ev') ->
                  Obs.incr "sim.events_popped";
                  handle now ev'
              | None -> ());
              drain ()
          | _ -> ()
        in
        drain ();
        dispatch_msgs now;
        dispatch_procs now;
        loop ()
  in
  loop ();
  let get arr item (id : Replica.id) =
    if dead.(id.task).(id.copy) then None
    else begin
      let v = arr.(idx item id.task id.copy) in
      if Float.is_nan v then None else Some v
    end
  in
  let item_latency =
    Array.init n_items (fun item ->
        let injection = clock +. (float_of_int item *. period) in
        List.fold_left
          (fun acc exit_task ->
            match acc with
            | None -> None
            | Some worst ->
                let best_finish =
                  let rec scan copy best =
                    if copy >= copies then best
                    else begin
                      let best =
                        match get finishes item { Replica.task = exit_task; copy } with
                        | Some f -> (
                            match best with
                            | Some b -> Some (Float.min b f)
                            | None -> Some f)
                        | None -> best
                      in
                      scan (copy + 1) best
                    end
                  in
                  scan 0 None
                in
                (match best_finish with
                | None -> None
                | Some f -> Some (Float.max worst (f -. injection))))
          (Some 0.0) (Dag.exits dag))
  in
  {
    start_time = get starts;
    finish_time = get finishes;
    item_latency;
    period;
    makespan = !makespan;
    messages = List.rev !log;
  }

let run ?snapshot ?(n_items = 1) ?period ?(failed = []) ?(timed_failures = []) m
    =
  Obs.with_span "sim.engine.run" (fun () ->
      Obs.incr "sim.runs";
      Obs.touch "sim.events_popped";
      Obs.incr
        ~by:(List.length failed + List.length timed_failures)
        "sim.failures_injected";
      (match snapshot with
      | None -> ()
      | Some s ->
          (* Epoch bookkeeping: a run that picks the stream up from a
             surviving-state snapshot rather than time 0 is a resume. *)
          Obs.touch "sim.epoch.resumes";
          if s.clock > 0.0 then Obs.incr "sim.epoch.resumes";
          Obs.observe "sim.epoch.items" (float_of_int n_items));
      let snapshot = Option.value snapshot ~default:boot in
      run_impl ~snapshot ~n_items ~period ~failed ~timed_failures m)

let latency ?failed m =
  let r = run ?failed ~n_items:1 m in
  r.item_latency.(0)

let sustained_throughput r =
  (* Absolute exit-availability instants of the items that completed. *)
  let completions =
    Array.to_list r.item_latency
    |> List.mapi (fun item l ->
           Option.map (fun lat -> (float_of_int item *. r.period) +. lat) l)
    |> List.filter_map Fun.id
  in
  match completions with
  | [] | [ _ ] -> None
  | first :: _ ->
      let last = List.fold_left Float.max first completions in
      if last <= first then None
      else Some (float_of_int (List.length completions - 1) /. (last -. first))
