type snapshot = { clock : float; down : Platform.proc list }

let boot = { clock = 0.0; down = [] }

type instance = { item : int; rep : Replica.id }

type message = {
  msg_src : instance;
  msg_dst : instance;
  msg_start : float;
  msg_finish : float;
}

(* What the fault machinery did during one run; [no_faults] when the
   scenario was Faults.none (the fast path records nothing). *)
type fault_stats = {
  retries : int;
  backoff_time : float;
  exec_faults : int;
  comm_faults : int;
  exhausted : int;
  exhausted_on : int array;
  slowed_attempts : int;
  degraded_transfers : int;
}

let no_faults =
  {
    retries = 0;
    backoff_time = 0.0;
    exec_faults = 0;
    comm_faults = 0;
    exhausted = 0;
    exhausted_on = [||];
    slowed_attempts = 0;
    degraded_transfers = 0;
  }

type result = {
  start_time : int -> Replica.id -> float option;
  finish_time : int -> Replica.id -> float option;
  item_latency : float option array;
  period : float;
  makespan : float;
  messages : message list;
  arrivals : float array;
  injections : float array;
  dropped : int;
  stalled : int;
  peak_queue : int;
  stall_time : float;
  faults : fault_stats;
}

(* ------------------------------------------------------------------ *)
(* Compiled programs                                                    *)
(* ------------------------------------------------------------------ *)

(* A program is the mapping + DAG flattened into dense int-indexed
   tables, built once and reused across runs (crash draws, resumed
   epochs).  Replicas get a dense id [rid = task * copies + copy]; an
   instance is the flat index [iidx = item * n_rids + rid], whose integer
   order is exactly the lexicographic ((item, task, copy)) order the
   legacy engine used for tie-breaks.  Everything in the record is
   immutable after [compile], so a program can be shared freely; per-run
   state lives entirely inside [simulate]. *)
type program = {
  p_mapping : Mapping.t;
  p_tasks : int;
  p_copies : int;
  p_rids : int;  (* p_tasks * p_copies *)
  p_procs : int;
  p_topo : int array;  (* task order for the liveness sweep *)
  p_prio : float array;  (* per task: bottom level on averaged weights *)
  p_pred_count : int array;  (* per task *)
  p_pred_off : int array;  (* per rid: offset into the per-item sat slab *)
  p_total_preds : int;  (* slab stride: sum of pred counts over all rids *)
  p_proc : int array;  (* per rid *)
  p_exec_dur : float array;  (* per rid: execution time on its processor *)
  (* Source sets as CSR: rid -> groups (one per predecessor task) ->
     source rids.  Drives the per-run liveness (starvation) sweep. *)
  p_grp_off : int array;  (* length p_rids + 1 *)
  p_grp_src_off : int array;  (* length n_groups + 1 *)
  p_grp_src : int array;
  (* Consumers as CSR: rid -> (dst rid, transfer duration, position of
     the finishing task among the destination's predecessors). *)
  p_cons_off : int array;  (* length p_rids + 1 *)
  p_cons_dst : int array;
  p_cons_dur : float array;
  p_cons_pos : int array;
  p_entries : int array;
  p_exits : int array;
  p_period : float;  (* the mapping's achieved period (default period) *)
}

let program_mapping p = p.p_mapping
let program_period p = p.p_period

let compile m =
  if not (Mapping.is_complete m) then
    invalid_arg "Engine.compile: incomplete mapping";
  Obs.incr "sim.compiles";
  let dag = Mapping.dag m and plat = Mapping.platform m in
  let copies = Mapping.n_copies m in
  let n_tasks = Dag.size dag and n_procs = Platform.size plat in
  let n_rids = n_tasks * copies in
  let prio =
    let weights =
      {
        Levels.node = (fun t -> Dag.exec dag t *. Platform.mean_inverse_speed plat);
        Levels.edge = (fun _ _ vol -> vol *. Platform.mean_unit_delay plat);
      }
    in
    Levels.bottom dag weights
  in
  let pred_count = Array.init n_tasks (fun t -> List.length (Dag.preds dag t)) in
  let pred_off = Array.make (n_rids + 1) 0 in
  for rid = 0 to n_rids - 1 do
    pred_off.(rid + 1) <- pred_off.(rid) + pred_count.(rid / copies)
  done;
  let proc_of = Array.make n_rids (-1) in
  let exec_dur = Array.make n_rids 0.0 in
  for task = 0 to n_tasks - 1 do
    for copy = 0 to copies - 1 do
      match Mapping.replica m task copy with
      | None -> ()
      | Some r ->
          let rid = (task * copies) + copy in
          proc_of.(rid) <- r.Replica.proc;
          exec_dur.(rid) <- Platform.exec_time plat r.Replica.proc (Dag.exec dag task)
    done
  done;
  (* Source groups. *)
  let grp_off = Array.make (n_rids + 1) 0 in
  for task = 0 to n_tasks - 1 do
    for copy = 0 to copies - 1 do
      let rid = (task * copies) + copy in
      let n =
        match Mapping.replica m task copy with
        | None -> 0
        | Some r -> List.length r.Replica.sources
      in
      grp_off.(rid + 1) <- grp_off.(rid) + n
    done
  done;
  let n_groups = grp_off.(n_rids) in
  let grp_src_off = Array.make (n_groups + 1) 0 in
  let grp_src_lists = Array.make (max 1 n_groups) [] in
  let g = ref 0 in
  for task = 0 to n_tasks - 1 do
    for copy = 0 to copies - 1 do
      match Mapping.replica m task copy with
      | None -> ()
      | Some r ->
          List.iter
            (fun (_, ids) ->
              grp_src_off.(!g + 1) <-
                grp_src_off.(!g) + List.length ids;
              grp_src_lists.(!g) <- ids;
              incr g)
            r.Replica.sources
    done
  done;
  let grp_src = Array.make (max 1 grp_src_off.(n_groups)) 0 in
  for gi = 0 to n_groups - 1 do
    List.iteri
      (fun i (src : Replica.id) ->
        grp_src.(grp_src_off.(gi) + i) <- (src.task * copies) + src.copy)
      grp_src_lists.(gi)
  done;
  (* Consumers, in the legacy consumer-table encounter order: mapping
     iteration (task, copy ascending), then source-group order, then
     source order within the group. *)
  let pred_pos task pred =
    let rec scan i = function
      | [] -> invalid_arg "Engine.compile: source is not a predecessor"
      | (q, _) :: rest -> if q = pred then i else scan (i + 1) rest
    in
    scan 0 (Dag.preds dag task)
  in
  let cons_count = Array.make n_rids 0 in
  Mapping.iter m (fun (r : Replica.t) ->
      List.iter
        (fun (_, ids) ->
          List.iter
            (fun (src : Replica.id) ->
              let srid = (src.task * copies) + src.copy in
              cons_count.(srid) <- cons_count.(srid) + 1)
            ids)
        r.Replica.sources);
  let cons_off = Array.make (n_rids + 1) 0 in
  for rid = 0 to n_rids - 1 do
    cons_off.(rid + 1) <- cons_off.(rid) + cons_count.(rid)
  done;
  let n_cons = cons_off.(n_rids) in
  let cons_dst = Array.make (max 1 n_cons) 0 in
  let cons_dur = Array.make (max 1 n_cons) 0.0 in
  let cons_pos = Array.make (max 1 n_cons) 0 in
  let cursor = Array.sub cons_off 0 n_rids in
  Mapping.iter m (fun (r : Replica.t) ->
      let dst_rid = (r.id.Replica.task * copies) + r.id.Replica.copy in
      let dp = r.Replica.proc in
      List.iter
        (fun (pred, ids) ->
          let vol = Dag.volume dag pred r.id.Replica.task in
          let pos = pred_pos r.id.Replica.task pred in
          List.iter
            (fun (src : Replica.id) ->
              let srid = (src.task * copies) + src.copy in
              let k = cursor.(srid) in
              cons_dst.(k) <- dst_rid;
              cons_pos.(k) <- pos;
              cons_dur.(k) <-
                (let sp = proc_of.(srid) in
                 if sp = dp then 0.0 else Platform.comm_time plat sp dp vol);
              cursor.(srid) <- k + 1)
            ids)
        r.Replica.sources);
  {
    p_mapping = m;
    p_tasks = n_tasks;
    p_copies = copies;
    p_rids = n_rids;
    p_procs = n_procs;
    p_topo = Topo.order dag;
    p_prio = prio;
    p_pred_count = pred_count;
    p_pred_off = pred_off;
    p_total_preds = pred_off.(n_rids);
    p_proc = proc_of;
    p_exec_dur = exec_dur;
    p_grp_off = grp_off;
    p_grp_src_off = grp_src_off;
    p_grp_src = grp_src;
    p_cons_off = cons_off;
    p_cons_dst = cons_dst;
    p_cons_dur = cons_dur;
    p_cons_pos = cons_pos;
    p_entries = Array.of_list (Dag.entries dag);
    p_exits = Array.of_list (Dag.exits dag);
    p_period = Metrics.period m;
  }

(* ------------------------------------------------------------------ *)
(* The run-scenario record                                              *)
(* ------------------------------------------------------------------ *)

module Run = struct
  type drop_policy = Block | Drop_newest

  type traffic =
    | Closed of { n_items : int; period : float option }
    | Open of {
        arrival : Arrival.t;
        n_items : int;
        rng : Rng.t option;
        queue_bound : int option;
        policy : drop_policy;
      }

  type config = {
    traffic : traffic;
    snapshot : snapshot option;
    failed : Platform.proc list;
    timed_failures : (Platform.proc * float) list;
    metrics : bool;
    record_messages : bool;
    faults : Faults.t;
  }

  let closed ?(n_items = 1) ?period () =
    {
      traffic = Closed { n_items; period };
      snapshot = None;
      failed = [];
      timed_failures = [];
      metrics = true;
      record_messages = true;
      faults = Faults.none;
    }

  let open_ ?queue_bound ?(policy = Block) ?rng ~n_items arrival =
    {
      traffic = Open { arrival; n_items; rng; queue_bound; policy };
      snapshot = None;
      failed = [];
      timed_failures = [];
      metrics = true;
      record_messages = true;
      faults = Faults.none;
    }

  let with_faults faults config = { config with faults }
  let without_messages config = { config with record_messages = false }
end

(* ------------------------------------------------------------------ *)
(* The event engine over a compiled program                             *)
(* ------------------------------------------------------------------ *)

(* A transfer waiting for its data and for both ports lives in the run
   arena's message pool — parallel arrays (structure-of-arrays, so the
   float fields are stored unboxed) indexed by a pool handle.  Handles
   are issued in creation order, so the handle doubles as the legacy
   insertion sequence number: the legacy engine kept pending messages in
   a most-recent-first list and its fold kept the incumbent on full
   ties, so among equal (destination priority, destination instance)
   candidates the most recently created message — the highest handle —
   commits first.

   Events are packed into one immediate int, [(arg lsl 3) lor kind], so
   the event heap stores no pointers and the loop allocates nothing per
   event. *)

let ev_inject = 0 (* arg: iidx — an entry instance becomes ready *)
let ev_arrive = 1 (* arg: item — open mode: an item reaches the source *)
let ev_finish = 2 (* arg: iidx *)

let ev_arrival = 3
(* arg: message handle; the commit-time start is in [rs_pm_commit] *)

let ev_port_free = 4
(* wake-up when a crash-lost transfer releases its ports: the transfer
   never arrives, but other pending messages must get a chance to claim
   the port *)

let ev_exec_failed = 5
(* arg: iidx — a transient execution fault surfaces after the full
   attempt duration (the timeout): the processor frees, the instance is
   re-driven after the backoff or abandoned *)

let ev_comm_failed = 6
(* arg: message handle — a transient transfer fault surfaces at the
   transfer's end: both ports were held for the whole failed attempt *)

let ev_requeue = 7
(* arg: message handle — a backed-off transfer re-enters the pending
   set *)

(* The resolved traffic of one run: [ot_offsets] is empty for a closed
   run and carries the materialized arrival offsets of an open one. *)
type traffic_plan = {
  ot_open : bool;
  ot_offsets : float array;
  ot_bound : int;  (* max_int = unbounded *)
  ot_drop : bool;  (* Drop_newest *)
}

let closed_plan =
  { ot_open = false; ot_offsets = [||]; ot_bound = max_int; ot_drop = false }

(* ------------------------------------------------------------------ *)
(* The reusable run-state arena                                         *)
(* ------------------------------------------------------------------ *)

(* Every array slab [run_compiled_impl] needs, owned by the caller so a
   draw loop (crash sampling, epochs, traffic sweeps) allocates them once
   and replays thousands of scenarios with zero per-draw slab allocation.
   Per-processor and per-replica slabs are sized at [create]; the
   per-(item, replica) slabs grow geometrically on demand, since the item
   count varies run to run.  Each run fully re-initializes the ranges it
   uses, so a reused arena is bit-identical to a fresh one. *)
module Run_state = struct
  type t = {
    rs_rids : int;
    rs_procs : int;
    rs_total_preds : int;
    (* per-processor slabs *)
    rs_fail_time : float array;
    rs_seen_timed : bool array;
    rs_failed_procs : bool array;
    rs_busy_until : float array;
    rs_running : bool array;
    rs_send_free : float array;
    rs_recv_free : float array;
    rs_ready_data : int array array;
    rs_ready_len : int array;
    rs_pend_data : int array array;
    rs_pend_len : int array;
    (* per-replica slabs *)
    rs_dead : bool array;
    rs_occ : int array;
    (* message pool (structure-of-arrays), grown on demand; its length
       counter is per-run, so no reset is needed — every run writes a
       slot before reading it, and the slots hold no pointers *)
    mutable rs_pm_src : int array;
    mutable rs_pm_dst : int array;
    mutable rs_pm_dst_rid : int array;
    mutable rs_pm_dp : int array;
    mutable rs_pm_dur : float array;
    mutable rs_pm_pos : int array;
    mutable rs_pm_alive : bool array;
    mutable rs_pm_attempt : int array;
    mutable rs_pm_commit : float array;
    (* per-(item, replica) slabs, grown on demand *)
    mutable rs_starts : float array;
    mutable rs_finishes : float array;
    mutable rs_unsatisfied : int array;
    mutable rs_attempts : int array;
    mutable rs_opened : Bytes.t;
    mutable rs_sat : Bytes.t;
    (* event queue, message log, deferred local deliveries *)
    rs_events : int Event_heap.t;
    mutable rs_log : message option array;
    mutable rs_dl_dst : int array;
    mutable rs_dl_pos : int array;
  }

  let create p =
    Obs.incr "sim.arena.creates";
    let procs = p.p_procs and rids = p.p_rids in
    {
      rs_rids = rids;
      rs_procs = procs;
      rs_total_preds = p.p_total_preds;
      rs_fail_time = Array.make procs infinity;
      rs_seen_timed = Array.make procs false;
      rs_failed_procs = Array.make procs false;
      rs_busy_until = Array.make procs 0.0;
      rs_running = Array.make procs false;
      rs_send_free = Array.make procs 0.0;
      rs_recv_free = Array.make procs 0.0;
      rs_ready_data = Array.make procs [||];
      rs_ready_len = Array.make procs 0;
      rs_pend_data = Array.make procs [||];
      rs_pend_len = Array.make procs 0;
      rs_dead = Array.make rids true;
      rs_occ = Array.make rids 0;
      rs_pm_src = [||];
      rs_pm_dst = [||];
      rs_pm_dst_rid = [||];
      rs_pm_dp = [||];
      rs_pm_dur = [||];
      rs_pm_pos = [||];
      rs_pm_alive = [||];
      rs_pm_attempt = [||];
      rs_pm_commit = [||];
      rs_starts = Array.make (max 1 rids) nan;
      rs_finishes = Array.make (max 1 rids) nan;
      rs_unsatisfied = Array.make (max 1 rids) 0;
      rs_attempts = Array.make (max 1 rids) 0;
      rs_opened = Bytes.make (max 1 rids) '\000';
      rs_sat = Bytes.make (max 1 p.p_total_preds) '\000';
      rs_events = Event_heap.create ();
      rs_log = Array.make 64 None;
      rs_dl_dst = [||];
      rs_dl_pos = [||];
    }

  (* Grow the item-dependent slabs to at least the run's needs.  New
     arrays need no fill here: the run initializes the range it uses. *)
  let ensure st ~total ~sat_len =
    if Array.length st.rs_starts < total then begin
      let cap = max total (2 * Array.length st.rs_starts) in
      st.rs_starts <- Array.make cap nan;
      st.rs_finishes <- Array.make cap nan;
      st.rs_unsatisfied <- Array.make cap 0;
      st.rs_attempts <- Array.make cap 0;
      st.rs_opened <- Bytes.make cap '\000'
    end;
    if Bytes.length st.rs_sat < sat_len then
      st.rs_sat <- Bytes.make (max sat_len (2 * Bytes.length st.rs_sat)) '\000'

  let reset st =
    Array.fill st.rs_fail_time 0 st.rs_procs infinity;
    Array.fill st.rs_seen_timed 0 st.rs_procs false;
    Array.fill st.rs_failed_procs 0 st.rs_procs false;
    Array.fill st.rs_busy_until 0 st.rs_procs 0.0;
    Array.fill st.rs_running 0 st.rs_procs false;
    Array.fill st.rs_send_free 0 st.rs_procs 0.0;
    Array.fill st.rs_recv_free 0 st.rs_procs 0.0;
    Array.fill st.rs_ready_len 0 st.rs_procs 0;
    Array.fill st.rs_pend_len 0 st.rs_procs 0;
    Array.fill st.rs_dead 0 st.rs_rids true;
    Array.fill st.rs_occ 0 st.rs_rids 0;
    Array.fill st.rs_starts 0 (Array.length st.rs_starts) nan;
    Array.fill st.rs_finishes 0 (Array.length st.rs_finishes) nan;
    Array.fill st.rs_unsatisfied 0 (Array.length st.rs_unsatisfied) 0;
    Array.fill st.rs_attempts 0 (Array.length st.rs_attempts) 0;
    Bytes.fill st.rs_opened 0 (Bytes.length st.rs_opened) '\000';
    Bytes.fill st.rs_sat 0 (Bytes.length st.rs_sat) '\000';
    Event_heap.clear st.rs_events;
    (* Release the message references the previous run's log retained. *)
    Array.fill st.rs_log 0 (Array.length st.rs_log) None
end

let run_compiled_impl ~state ~snapshot ~n_items ~period ~failed
    ~timed_failures ~traffic ~metrics ~record_messages ~faults p =
  if n_items < 1 then invalid_arg "Engine.run: n_items < 1";
  let clock = snapshot.clock in
  if clock < 0.0 || not (Float.is_finite clock) then
    invalid_arg "Engine.run: snapshot clock must be finite and non-negative";
  let period =
    match period with
    | Some q -> if q < 0.0 then invalid_arg "Engine.run: negative period" else q
    | None -> p.p_period
  in
  let open_mode = traffic.ot_open in
  let bound = traffic.ot_bound and shed = traffic.ot_drop in
  let copies = p.p_copies in
  let n_rids = p.p_rids and n_procs = p.p_procs in
  let prio = p.p_prio and proc_of = p.p_proc in
  (* Fault scenario.  [fz] guards every fault-model touch point: when the
     scenario is Faults.none the run takes exactly the legacy code path —
     no draws, no factor multiplies, no extra allocations — and stays
     bit-identical to the pre-faults engine. *)
  let fz = Faults.is_none faults in
  if not fz then Faults.validate ~procs:n_procs faults;
  let transient = faults.Faults.transient
  and retry = faults.Faults.retry
  and gray = faults.Faults.gray in
  let (st : Run_state.t) = state in
  (* fail_time.(u) is when the processor crashes (fail-stop): work and
     transfers completing strictly later are lost.  A crash at or before
     the snapshot clock is the paper's fail-silent-from-the-start case and
     also prunes replicas statically (they can never produce anything). *)
  let fail_time = st.rs_fail_time in
  Array.fill fail_time 0 n_procs infinity;
  List.iter (fun u -> fail_time.(u) <- 0.0) (failed @ snapshot.down);
  let seen_timed = st.rs_seen_timed in
  Array.fill seen_timed 0 n_procs false;
  List.iter
    (fun (u, t) ->
      if t < 0.0 then invalid_arg "Engine.run: negative failure time";
      if seen_timed.(u) then
        invalid_arg "Engine.run: duplicate processor in timed_failures";
      seen_timed.(u) <- true;
      fail_time.(u) <- Float.min fail_time.(u) t)
    timed_failures;
  let failed_procs = st.rs_failed_procs in
  for u = 0 to n_procs - 1 do
    failed_procs.(u) <- fail_time.(u) <= clock
  done;
  (* Liveness sweep: a replica is dead when its processor failed
     statically or when, for some predecessor, every source is dead. *)
  let dead = st.rs_dead in
  Array.fill dead 0 n_rids true;
  Array.iter
    (fun task ->
      for copy = 0 to copies - 1 do
        let rid = (task * copies) + copy in
        if proc_of.(rid) >= 0 && not failed_procs.(proc_of.(rid)) then begin
          let starved = ref false in
          let g = ref p.p_grp_off.(rid) in
          let g_end = p.p_grp_off.(rid + 1) in
          while (not !starved) && !g < g_end do
            let all_dead = ref true in
            let s = ref p.p_grp_src_off.(!g) in
            let s_end = p.p_grp_src_off.(!g + 1) in
            while !all_dead && !s < s_end do
              if not dead.(p.p_grp_src.(!s)) then all_dead := false;
              incr s
            done;
            if !all_dead then starved := true;
            incr g
          done;
          dead.(rid) <- !starved
        end
      done)
    p.p_topo;
  (* Per-instance state: iidx = item * n_rids + rid. *)
  let total = n_items * n_rids in
  let sat_len = n_items * p.p_total_preds in
  Run_state.ensure st ~total ~sat_len;
  (* Fault ledger: execution attempt counters per instance, exhaustion
     counts per processor, and the run-wide tallies of the result's
     [fault_stats].  Initialized only when the scenario is live.
     [exhausted_on] stays a fresh allocation: it is returned in the
     result and must survive the arena's next run. *)
  let attempts =
    if fz then [||]
    else begin
      Array.fill st.rs_attempts 0 total 0;
      st.rs_attempts
    end
  in
  let exhausted_on = if fz then [||] else Array.make n_procs 0 in
  let f_retries = ref 0 and f_backoff = ref 0.0 in
  let f_exec = ref 0 and f_comm = ref 0 and f_exhausted = ref 0 in
  let f_slowed = ref 0 and f_degraded = ref 0 in
  let starts = st.rs_starts and finishes = st.rs_finishes in
  Array.fill starts 0 total nan;
  Array.fill finishes 0 total nan;
  let unsatisfied = st.rs_unsatisfied in
  Array.fill unsatisfied 0 total 0;
  (* Which predecessor positions are already satisfied, one byte per
     (item, task, position). *)
  let sat = st.rs_sat in
  Bytes.fill sat 0 sat_len '\000';
  for item = 0 to n_items - 1 do
    for rid = 0 to n_rids - 1 do
      if not dead.(rid) then
        unsatisfied.((item * n_rids) + rid) <- p.p_pred_count.(rid / copies)
    done
  done;
  (* Processor and port state. *)
  let busy_until = st.rs_busy_until in
  Array.fill busy_until 0 n_procs 0.0;
  let running = st.rs_running in
  Array.fill running 0 n_procs false;
  let send_free = st.rs_send_free and recv_free = st.rs_recv_free in
  Array.fill send_free 0 n_procs 0.0;
  Array.fill recv_free 0 n_procs 0.0;
  let events = st.rs_events in
  Event_heap.clear events;
  (* Scratch slot for [Event_heap.add_unboxed]: the scheduled time is
     stored here (an unboxed float-array store) so the hot add sites
     never box their key. *)
  let ev_key = Array.make 1 0.0 in
  (* The loop's current time, also unboxed: [loop] writes the popped
     key here and [handle]/[drain]/the dispatchers read it back as a
     float-array load, so on the fault-free closed-mode path an event
     iteration materialises no boxed float at all. *)
  let tnow = Array.make 1 0.0 in
  (* The metrics gate is hoisted out of the hot loop: when recording is
     off (globally, or for this run) the run pays exactly one flag
     read. *)
  let obs = metrics && Obs.enabled () in
  let observe_heap () =
    if obs then Obs.observe "sim.heap_size" (float_of_int (Event_heap.size events))
  in
  (* Growable message-log buffer, chronological commit order; skipped
     entirely when the config turns message recording off (draw loops
     that never read [result.messages] save the per-transfer records). *)
  let log_len = ref 0 in
  let log_push msg =
    if !log_len = Array.length st.rs_log then begin
      let d = Array.make (2 * !log_len) None in
      Array.blit st.rs_log 0 d 0 !log_len;
      st.rs_log <- d
    end;
    st.rs_log.(!log_len) <- Some msg;
    incr log_len
  in
  (* A one-slot float array rather than a ref: stores into a float array
     are unboxed, so the per-event makespan update allocates nothing. *)
  let makespan = Array.make 1 clock in
  (* Ready instances, one binary heap per processor.  The heap order is
     the legacy [better] relation — item ascending, then task priority
     descending, then replica id ascending — which is a strict total
     order on any one processor's ready set (two instances there always
     differ in item or task), so popping the root picks exactly the
     instance the legacy list fold selected. *)
  let ready_data = st.rs_ready_data in
  let ready_len = st.rs_ready_len in
  Array.fill ready_len 0 n_procs 0;
  let inst_before a b =
    let ia = a / n_rids and ib = b / n_rids in
    if ia <> ib then ia < ib
    else begin
      let ra = a mod n_rids and rb = b mod n_rids in
      let pa = prio.(ra / copies) and pb = prio.(rb / copies) in
      if pa <> pb then pa > pb else ra < rb
    end
  in
  let ready_push u x =
    let len = ready_len.(u) in
    if len = Array.length ready_data.(u) then begin
      let d = Array.make (max 8 (2 * len)) 0 in
      Array.blit ready_data.(u) 0 d 0 len;
      ready_data.(u) <- d
    end;
    let d = ready_data.(u) in
    d.(len) <- x;
    ready_len.(u) <- len + 1;
    let i = ref len in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      inst_before d.(!i) d.(parent)
      &&
      (let tmp = d.(!i) in
       d.(!i) <- d.(parent);
       d.(parent) <- tmp;
       i := parent;
       true)
    do
      ()
    done
  in
  let ready_pop u =
    let d = ready_data.(u) in
    let len = ready_len.(u) - 1 in
    let top = d.(0) in
    d.(0) <- d.(len);
    ready_len.(u) <- len;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < len && inst_before d.(l) d.(!smallest) then smallest := l;
      if r < len && inst_before d.(r) d.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = d.(!i) in
        d.(!i) <- d.(!smallest);
        d.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    top
  in
  (* Pending transfers, bucketed by sending processor (the send port they
     wait on); index-based removal, so structurally identical messages
     are distinct entries. *)
  let pend_data = st.rs_pend_data in
  let pend_len = st.rs_pend_len in
  Array.fill pend_len 0 n_procs 0;
  let pending_count = ref 0 in
  (* Message-pool cursor: handles are issued in creation order, which is
     exactly the legacy [pm_seq] numbering (one message created per
     cross-processor hand-off, and a requeued message keeps its
     handle). *)
  let pm_len = ref 0 in
  let pm_ensure () =
    if !pm_len = Array.length st.rs_pm_src then begin
      let cap = max 16 (2 * Array.length st.rs_pm_src) in
      let grow_int a =
        let d = Array.make cap 0 in
        Array.blit a 0 d 0 !pm_len;
        d
      in
      let grow_float a =
        let d = Array.make cap 0.0 in
        Array.blit a 0 d 0 !pm_len;
        d
      in
      let grow_bool a =
        let d = Array.make cap false in
        Array.blit a 0 d 0 !pm_len;
        d
      in
      st.rs_pm_src <- grow_int st.rs_pm_src;
      st.rs_pm_dst <- grow_int st.rs_pm_dst;
      st.rs_pm_dst_rid <- grow_int st.rs_pm_dst_rid;
      st.rs_pm_dp <- grow_int st.rs_pm_dp;
      st.rs_pm_pos <- grow_int st.rs_pm_pos;
      st.rs_pm_attempt <- grow_int st.rs_pm_attempt;
      st.rs_pm_dur <- grow_float st.rs_pm_dur;
      st.rs_pm_commit <- grow_float st.rs_pm_commit;
      st.rs_pm_alive <- grow_bool st.rs_pm_alive
    end
  in
  let pend_push u mi =
    let len = pend_len.(u) in
    if len = Array.length pend_data.(u) then begin
      let d = Array.make (max 4 (2 * len)) 0 in
      Array.blit pend_data.(u) 0 d 0 len;
      pend_data.(u) <- d
    end;
    pend_data.(u).(len) <- mi;
    pend_len.(u) <- len + 1;
    incr pending_count
  in
  let pend_remove u i =
    let len = pend_len.(u) - 1 in
    pend_data.(u).(i) <- pend_data.(u).(len);
    pend_len.(u) <- len;
    decr pending_count
  in
  let satisfy iidx pos =
    let item = iidx / n_rids and rid = iidx mod n_rids in
    let si = (item * p.p_total_preds) + p.p_pred_off.(rid) + pos in
    if Bytes.get sat si = '\000' then begin
      Bytes.set sat si '\001';
      unsatisfied.(iidx) <- unsatisfied.(iidx) - 1;
      if unsatisfied.(iidx) = 0 then ready_push proc_of.(rid) iidx
    end
  in
  (* ---- open-system state: queues, source backlog, shedding ---------- *)
  (* An instance occupies its replica's bounded input queue from the
     moment data is first committed toward it (for an entry task: from
     admission) until it finishes executing.  [opened] marks the charge;
     the charge is skipped when the replica's processor is already dead
     at charge time (no queue survives a crash), and an instance that
     finishes always had a live-processor charge, so the Finish-side
     release below never underflows. *)
  let arr_abs =
    if open_mode then Array.map (fun o -> clock +. o) traffic.ot_offsets
    else [||]
  in
  (* Closed runs never read [occ] / [opened] (every touch point is
     guarded by [open_mode]), so they are only re-initialized for open
     ones. *)
  let occ = st.rs_occ in
  if open_mode then Array.fill occ 0 n_rids 0;
  let opened = st.rs_opened in
  if open_mode then Bytes.fill opened 0 total '\000';
  let injections = Array.make n_items nan in
  let dropped = ref 0 in
  let stall_time = ref 0.0 in
  let peak_queue = ref 0 in
  let next_admit = ref 0 in
  let arrived = ref 0 in
  let charge now iidx =
    if Bytes.get opened iidx = '\000' then begin
      Bytes.set opened iidx '\001';
      let rid = iidx mod n_rids in
      if fail_time.(proc_of.(rid)) > now then begin
        let o = occ.(rid) + 1 in
        occ.(rid) <- o;
        if o > !peak_queue then peak_queue := o;
        if obs then begin
          Obs.incr "sim.queue.enqueued";
          Obs.observe "sim.queue.occupancy" (float_of_int o)
        end
      end
    end
  in
  let has_room now rid =
    fail_time.(proc_of.(rid)) <= now || occ.(rid) < bound
  in
  (* Deferred local deliveries: a finished instance's same-processor
     hand-off that found the destination queue full waits here, oldest
     first, and is retried whenever occupancy may have freed. *)
  let dl_len = ref 0 in
  let dl_push dst pos =
    if !dl_len = Array.length st.rs_dl_dst then begin
      let n = max 8 (2 * !dl_len) in
      let d = Array.make n 0 and q = Array.make n 0 in
      Array.blit st.rs_dl_dst 0 d 0 !dl_len;
      Array.blit st.rs_dl_pos 0 q 0 !dl_len;
      st.rs_dl_dst <- d;
      st.rs_dl_pos <- q
    end;
    st.rs_dl_dst.(!dl_len) <- dst;
    st.rs_dl_pos.(!dl_len) <- pos;
    incr dl_len;
    if obs then Obs.incr "sim.queue.blocked"
  in
  let dispatch_local () =
    let now = tnow.(0) in
    if !dl_len > 0 then begin
      let dl_dst = st.rs_dl_dst and dl_pos = st.rs_dl_pos in
      let w = ref 0 in
      for i = 0 to !dl_len - 1 do
        let dst = dl_dst.(i) and pos = dl_pos.(i) in
        if Bytes.get opened dst = '\001' || has_room now (dst mod n_rids)
        then begin
          charge now dst;
          satisfy dst pos
        end
        else begin
          dl_dst.(!w) <- dst;
          dl_pos.(!w) <- pos;
          incr w
        end
      done;
      dl_len := !w
    end
  in
  (* Admission: every live entry replica must have queue room; a dead or
     crashed one imposes nothing (its shard is gone).  Admitting makes
     the item's entry instances ready, exactly as a closed-mode Inject
     batch does. *)
  let entry_room now =
    bound = max_int
    ||
    let ok = ref true in
    Array.iter
      (fun task ->
        for copy = 0 to copies - 1 do
          let rid = (task * copies) + copy in
          if (not dead.(rid)) && not (has_room now rid) then ok := false
        done)
      p.p_entries;
    !ok
  in
  let admit now item =
    injections.(item) <- now;
    stall_time := !stall_time +. (now -. arr_abs.(item));
    Array.iter
      (fun task ->
        for copy = 0 to copies - 1 do
          let rid = (task * copies) + copy in
          if not dead.(rid) then begin
            let iidx = (item * n_rids) + rid in
            charge now iidx;
            ready_push proc_of.(rid) iidx
          end
        done)
      p.p_entries
  in
  (* Admit as many backlogged items as fit, FIFO: the head of the line
     blocks the line (that is what backpressure means at the source). *)
  let rec dispatch_source () =
    let now = tnow.(0) in
    if !next_admit < !arrived && entry_room now then begin
      let item = !next_admit in
      incr next_admit;
      admit now item;
      dispatch_source ()
    end
  in
  (* Start the best ready instance on every idle processor. *)
  let dispatch_procs () =
    let now = tnow.(0) in
    for u = 0 to n_procs - 1 do
      if
        (not running.(u)) && busy_until.(u) <= now && ready_len.(u) > 0
        && now < fail_time.(u)
      then begin
        let iidx = ready_pop u in
        let dur = p.p_exec_dur.(iidx mod n_rids) in
        (* Gray straggler: the factor active at the attempt's start
           stretches the whole attempt. *)
        let dur =
          if fz then dur
          else begin
            let f = Faults.Gray.exec_factor gray ~proc:u ~at:now in
            if f = 1.0 then dur
            else begin
              incr f_slowed;
              if obs then Obs.incr "sim.gray.slowdowns";
              dur *. f
            end
          end
        in
        starts.(iidx) <- now;
        running.(u) <- true;
        busy_until.(u) <- now +. dur;
        if now +. dur <= fail_time.(u) then begin
          (* Transient execution fault: decided at dispatch, surfaced
             only when the full attempt duration has elapsed (the
             timeout) — the processor is busy for the whole attempt
             either way. *)
          let failing =
            (not fz)
            && begin
                 attempts.(iidx) <- attempts.(iidx) + 1;
                 Faults.Transient.exec_fails transient ~proc:u ~key:iidx
                   ~attempt:attempts.(iidx) ~at:now
               end
          in
          ev_key.(0) <- now +. dur;
          Event_heap.add_unboxed events ev_key
            ((iidx lsl 3) lor (if failing then ev_exec_failed else ev_finish));
          observe_heap ()
        end
        (* else: the crash interrupts this execution; the processor
           never frees and the result is lost *)
      end
    done
  in
  (* Whether a pending transfer may claim the destination's queue: a
     dead destination has no queue, an already-queued instance must keep
     receiving (or the pipeline would deadlock on its own bound), and
     otherwise the queue needs room. *)
  let msg_room now mi =
    (not st.rs_pm_alive.(mi))
    || fail_time.(st.rs_pm_dp.(mi)) <= now
    || Bytes.get opened st.rs_pm_dst.(mi) = '\001'
    || occ.(st.rs_pm_dst_rid.(mi)) < bound
  in
  (* Greedily commit every transfer whose data and both ports are free.
     The candidate order is the legacy one: highest destination priority,
     then smallest destination instance, then (on full ties) the most
     recently created message — the highest pool handle. *)
  let rec dispatch_msgs () =
    let now = tnow.(0) in
    if !pending_count > 0 then begin
      let best = ref (-1) in
      let best_u = ref (-1) and best_i = ref (-1) in
      for u = 0 to n_procs - 1 do
        if pend_len.(u) > 0 && now < fail_time.(u) && send_free.(u) <= now
        then
          for i = 0 to pend_len.(u) - 1 do
            let mi = pend_data.(u).(i) in
            let dp = st.rs_pm_dp.(mi) in
            if
              (fail_time.(dp) <= now || recv_free.(dp) <= now)
              && ((not open_mode) || bound = max_int || msg_room now mi)
            then begin
              let beats =
                let b = !best in
                b < 0
                ||
                let pm = prio.(st.rs_pm_dst_rid.(mi) / copies)
                and pb = prio.(st.rs_pm_dst_rid.(b) / copies) in
                pm > pb
                || (pm = pb
                   && (st.rs_pm_dst.(mi) < st.rs_pm_dst.(b)
                      || (st.rs_pm_dst.(mi) = st.rs_pm_dst.(b) && mi > b)))
              in
              if beats then begin
                best := mi;
                best_u := u;
                best_i := i
              end
            end
          done
      done;
      let mi = !best in
      if mi >= 0 then begin
        pend_remove !best_u !best_i;
        let sp = !best_u and dp = st.rs_pm_dp.(mi) in
        (* Gray link degradation: the factor active at commit time
           stretches the whole transfer on both ports. *)
        let dur =
          if fz then st.rs_pm_dur.(mi)
          else begin
            let f = Faults.Gray.comm_factor gray ~src:sp ~dst:dp ~at:now in
            if f = 1.0 then st.rs_pm_dur.(mi)
            else begin
              incr f_degraded;
              if obs then Obs.incr "sim.gray.degradations";
              st.rs_pm_dur.(mi) *. f
            end
          end
        in
        send_free.(sp) <- now +. dur;
        if fail_time.(dp) > now then recv_free.(dp) <- now +. dur;
        if now +. dur <= fail_time.(sp) && now +. dur <= fail_time.(dp)
        then begin
          (* Transient transfer fault: decided at commit, surfaced when
             the full transfer duration has elapsed (the timeout) — the
             ports are held for the whole attempt either way. *)
          let failing =
            (not fz)
            && Faults.Transient.comm_fails transient ~src:sp ~key:mi
                 ~attempt:st.rs_pm_attempt.(mi) ~at:now
          in
          ev_key.(0) <- now +. dur;
          if failing then
            Event_heap.add_unboxed events ev_key ((mi lsl 3) lor ev_comm_failed)
          else begin
            (* The transfer will arrive: reserve the destination's queue
               slot now, so concurrent senders see the occupancy. *)
            if open_mode && st.rs_pm_alive.(mi) then charge now st.rs_pm_dst.(mi);
            st.rs_pm_commit.(mi) <- now;
            Event_heap.add_unboxed events ev_key ((mi lsl 3) lor ev_arrival)
          end
        end
        else begin
          (* the crash loses the transfer in flight, but the ports still
             free up and waiting messages must be woken *)
          ev_key.(0) <- now +. dur;
          Event_heap.add_unboxed events ev_key ev_port_free
        end;
        observe_heap ();
        dispatch_msgs ()
      end
    end
  in
  (* Seed the source.  Closed: entry instances of every item at their
     injection times.  Open: one Arrive per item at its arrival offset —
     admission happens when the event pops (and, under backpressure,
     when room frees). *)
  if open_mode then
    for item = 0 to n_items - 1 do
      Event_heap.add events arr_abs.(item) ((item lsl 3) lor ev_arrive);
      observe_heap ()
    done
  else
    for item = 0 to n_items - 1 do
      Array.iter
        (fun task ->
          for copy = 0 to copies - 1 do
            let rid = (task * copies) + copy in
            if not dead.(rid) then begin
              Event_heap.add events
                (clock +. (float_of_int item *. period))
                ((((item * n_rids) + rid) lsl 3) lor ev_inject);
              observe_heap ()
            end
          done)
        p.p_entries
    done;
  let decode iidx =
    let item = iidx / n_rids and rid = iidx mod n_rids in
    { item; rep = { Replica.task = rid / copies; copy = rid mod copies } }
  in
  let handle ev =
    let now = tnow.(0) in
    match ev land 7 with
    | 0 (* ev_inject *) ->
        let iidx = ev asr 3 in
        ready_push proc_of.(iidx mod n_rids) iidx
    | 1 (* ev_arrive *) ->
        let item = ev asr 3 in
        arrived := !arrived + 1;
        if shed then begin
          (* Load shedding decides at the arrival instant: admit or
             drop, never defer — the backlog stays empty. *)
          if entry_room now then begin
            incr next_admit;
            admit now item
          end
          else begin
            incr next_admit;
            incr dropped;
            if obs then Obs.incr "sim.drops"
          end
        end
        else begin
          let before = !next_admit in
          dispatch_source ();
          if !next_admit = before && obs then Obs.incr "sim.queue.blocked"
        end
    | 2 (* ev_finish *) ->
        let iidx = ev asr 3 in
        let rid = iidx mod n_rids and item = iidx / n_rids in
        let u = proc_of.(rid) in
        finishes.(iidx) <- now;
        running.(u) <- false;
        if now > makespan.(0) then makespan.(0) <- now;
        if open_mode && Bytes.get opened iidx = '\001' then
          occ.(rid) <- occ.(rid) - 1;
        for k = p.p_cons_off.(rid) to p.p_cons_off.(rid + 1) - 1 do
          let dst_rid = p.p_cons_dst.(k) in
          let dp = proc_of.(dst_rid) in
          let dst_alive = not dead.(dst_rid) in
          let dst_iidx = (item * n_rids) + dst_rid in
          if dp = u then begin
            if dst_alive then
              if
                (not open_mode) || bound = max_int
                || Bytes.get opened dst_iidx = '\001'
                || has_room now dst_rid
              then begin
                if open_mode then charge now dst_iidx;
                satisfy dst_iidx p.p_cons_pos.(k)
              end
              else dl_push dst_iidx p.p_cons_pos.(k)
          end
          else begin
            pm_ensure ();
            let mi = !pm_len in
            pm_len := mi + 1;
            st.rs_pm_src.(mi) <- iidx;
            st.rs_pm_dst.(mi) <- dst_iidx;
            st.rs_pm_dst_rid.(mi) <- dst_rid;
            st.rs_pm_dp.(mi) <- dp;
            st.rs_pm_dur.(mi) <- p.p_cons_dur.(k);
            st.rs_pm_pos.(mi) <- p.p_cons_pos.(k);
            st.rs_pm_alive.(mi) <- dst_alive;
            st.rs_pm_attempt.(mi) <- 1;
            pend_push u mi
          end
        done
    | 3 (* ev_arrival *) ->
        let mi = ev asr 3 in
        if now > makespan.(0) then makespan.(0) <- now;
        if record_messages then
          log_push
            {
              msg_src = decode st.rs_pm_src.(mi);
              msg_dst = decode st.rs_pm_dst.(mi);
              msg_start = st.rs_pm_commit.(mi);
              msg_finish = now;
            };
        if st.rs_pm_alive.(mi) then
          satisfy st.rs_pm_dst.(mi) st.rs_pm_pos.(mi)
    | 4 (* ev_port_free *) -> if now > makespan.(0) then makespan.(0) <- now
    | 5 (* ev_exec_failed *) ->
        (* The attempt timed out: the processor was busy for the whole
           attempt and only now learns it produced nothing. *)
        let iidx = ev asr 3 in
        let u = proc_of.(iidx mod n_rids) in
        running.(u) <- false;
        if now > makespan.(0) then makespan.(0) <- now;
        incr f_exec;
        if obs then Obs.incr "sim.faults.transient";
        if attempts.(iidx) <= retry.Faults.Backoff.max_retries then begin
          let d = Faults.Backoff.delay retry ~attempt:attempts.(iidx) in
          incr f_retries;
          f_backoff := !f_backoff +. d;
          if obs then begin
            Obs.incr "sim.retries";
            Obs.observe "sim.retry_backoff_time" d
          end;
          ev_key.(0) <- now +. d;
          Event_heap.add_unboxed events ev_key ((iidx lsl 3) lor ev_inject);
          observe_heap ()
        end
        else begin
          (* Retry budget exhausted: the instance is abandoned and its
             consumers starve — the gap escalation policies react to. *)
          incr f_exhausted;
          exhausted_on.(u) <- exhausted_on.(u) + 1;
          if obs then Obs.incr "sim.faults.exhausted"
        end
    | 6 (* ev_comm_failed *) ->
        let mi = ev asr 3 in
        if now > makespan.(0) then makespan.(0) <- now;
        incr f_comm;
        if obs then Obs.incr "sim.faults.transient";
        let attempt = st.rs_pm_attempt.(mi) in
        if attempt <= retry.Faults.Backoff.max_retries then begin
          let d = Faults.Backoff.delay retry ~attempt in
          incr f_retries;
          f_backoff := !f_backoff +. d;
          if obs then begin
            Obs.incr "sim.retries";
            Obs.observe "sim.retry_backoff_time" d
          end;
          (* The backed-off attempt keeps its handle (and with it the
             legacy pm_seq tie-break); only the attempt count moves. *)
          st.rs_pm_attempt.(mi) <- attempt + 1;
          ev_key.(0) <- now +. d;
          Event_heap.add_unboxed events ev_key ((mi lsl 3) lor ev_requeue);
          observe_heap ()
        end
        else begin
          (* Exhaustion is charged to the sender's port — it did all the
             (re)work — mirroring exec attribution to the executor. *)
          incr f_exhausted;
          let sp = proc_of.(st.rs_pm_src.(mi) mod n_rids) in
          exhausted_on.(sp) <- exhausted_on.(sp) + 1;
          if obs then Obs.incr "sim.faults.exhausted"
        end
    | _ (* ev_requeue *) ->
        let mi = ev asr 3 in
        if now > makespan.(0) then makespan.(0) <- now;
        pend_push proc_of.(st.rs_pm_src.(mi) mod n_rids) mi
  in
  (* The pop protocol reads the heap's exposed arrays directly: the key
     peek lands in the [tnow] slot and the value pop is an immediate, so
     an iteration of the loop below allocates nothing. *)
  (* Drain simultaneous events before dispatching decisions.  Hoisted
     out of [loop] so the closure is allocated once per run, not once
     per iteration. *)
  let rec drain () =
    if events.Event_heap.len > 0 && events.Event_heap.keys.(0) <= tnow.(0)
    then begin
      let ev' = Event_heap.unsafe_pop events in
      if obs then Obs.incr "sim.events_popped";
      handle ev';
      drain ()
    end
  in
  let rec loop () =
    if events.Event_heap.len > 0 then begin
      tnow.(0) <- events.Event_heap.keys.(0);
      let ev = Event_heap.unsafe_pop events in
      if obs then Obs.incr "sim.events_popped";
      handle ev;
      drain ();
      (* When room frees, in-pipeline data beats new source admissions:
         deferred local hand-offs first, then transfers, then the
         backlog — that priority order is the backpressure. *)
      if open_mode then dispatch_local ();
      dispatch_msgs ();
      if open_mode && not shed then dispatch_source ();
      dispatch_procs ();
      loop ()
    end
  in
  loop ();
  let get arr item (id : Replica.id) =
    if dead.((id.task * copies) + id.copy) then None
    else begin
      let v = arr.((item * n_rids) + (id.task * copies) + id.copy) in
      if Float.is_nan v then None else Some v
    end
  in
  let arrivals =
    if open_mode then arr_abs
    else Array.init n_items (fun item -> clock +. (float_of_int item *. period))
  in
  if not open_mode then Array.blit arrivals 0 injections 0 n_items;
  let item_latency =
    Array.init n_items (fun item ->
        let arrival = arrivals.(item) in
        Array.fold_left
          (fun acc exit_task ->
            match acc with
            | None -> None
            | Some worst ->
                let best_finish =
                  let rec scan copy best =
                    if copy >= copies then best
                    else begin
                      let best =
                        match get finishes item { Replica.task = exit_task; copy } with
                        | Some f -> (
                            match best with
                            | Some b -> Some (Float.min b f)
                            | None -> Some f)
                        | None -> best
                      in
                      scan (copy + 1) best
                    end
                  in
                  scan 0 None
                in
                (match best_finish with
                | None -> None
                | Some f -> Some (Float.max worst (f -. arrival))))
          (Some 0.0) p.p_exits)
  in
  let messages =
    let rec collect i acc =
      if i < 0 then acc
      else
        collect (i - 1)
          (match st.rs_log.(i) with Some m -> m :: acc | None -> acc)
    in
    collect (!log_len - 1) []
  in
  {
    start_time = get starts;
    finish_time = get finishes;
    item_latency;
    period;
    makespan = makespan.(0);
    messages;
    arrivals;
    injections;
    dropped = !dropped;
    stalled = (if open_mode then n_items - !next_admit else 0);
    peak_queue = !peak_queue;
    stall_time = !stall_time;
    faults =
      (if fz then no_faults
       else
         {
           retries = !f_retries;
           backoff_time = !f_backoff;
           exec_faults = !f_exec;
           comm_faults = !f_comm;
           exhausted = !f_exhausted;
           exhausted_on;
           slowed_attempts = !f_slowed;
           degraded_transfers = !f_degraded;
         });
  }

let simulate ?state ~(config : Run.config) p =
  let reused = Option.is_some state in
  let st =
    match state with
    | Some (st : Run_state.t) ->
        if
          st.rs_rids <> p.p_rids || st.rs_procs <> p.p_procs
          || st.rs_total_preds <> p.p_total_preds
        then
          invalid_arg
            "Engine.simulate: run state was created for a different program";
        st
    | None -> Run_state.create p
  in
  let snapshot = config.Run.snapshot in
  let failed = config.Run.failed and timed_failures = config.Run.timed_failures in
  let n_items, period, traffic =
    match config.Run.traffic with
    | Run.Closed { n_items; period } -> (n_items, period, closed_plan)
    | Run.Open { arrival; n_items; rng; queue_bound; policy } ->
        if n_items < 1 then invalid_arg "Engine.simulate: n_items < 1";
        (match queue_bound with
        | Some b when b < 1 -> invalid_arg "Engine.simulate: queue_bound < 1"
        | _ -> ());
        let offsets = Arrival.times ?rng ~n:n_items arrival in
        ( n_items,
          None,
          {
            ot_open = true;
            ot_offsets = offsets;
            ot_bound = Option.value queue_bound ~default:max_int;
            ot_drop = (policy = Run.Drop_newest);
          } )
  in
  let go () =
    let snapshot = Option.value snapshot ~default:boot in
    run_compiled_impl ~state:st ~snapshot ~n_items ~period ~failed
      ~timed_failures ~traffic ~metrics:config.Run.metrics
      ~record_messages:config.Run.record_messages ~faults:config.Run.faults p
  in
  if not config.Run.metrics then go ()
  else
    Obs.with_span "sim.engine.run" (fun () ->
        Obs.incr "sim.runs";
        if reused then Obs.incr "sim.arena.reuses";
        Obs.touch "sim.arena.creates";
        Obs.touch "sim.arena.reuses";
        Obs.touch "sim.cache.hits";
        Obs.touch "sim.cache.misses";
        Obs.touch "sim.events_popped";
        Obs.touch "sim.compiles";
        Obs.touch "sim.drops";
        Obs.touch "sim.queue.enqueued";
        Obs.touch "sim.queue.blocked";
        Obs.touch "sim.retries";
        Obs.touch "sim.gray.slowdowns";
        Obs.touch "sim.gray.degradations";
        Obs.touch "sim.faults.transient";
        Obs.touch "sim.faults.exhausted";
        Obs.incr
          ~by:(List.length failed + List.length timed_failures)
          "sim.failures_injected";
        (match snapshot with
        | None -> ()
        | Some s ->
            (* Epoch bookkeeping: a run that picks the stream up from a
               surviving-state snapshot rather than time 0 is a resume. *)
            Obs.touch "sim.epoch.resumes";
            if s.clock > 0.0 then Obs.incr "sim.epoch.resumes";
            Obs.observe "sim.epoch.items" (float_of_int n_items));
        go ())

let run_compiled ?snapshot ?(n_items = 1) ?period ?(failed = [])
    ?(timed_failures = []) p =
  simulate
    ~config:
      {
        Run.traffic = Run.Closed { n_items; period };
        snapshot;
        failed;
        timed_failures;
        metrics = true;
        record_messages = true;
        faults = Faults.none;
      }
    p

let run ?snapshot ?n_items ?period ?failed ?timed_failures m =
  run_compiled ?snapshot ?n_items ?period ?failed ?timed_failures (compile m)

(* The crash-draw hot path: single item, no message log, optionally an
   arena.  Identical to [run_compiled ~n_items:1] in every recorded
   value except [result.messages] (which this caller never reads). *)
let latency_compiled ?state ?(failed = []) p =
  let r =
    simulate ?state
      ~config:
        {
          Run.traffic = Run.Closed { n_items = 1; period = None };
          snapshot = None;
          failed;
          timed_failures = [];
          metrics = true;
          record_messages = false;
          faults = Faults.none;
        }
      p
  in
  r.item_latency.(0)

let latency ?failed m = latency_compiled ?failed (compile m)

let sojourns r =
  Array.to_list r.item_latency |> List.filter_map Fun.id

let sojourns_into r buf =
  let n = Array.length r.item_latency in
  if Array.length buf < n then
    invalid_arg "Engine.sojourns_into: buffer shorter than item_latency";
  let k = ref 0 in
  for i = 0 to n - 1 do
    match r.item_latency.(i) with
    | Some l ->
        buf.(!k) <- l;
        incr k
    | None -> ()
  done;
  !k

let sustained_throughput r =
  (* Absolute exit-availability instants of the items that completed. *)
  let completions =
    Array.to_list r.item_latency
    |> List.mapi (fun item l -> Option.map (fun lat -> r.arrivals.(item) +. lat) l)
    |> List.filter_map Fun.id
  in
  match completions with
  | [] | [ _ ] -> None
  | first :: _ ->
      let last = List.fold_left Float.max first completions in
      if last <= first then None
      else Some (float_of_int (List.length completions - 1) /. (last -. first))
