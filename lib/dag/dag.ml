type task = int

type csr = {
  row_ptr : int array; (* length v + 1 *)
  cols : int array;    (* length e, neighbor ids, ascending per row *)
  vols : float array;  (* length e, matching volumes *)
}

type t = {
  name : string;
  exec : float array;
  labels : string array;
  succs : (task * float) list array;
  preds : (task * float) list array;
  n_edges : int;
  edge_tbl : (int, float) Hashtbl.t;
      (* (src * v + dst) -> volume; O(1) volume/has_edge lookups for the
         simulator's per-finish consumer loop and the schedulers *)
  mutable csr_succs_cache : csr option;
  mutable csr_preds_cache : csr option;
      (* flat compressed-row views, built on first demand; clustering and
         the scaling paths walk these instead of the cons-cell lists *)
}

(* The frozen edge table, rebuilt whenever the adjacency lists change
   (build, reverse, map_weights). *)
let index_edges succs =
  let n = Array.length succs in
  let tbl = Hashtbl.create (max 16 n) in
  Array.iteri
    (fun src l ->
      List.iter (fun (dst, vol) -> Hashtbl.replace tbl ((src * n) + dst) vol) l)
    succs;
  tbl

(* Kahn's algorithm; returns false when some node is unreachable from the
   zero-in-degree frontier, i.e. the edge relation has a cycle. *)
let acyclic ~n ~succs ~in_degree =
  let indeg = Array.copy in_degree in
  let queue = Queue.create () in
  for u = 0 to n - 1 do
    if indeg.(u) = 0 then Queue.add u queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr seen;
    List.iter
      (fun (w, _) ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      succs.(u)
  done;
  !seen = n

module Builder = struct
  type dag = t

  type t = {
    b_name : string;
    n : int;
    b_exec : float array;
    b_labels : string array;
    mutable b_edges : (task * task * float) list;
    edge_set : (task * task, unit) Hashtbl.t;
  }

  let create ?(name = "dag") n =
    if n < 0 then invalid_arg "Dag.Builder.create: negative size";
    {
      b_name = name;
      n;
      b_exec = Array.make n 1.0;
      b_labels = Array.init n (fun i -> Printf.sprintf "t%d" i);
      b_edges = [];
      edge_set = Hashtbl.create (max 16 n);
    }

  let check_task b t what =
    if t < 0 || t >= b.n then
      invalid_arg (Printf.sprintf "Dag.Builder.%s: task %d out of range" what t)

  let set_exec b t w =
    check_task b t "set_exec";
    if w <= 0.0 then invalid_arg "Dag.Builder.set_exec: non-positive weight";
    b.b_exec.(t) <- w

  let set_label b t s =
    check_task b t "set_label";
    b.b_labels.(t) <- s

  let add_edge b ?(volume = 1.0) src dst =
    check_task b src "add_edge";
    check_task b dst "add_edge";
    if src = dst then invalid_arg "Dag.Builder.add_edge: self loop";
    if volume <= 0.0 then invalid_arg "Dag.Builder.add_edge: non-positive volume";
    if Hashtbl.mem b.edge_set (src, dst) then
      invalid_arg
        (Printf.sprintf "Dag.Builder.add_edge: duplicate edge %d -> %d" src dst);
    Hashtbl.add b.edge_set (src, dst) ();
    b.b_edges <- (src, dst, volume) :: b.b_edges

  let build b : dag =
    let succs = Array.make b.n [] and preds = Array.make b.n [] in
    let in_degree = Array.make b.n 0 in
    List.iter
      (fun (src, dst, vol) ->
        succs.(src) <- (dst, vol) :: succs.(src);
        preds.(dst) <- (src, vol) :: preds.(dst);
        in_degree.(dst) <- in_degree.(dst) + 1)
      b.b_edges;
    if not (acyclic ~n:b.n ~succs ~in_degree) then
      invalid_arg "Dag.Builder.build: graph has a cycle";
    let sort = List.sort (fun (a, _) (c, _) -> compare a c) in
    let succs = Array.map sort succs in
    {
      name = b.b_name;
      exec = Array.copy b.b_exec;
      labels = Array.copy b.b_labels;
      succs;
      preds = Array.map sort preds;
      n_edges = List.length b.b_edges;
      edge_tbl = index_edges succs;
      csr_succs_cache = None;
      csr_preds_cache = None;
    }
end

let of_edges ?name ~exec edges =
  let b = Builder.create ?name (Array.length exec) in
  Array.iteri (fun i w -> Builder.set_exec b i w) exec;
  List.iter (fun (src, dst, vol) -> Builder.add_edge b ~volume:vol src dst) edges;
  Builder.build b

let name g = g.name
let size g = Array.length g.exec
let n_edges g = g.n_edges
let exec g t = g.exec.(t)
let label g t = g.labels.(t)
let succs g t = g.succs.(t)
let preds g t = g.preds.(t)
let out_degree g t = List.length g.succs.(t)
let in_degree g t = List.length g.preds.(t)
let volume g src dst = Hashtbl.find g.edge_tbl ((src * size g) + dst)
let has_edge g src dst = Hashtbl.mem g.edge_tbl ((src * size g) + dst)

(* Flatten an adjacency-list array into compressed-row form.  The lists
   are already sorted by neighbor id (Builder.build sorts them), so the
   CSR rows inherit that order. *)
let csr_of_adjacency adj =
  let n = Array.length adj in
  let row_ptr = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    row_ptr.(u + 1) <- row_ptr.(u) + List.length adj.(u)
  done;
  let e = row_ptr.(n) in
  let cols = Array.make e 0 and vols = Array.make e 0.0 in
  for u = 0 to n - 1 do
    let i = ref row_ptr.(u) in
    List.iter
      (fun (w, vol) ->
        cols.(!i) <- w;
        vols.(!i) <- vol;
        incr i)
      adj.(u)
  done;
  { row_ptr; cols; vols }

let csr_succs g =
  match g.csr_succs_cache with
  | Some c -> c
  | None ->
      let c = csr_of_adjacency g.succs in
      g.csr_succs_cache <- Some c;
      c

let csr_preds g =
  match g.csr_preds_cache with
  | Some c -> c
  | None ->
      let c = csr_of_adjacency g.preds in
      g.csr_preds_cache <- Some c;
      c

let filter_tasks g keep =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (if keep i then i :: acc else acc)
  in
  collect (size g - 1) []

let entries g = filter_tasks g (fun t -> g.preds.(t) = [])
let exits g = filter_tasks g (fun t -> g.succs.(t) = [])

let iter_tasks g f =
  for t = 0 to size g - 1 do
    f t
  done

let iter_edges g f =
  iter_tasks g (fun src -> List.iter (fun (dst, vol) -> f src dst vol) g.succs.(src))

let fold_tasks g ~init ~f =
  let acc = ref init in
  iter_tasks g (fun t -> acc := f !acc t);
  !acc

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun src dst vol -> acc := f !acc src dst vol);
  !acc

let total_exec g = Array.fold_left ( +. ) 0.0 g.exec

let total_volume g =
  fold_edges g ~init:0.0 ~f:(fun acc _ _ vol -> acc +. vol)

let reverse g =
  {
    g with
    name = g.name ^ "-rev";
    succs = Array.map (fun l -> l) g.preds;
    preds = Array.map (fun l -> l) g.succs;
    edge_tbl = index_edges g.preds;
    csr_succs_cache = None;
    csr_preds_cache = None;
  }

let map_weights ?exec ?volume g =
  let exec_f = match exec with Some f -> f | None -> fun _ w -> w in
  let vol_f = match volume with Some f -> f | None -> fun _ _ w -> w in
  let remap_succs src = List.map (fun (dst, w) -> (dst, vol_f src dst w)) in
  let remap_preds dst = List.map (fun (src, w) -> (src, vol_f src dst w)) in
  let succs = Array.mapi remap_succs g.succs in
  {
    g with
    exec = Array.mapi exec_f g.exec;
    succs;
    preds = Array.mapi remap_preds g.preds;
    edge_tbl = index_edges succs;
    csr_succs_cache = None;
    csr_preds_cache = None;
  }

let pp ppf g =
  Format.fprintf ppf "@[<v>dag %S: %d tasks, %d edges@," g.name (size g) g.n_edges;
  iter_tasks g (fun t ->
      Format.fprintf ppf "%s [E=%g] ->" g.labels.(t) g.exec.(t);
      List.iter
        (fun (dst, vol) -> Format.fprintf ppf " %s(%g)" g.labels.(dst) vol)
        g.succs.(t);
      Format.fprintf ppf "@,");
  Format.fprintf ppf "@]"
