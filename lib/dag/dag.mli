(** Weighted directed acyclic task graphs.

    A graph [G = (V, E)] has [v] tasks numbered [0 .. v-1].  Each task carries
    an execution weight [E(t)] (abstract work units; the execution time on a
    processor of speed [s] is [E(t) / s]) and each edge carries a data volume
    (the communication time over a link of unit delay [d] is [volume * d]).

    Values of type {!t} are immutable; graphs are constructed through the
    {!Builder} interface or the {!of_edges} convenience function, both of
    which reject duplicate edges, self loops and cycles. *)

type task = int
(** Tasks are dense integer identifiers in [0 .. size - 1]. *)

type t
(** An immutable weighted DAG. *)

(** {1 Construction} *)

module Builder : sig
  type dag := t

  type t
  (** A mutable graph under construction. *)

  val create : ?name:string -> int -> t
  (** [create n] starts a graph with [n] tasks, each of execution weight
      [1.0] and no edges.  @raise Invalid_argument if [n < 0]. *)

  val set_exec : t -> task -> float -> unit
  (** [set_exec b t w] sets the execution weight of [t] to [w].
      @raise Invalid_argument if [t] is out of range or [w <= 0]. *)

  val set_label : t -> task -> string -> unit
  (** [set_label b t s] attaches a human-readable label to [t]. *)

  val add_edge : t -> ?volume:float -> task -> task -> unit
  (** [add_edge b src dst] adds a dependence [src -> dst] carrying
      [volume] (default [1.0]) data units.
      @raise Invalid_argument on out-of-range endpoints, self loops,
      non-positive volumes or duplicate edges. *)

  val build : t -> dag
  (** Freeze the builder.  @raise Invalid_argument if the edge relation
      contains a cycle.  The builder may keep being used afterwards. *)
end

val of_edges : ?name:string -> exec:float array -> (task * task * float) list -> t
(** [of_edges ~exec edges] builds a graph with [Array.length exec] tasks whose
    execution weights are [exec] and whose edge list is [edges] (given as
    [(src, dst, volume)]).  Checks are as for {!Builder}. *)

(** {1 Accessors} *)

val name : t -> string
val size : t -> int
(** Number of tasks [v]. *)

val n_edges : t -> int
(** Number of edges [e]. *)

val exec : t -> task -> float
(** Execution weight [E(t)]. *)

val label : t -> task -> string
(** Human-readable label; defaults to ["t<i>"]. *)

val succs : t -> task -> (task * float) list
(** Immediate successors with edge volumes, in increasing task order. *)

val preds : t -> task -> (task * float) list
(** Immediate predecessors with edge volumes, in increasing task order. *)

val out_degree : t -> task -> int
val in_degree : t -> task -> int

val volume : t -> task -> task -> float
(** [volume g src dst] is the data volume of edge [src -> dst].
    @raise Not_found if the edge does not exist. *)

val has_edge : t -> task -> task -> bool

(** {1 Flat views}

    Compressed-row adjacency for allocation-free traversal at scale: the
    neighbors of [t] are [cols.(row_ptr.(t)) .. cols.(row_ptr.(t+1) - 1)]
    (ascending), with matching volumes in [vols].  Built on first demand
    and cached; the arrays are shared — callers must not mutate them. *)
type csr = {
  row_ptr : int array; (* length v + 1 *)
  cols : int array;    (* length e *)
  vols : float array;  (* length e *)
}

val csr_succs : t -> csr
val csr_preds : t -> csr

val entries : t -> task list
(** Tasks with no predecessor, in increasing order. *)

val exits : t -> task list
(** Tasks with no successor, in increasing order. *)

val iter_tasks : t -> (task -> unit) -> unit
val iter_edges : t -> (task -> task -> float -> unit) -> unit
val fold_tasks : t -> init:'a -> f:('a -> task -> 'a) -> 'a
val fold_edges : t -> init:'a -> f:('a -> task -> task -> float -> 'a) -> 'a

val total_exec : t -> float
(** Sum of execution weights over all tasks. *)

val total_volume : t -> float
(** Sum of data volumes over all edges. *)

(** {1 Transformations} *)

val reverse : t -> t
(** The transpose graph: every edge [u -> v] becomes [v -> u].  Execution
    weights and volumes are preserved.  Used by the bottom-up R-LTF
    traversal. *)

val map_weights :
  ?exec:(task -> float -> float) ->
  ?volume:(task -> task -> float -> float) ->
  t -> t
(** Rescale node and/or edge weights, e.g. for granularity calibration. *)

val pp : Format.formatter -> t -> unit
(** Debugging printer: one line per task with its successors. *)
