(** Extension L: schedule-time and simulate-time scaling on the [huge]
    workload family (v up to 10⁶ tasks, p up to 10³ processors), under
    flat LTF and hierarchical C-LTF.  See EXPERIMENTS.md. *)

type point = {
  v : int;  (** requested task count *)
  m : int;
  eps : int;
  algo : string;
  sched_s : float;  (** CPU seconds to schedule *)
  sim_s : float;  (** CPU seconds to compile + replay one item *)
  stages : int;
  latency : float;  (** simulated latency of item 0; nan if lost *)
  finish_p50 : float;  (** replica finish-time quantiles of item 0 *)
  finish_p999 : float;
}

val run :
  ?out_dir:string ->
  ?seed:int ->
  ?eps:int ->
  ?v_sweep:int list ->
  ?m_sweep:int list ->
  unit ->
  point list
(** Writes [fig-scaling.csv] and prints the scaling plots.  Each
    (v, m, algo) contributes one point; failed schedules are reported
    and skipped.  Deterministic in [seed]. *)
