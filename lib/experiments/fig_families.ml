type row = {
  family : string;
  algo : string;
  stages : Stats.summary;
  latency : Stats.summary;
  meets : int;
}

let families =
  [
    ("layered", Paper_workload.Layered);
    ("fan-in-out", Paper_workload.Fan_in_out);
    ("series-parallel", Paper_workload.Series_parallel);
    ("stream-chain", Paper_workload.Stream_chain);
  ]

let run ?(out_dir = "results") ?(seed = 2009) ?(graphs = 12) () =
  let eps = 1 in
  let throughput = Paper_workload.throughput ~eps in
  let rows = ref [] in
  List.iter
    (fun (family_name, family) ->
      let spec =
        Spec.paper { Paper_workload.default_spec with Paper_workload.family }
      in
      let acc = Hashtbl.create 4 in
      let record algo stages latency meets_t =
        let s, l, meets =
          try Hashtbl.find acc algo with Not_found -> ([], [], 0)
        in
        Hashtbl.replace acc algo
          (stages :: s, latency :: l, if meets_t then meets + 1 else meets)
      in
      for rep = 0 to graphs - 1 do
        let rng = Rng.create ~seed:(seed + (4409 * rep)) in
        let inst = Spec.generate spec ~rng ~granularity:1.0 () in
        let prob =
          Types.problem ~dag:inst.Paper_workload.dag
            ~platform:inst.Paper_workload.plat ~eps ~throughput
        in
        List.iter
          (fun (algo, outcome) ->
            match outcome with
            | Error _ -> ()
            | Ok m ->
                record algo
                  (float_of_int (Metrics.stage_depth m))
                  (Metrics.latency_bound m ~throughput)
                  (Metrics.meets_throughput m ~throughput))
          [
            ("LTF", Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob);
            ("R-LTF", Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob);
          ]
      done;
      Hashtbl.iter
        (fun algo (s, l, meets) ->
          match (Stats.summarize_opt s, Stats.summarize_opt l) with
          | Some stages, Some latency ->
              rows := { family = family_name; algo; stages; latency; meets } :: !rows
          | _ -> ())
        acc)
    families;
  let rows =
    List.sort (fun a b -> compare (a.family, a.algo) (b.family, b.algo)) !rows
  in
  Printf.printf "Graph-family robustness (eps=%d, g=1.0, %d graphs/family):\n"
    eps graphs;
  Ascii_table.print
    ~header:[ "family"; "algorithm"; "stages"; "latency"; "meets T" ]
    (List.map
       (fun r ->
         [
           r.family;
           r.algo;
           Printf.sprintf "%.1f" r.stages.Stats.mean;
           Printf.sprintf "%.0f" r.latency.Stats.mean;
           Printf.sprintf "%d/%d" r.meets graphs;
         ])
       rows);
  Csv.write
    ~path:(Filename.concat out_dir "fig-families.csv")
    ~header:[ "family"; "algorithm"; "stages"; "latency"; "meets_T" ]
    (List.map
       (fun r ->
         [
           r.family;
           r.algo;
           Printf.sprintf "%.3f" r.stages.Stats.mean;
           Printf.sprintf "%.3f" r.latency.Stats.mean;
           string_of_int r.meets;
         ])
       rows);
  rows
