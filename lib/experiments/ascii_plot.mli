(** Terminal line plots, one glyph per series — a stand-in for the paper's
    gnuplot figures so every experiment is inspectable without a plotting
    toolchain. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y), NaN ys are skipped *)
}

val decimate : ?max_points:int -> series -> series
(** An evenly-strided subset of at most [max_points] points (default
    256), always retaining both endpoints; series at or under the cap
    are returned unchanged.  The scaling experiment runs this before
    plotting 10⁶-point series. *)

val render :
  ?width:int -> ?height:int ->
  ?x_label:string -> ?y_label:string ->
  ?max_points:int ->
  title:string -> series list -> string
(** A [width × height] character canvas (default 64 × 20) with axes
    labelled by the data ranges and a legend mapping glyphs to series.
    Series longer than [max_points] (default 4096, far above anything a
    canvas resolves) are {!decimate}d first. *)

val print :
  ?width:int -> ?height:int ->
  ?x_label:string -> ?y_label:string ->
  ?max_points:int ->
  title:string -> series list -> unit
