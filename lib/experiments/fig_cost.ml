type row = {
  granularity : float;
  kept_procs : Stats.summary;
  cost_fraction : Stats.summary;
}

let run ?(out_dir = "results") ?(seed = 2009) ?(graphs = 8) ?(eps = 1)
    ?(latency_factor = 1.5) () =
  let throughput = Paper_workload.throughput ~eps in
  let rows =
    List.filter_map
      (fun granularity ->
        let kept = ref [] and fraction = ref [] in
        for rep = 0 to graphs - 1 do
          let rng = Rng.create ~seed:(seed + (3571 * rep)) in
          let inst = Spec.generate Spec.default ~rng ~granularity () in
          let dag = inst.Paper_workload.dag and plat = inst.Paper_workload.plat in
          match Rltf.schedule (Types.problem ~dag ~platform:plat ~eps ~throughput) with
          | Error _ -> ()
          | Ok reference -> (
              let latency_bound =
                latency_factor *. Metrics.latency_bound reference ~throughput
              in
              match
                Platform_cost.minimize ~latency_bound ~dag ~platform:plat ~eps
                  ~throughput ()
              with
              | None -> ()
              | Some r ->
                  kept := float_of_int (List.length r.Platform_cost.kept) :: !kept;
                  fraction :=
                    (r.Platform_cost.cost /. r.Platform_cost.full_cost)
                    :: !fraction)
        done;
        match (Stats.summarize_opt !kept, Stats.summarize_opt !fraction) with
        | Some kept_procs, Some cost_fraction ->
            Some { granularity; kept_procs; cost_fraction }
        | _ -> None)
      [ 0.6; 1.0; 1.6 ]
  in
  Printf.printf
    "Platform cost minimization (eps=%d, latency budget %.1fx, %d graphs):\n"
    eps latency_factor graphs;
  Ascii_table.print
    ~header:[ "g"; "processors kept (of 20)"; "cost fraction" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.1f" r.granularity;
           Printf.sprintf "%.1f" r.kept_procs.Stats.mean;
           Printf.sprintf "%.2f" r.cost_fraction.Stats.mean;
         ])
       rows);
  Csv.write
    ~path:(Filename.concat out_dir "fig-cost.csv")
    ~header:[ "granularity"; "kept_procs"; "cost_fraction" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.2f" r.granularity;
           Printf.sprintf "%.3f" r.kept_procs.Stats.mean;
           Printf.sprintf "%.4f" r.cost_fraction.Stats.mean;
         ])
       rows);
  rows
