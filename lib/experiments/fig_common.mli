(** Shared data collection for the §5 figures.

    One pass over (granularity × random graph) collects everything Figures
    3 and 4 need — latency upper bounds, simulated 0-crash latencies,
    simulated latencies under [c] random crashes, and the fault-free
    reference latency — so each figure is an aggregation of the same
    sample set, exactly as in the paper.

    With {!Obs.enabled} on, every trial records an [exp.trial] span and an
    [exp.trials] counter (plus whatever the algorithms and the simulator
    record underneath); the instrumentation never changes the samples. *)

type config = {
  seed : int;
  graphs_per_point : int;  (** the paper uses 60 *)
  eps : int;
  crashes : int;           (** c, the number of failed processors *)
  crash_draws : int;       (** crash samples averaged per graph *)
  exact : bool;
      (** replace the [crash_draws] Monte-Carlo estimates with the
          {!Reliability} calculus: the [crash] and [defeat_rate] columns
          become exact expectations over all [choose (m, c)] failure sets
          and consume no randomness.  Default [false] — the sampled
          outputs stay byte-identical. *)
  spec : Spec.t;
  sched : Scheduler.options;  (** options for LTF/R-LTF and the reference *)
  granularities : float list;
}

val default : eps:int -> crashes:int -> config
(** Paper parameters: 60 graphs/point, 3 crash draws, best-effort mode,
    granularities 0.2 … 2.0. *)

val quick : eps:int -> crashes:int -> config
(** A fast variant (8 graphs/point) for tests and smoke runs. *)

(** One point of the sweep: a trial is a {e pure} function of this record
    — its whole RNG stream is derived from {!trial_seed} — which is what
    makes the parallel [collect] bit-identical to the sequential one. *)
type trial = {
  config : config;
  granularity : float;
  rep : int;  (** graph index within the point, [0 .. graphs_per_point-1] *)
}

val trials : config -> trial list
(** All (granularity × rep) trials, in (granularity, rep) order — the
    order [collect] returns samples in. *)

val trial_seed : trial -> int
(** The per-trial root seed, derived from [config.seed], the granularity
    and the rep index. *)

(** What one algorithm measured on one instance; [nan] marks a quantity
    that could not be measured (scheduling failure, lost exit task). *)
type trial_result = {
  bound : float;   (** (2S−1)/T for the mapping *)
  sim : float;     (** simulated 0-crash latency *)
  crash : float;   (** mean simulated latency under [crashes] failures *)
  defeat_rate : float;
      (** fraction of crash draws that defeated the mapping (an exit task
          lost all replicas); [nan] when [crashes = 0] *)
  meets : bool;    (** the mapping satisfies the desired throughput *)
}

val no_result : trial_result
(** All-[nan] (and [meets = false]): the algorithm failed to schedule. *)

(** Everything measured on one random graph at one granularity. *)
type sample = {
  granularity : float;
  ltf : trial_result;
  rltf : trial_result;
  ff_sim : float;  (** fault-free (ε = 0 R-LTF) simulated latency *)
}

(** Named accessors, shaped for {!mean_series} / {!Stats.mean_by} — figure
    modules compose these instead of destructuring the records. *)

val ltf_bound : sample -> float
val ltf_sim : sample -> float
val ltf_crash : sample -> float
val ltf_meets : sample -> bool
val rltf_bound : sample -> float
val rltf_sim : sample -> float
val rltf_crash : sample -> float
val rltf_meets : sample -> bool
val ltf_defeat_rate : sample -> float
val rltf_defeat_rate : sample -> float
val ff_sim : sample -> float

val measure_algo :
  config ->
  throughput:float ->
  rng:Rng.t ->
  (Mapping.t, 'e) result ->
  trial_result
(** Measurements for one algorithm's outcome.  All crash draws come from
    [rng] and nothing else, so independent streams give independent
    measurements (exposed for the regression tests). *)

val run_trial : trial -> sample
(** Generate the trial's instance and measure LTF, R-LTF and the
    fault-free reference on it. *)

val collect : ?jobs:int -> config -> sample list
(** Samples in (granularity, graph index) order; deterministic in
    [config.seed].  [jobs] (default 1) is the number of worker domains:
    [jobs = 1] runs sequentially without spawning any domain, and every
    value of [jobs] yields byte-for-byte identical output. *)

val by_granularity : sample list -> (float * sample list) list
(** Group in increasing granularity. *)

val mean_series :
  label:string -> (sample -> float) -> sample list -> Ascii_plot.series
(** Per-granularity mean of the (non-NaN) projection. *)
