type row = {
  granularity : float;
  desired_throughput : float;
  sustained : Stats.summary;
  steady_latency : Stats.summary;
  stage_model : Stats.summary;
}

let run ?(out_dir = "results") ?(seed = 2009) ?(graphs = 10) ?(items = 30)
    ?(eps = 1) () =
  let throughput = Paper_workload.throughput ~eps in
  let rows =
    List.filter_map
      (fun granularity ->
        let sustained = ref [] and steady = ref [] and model = ref [] in
        for rep = 0 to graphs - 1 do
          let rng = Rng.create ~seed:(seed + (6151 * rep)) in
          let inst = Spec.generate Spec.default ~rng ~granularity () in
          let prob =
            Types.problem ~dag:inst.Paper_workload.dag
              ~platform:inst.Paper_workload.plat ~eps ~throughput
          in
          match Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob with
          | Error _ -> ()
          | Ok mapping ->
              (* Only schedules that analytically meet the desired period
                 are expected to sustain it. *)
              if Metrics.meets_throughput mapping ~throughput then begin
                let result =
                  Engine.run ~n_items:items ~period:(1.0 /. throughput) mapping
                in
                (match Engine.sustained_throughput result with
                | Some t -> sustained := t :: !sustained
                | None -> ());
                (match result.Engine.item_latency.(items - 1) with
                | Some l -> steady := l :: !steady
                | None -> ());
                match Stage_latency.latency mapping ~throughput with
                | Some l -> model := l :: !model
                | None -> ()
              end
        done;
        match
          ( Stats.summarize_opt !sustained,
            Stats.summarize_opt !steady,
            Stats.summarize_opt !model )
        with
        | Some sustained, Some steady_latency, Some stage_model ->
            Some
              {
                granularity;
                desired_throughput = throughput;
                sustained;
                steady_latency;
                stage_model;
              }
        | _ -> None)
      [ 0.4; 1.0; 1.6 ]
  in
  Printf.printf
    "Pipelined event-driven validation (eps=%d, %d items/stream):\n" eps items;
  Ascii_table.print
    ~header:
      [
        "g"; "desired T"; "sustained T"; "steady latency"; "stage model bound";
      ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.1f" r.granularity;
           Printf.sprintf "%.4f" r.desired_throughput;
           Printf.sprintf "%.4f" r.sustained.Stats.mean;
           Printf.sprintf "%.1f" r.steady_latency.Stats.mean;
           Printf.sprintf "%.1f" r.stage_model.Stats.mean;
         ])
       rows);
  Csv.write
    ~path:(Filename.concat out_dir "fig-pipeline.csv")
    ~header:
      [ "granularity"; "desired_T"; "sustained_T"; "steady_latency"; "stage_model" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.2f" r.granularity;
           Printf.sprintf "%.6f" r.desired_throughput;
           Printf.sprintf "%.6f" r.sustained.Stats.mean;
           Printf.sprintf "%.3f" r.steady_latency.Stats.mean;
           Printf.sprintf "%.3f" r.stage_model.Stats.mean;
         ])
       rows);
  rows
