(** Registry of the reproducible experiments, used by
    [bin/experiments.exe] and the integration tests. *)

type experiment = {
  name : string;        (** CLI name, e.g. "fig3a" *)
  description : string;
  run :
    workload:string option ->
    quick:bool ->
    seed:int ->
    jobs:int ->
    exact:bool ->
    out_dir:string ->
    unit;
      (** [workload] names a {!Spec} by spec string (e.g.
          ["paper-fan-in-out"], ["huge:v=5000:m=50"]) for the
          experiments that sweep a {!Fig_common.config}; the others run
          their fixed workload and ignore it.  [quick] shrinks the
          per-point replication for smoke runs; [jobs] is the
          worker-domain count for the sample sweeps (1 = sequential; the
          output never depends on it); [exact] switches the crash
          columns of fig3c/fig4c to the {!Reliability} calculus and adds
          the analytic survival curve to "recovery" (experiments without
          an exact mode ignore it) *)
}

val all : experiment list
(** fig3a fig3b fig3c fig4a fig4b fig4c examples baselines complexity
    symmetric ablation pipeline optgap families topology cost recovery
    convergence latency — in that order.  Every experiment runs under an
    [exp.fig.<name>] span when {!Obs.enabled} is on; ["latency"]
    combines the fig3a sweep with an event-driven replay so one
    profiling run exercises the scheduler, the simulator and the sweep
    machinery together, and ["convergence"] cross-validates the crash
    sampler against the exact calculus. *)

val find : string -> experiment option

val names : string list
