type point = {
  v : int;
  e : int;
  m : int;
  eps : int;
  seconds : float;
}

let time_once f =
  let t0 = Sys.time () in
  ignore (f ());
  Sys.time () -. t0

let measure ~repetitions f =
  Stats.median (List.init (max 1 repetitions) (fun _ -> time_once f))

let run ?(out_dir = "results") ?(seed = 2009) ?(repetitions = 3) () =
  let make_point ~tasks ~m ~eps rep_seed =
    let rng = Rng.create ~seed:rep_seed in
    let spec =
      Spec.paper
        { Paper_workload.default_spec with Paper_workload.m; tasks_range = (tasks, tasks) }
    in
    let inst = Spec.generate spec ~rng ~granularity:1.0 () in
    let throughput =
      (* keep per-processor pressure constant across sizes *)
      Paper_workload.throughput ~eps
      *. (100.0 /. float_of_int tasks)
      *. (float_of_int m /. 20.0)
    in
    let prob =
      Types.problem ~dag:inst.Paper_workload.dag
        ~platform:inst.Paper_workload.plat ~eps ~throughput
    in
    let seconds =
      measure ~repetitions (fun () -> Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob)
    in
    {
      v = Dag.size inst.Paper_workload.dag;
      e = Dag.n_edges inst.Paper_workload.dag;
      m;
      eps;
      seconds;
    }
  in
  let v_sweep =
    List.map (fun tasks -> make_point ~tasks ~m:20 ~eps:1 (seed + tasks))
      [ 50; 100; 200; 400; 800 ]
  in
  let m_sweep =
    List.map (fun m -> make_point ~tasks:100 ~m ~eps:1 (seed + (31 * m)))
      [ 5; 10; 20; 40; 80 ]
  in
  let eps_sweep =
    List.map (fun eps -> make_point ~tasks:100 ~m:20 ~eps (seed + (97 * eps)))
      [ 0; 1; 2; 3; 4 ]
  in
  let show title points =
    Printf.printf "%s\n" title;
    Ascii_table.print
      ~header:[ "v"; "e"; "m"; "eps"; "seconds"; "sec/(e*m*(eps+1)^2)" ]
      (List.map
         (fun p ->
           let norm =
             p.seconds
             /. (float_of_int p.e *. float_of_int p.m
                *. (float_of_int (p.eps + 1) ** 2.0))
           in
           [
             string_of_int p.v;
             string_of_int p.e;
             string_of_int p.m;
             string_of_int p.eps;
             Printf.sprintf "%.4f" p.seconds;
             Printf.sprintf "%.2e" norm;
           ])
         points)
  in
  show "LTF runtime vs task count (m=20, eps=1):" v_sweep;
  show "LTF runtime vs processor count (v=100, eps=1):" m_sweep;
  show "LTF runtime vs eps (v=100, m=20):" eps_sweep;
  let all = v_sweep @ m_sweep @ eps_sweep in
  Csv.write
    ~path:(Filename.concat out_dir "fig-complexity.csv")
    ~header:[ "v"; "e"; "m"; "eps"; "seconds" ]
    (List.map
       (fun p ->
         [
           string_of_int p.v;
           string_of_int p.e;
           string_of_int p.m;
           string_of_int p.eps;
           Printf.sprintf "%.6f" p.seconds;
         ])
       all);
  all
