type config = {
  seed : int;
  graphs_per_point : int;
  eps : int;
  crashes : int;
  crash_draws : int;
  exact : bool;
  spec : Spec.t;
  sched : Scheduler.options;
  granularities : float list;
}

let default ~eps ~crashes =
  {
    seed = 2009;
    graphs_per_point = 60;
    eps;
    crashes;
    crash_draws = 3;
    exact = false;
    spec = Spec.default;
    sched = Scheduler.(default |> with_mode Best_effort);
    granularities = Paper_workload.granularities;
  }

let quick ~eps ~crashes =
  { (default ~eps ~crashes) with graphs_per_point = 8 }

type trial = {
  config : config;
  granularity : float;
  rep : int;
}

let trial_seed (t : trial) =
  t.config.seed + (1_000_003 * t.rep) + int_of_float (t.granularity *. 1_000.0)

let trials config =
  List.concat_map
    (fun granularity ->
      List.init config.graphs_per_point (fun rep -> { config; granularity; rep }))
    config.granularities

type trial_result = {
  bound : float;
  sim : float;
  crash : float;
  defeat_rate : float;
  meets : bool;
}

let no_result =
  { bound = nan; sim = nan; crash = nan; defeat_rate = nan; meets = false }

type sample = {
  granularity : float;
  ltf : trial_result;
  rltf : trial_result;
  ff_sim : float;
}

let ltf_bound s = s.ltf.bound
let ltf_sim s = s.ltf.sim
let ltf_crash s = s.ltf.crash
let ltf_meets s = s.ltf.meets
let rltf_bound s = s.rltf.bound
let rltf_sim s = s.rltf.sim
let rltf_crash s = s.rltf.crash
let rltf_meets s = s.rltf.meets
let ltf_defeat_rate s = s.ltf.defeat_rate
let rltf_defeat_rate s = s.rltf.defeat_rate
let ff_sim s = s.ff_sim

let of_option = function Some v -> v | None -> nan

let measure_algo config ~throughput ~rng outcome =
  match outcome with
  | Error _ -> no_result
  | Ok mapping ->
      let bound = Metrics.latency_bound mapping ~throughput in
      (* One compiled plan serves the fault-free measurement and every
         crash draw of this mapping — fetched through the shared plan
         cache, so re-measuring the same mapping content (convergence
         sweeps, repeated trials) skips even the compile. *)
      let plan = Stage_latency.cached_plan mapping in
      let sim = of_option (Stage_latency.latency_of_plan plan ~throughput) in
      (* The stats variant consumes the exact same draws as the plain
         mean, so adding the defeat rate changes no measured value.  In
         exact mode the same two columns come from the availability
         calculus instead — no randomness consumed, no draws taken. *)
      let crash, defeat_rate =
        if config.crashes = 0 then (sim, nan)
        else if config.exact then
          let exact =
            Stage_latency.exact_crash_latency_stats ~crashes:config.crashes
              ~throughput mapping
          in
          (of_option exact.Crash.degraded_mean, exact.Crash.p_defeat)
        else
          let stats =
            Stage_latency.mean_crash_latency_stats_of_plan
              ~rand_int:(fun bound -> Rng.int rng bound)
              ~crashes:config.crashes ~runs:config.crash_draws ~throughput
              plan
          in
          (of_option stats.Crash.mean, Crash.defeat_rate stats)
      in
      {
        bound;
        sim;
        crash;
        defeat_rate;
        meets = Metrics.meets_throughput mapping ~throughput;
      }

(* A trial is a pure function of its record: every random draw comes from
   streams derived from [trial_seed], which is what lets [collect] farm
   trials out to a domain pool without changing a single bit of output.
   The instrumentation below is observational only — it consumes no
   randomness and touches no measured value. *)
let run_trial (t : trial) =
  Obs.with_span "exp.trial" (fun () ->
      Obs.incr "exp.trials";
      let config = t.config and granularity = t.granularity in
      let throughput = Spec.throughput config.spec ~eps:config.eps in
      (* Independent, reproducible stream per (granularity, graph). *)
      let rng = Rng.create ~seed:(trial_seed t) in
      let inst = Spec.generate config.spec ~rng ~granularity () in
      (* Each algorithm measures on its own child stream: R-LTF's crash
         draws must not depend on how many draws LTF consumed (or on
         whether LTF scheduled at all).  Both splits happen before any
         measurement. *)
      let ltf_rng = Rng.split rng in
      let rltf_rng = Rng.split rng in
      let prob =
        Types.problem ~dag:inst.Paper_workload.dag
          ~platform:inst.Paper_workload.plat ~eps:config.eps ~throughput
      in
      let ltf =
        measure_algo config ~throughput ~rng:ltf_rng
          (Ltf.schedule ~opts:config.sched prob)
      in
      let rltf =
        measure_algo config ~throughput ~rng:rltf_rng
          (Rltf.schedule ~opts:config.sched prob)
      in
      (* The fault-free reference is an ε = 0 schedule, so its desired
         throughput follows the same rule with ε = 0: T = 1/10. *)
      let ff_throughput = Spec.throughput config.spec ~eps:0 in
      let ff_sim =
        match
          Fault_free.run ~opts:config.sched ~dag:inst.Paper_workload.dag
            ~platform:inst.Paper_workload.plat ~throughput:ff_throughput ()
        with
        | Error _ -> nan
        | Ok ff ->
            of_option
              (Stage_latency.latency_of_plan (Stage_latency.cached_plan ff)
                 ~throughput:ff_throughput)
      in
      { granularity; ltf; rltf; ff_sim })

let collect ?(jobs = 1) config =
  Parallel.map_seeded ~jobs run_trial (trials config)

let by_granularity samples =
  let table = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let existing = try Hashtbl.find table s.granularity with Not_found -> [] in
      Hashtbl.replace table s.granularity (s :: existing))
    samples;
  Hashtbl.fold (fun g ss acc -> (g, List.rev ss) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mean_series ~label proj samples =
  let points =
    by_granularity samples
    |> List.map (fun (g, ss) -> (g, Stats.mean_by proj ss))
  in
  { Ascii_plot.label; points }
