type config = {
  seed : int;
  graphs_per_point : int;
  eps : int;
  crashes : int;
  crash_draws : int;
  spec : Paper_workload.spec;
  mode : Scheduler.mode;
  granularities : float list;
}

let default ~eps ~crashes =
  {
    seed = 2009;
    graphs_per_point = 60;
    eps;
    crashes;
    crash_draws = 3;
    spec = Paper_workload.default_spec;
    mode = Scheduler.Best_effort;
    granularities = Paper_workload.granularities;
  }

let quick ~eps ~crashes =
  { (default ~eps ~crashes) with graphs_per_point = 8 }

type trial = {
  config : config;
  granularity : float;
  rep : int;
}

let trial_seed (t : trial) =
  t.config.seed + (1_000_003 * t.rep) + int_of_float (t.granularity *. 1_000.0)

let trials config =
  List.concat_map
    (fun granularity ->
      List.init config.graphs_per_point (fun rep -> { config; granularity; rep }))
    config.granularities

type sample = {
  granularity : float;
  ltf_bound : float;
  ltf_sim : float;
  ltf_crash : float;
  ltf_meets : bool;
  rltf_bound : float;
  rltf_sim : float;
  rltf_crash : float;
  rltf_meets : bool;
  ff_sim : float;
}

let of_option = function Some v -> v | None -> nan

let measure_algo config ~throughput ~rng outcome =
  match outcome with
  | Error _ -> (nan, nan, nan, false)
  | Ok mapping ->
      let bound = Metrics.latency_bound mapping ~throughput in
      let sim = of_option (Stage_latency.latency mapping ~throughput) in
      let crash =
        if config.crashes = 0 then sim
        else
          of_option
            (Stage_latency.mean_crash_latency
               ~rand_int:(fun bound -> Rng.int rng bound)
               ~crashes:config.crashes ~runs:config.crash_draws ~throughput
               mapping)
      in
      (bound, sim, crash, Metrics.meets_throughput mapping ~throughput)

(* A trial is a pure function of its record: every random draw comes from
   streams derived from [trial_seed], which is what lets [collect] farm
   trials out to a domain pool without changing a single bit of output. *)
let run_trial (t : trial) =
  let config = t.config and granularity = t.granularity in
  let throughput = Paper_workload.throughput ~eps:config.eps in
  (* Independent, reproducible stream per (granularity, graph). *)
  let rng = Rng.create ~seed:(trial_seed t) in
  let inst = Paper_workload.instance ~spec:config.spec ~rng ~granularity () in
  (* Each algorithm measures on its own child stream: R-LTF's crash draws
     must not depend on how many draws LTF consumed (or on whether LTF
     scheduled at all).  Both splits happen before any measurement. *)
  let ltf_rng = Rng.split rng in
  let rltf_rng = Rng.split rng in
  let prob =
    Types.problem ~dag:inst.Paper_workload.dag
      ~platform:inst.Paper_workload.plat ~eps:config.eps ~throughput
  in
  let ltf_bound, ltf_sim, ltf_crash, ltf_meets =
    measure_algo config ~throughput ~rng:ltf_rng (Ltf.run ~mode:config.mode prob)
  in
  let rltf_bound, rltf_sim, rltf_crash, rltf_meets =
    measure_algo config ~throughput ~rng:rltf_rng
      (Rltf.run ~mode:config.mode prob)
  in
  (* The fault-free reference is an ε = 0 schedule, so its desired
     throughput follows the same rule with ε = 0: T = 1/10. *)
  let ff_throughput = Paper_workload.throughput ~eps:0 in
  let ff_sim =
    match
      Fault_free.run ~mode:config.mode ~dag:inst.Paper_workload.dag
        ~platform:inst.Paper_workload.plat ~throughput:ff_throughput ()
    with
    | Error _ -> nan
    | Ok ff -> of_option (Stage_latency.latency ff ~throughput:ff_throughput)
  in
  {
    granularity;
    ltf_bound;
    ltf_sim;
    ltf_crash;
    ltf_meets;
    rltf_bound;
    rltf_sim;
    rltf_crash;
    rltf_meets;
    ff_sim;
  }

let collect ?(jobs = 1) config =
  Parallel.map_seeded ~jobs run_trial (trials config)

let by_granularity samples =
  let table = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let existing = try Hashtbl.find table s.granularity with Not_found -> [] in
      Hashtbl.replace table s.granularity (s :: existing))
    samples;
  Hashtbl.fold (fun g ss acc -> (g, List.rev ss) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mean_series ~label proj samples =
  let points =
    by_granularity samples
    |> List.map (fun (g, ss) ->
           let values =
             List.filter_map
               (fun s ->
                 let v = proj s in
                 if Float.is_nan v then None else Some v)
               ss
           in
           (g, match values with [] -> nan | _ -> Stats.mean values))
  in
  { Ascii_plot.label; points }
