(* The hazard is swept in crashes per processor per 1000 injected items,
   and the horizon / reconfiguration delay are expressed in items too:
   different algorithms run at different periods (ε = 0 baselines inject
   twice as fast as an ε = 1 schedule under the 1/(10(ε+1)) rule), and
   item-denominated knobs expose every algorithm to the same failure
   pressure per unit of delivered work. *)
type config = {
  seed : int;
  reps : int;  (** random graphs per sweep point *)
  hazards : float list;  (** crashes per processor per 1000 items *)
  horizon_items : int;
  reconfig_items : float;  (** downtime per recovery attempt, in items *)
  eps : int;  (** replication degree for LTF / R-LTF *)
  exact : bool;  (** also emit the analytic no-recovery survival curve *)
  spec : Spec.t;
}

(* A deliberately smaller workload than the figure sweeps: an operations
   timeline replays hundreds of items through the event-driven engine,
   so the per-trial cost is a long horizon rather than a big graph. *)
let spec =
  Spec.paper ~name:"paper-recovery" ~descr:"reduced scale for the event engine"
    {
      Paper_workload.default_spec with
      Paper_workload.tasks_range = (30, 60);
      m = 12;
    }

let default =
  {
    seed = 2009;
    reps = 10;
    hazards = [ 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0 ];
    horizon_items = 200;
    reconfig_items = 2.0;
    eps = 1;
    exact = false;
    spec;
  }

let quick =
  {
    default with
    reps = 3;
    hazards = [ 0.1; 0.5; 2.0 ];
    horizon_items = 60;
  }

type algo = {
  label : string;
  algo_eps : int;
  schedule : Types.problem -> Types.outcome;
}

let algorithms ~eps =
  let opts = Scheduler.(default |> with_mode Best_effort) in
  let baseline name =
    match Baseline_registry.find name with
    | Some (module A : Scheduler.Algo) ->
        { label = A.name; algo_eps = 0; schedule = A.run ~opts }
    | None -> invalid_arg ("Fig_recovery: unknown baseline " ^ name)
  in
  [
    {
      label = Printf.sprintf "R-LTF (eps=%d)" eps;
      algo_eps = eps;
      schedule = Rltf.schedule ~opts;
    };
    {
      label = Printf.sprintf "LTF (eps=%d)" eps;
      algo_eps = eps;
      schedule = Ltf.schedule ~opts;
    };
    baseline "HEFT [9]";
    baseline "Hary-Ozguner [4]";
  ]

(* What one algorithm's timeline contributed to one sweep point. *)
type point = {
  availability : float;
  degraded_latency : float;
  had_outage : float;  (** 0/1, so the mean is the outage rate *)
}

let measure config ~hazard_per_kitem ~rng algo inst =
  let throughput = Paper_workload.throughput ~eps:algo.algo_eps in
  let prob =
    Types.problem ~dag:inst.Paper_workload.dag
      ~platform:inst.Paper_workload.plat ~eps:algo.algo_eps ~throughput
  in
  match algo.schedule prob with
  | Error _ -> None
  | Ok mapping ->
      (* The mapping's effective period converts the item-denominated
         knobs into the absolute time units the ops simulator runs in. *)
      let p = Float.max (1.0 /. throughput) (Metrics.period mapping) in
      let ops_config =
        {
          Stream_ops.horizon = float_of_int config.horizon_items *. p;
          hazard =
            Failure_gen.uniform ~lambda:(hazard_per_kitem /. (1000.0 *. p));
          max_attempts = None;
          reconfig_delay = config.reconfig_items *. p;
          max_items_per_epoch = config.horizon_items + 8;
          overload = None;
          faults = None;
        }
      in
      let report = Stream_ops.run ~config:ops_config ~rng ~throughput mapping in
      Some
        {
          availability = report.Stream_ops.availability;
          degraded_latency = report.Stream_ops.degraded_mean_latency;
          had_outage = (if report.Stream_ops.outage then 1.0 else 0.0);
        }

type trial = { hazard_per_kitem : float; rep : int }

(* The trial seed ignores the hazard on purpose: with equal RNG state the
   failure generator's quanta are identical across sweep points (common
   random numbers), so each curve moves along the sweep because of the
   rate, never because of resampling noise. *)
let run_trial config t =
  let rng = Rng.create ~seed:(config.seed + (7919 * t.rep)) in
  let inst =
    Spec.generate config.spec ~rng ~granularity:1.0 ()
  in
  let algos = algorithms ~eps:config.eps in
  (* Every algorithm draws from its own child stream, split in fixed
     order before any scheduling, so adding or reordering measurements
     never perturbs another algorithm's timeline. *)
  let rngs = List.map (fun _ -> Rng.split rng) algos in
  List.map2
    (fun algo algo_rng ->
      ( algo.label,
        measure config ~hazard_per_kitem:t.hazard_per_kitem ~rng:algo_rng algo
          inst ))
    algos rngs

let mean proj points =
  let vals =
    List.filter_map
      (fun p ->
        let v = proj p in
        if Float.is_nan v then None else Some v)
      points
  in
  match vals with
  | [] -> nan
  | _ ->
      List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)

let series config results proj =
  let labels = List.map (fun a -> a.label) (algorithms ~eps:config.eps) in
  List.map
    (fun label ->
      let points =
        List.map
          (fun hazard ->
            let here =
              List.concat_map
                (fun (t, measured) ->
                  if t.hazard_per_kitem <> hazard then []
                  else
                    List.filter_map
                      (fun (l, m) -> if l = label then m else None)
                      measured)
                results
            in
            (hazard, mean proj here))
          config.hazards
      in
      { Ascii_plot.label; points })
    labels

let csv path series_list =
  match series_list with
  | [] -> ()
  | first :: _ ->
      let xs = List.map fst first.Ascii_plot.points in
      let rows =
        List.map
          (fun x ->
            x
            :: List.map
                 (fun s ->
                   match List.assoc_opt x s.Ascii_plot.points with
                   | Some y -> y
                   | None -> nan)
                 series_list)
          xs
      in
      Csv.write_floats ~path
        ~header:
          ("crashes_per_proc_per_kitem"
          :: List.map (fun s -> s.Ascii_plot.label) series_list)
        rows

(* Analytic no-recovery reference: each processor fails within the
   horizon independently with q = 1 - exp(-lambda), lambda = hazard *
   horizon / 1000 (the same Poisson process Failure_gen draws from), and
   the calculus gives the exact probability that the static schedule is
   never defeated.  Timelines with recovery must sit above this curve;
   the gap is what recovery buys. *)
let exact_survival_series config =
  let algos = algorithms ~eps:config.eps in
  (* Same seed derivation as [run_trial], so the analytic curve covers
     exactly the graphs the timelines ran on. *)
  let analyses =
    List.init config.reps (fun rep ->
        let rng = Rng.create ~seed:(config.seed + (7919 * rep)) in
        let inst =
          Spec.generate config.spec ~rng ~granularity:1.0 ()
        in
        List.map
          (fun algo ->
            let throughput = Paper_workload.throughput ~eps:algo.algo_eps in
            let prob =
              Types.problem ~dag:inst.Paper_workload.dag
                ~platform:inst.Paper_workload.plat ~eps:algo.algo_eps
                ~throughput
            in
            match algo.schedule prob with
            | Error _ -> (algo.label, None)
            | Ok mapping -> (algo.label, Some (Reliability.analyze mapping)))
          algos)
  in
  List.map
    (fun algo ->
      let points =
        List.map
          (fun hazard ->
            let lambda =
              hazard *. float_of_int config.horizon_items /. 1000.0
            in
            let q = 1.0 -. exp (-.lambda) in
            let survivals =
              List.filter_map
                (fun per_algo ->
                  match List.assoc algo.label per_algo with
                  | None -> None
                  | Some t ->
                      Some
                        (Reliability.survival_probability t
                           (Reliability.Independent (fun _ -> q))))
                analyses
            in
            (hazard, mean Fun.id survivals))
          config.hazards
      in
      { Ascii_plot.label = algo.label; points })
    algos

let run ?(out_dir = "results") ?(jobs = 1) ~(config : config) () =
  let trials =
    List.concat_map
      (fun hazard_per_kitem ->
        List.init config.reps (fun rep -> { hazard_per_kitem; rep }))
      config.hazards
  in
  (* A trial is a pure function of its record (the RNG stream derives
     from the seed and rep alone), so the sweep runs on the domain pool
     with bit-identical output for every [jobs]. *)
  let measured = Parallel.map_seeded ~jobs (run_trial config) trials in
  let results = List.combine trials measured in
  let availability = series config results (fun p -> p.availability) in
  let latency = series config results (fun p -> p.degraded_latency) in
  let outages = series config results (fun p -> p.had_outage *. 100.0) in
  Ascii_plot.print
    ~title:
      (Printf.sprintf
         "Availability vs failure pressure (eps=%d, %d items, %d graphs/point)"
         config.eps config.horizon_items config.reps)
    ~x_label:"crashes/proc/1000 items" ~y_label:"availability" availability;
  Fig_latency.table_of_series availability;
  Ascii_plot.print
    ~title:"Mean degraded-mode latency vs failure pressure"
    ~x_label:"crashes/proc/1000 items" ~y_label:"latency" latency;
  Fig_latency.table_of_series latency;
  Printf.printf "Outage rate (%% of timelines):\n";
  Fig_latency.table_of_series outages;
  csv (Filename.concat out_dir "fig-recovery-availability.csv") availability;
  csv (Filename.concat out_dir "fig-recovery-latency.csv") latency;
  csv (Filename.concat out_dir "fig-recovery-outages.csv") outages;
  if config.exact then begin
    let survival = exact_survival_series config in
    Ascii_plot.print
      ~title:
        "Exact no-recovery survival probability (analytic, same instances)"
      ~x_label:"crashes/proc/1000 items" ~y_label:"P(never defeated)" survival;
    Fig_latency.table_of_series survival;
    csv (Filename.concat out_dir "fig-recovery-exact-survival.csv") survival
  end;
  (availability, latency)
