type row = {
  topology : string;
  algo : string;
  stages : Stats.summary;
  latency : Stats.summary;
  messages : Stats.summary;
  meets : int;
}

(* Three 16-processor platforms with the same total off-diagonal
   bandwidth, so differences come from structure, not capacity. *)
let topologies () =
  [
    ("uniform", Platform.homogeneous ~name:"uniform16" ~m:16 ~speed:1.0 ~bandwidth:1.0 ());
    ( "clustered",
      Topologies.clustered ~name:"clustered16" ~clusters:4 ~per_cluster:4
        ~speed:1.0 ~intra_bandwidth:3.4 ~inter_bandwidth:0.4 () );
    ( "star",
      Topologies.star ~name:"star16" ~m:16 ~speed:1.0 ~hub_bandwidth:3.0
        ~leaf_bandwidth:0.571 () );
  ]

let run ?(out_dir = "results") ?(seed = 2009) ?(graphs = 12) () =
  let eps = 1 in
  let throughput = Paper_workload.throughput ~eps in
  let rows = ref [] in
  List.iter
    (fun (topo_name, plat) ->
      let acc = Hashtbl.create 4 in
      let record algo stages latency messages meets_t =
        let s, l, msg, meets =
          try Hashtbl.find acc algo with Not_found -> ([], [], [], 0)
        in
        Hashtbl.replace acc algo
          ( stages :: s,
            latency :: l,
            messages :: msg,
            if meets_t then meets + 1 else meets )
      in
      for rep = 0 to graphs - 1 do
        let rng = Rng.create ~seed:(seed + (8191 * rep)) in
        (* same graphs across topologies: the rng stream only feeds the
           graph, the platform is fixed *)
        let spec =
          { Paper_workload.default_spec with Paper_workload.tasks_range = (40, 80) }
        in
        let tasks =
          let lo, hi = spec.Paper_workload.tasks_range in
          Rng.uniform_int rng ~lo ~hi
        in
        let dag = Random_dag.layered ~rng ~tasks () in
        let dag = Calibrate.calibrated dag plat ~granularity:1.0 in
        let prob = Types.problem ~dag ~platform:plat ~eps ~throughput in
        List.iter
          (fun (algo, outcome) ->
            match outcome with
            | Error _ -> ()
            | Ok m ->
                record algo
                  (float_of_int (Metrics.stage_depth m))
                  (Metrics.latency_bound m ~throughput)
                  (float_of_int (Mapping.n_messages m))
                  (Metrics.meets_throughput m ~throughput))
          [
            ("LTF", Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob);
            ("R-LTF", Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob);
          ]
      done;
      Hashtbl.iter
        (fun algo (s, l, msg, meets) ->
          rows :=
            {
              topology = topo_name;
              algo;
              stages = Stats.summarize s;
              latency = Stats.summarize l;
              messages = Stats.summarize msg;
              meets;
            }
            :: !rows)
        acc)
    (topologies ());
  let rows =
    List.sort (fun a b -> compare (a.topology, a.algo) (b.topology, b.algo)) !rows
  in
  Printf.printf "Topology sensitivity (eps=%d, g=1.0, %d graphs/topology):\n"
    eps graphs;
  Ascii_table.print
    ~header:[ "topology"; "algorithm"; "stages"; "latency"; "messages"; "meets T" ]
    (List.map
       (fun r ->
         [
           r.topology;
           r.algo;
           Printf.sprintf "%.1f" r.stages.Stats.mean;
           Printf.sprintf "%.0f" r.latency.Stats.mean;
           Printf.sprintf "%.0f" r.messages.Stats.mean;
           Printf.sprintf "%d/%d" r.meets graphs;
         ])
       rows);
  Csv.write
    ~path:(Filename.concat out_dir "fig-topology.csv")
    ~header:[ "topology"; "algorithm"; "stages"; "latency"; "messages"; "meets_T" ]
    (List.map
       (fun r ->
         [
           r.topology;
           r.algo;
           Printf.sprintf "%.3f" r.stages.Stats.mean;
           Printf.sprintf "%.3f" r.latency.Stats.mean;
           Printf.sprintf "%.3f" r.messages.Stats.mean;
           string_of_int r.meets;
         ])
       rows);
  rows
