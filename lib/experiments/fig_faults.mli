(** Extension M: fault injection — transient retry/backoff, gray
    stragglers, correlated failure domains, and escalation to eviction.

    Four parts over the same R-LTF schedules:

    - {b A} sweeps the per-attempt transient fault rate against the retry
      budget on a closed stream; retries are re-driven after a truncated
      exponential backoff (base 0.25 × period, ×2) and charged against
      the one-port model, so mean latency climbs with the fault rate at
      every fixed budget while delivery improves with the budget.
    - {b B} stretches the busiest processor by a gray straggler factor;
      latency degrades smoothly with no crash and no item lost (factor
      1.0 runs the instrumented path and matches the fault-free run).
    - {b C} sweeps the correlation strength ρ of rack-level common
      shocks at fixed per-processor marginal [p_total]: the exact
      Marshall–Olkin defeat probability ({!Reliability.Correlated}),
      a Monte-Carlo estimate over the same model, and the independent
      model of equal marginals as baseline.
    - {b D} runs the operations layer with a processor stuck in a
      permanent exec-fault window until the exhaustion ledger evicts it
      through the normal recovery chain.

    Equal seeds give bit-identical CSVs at any [jobs] (the fault draws
    hash a per-trial seed and the MC stream is split off before use, so
    every axis moves because of its knob — common random numbers). *)

type config = {
  seed : int;
  reps : int;  (** random graphs per sweep point *)
  fault_rates : float list;  (** per-attempt transient fault probability *)
  retry_budgets : int list;  (** max_retries values of the A sweep *)
  straggler_factors : float list;  (** gray slowdown factors of the B sweep *)
  rhos : float list;  (** correlation strengths of the C sweep *)
  p_total : float;  (** per-processor total failure probability of C *)
  rack_size : int;  (** processors per failure domain of C *)
  mc_draws : int;  (** Monte-Carlo draws per C point *)
  n_items : int;  (** items simulated per A/B run *)
  eps : int;  (** replication degree for R-LTF *)
  spec : Spec.t;
}

val default : config
(** Rates 0 → 0.2, budgets 0/1/3/5, factors 1 → 4, ρ 0 → 1 over racks of
    3 at [p_total] 0.08, 60 items, 4 graphs per point, 2000 MC draws. *)

val quick : config
(** Three rates, two budgets, two factors, three ρ, 24 items, 2 graphs,
    400 MC draws — the CI profile. *)

val run :
  ?out_dir:string ->
  ?jobs:int ->
  config:config ->
  unit ->
  Ascii_plot.series list * Ascii_plot.series list * Ascii_plot.series list
(** Run the four parts; prints the charts and the eviction-drill
    summary, writes [fig-faults-retry-{latency,delivered,count}.csv],
    [fig-faults-gray.csv] and [fig-faults-correlated.csv] under
    [out_dir], and returns the (retry-latency, gray, correlated) series
    lists. *)
