type summary = {
  n : int;
  mean : float;
  stddev : float;
  stderr : float;
  min : float;
  max : float;
}

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | values ->
      let n = List.length values in
      let fn = float_of_int n in
      let mean = List.fold_left ( +. ) 0.0 values /. fn in
      let sq_dev =
        List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values
      in
      let stddev = if n > 1 then sqrt (sq_dev /. (fn -. 1.0)) else 0.0 in
      {
        n;
        mean;
        stddev;
        stderr = (if n > 1 then stddev /. sqrt fn else 0.0);
        min = List.fold_left Float.min infinity values;
        max = List.fold_left Float.max neg_infinity values;
      }

let summarize_opt = function [] -> None | values -> Some (summarize values)

let mean values = (summarize values).mean

let mean_by proj items =
  let values =
    List.filter_map
      (fun x ->
        let v = proj x in
        if Float.is_nan v then None else Some v)
      items
  in
  match values with [] -> nan | _ -> mean values

let median values =
  match List.sort compare values with
  | [] -> invalid_arg "Stats.median: empty sample"
  | sorted ->
      let n = List.length sorted in
      let nth k = List.nth sorted k in
      if n mod 2 = 1 then nth (n / 2)
      else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

let pp_summary ppf s =
  Format.fprintf ppf "%.2f ± %.2f (n=%d)" s.mean s.stderr s.n
