type summary = {
  n : int;
  mean : float;
  stddev : float;
  stderr : float;
  min : float;
  max : float;
}

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | values ->
      let n = List.length values in
      let fn = float_of_int n in
      let mean = List.fold_left ( +. ) 0.0 values /. fn in
      let sq_dev =
        List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values
      in
      let stddev = if n > 1 then sqrt (sq_dev /. (fn -. 1.0)) else 0.0 in
      {
        n;
        mean;
        stddev;
        stderr = (if n > 1 then stddev /. sqrt fn else 0.0);
        min = List.fold_left Float.min infinity values;
        max = List.fold_left Float.max neg_infinity values;
      }

let summarize_opt = function [] -> None | values -> Some (summarize values)

let mean values = (summarize values).mean

let mean_by proj items =
  let values =
    List.filter_map
      (fun x ->
        let v = proj x in
        if Float.is_nan v then None else Some v)
      items
  in
  match values with [] -> nan | _ -> mean values

let median values =
  match List.sort compare values with
  | [] -> invalid_arg "Stats.median: empty sample"
  | sorted ->
      let n = List.length sorted in
      let nth k = List.nth sorted k in
      if n mod 2 = 1 then nth (n / 2)
      else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

(* Nan-on-empty policy (the Crash.defeat_rate discipline): an empty
   sample has no percentile, and [nan] propagates through downstream
   means and plots as a gap instead of silently reading as a value. *)
let percentile_sorted p a =
  if not (Float.is_finite p) || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p outside [0, 100]";
  let n = Array.length a in
  if n = 0 then nan
  else begin
    (* Linear interpolation between closest ranks (the R-7 / NumPy
       default): rank h = p/100 · (n - 1). *)
    let h = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = min (lo + 1) (n - 1) in
    a.(lo) +. ((h -. float_of_int lo) *. (a.(hi) -. a.(lo)))
  end

let percentile p values =
  let a = Array.of_list values in
  Array.sort compare a;
  percentile_sorted p a

type quantiles = {
  q_n : int;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

let quantiles values =
  let a = Array.of_list values in
  Array.sort compare a;
  {
    q_n = Array.length a;
    p50 = percentile_sorted 50.0 a;
    p95 = percentile_sorted 95.0 a;
    p99 = percentile_sorted 99.0 a;
    p999 = percentile_sorted 99.9 a;
  }

let pp_summary ppf s =
  Format.fprintf ppf "%.2f ± %.2f (n=%d)" s.mean s.stderr s.n
