type summary = {
  n : int;
  mean : float;
  stddev : float;
  stderr : float;
  min : float;
  max : float;
}

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | values ->
      let n = List.length values in
      let fn = float_of_int n in
      let mean = List.fold_left ( +. ) 0.0 values /. fn in
      let sq_dev =
        List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values
      in
      let stddev = if n > 1 then sqrt (sq_dev /. (fn -. 1.0)) else 0.0 in
      {
        n;
        mean;
        stddev;
        stderr = (if n > 1 then stddev /. sqrt fn else 0.0);
        min = List.fold_left Float.min infinity values;
        max = List.fold_left Float.max neg_infinity values;
      }

let summarize_opt = function [] -> None | values -> Some (summarize values)

let mean values = (summarize values).mean

let mean_by proj items =
  let values =
    List.filter_map
      (fun x ->
        let v = proj x in
        if Float.is_nan v then None else Some v)
      items
  in
  match values with [] -> nan | _ -> mean values

let median values =
  match List.sort compare values with
  | [] -> invalid_arg "Stats.median: empty sample"
  | sorted ->
      let n = List.length sorted in
      let nth k = List.nth sorted k in
      if n mod 2 = 1 then nth (n / 2)
      else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

(* Nan-on-empty policy (the Crash.defeat_rate discipline): an empty
   sample has no percentile, and [nan] propagates through downstream
   means and plots as a gap instead of silently reading as a value. *)
let percentile_sorted p a =
  if not (Float.is_finite p) || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p outside [0, 100]";
  let n = Array.length a in
  if n = 0 then nan
  else begin
    (* Linear interpolation between closest ranks (the R-7 / NumPy
       default): rank h = p/100 · (n - 1). *)
    let h = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = min (lo + 1) (n - 1) in
    a.(lo) +. ((h -. float_of_int lo) *. (a.(hi) -. a.(lo)))
  end

let percentile p values =
  let a = Array.of_list values in
  Array.sort compare a;
  percentile_sorted p a

type quantiles = {
  q_n : int;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

let quantiles values =
  let a = Array.of_list values in
  Array.sort compare a;
  {
    q_n = Array.length a;
    p50 = percentile_sorted 50.0 a;
    p95 = percentile_sorted 95.0 a;
    p99 = percentile_sorted 99.0 a;
    p999 = percentile_sorted 99.9 a;
  }

(* Expected-O(n) selection with three-way (Dutch-flag) partitioning and
   median-of-three pivots, so heavy duplicate runs — e.g. the latencies
   of a synchronous schedule, where thousands of items share one value —
   don't degrade to quadratic like Lomuto would.  Permutes [a]. *)
let nth_slice a ~len k =
  let swap i j =
    if i <> j then begin
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    end
  in
  let lo = ref 0 and hi = ref (len - 1) in
  while !lo < !hi do
    let l = !lo and h = !hi in
    let mid = l + ((h - l) / 2) in
    if a.(mid) < a.(l) then swap mid l;
    if a.(h) < a.(l) then swap h l;
    if a.(h) < a.(mid) then swap h mid;
    let pivot = a.(mid) in
    let lt = ref l and gt = ref h and i = ref l in
    while !i <= !gt do
      if a.(!i) < pivot then begin
        swap !i !lt;
        incr lt;
        incr i
      end
      else if a.(!i) > pivot then begin
        swap !i !gt;
        decr gt
      end
      else incr i
    done;
    if k < !lt then hi := !lt - 1
    else if k > !gt then lo := !gt + 1
    else begin
      lo := k;
      hi := k
    end
  done;
  a.(k)

let percentile_slice p a ~len =
  if not (Float.is_finite p) || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p outside [0, 100]";
  if len < 0 || len > Array.length a then
    invalid_arg "Stats.percentile_slice: len outside [0, length]";
  if len = 0 then nan
  else begin
    let h = p /. 100.0 *. float_of_int (len - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = min (lo + 1) (len - 1) in
    let vlo = nth_slice a ~len lo in
    let vhi = if hi = lo then vlo else nth_slice a ~len hi in
    vlo +. ((h -. float_of_int lo) *. (vhi -. vlo))
  end

let percentile_in_place p a = percentile_slice p a ~len:(Array.length a)

let quantiles_slice a ~len =
  {
    q_n = len;
    p50 = percentile_slice 50.0 a ~len;
    p95 = percentile_slice 95.0 a ~len;
    p99 = percentile_slice 99.0 a ~len;
    p999 = percentile_slice 99.9 a ~len;
  }

let quantiles_in_place a = quantiles_slice a ~len:(Array.length a)

type reservoir = {
  r_buf : float array;
  r_rand_int : int -> int;
  mutable r_seen : int;
}

let reservoir_create ~cap ~rand_int =
  if cap < 1 then invalid_arg "Stats.reservoir_create: cap < 1";
  { r_buf = Array.make cap 0.0; r_rand_int = rand_int; r_seen = 0 }

(* Algorithm R: once full, item i replaces a random slot with probability
   cap/i, so every item seen so far is in the buffer equiprobably. *)
let reservoir_add r x =
  if not (Float.is_nan x) then begin
    let cap = Array.length r.r_buf in
    r.r_seen <- r.r_seen + 1;
    if r.r_seen <= cap then r.r_buf.(r.r_seen - 1) <- x
    else begin
      let j = r.r_rand_int r.r_seen in
      if j < cap then r.r_buf.(j) <- x
    end
  end

let reservoir_count r = r.r_seen

let reservoir_quantiles r =
  let kept = min r.r_seen (Array.length r.r_buf) in
  (* Selecting over the prefix in place is safe: the reservoir is an
     unordered multiset, so permuting retained slots changes nothing. *)
  let q = quantiles_slice r.r_buf ~len:kept in
  (* Report the true sample size: the quantiles are estimates over the
     retained subsample, but q_n = 0 must keep meaning "no data". *)
  { q with q_n = r.r_seen }

let pp_summary ppf s =
  Format.fprintf ppf "%.2f ± %.2f (n=%d)" s.mean s.stderr s.n
