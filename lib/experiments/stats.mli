(** Small-sample statistics for the experiment harness. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;   (** sample standard deviation (n-1 denominator) *)
  stderr : float;   (** standard error of the mean *)
  min : float;
  max : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

val summarize_opt : float list -> summary option
(** [None] on an empty list. *)

val mean : float list -> float
val median : float list -> float

val mean_by : ('a -> float) -> 'a list -> float
(** Mean of the projection over the items, skipping [nan] projections;
    [nan] when nothing measurable remains.  This is how the figures
    consume record-shaped samples directly. *)

val pp_summary : Format.formatter -> summary -> unit
(** ["mean ± stderr (n=…)"]. *)
