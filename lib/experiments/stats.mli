(** Small-sample statistics for the experiment harness. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;   (** sample standard deviation (n-1 denominator) *)
  stderr : float;   (** standard error of the mean *)
  min : float;
  max : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

val summarize_opt : float list -> summary option
(** [None] on an empty list. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list (use {!mean_by} or
    {!percentile} for the nan-on-empty discipline). *)

val median : float list -> float
(** @raise Invalid_argument on an empty list. *)

val percentile : float -> float list -> float
(** [percentile p values]: the [p]-th percentile ([0 <= p <= 100]) with
    linear interpolation between closest ranks (the R-7 / NumPy
    default); the list need not be sorted.

    NaN policy (mirrors [Crash.defeat_rate]): an empty sample returns
    [nan], never [0.0] — a zero would silently read as "no latency".
    [nan] propagates through downstream means and renders as a gap in
    CSV/plots; callers that need a total value must check the sample
    size first.
    @raise Invalid_argument when [p] is outside [0, 100]. *)

type quantiles = {
  q_n : int;  (** sample size; [0] means every quantile below is [nan] *)
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;  (** the 99.9th percentile *)
}

val quantiles : float list -> quantiles
(** The tail-latency summary of one sample in a single sort: {!percentile}
    at 50 / 95 / 99 / 99.9, with the same nan-on-empty policy. *)

val percentile_in_place : float -> float array -> float
(** {!percentile} over an array by expected-O(n) selection (three-way
    quickselect) instead of a full sort — the path the scaling
    experiment takes for 10⁶-point samples.  Permutes the array; the
    values must be NaN-free (use {!reservoir_add}, which skips NaN).
    Same value and NaN-on-empty policy as {!percentile}.
    @raise Invalid_argument when [p] is outside [0, 100]. *)

val quantiles_in_place : float array -> quantiles
(** {!quantiles} by repeated selection, O(n) expected and no sorted
    copy.  Permutes the array. *)

val percentile_slice : float -> float array -> len:int -> float
(** {!percentile_in_place} restricted to the prefix [a.(0 .. len - 1)];
    slots at and past [len] are neither read nor moved.  The hot-path
    variant for callers that reuse one preallocated buffer and fill a
    varying prefix per iteration (e.g. {!Engine.sojourns_into}) — no
    per-call [Array.sub] copy.  Permutes the prefix.
    @raise Invalid_argument when [p] is outside [0, 100] or [len] is
    outside [0, Array.length a]. *)

val quantiles_slice : float array -> len:int -> quantiles
(** {!quantiles_in_place} over the prefix [a.(0 .. len - 1)]; same
    contract as {!percentile_slice}.  [q_n = len]. *)

type reservoir
(** Bounded-memory uniform subsample of a stream (Vitter's algorithm R),
    for quantile summaries of samples too large to materialize. *)

val reservoir_create : cap:int -> rand_int:(int -> int) -> reservoir
(** [rand_int bound] must be uniform in [0 .. bound - 1] (pass the
    experiment's seeded stream, keeping runs deterministic).
    @raise Invalid_argument when [cap < 1]. *)

val reservoir_add : reservoir -> float -> unit
(** Offer one value; NaN is skipped (the {!mean_by} discipline). *)

val reservoir_count : reservoir -> int
(** Values offered (and not NaN) so far. *)

val reservoir_quantiles : reservoir -> quantiles
(** Quantiles of the retained subsample — exact while at most [cap]
    values were offered, an unbiased estimate beyond that.  [q_n] is the
    true stream count, so the [q_n = 0] ⇒ all-NaN contract survives. *)

val mean_by : ('a -> float) -> 'a list -> float
(** Mean of the projection over the items, skipping [nan] projections;
    [nan] when nothing measurable remains.  This is how the figures
    consume record-shaped samples directly. *)

val pp_summary : Format.formatter -> summary -> unit
(** ["mean ± stderr (n=…)"]. *)
