(** Small-sample statistics for the experiment harness. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;   (** sample standard deviation (n-1 denominator) *)
  stderr : float;   (** standard error of the mean *)
  min : float;
  max : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

val summarize_opt : float list -> summary option
(** [None] on an empty list. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list (use {!mean_by} or
    {!percentile} for the nan-on-empty discipline). *)

val median : float list -> float
(** @raise Invalid_argument on an empty list. *)

val percentile : float -> float list -> float
(** [percentile p values]: the [p]-th percentile ([0 <= p <= 100]) with
    linear interpolation between closest ranks (the R-7 / NumPy
    default); the list need not be sorted.

    NaN policy (mirrors [Crash.defeat_rate]): an empty sample returns
    [nan], never [0.0] — a zero would silently read as "no latency".
    [nan] propagates through downstream means and renders as a gap in
    CSV/plots; callers that need a total value must check the sample
    size first.
    @raise Invalid_argument when [p] is outside [0, 100]. *)

type quantiles = {
  q_n : int;  (** sample size; [0] means every quantile below is [nan] *)
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;  (** the 99.9th percentile *)
}

val quantiles : float list -> quantiles
(** The tail-latency summary of one sample in a single sort: {!percentile}
    at 50 / 95 / 99 / 99.9, with the same nan-on-empty policy. *)

val mean_by : ('a -> float) -> 'a list -> float
(** Mean of the projection over the items, skipping [nan] projections;
    [nan] when nothing measurable remains.  This is how the figures
    consume record-shaped samples directly. *)

val pp_summary : Format.formatter -> summary -> unit
(** ["mean ± stderr (n=…)"]. *)
