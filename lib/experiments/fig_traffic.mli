(** Extension K: open-system traffic — tail latency, queue occupancy and
    drop rate versus offered load and burstiness.

    For each sweep point the schedule of every algorithm is driven by an
    open arrival process (Poisson, and an MMPP with 1.8×/0.2× burst/idle
    phases at the same mean rate) whose rate is [load / period].  Each
    (algorithm, graph, load) point runs twice over the {e same}
    materialized arrival trace: an unbounded backpressure run measuring
    the sojourn percentiles (p50/p99) and peak queue, and a bounded
    [Drop_newest] run measuring the shed fraction.  Equal seeds give
    bit-identical CSVs at any [jobs] (common random numbers; the trial
    seed ignores the load so a sweep re-times the same quanta). *)

type config = {
  seed : int;
  reps : int;  (** random graphs per sweep point *)
  loads : float list;  (** offered load: mean arrival rate × period *)
  n_items : int;  (** arrivals simulated per run *)
  queue_bound : int;  (** per-replica queue bound of the shedding run *)
  eps : int;  (** replication degree for LTF / R-LTF *)
  spec : Spec.t;
}

val default : config
(** Loads 0.5 → 1.5, 300 items, 5 graphs per point, queue bound 4. *)

val quick : config
(** Three loads, 80 items, 2 graphs per point — the CI profile. *)

val run :
  ?out_dir:string ->
  ?jobs:int ->
  config:config ->
  unit ->
  Ascii_plot.series list * Ascii_plot.series list
(** Run the Poisson sweep then the MMPP sweep; prints the charts, writes
    [fig-traffic-{latency,queue,drops}-{poisson,mmpp}.csv] under
    [out_dir], and returns the two latency series lists (one p50 and one
    p99 series per algorithm each). *)
