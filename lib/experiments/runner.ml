type experiment = {
  name : string;
  description : string;
  run :
    workload:string option ->
    quick:bool ->
    seed:int ->
    jobs:int ->
    exact:bool ->
    out_dir:string ->
    unit;
}

(* Experiments that sweep a Fig_common config accept a workload spec
   string ("paper-fan-in-out", "huge:v=5000:m=50", …); everything else
   runs its fixed workload and ignores the flag. *)
let resolve_workload = function
  | None -> None
  | Some str -> (
      match Spec.of_string str with
      | Ok spec -> Some spec
      | Error msg -> failwith ("--workload: " ^ msg))

let latency_fig name ~eps ~mode ~crashes description =
  {
    name;
    description;
    run =
      (fun ~workload ~quick ~seed ~jobs ~exact:_ ~out_dir ->
        let config =
          if quick then Fig_common.quick ~eps ~crashes
          else Fig_common.default ~eps ~crashes
        in
        let config = { config with Fig_common.seed } in
        let config =
          match resolve_workload workload with
          | None -> config
          | Some spec -> { config with Fig_common.spec }
        in
        ignore (Fig_latency.run ~out_dir ~jobs ~config ~mode ()));
  }

let overhead_fig name ~eps ~crashes description =
  {
    name;
    description;
    run =
      (fun ~workload ~quick ~seed ~jobs ~exact ~out_dir ->
        let config =
          if quick then Fig_common.quick ~eps ~crashes
          else Fig_common.default ~eps ~crashes
        in
        let config = { config with Fig_common.seed; exact } in
        let config =
          match resolve_workload workload with
          | None -> config
          | Some spec -> { config with Fig_common.spec }
        in
        ignore (Fig_overhead.run ~out_dir ~jobs ~config ()));
  }

let all =
  [
    latency_fig "fig3a" ~eps:1 ~mode:Fig_latency.Bounds ~crashes:0
      "Fig. 3(a): latency bounds vs granularity, eps=1";
    latency_fig "fig3b" ~eps:1 ~mode:Fig_latency.Crash ~crashes:1
      "Fig. 3(b): latency with 1 crash vs granularity, eps=1";
    overhead_fig "fig3c" ~eps:1 ~crashes:1
      "Fig. 3(c): fault-tolerance overhead vs granularity, eps=1";
    latency_fig "fig4a" ~eps:3 ~mode:Fig_latency.Bounds ~crashes:0
      "Fig. 4(a): latency bounds vs granularity, eps=3";
    latency_fig "fig4b" ~eps:3 ~mode:Fig_latency.Crash ~crashes:2
      "Fig. 4(b): latency with 2 crashes vs granularity, eps=3";
    overhead_fig "fig4c" ~eps:3 ~crashes:2
      "Fig. 4(c): fault-tolerance overhead vs granularity, eps=3";
    {
      name = "examples";
      description = "Figs. 1-2: the paper's worked examples, replayed";
      run = (fun ~workload:_ ~quick:_ ~seed:_ ~jobs:_ ~exact:_ ~out_dir:_ -> Paper_examples.print ());
    };
    {
      name = "baselines";
      description = "Extension A: Section 3 heuristics on the paper workload";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs ~exact:_ ~out_dir ->
          ignore
            (Fig_baselines.run ~out_dir ~seed ~jobs
               ~graphs:(if quick then 6 else 30) ()));
    };
    {
      name = "complexity";
      description = "Theorem 1: empirical LTF runtime scaling";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs:_ ~exact:_ ~out_dir ->
          ignore
            (Fig_complexity.run ~out_dir ~seed
               ~repetitions:(if quick then 1 else 3)
               ()));
    };
    {
      name = "symmetric";
      description = "Extension B: Section 6 symmetric problems";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs:_ ~exact:_ ~out_dir ->
          ignore
            (Fig_symmetric.run ~out_dir ~seed ~graphs:(if quick then 3 else 10) ()));
    };
    {
      name = "ablation";
      description = "Extension C: ablation of the implementation's mechanisms";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs ~exact:_ ~out_dir ->
          ignore
            (Fig_ablation.run ~out_dir ~seed ~jobs
               ~graphs:(if quick then 5 else 20) ()));
    };
    {
      name = "pipeline";
      description = "Extension D: event-driven validation of the throughput";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs:_ ~exact:_ ~out_dir ->
          ignore
            (Fig_pipeline.run ~out_dir ~seed ~graphs:(if quick then 3 else 10) ()));
    };
    {
      name = "optgap";
      description = "Extension F: optimality gap vs exact branch-and-bound";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs:_ ~exact:_ ~out_dir ->
          ignore
            (Fig_optgap.run ~out_dir ~seed ~graphs:(if quick then 5 else 15) ()));
    };
    {
      name = "families";
      description = "Extension H: robustness across graph families";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs:_ ~exact:_ ~out_dir ->
          ignore
            (Fig_families.run ~out_dir ~seed ~graphs:(if quick then 4 else 12) ()));
    };
    {
      name = "topology";
      description = "Extension G: sensitivity to the platform topology";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs:_ ~exact:_ ~out_dir ->
          ignore
            (Fig_topology.run ~out_dir ~seed ~graphs:(if quick then 4 else 12) ()));
    };
    {
      name = "cost";
      description = "Extension E: platform rental-cost minimization (Section 6)";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs:_ ~exact:_ ~out_dir ->
          ignore (Fig_cost.run ~out_dir ~seed ~graphs:(if quick then 2 else 8) ()));
    };
    {
      name = "recovery";
      description =
        "Extension I: availability and degraded latency under live failures";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs ~exact ~out_dir ->
          let config =
            if quick then Fig_recovery.quick else Fig_recovery.default
          in
          let config = { config with Fig_recovery.seed; exact } in
          ignore (Fig_recovery.run ~out_dir ~jobs ~config ()));
    };
    {
      name = "traffic";
      description =
        "Extension K: open-system traffic — tail latency, queues and drops \
         vs offered load and burstiness";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs ~exact:_ ~out_dir ->
          let config = if quick then Fig_traffic.quick else Fig_traffic.default in
          let config = { config with Fig_traffic.seed } in
          ignore (Fig_traffic.run ~out_dir ~jobs ~config ()));
    };
    {
      name = "faults";
      description =
        "Extension M: fault injection — retry/backoff vs transient fault \
         rate, gray stragglers, correlated failure domains, eviction";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs ~exact:_ ~out_dir ->
          let config = if quick then Fig_faults.quick else Fig_faults.default in
          let config = { config with Fig_faults.seed } in
          ignore (Fig_faults.run ~out_dir ~jobs ~config ()));
    };
    {
      name = "convergence";
      description =
        "Extension J: Monte-Carlo crash estimates vs the exact calculus";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs ~exact:_ ~out_dir ->
          let config =
            if quick then Fig_convergence.quick else Fig_convergence.default
          in
          let config = { config with Fig_convergence.seed } in
          ignore (Fig_convergence.run ~out_dir ~jobs ~config ()));
    };
    {
      name = "scaling";
      description =
        "Extension L: schedule/simulate wall-clock scaling on the huge \
         family (flat LTF vs clustered C-LTF)";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs:_ ~exact:_ ~out_dir ->
          let v_sweep =
            if quick then [ 1_000; 4_000 ]
            else [ 1_000; 10_000; 100_000; 1_000_000 ]
          in
          let m_sweep = if quick then [ 100 ] else [ 100; 1_000 ] in
          ignore (Fig_scaling.run ~out_dir ~seed ~v_sweep ~m_sweep ()));
    };
    {
      name = "latency";
      description =
        "Profile: the fig3a sweep plus an event-driven replay of R-LTF \
         mappings (touches every instrumented layer)";
      run =
        (fun ~workload:_ ~quick ~seed ~jobs ~exact:_ ~out_dir ->
          let config =
            if quick then Fig_common.quick ~eps:1 ~crashes:0
            else Fig_common.default ~eps:1 ~crashes:0
          in
          let config = { config with Fig_common.seed } in
          ignore (Fig_latency.run ~out_dir ~jobs ~config ~mode:Fig_latency.Bounds ());
          (* The sweep above measures latency with the stage-synchronous
             model; replay a few of the same instances through the
             event-driven one-port simulator so a latency profile also
             covers the sim.* metrics. *)
          let graphs = if quick then 3 else 10 in
          let throughput = Paper_workload.throughput ~eps:1 in
          let replayed = ref 0 in
          List.iter
            (fun rep ->
              let rng = Rng.create ~seed:(seed + (7919 * rep)) in
              let inst = Spec.generate Spec.default ~rng ~granularity:1.0 () in
              let prob =
                Types.problem ~dag:inst.Paper_workload.dag
                  ~platform:inst.Paper_workload.plat ~eps:1 ~throughput
              in
              match
                Rltf.schedule
                  ~opts:Scheduler.(default |> with_mode Best_effort)
                  prob
              with
              | Error _ -> ()
              | Ok mapping ->
                  let prog = Engine.compile mapping in
                  ignore (Engine.run_compiled ~n_items:4 prog);
                  ignore
                    (Crash.estimate ~source:(Crash.Of_program prog)
                       ~method_:(Crash.Sampled { crashes = 1; draws = 1; rng })
                       ());
                  incr replayed)
            (List.init graphs Fun.id);
          Printf.printf "event-driven replay: %d/%d instances simulated\n"
            !replayed graphs);
    };
  ]

(* Group everything an experiment does under one per-figure span, so a
   metrics dump attributes time figure-by-figure. *)
let all =
  List.map
    (fun e ->
      {
        e with
        run =
          (fun ~workload ~quick ~seed ~jobs ~exact ~out_dir ->
            Obs.with_span ("exp.fig." ^ e.name) (fun () ->
                e.run ~workload ~quick ~seed ~jobs ~exact ~out_dir));
      })
    all

let find name = List.find_opt (fun e -> e.name = name) all
let names = List.map (fun e -> e.name) all
