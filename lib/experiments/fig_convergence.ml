(* Monte-Carlo estimates of the crash metrics against the availability
   calculus: the same compiled plan is measured by [runs] random crash
   draws and by the exact enumeration, and the gap |MC - exact| is
   charted against the draw count.  Everything derives from the seed, so
   the curve (and the [check] gate below) is fully deterministic. *)

type config = {
  seed : int;
  reps : int;
  crashes : int;
  eps : int;
  draw_counts : int list;
  spec : Spec.t;
}

let default =
  {
    seed = 2009;
    reps = 12;
    crashes = 2;
    eps = 1;
    draw_counts = [ 10; 30; 100; 300; 1000 ];
    spec = Spec.default;
  }

let quick = { default with reps = 4; draw_counts = [ 10; 40; 160 ] }

(* Per-rep errors: for each draw count, |MC defeat rate - exact defeat
   probability| and, when both sides measured one, the relative error of
   the mean degraded latency. *)
type rep_errors = {
  defeat_errors : (int * float) list;
  latency_errors : (int * float) list;
}

(* A rep is a pure function of (config, rep index): the instance, the
   schedule and every crash draw derive from the rep's root stream.  The
   exact side consumes no randomness at all, so inserting it changes no
   sampled value. *)
let run_rep config rep =
  let rng = Rng.create ~seed:(config.seed + (7919 * rep)) in
  let inst =
    Spec.generate config.spec ~rng ~granularity:1.0 ()
  in
  let throughput = Paper_workload.throughput ~eps:config.eps in
  let prob =
    Types.problem ~dag:inst.Paper_workload.dag ~platform:inst.Paper_workload.plat
      ~eps:config.eps ~throughput
  in
  let opts = Scheduler.(default |> with_mode Best_effort) in
  match Rltf.schedule ~opts prob with
  | Error _ -> None
  | Ok mapping ->
      let plan = Stage_latency.compile mapping in
      let exact =
        Stage_latency.exact_crash_latency_stats ~crashes:config.crashes
          ~throughput mapping
      in
      let errors =
        List.map
          (fun runs ->
            (* An independent child stream per draw count: estimates at
               different counts are independent samples, not prefixes of
               one stream, so the curve shows the estimator's spread. *)
            let draw_rng = Rng.split rng in
            let stats =
              Stage_latency.mean_crash_latency_stats_of_plan
                ~rand_int:(fun bound -> Rng.int draw_rng bound)
                ~crashes:config.crashes ~runs ~throughput plan
            in
            let defeat_err =
              Float.abs (Crash.defeat_rate stats -. exact.Crash.p_defeat)
            in
            let latency_err =
              match (stats.Crash.mean, exact.Crash.degraded_mean) with
              | Some mc, Some ex when ex > 0.0 ->
                  Some (Float.abs (mc -. ex) /. ex)
              | _ -> None
            in
            (runs, defeat_err, latency_err))
          config.draw_counts
      in
      Some
        {
          defeat_errors = List.map (fun (n, d, _) -> (n, d)) errors;
          latency_errors =
            List.filter_map
              (fun (n, _, l) -> Option.map (fun l -> (n, l)) l)
              errors;
        }

let mean = function
  | [] -> nan
  | vs -> List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)

let collect ?(jobs = 1) config =
  Parallel.map_seeded ~jobs (run_rep config) (List.init config.reps Fun.id)
  |> List.filter_map Fun.id

(* Mean error per draw count, one point per count. *)
let error_series ~proj reps =
  List.sort_uniq compare (List.concat_map (fun r -> List.map fst (proj r)) reps)
  |> List.map (fun n ->
         ( float_of_int n,
           mean (List.concat_map (fun r -> List.assoc_opt n (proj r) |> Option.to_list) reps) ))

let series reps =
  [
    {
      Ascii_plot.label = "defeat |MC-exact|";
      points = error_series ~proj:(fun r -> r.defeat_errors) reps;
    };
    {
      Ascii_plot.label = "latency rel. err";
      points = error_series ~proj:(fun r -> r.latency_errors) reps;
    };
  ]

let run ?(out_dir = "results") ?(jobs = 1) ~(config : config) () =
  let reps = collect ~jobs config in
  let curves = series reps in
  Ascii_plot.print
    ~title:
      (Printf.sprintf
         "MC error vs exact calculus (c=%d, eps=%d, %d/%d graphs scheduled)"
         config.crashes config.eps (List.length reps) config.reps)
    ~x_label:"crash draws" ~y_label:"|MC - exact|" curves;
  Fig_latency.table_of_series curves;
  (* Not [Fig_latency.csv_of_series]: the x axis here is the draw count,
     not a granularity, and the header should say so. *)
  (match curves with
  | [] -> ()
  | first :: _ ->
      let xs = List.map fst first.Ascii_plot.points in
      let rows =
        List.map
          (fun x ->
            x
            :: List.map
                 (fun s ->
                   match List.assoc_opt x s.Ascii_plot.points with
                   | Some y -> y
                   | None -> nan)
                 curves)
          xs
      in
      Csv.write_floats
        ~path:(Filename.concat out_dir "fig-convergence.csv")
        ~header:("draws" :: List.map (fun s -> s.Ascii_plot.label) curves)
        rows);
  curves

(* The CI gate: with everything pinned by the seed this either always
   passes or always fails, so a tolerance is a regression check on the
   calculus/sampler pair, not a flaky statistical test. *)
let check ?(tolerance = 0.05) ?(jobs = 1) config =
  match collect ~jobs config with
  | [] -> Error "convergence check: no instance could be scheduled"
  | reps -> (
      match error_series ~proj:(fun r -> r.defeat_errors) reps with
      | [] -> Error "convergence check: no draw counts configured"
      | points ->
          let _, first_err = List.hd points in
          let last_n, last_err = List.nth points (List.length points - 1) in
          if Float.is_nan last_err then
            Error "convergence check: error at the largest draw count is NaN"
          else if last_err > tolerance then
            Error
              (Printf.sprintf
                 "convergence check: |MC - exact| = %.4f at %d draws exceeds \
                  tolerance %.4f"
                 last_err (int_of_float last_n) tolerance)
          else if last_err > first_err +. tolerance then
            Error
              (Printf.sprintf
                 "convergence check: error grew along the draw sweep \
                  (%.4f -> %.4f)"
                 first_err last_err)
          else Ok ())
