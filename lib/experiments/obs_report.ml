let required_counters =
  [
    "core.placement_probes";
    "core.feasibility_rejections";
    "core.one_to_one_calls";
    "core.general_calls";
    "core.commits";
    "core.chunks";
    "sched.loads.full_recomputes";
    "sched.loads.incremental_updates";
    "sched.loads.max_cache_hits";
    "sched.loads.max_cache_misses";
    "sim.events_popped";
    "sim.runs";
    "sim.compiles";
    "sim.failures_injected";
    "sim.crash.draws";
    "sim.crash.defeats";
    "sim.epoch.resumes";
    "sim.drops";
    "sim.queue.enqueued";
    "sim.queue.blocked";
    "sim.retries";
    "sim.gray.slowdowns";
    "sim.gray.degradations";
    "sim.faults.transient";
    "sim.faults.exhausted";
    "sim.cache.hits";
    "sim.cache.misses";
    "sim.arena.creates";
    "sim.arena.reuses";
    "ops.evictions";
    "ops.recovery.crashes";
    "ops.recovery.epochs";
    "ops.recovery.attempts";
    "ops.recovery.outages";
    "ops.recovery.restored.full";
    "ops.recovery.restored.relaxed";
    "ops.recovery.restored.reduced_eps";
    "ops.recovery.restored.best_effort";
    "rel.analyses";
    "exp.trials";
  ]

let required_histograms =
  [
    "core.chunk_size";
    "sim.heap_size";
    "sim.epoch.items";
    "sim.queue.occupancy";
    "sim.retry_backoff_time";
    "ops.recovery.downtime";
    "rel.defeat_cuts";
  ]

let required_spans =
  [
    "core.scheduler.chunk";
    "core.ltf.run";
    "core.rltf.run";
    "core.rltf.derive";
    "sim.engine.run";
    "sim.crash.sample";
    "ops.recovery.timeline";
    "ops.recovery.epoch";
    "rel.analyze";
    "exp.trial";
  ]

let fig_span_prefix = "exp.fig."

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let validate reg =
  let have_counter n = List.mem_assoc n (Obs.Registry.counters reg) in
  let have_histogram n = Option.is_some (Obs.Registry.histogram reg n) in
  let have_span n = Option.is_some (Obs.Registry.span_stats reg n) in
  let missing kind have names =
    List.filter_map
      (fun n -> if have n then None else Some (kind ^ " " ^ n))
      names
  in
  let errors =
    missing "counter" have_counter required_counters
    @ missing "histogram" have_histogram required_histograms
    @ missing "span" have_span required_spans
    @
    if
      List.exists
        (fun (n, _) -> starts_with ~prefix:fig_span_prefix n)
        (Obs.Registry.spans reg)
    then []
    else [ "span " ^ fig_span_prefix ^ "<figure>" ]
  in
  match errors with [] -> Ok () | _ -> Error errors

let validate_string s =
  match Obs.Registry.of_json s with
  | Error e -> Error [ "invalid metrics JSON: " ^ e ]
  | Ok reg -> validate reg
