type series = {
  label : string;
  points : (float * float) list;
}

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let finite_points s = List.filter (fun (_, y) -> not (Float.is_nan y)) s.points

(* Keep an evenly-strided subset (always including both endpoints): a
   terminal canvas can't resolve more than a few points per column, so a
   10⁶-point series would spend all its time plotting collisions. *)
let decimate ?(max_points = 256) s =
  let pts = Array.of_list s.points in
  let n = Array.length pts in
  if max_points < 2 || n <= max_points then s
  else
    let points =
      List.init max_points (fun i -> pts.(i * (n - 1) / (max_points - 1)))
    in
    { s with points }

let render ?(width = 64) ?(height = 20) ?(x_label = "") ?(y_label = "")
    ?(max_points = 4096) ~title series =
  let series = List.map (decimate ~max_points) series in
  let all = List.concat_map finite_points series in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (title ^ "\n");
  if all = [] then begin
    Buffer.add_string buf "(no data)\n";
    Buffer.contents buf
  end
  else begin
    let xs = List.map fst all and ys = List.map snd all in
    let x_min = List.fold_left Float.min infinity xs in
    let x_max = List.fold_left Float.max neg_infinity xs in
    let y_min = List.fold_left Float.min infinity ys in
    let y_max = List.fold_left Float.max neg_infinity ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
    let canvas = Array.init height (fun _ -> Bytes.make width ' ') in
    let plot_point glyph (x, y) =
      let col =
        int_of_float (Float.round ((x -. x_min) /. x_span *. float_of_int (width - 1)))
      in
      let row =
        height - 1
        - int_of_float
            (Float.round ((y -. y_min) /. y_span *. float_of_int (height - 1)))
      in
      if row >= 0 && row < height && col >= 0 && col < width then begin
        let existing = Bytes.get canvas.(row) col in
        (* overlapping series show as '?' so collisions are visible *)
        Bytes.set canvas.(row) col (if existing = ' ' then glyph else '?')
      end
    in
    List.iteri
      (fun i s ->
        let glyph = glyphs.(i mod Array.length glyphs) in
        List.iter (plot_point glyph) (finite_points s))
      series;
    let y_tag row =
      if row = 0 then Printf.sprintf "%10.4g |" y_max
      else if row = height - 1 then Printf.sprintf "%10.4g |" y_min
      else Printf.sprintf "%10s |" ""
    in
    Array.iteri
      (fun row line ->
        Buffer.add_string buf (y_tag row);
        Buffer.add_string buf (Bytes.to_string line);
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    let x_lo = Printf.sprintf "%.4g" x_min and x_hi = Printf.sprintf "%.4g" x_max in
    let gap = max 1 (width - String.length x_lo - String.length x_hi) in
    Buffer.add_string buf
      (Printf.sprintf "%10s  %s%s%s\n" "" x_lo (String.make gap ' ') x_hi);
    if x_label <> "" || y_label <> "" then
      Buffer.add_string buf
        (Printf.sprintf "%10s  x: %s   y: %s\n" "" x_label y_label);
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "%12s = %s\n" (String.make 1 glyphs.(i mod Array.length glyphs)) s.label))
      series;
    Buffer.contents buf
  end

let print ?width ?height ?x_label ?y_label ?max_points ~title series =
  print_string
    (render ?width ?height ?x_label ?y_label ?max_points ~title series)
