(** Extension C: ablation of the implementation's design choices.

    DESIGN.md documents three load-bearing mechanisms added on top of the
    paper's pseudocode: the one-to-one pairing procedure, the two
    source-set variants of the general branch, and the kill-chain lane
    budget.  This experiment switches each off (or rescales it) on the
    paper workload and reports what every mechanism buys: strict-mode
    success rate, pipeline stages, latency bound and replica messages. *)

type row = {
  name : string;
  strict_ok : int;        (** strict-mode successes out of the graph count *)
  meets : int;            (** best-effort schedules meeting the throughput *)
  stages : Stats.summary; (** over best-effort schedules *)
  latency : Stats.summary;
  messages : Stats.summary;
}

val configurations : (string * Scheduler.options) list

val run :
  ?out_dir:string ->
  ?seed:int ->
  ?graphs:int ->
  ?granularity:float ->
  ?eps:int ->
  ?jobs:int ->
  unit ->
  row list
(** Defaults: 20 graphs, granularity 1.0, ε = 1, 1 job.  Graphs are
    measured on [jobs] worker domains (identical output for every value).
    Prints a table and writes [fig-ablation.csv]. *)
