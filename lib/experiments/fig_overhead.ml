let overhead proj (s : Fig_common.sample) =
  let l = proj s and ff = Fig_common.ff_sim s in
  if Float.is_nan l || Float.is_nan ff || ff <= 0.0 then nan
  else (l -. ff) /. ff *. 100.0

let series samples =
  [
    Fig_common.mean_series ~label:"R-LTF With 0 Crash"
      (overhead Fig_common.rltf_sim) samples;
    Fig_common.mean_series ~label:"R-LTF With Crash"
      (overhead Fig_common.rltf_crash) samples;
    Fig_common.mean_series ~label:"LTF With 0 Crash"
      (overhead Fig_common.ltf_sim) samples;
    Fig_common.mean_series ~label:"LTF With Crash"
      (overhead Fig_common.ltf_crash) samples;
  ]

(* Share of crash draws that defeated the mapping (an exit task lost all
   replicas), in %.  Kept out of the overhead CSV so that artifact stays
   byte-identical across releases; it gets its own table and file. *)
let defeat_series samples =
  let pct proj s =
    let r = proj s in
    if Float.is_nan r then nan else r *. 100.0
  in
  [
    Fig_common.mean_series ~label:"R-LTF Defeat %"
      (pct Fig_common.rltf_defeat_rate) samples;
    Fig_common.mean_series ~label:"LTF Defeat %"
      (pct Fig_common.ltf_defeat_rate) samples;
  ]

let run ?(out_dir = "results") ?(jobs = 1) ~(config : Fig_common.config) () =
  let samples = Fig_common.collect ~jobs config in
  let curves = series samples in
  (* Exact runs write to their own files: the Monte-Carlo artifacts stay
     byte-identical whether or not anyone also runs the calculus. *)
  let suffix = if config.Fig_common.exact then "-exact" else "" in
  let mode = if config.Fig_common.exact then "exact" else "sampled" in
  let title =
    Printf.sprintf
      "Fault-tolerance overhead (%%) vs granularity (eps=%d, c=%d, %d \
       graphs/point, %s)"
      config.Fig_common.eps config.Fig_common.crashes
      config.Fig_common.graphs_per_point mode
  in
  Ascii_plot.print ~title ~x_label:"granularity" ~y_label:"overhead %" curves;
  Fig_latency.table_of_series curves;
  Fig_latency.csv_of_series
    (Filename.concat out_dir
       (Printf.sprintf "fig-overhead-eps%d%s.csv" config.Fig_common.eps suffix))
    curves;
  if config.Fig_common.crashes > 0 then begin
    let defeats = defeat_series samples in
    (if config.Fig_common.exact then
       Printf.printf "Exact defeat probability (c=%d, %%):\n"
         config.Fig_common.crashes
     else
       Printf.printf "Defeated crash draws (c=%d, %% of draws):\n"
         config.Fig_common.crashes);
    Fig_latency.table_of_series defeats;
    Fig_latency.csv_of_series
      (Filename.concat out_dir
         (Printf.sprintf "fig-overhead-defeats-eps%d%s.csv"
            config.Fig_common.eps suffix))
      defeats
  end;
  curves
