let overhead proj (s : Fig_common.sample) =
  let l = proj s and ff = Fig_common.ff_sim s in
  if Float.is_nan l || Float.is_nan ff || ff <= 0.0 then nan
  else (l -. ff) /. ff *. 100.0

let series samples =
  [
    Fig_common.mean_series ~label:"R-LTF With 0 Crash"
      (overhead Fig_common.rltf_sim) samples;
    Fig_common.mean_series ~label:"R-LTF With Crash"
      (overhead Fig_common.rltf_crash) samples;
    Fig_common.mean_series ~label:"LTF With 0 Crash"
      (overhead Fig_common.ltf_sim) samples;
    Fig_common.mean_series ~label:"LTF With Crash"
      (overhead Fig_common.ltf_crash) samples;
  ]

let run ?(out_dir = "results") ?(jobs = 1) ~(config : Fig_common.config) () =
  let samples = Fig_common.collect ~jobs config in
  let curves = series samples in
  let title =
    Printf.sprintf
      "Fault-tolerance overhead (%%) vs granularity (eps=%d, c=%d, %d \
       graphs/point)"
      config.Fig_common.eps config.Fig_common.crashes
      config.Fig_common.graphs_per_point
  in
  Ascii_plot.print ~title ~x_label:"granularity" ~y_label:"overhead %" curves;
  Fig_latency.table_of_series curves;
  Fig_latency.csv_of_series
    (Filename.concat out_dir
       (Printf.sprintf "fig-overhead-eps%d.csv" config.Fig_common.eps))
    curves;
  curves
