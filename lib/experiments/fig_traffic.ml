(* Open-system traffic sweep (Extension K): offered load and burstiness
   against tail latency, queue occupancy and drop rate.

   The paper's experiments close the loop — item k enters at exactly
   k · period, so the source is perfectly matched to the pipeline.  This
   figure opens it: arrivals follow a Poisson or bursty (MMPP) process
   whose mean rate is a multiple [load] of the schedule's achieved
   service rate 1/period.  Below load 1 the queues stay shallow and the
   percentiles sit together; past saturation the backlog grows without
   bound and p99 tears away from p50 — the textbook open-queue knee,
   measured through the same one-port engine the closed figures use. *)

type config = {
  seed : int;
  reps : int;  (** random graphs per sweep point *)
  loads : float list;  (** offered load: mean arrival rate × period *)
  n_items : int;  (** arrivals simulated per run *)
  queue_bound : int;  (** per-replica queue bound of the shedding run *)
  eps : int;  (** replication degree for LTF / R-LTF *)
  spec : Spec.t;
}

(* Same reduced scale as the recovery timelines: the cost of a trial is
   the number of items through the event engine, not the graph size. *)
let spec =
  Spec.paper ~name:"paper-traffic" ~descr:"reduced scale for the event engine"
    {
      Paper_workload.default_spec with
      Paper_workload.tasks_range = (30, 60);
      m = 12;
    }

let default =
  {
    seed = 2009;
    reps = 5;
    loads = [ 0.5; 0.7; 0.9; 1.0; 1.1; 1.3; 1.5 ];
    n_items = 300;
    queue_bound = 4;
    eps = 1;
    spec;
  }

let quick =
  { default with reps = 2; loads = [ 0.6; 1.0; 1.4 ]; n_items = 80 }

(* The two traffic shapes of the sweep.  Both are normalized to the same
   mean rate, so a bursty column differs from its Poisson neighbour only
   in variance — bursts at 1.8× the mean alternating with lulls at 0.2×,
   in phases long enough (20 service periods) to fill and drain queues. *)
type profile = Smooth | Bursty

let profile_name = function Smooth -> "poisson" | Bursty -> "mmpp"

let arrival_process profile ~rate ~period =
  match profile with
  | Smooth -> Arrival.Poisson { rate }
  | Bursty ->
      Arrival.Mmpp
        {
          burst_rate = 1.8 *. rate;
          idle_rate = 0.2 *. rate;
          mean_burst = 20.0 *. period;
          mean_idle = 20.0 *. period;
        }

type algo = {
  label : string;
  algo_eps : int;
  schedule : Types.problem -> Types.outcome;
}

let algorithms ~eps =
  let opts = Scheduler.(default |> with_mode Best_effort) in
  let baseline name =
    match Baseline_registry.find name with
    | Some (module A : Scheduler.Algo) ->
        { label = A.name; algo_eps = 0; schedule = A.run ~opts }
    | None -> invalid_arg ("Fig_traffic: unknown baseline " ^ name)
  in
  [
    {
      label = Printf.sprintf "R-LTF (eps=%d)" eps;
      algo_eps = eps;
      schedule = Rltf.schedule ~opts;
    };
    {
      label = Printf.sprintf "LTF (eps=%d)" eps;
      algo_eps = eps;
      schedule = Ltf.schedule ~opts;
    };
    baseline "HEFT [9]";
    baseline "Hary-Ozguner [4]";
  ]

(* What one algorithm contributed at one sweep point: the latency
   percentiles and peak queue of an unbounded backpressure run, and the
   shed fraction of a bounded Drop_newest run over the same arrivals. *)
type point = {
  p50 : float;
  p99 : float;
  peak_queue : float;
  drop_pct : float;
}

let measure config ~profile ~load ~rng algo inst =
  let throughput = Paper_workload.throughput ~eps:algo.algo_eps in
  let prob =
    Types.problem ~dag:inst.Paper_workload.dag
      ~platform:inst.Paper_workload.plat ~eps:algo.algo_eps ~throughput
  in
  match algo.schedule prob with
  | Error _ -> None
  | Ok mapping ->
      (* The achieved period is the service interval the load multiplies:
         load 1.0 offers work exactly as fast as the pipeline drains it. *)
      let p = Float.max (1.0 /. throughput) (Metrics.period mapping) in
      let rate = load /. p in
      (* Materialize the arrivals once and replay them as a trace, so the
         percentile run and the shedding run see the same traffic (and the
         load sweep re-times the same exponential quanta — CRN). *)
      let offsets =
        Arrival.times ~rng ~n:config.n_items
          (arrival_process profile ~rate ~period:p)
      in
      let trace = Arrival.Trace (Array.to_list offsets) in
      let prog = Program_cache.program mapping in
      (* One arena serves both runs of this sweep point (they execute
         sequentially), and neither run records per-transfer messages —
         the point only needs latency percentiles and queue counters. *)
      let state = Engine.Run_state.create prog in
      let open_run =
        Engine.simulate ~state
          ~config:
            (Engine.Run.without_messages
               (Engine.Run.open_ ~n_items:config.n_items trace))
          prog
      in
      let sojourn_buf = Array.make config.n_items 0.0 in
      let delivered = Engine.sojourns_into open_run sojourn_buf in
      let q = Stats.quantiles_slice sojourn_buf ~len:delivered in
      let shed_run =
        Engine.simulate ~state
          ~config:
            (Engine.Run.without_messages
               (Engine.Run.open_ ~queue_bound:config.queue_bound
                  ~policy:Engine.Run.Drop_newest ~n_items:config.n_items trace))
          prog
      in
      Some
        {
          p50 = q.Stats.p50;
          p99 = q.Stats.p99;
          peak_queue = float_of_int open_run.Engine.peak_queue;
          drop_pct =
            100.0
            *. float_of_int shed_run.Engine.dropped
            /. float_of_int config.n_items;
        }

type trial = { load : float; rep : int }

(* The trial seed ignores the load on purpose: with equal RNG state the
   arrival quanta are identical across sweep points (common random
   numbers), so each curve moves along the sweep because of the offered
   rate, never because of resampling noise. *)
let run_trial config profile t =
  let rng = Rng.create ~seed:(config.seed + (7919 * t.rep)) in
  let inst =
    Spec.generate config.spec ~rng ~granularity:1.0 ()
  in
  let algos = algorithms ~eps:config.eps in
  (* A child stream per algorithm, split in fixed order before any
     scheduling, so adding or reordering measurements never perturbs
     another algorithm's arrivals. *)
  let rngs = List.map (fun _ -> Rng.split rng) algos in
  List.map2
    (fun algo algo_rng ->
      (algo.label, measure config ~profile ~load:t.load ~rng:algo_rng algo inst))
    algos rngs

let mean proj points =
  let vals =
    List.filter_map
      (fun p ->
        let v = proj p in
        if Float.is_nan v then None else Some v)
      points
  in
  match vals with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)

(* One labelled series per (algorithm, projection): the latency chart
   interleaves a p50 and a p99 series per algorithm so the divergence
   past saturation is visible in one plot. *)
let series config results projections =
  let labels = List.map (fun a -> a.label) (algorithms ~eps:config.eps) in
  List.concat_map
    (fun label ->
      List.map
        (fun (suffix, proj) ->
          let points =
            List.map
              (fun load ->
                let here =
                  List.concat_map
                    (fun (t, measured) ->
                      if t.load <> load then []
                      else
                        List.filter_map
                          (fun (l, m) -> if l = label then m else None)
                          measured)
                    results
                in
                (load, mean proj here))
              config.loads
          in
          {
            Ascii_plot.label =
              (if suffix = "" then label else label ^ " " ^ suffix);
            points;
          })
        projections)
    labels

let csv path series_list =
  match series_list with
  | [] -> ()
  | first :: _ ->
      let xs = List.map fst first.Ascii_plot.points in
      let rows =
        List.map
          (fun x ->
            x
            :: List.map
                 (fun s ->
                   match List.assoc_opt x s.Ascii_plot.points with
                   | Some y -> y
                   | None -> nan)
                 series_list)
          xs
      in
      Csv.write_floats ~path
        ~header:
          ("offered_load" :: List.map (fun s -> s.Ascii_plot.label) series_list)
        rows

let sweep config ~out_dir ~jobs profile =
  let name = profile_name profile in
  let trials =
    List.concat_map
      (fun load -> List.init config.reps (fun rep -> { load; rep }))
      config.loads
  in
  (* A trial is a pure function of its record (the RNG stream derives
     from the seed and rep alone), so the sweep runs on the domain pool
     with bit-identical output for every [jobs]. *)
  let measured = Parallel.map_seeded ~jobs (run_trial config profile) trials in
  let results = List.combine trials measured in
  let latency =
    series config results [ ("p50", fun p -> p.p50); ("p99", fun p -> p.p99) ]
  in
  let queue = series config results [ ("", fun p -> p.peak_queue) ] in
  let drops = series config results [ ("", fun p -> p.drop_pct) ] in
  Ascii_plot.print
    ~title:
      (Printf.sprintf
         "Sojourn percentiles vs offered load (%s, eps=%d, %d items, %d \
          graphs/point)"
         name config.eps config.n_items config.reps)
    ~x_label:"offered load (rate x period)" ~y_label:"sojourn" latency;
  Fig_latency.table_of_series latency;
  Printf.printf "Peak input-queue occupancy (unbounded, backpressure):\n";
  Fig_latency.table_of_series queue;
  Printf.printf "Shed items (%% of arrivals, queue bound %d, drop-newest):\n"
    config.queue_bound;
  Fig_latency.table_of_series drops;
  csv (Filename.concat out_dir ("fig-traffic-latency-" ^ name ^ ".csv")) latency;
  csv (Filename.concat out_dir ("fig-traffic-queue-" ^ name ^ ".csv")) queue;
  csv (Filename.concat out_dir ("fig-traffic-drops-" ^ name ^ ".csv")) drops;
  latency

let run ?(out_dir = "results") ?(jobs = 1) ~(config : config) () =
  let smooth = sweep config ~out_dir ~jobs Smooth in
  let bursty = sweep config ~out_dir ~jobs Bursty in
  (smooth, bursty)
