type mode = Bounds | Crash

let series ~mode samples =
  match mode with
  | Bounds ->
      [
        Fig_common.mean_series ~label:"R-LTF With 0 Crash"
          Fig_common.rltf_sim samples;
        Fig_common.mean_series ~label:"R-LTF UpperBound"
          Fig_common.rltf_bound samples;
        Fig_common.mean_series ~label:"LTF With 0 Crash"
          Fig_common.ltf_sim samples;
        Fig_common.mean_series ~label:"LTF UpperBound"
          Fig_common.ltf_bound samples;
      ]
  | Crash ->
      [
        Fig_common.mean_series ~label:"R-LTF With 0 Crash"
          Fig_common.rltf_sim samples;
        Fig_common.mean_series ~label:"R-LTF With Crash"
          Fig_common.rltf_crash samples;
        Fig_common.mean_series ~label:"LTF With 0 Crash"
          Fig_common.ltf_sim samples;
        Fig_common.mean_series ~label:"LTF With Crash"
          Fig_common.ltf_crash samples;
      ]

let csv_of_series path series =
  match series with
  | [] -> ()
  | first :: _ ->
      let xs = List.map fst first.Ascii_plot.points in
      let rows =
        List.map
          (fun x ->
            x
            :: List.map
                 (fun s ->
                   match List.assoc_opt x s.Ascii_plot.points with
                   | Some y -> y
                   | None -> nan)
                 series)
          xs
      in
      Csv.write_floats ~path
        ~header:("granularity" :: List.map (fun s -> s.Ascii_plot.label) series)
        rows

let table_of_series series =
  match series with
  | [] -> ()
  | first :: _ ->
      let xs = List.map fst first.Ascii_plot.points in
      let rows =
        List.map
          (fun x ->
            Printf.sprintf "%.1f" x
            :: List.map
                 (fun s ->
                   match List.assoc_opt x s.Ascii_plot.points with
                   | Some y when not (Float.is_nan y) -> Printf.sprintf "%.1f" y
                   | _ -> "-")
                 series)
          xs
      in
      Ascii_table.print
        ~header:("g" :: List.map (fun s -> s.Ascii_plot.label) series)
        rows

let run ?(out_dir = "results") ?(jobs = 1) ~(config : Fig_common.config) ~mode
    () =
  let samples = Fig_common.collect ~jobs config in
  let curves = series ~mode samples in
  let what =
    match mode with
    | Bounds -> "bounds"
    | Crash -> Printf.sprintf "crash%d" config.Fig_common.crashes
  in
  let title =
    Printf.sprintf
      "Normalized latency vs granularity (%s, eps=%d, %d graphs/point)" what
      config.Fig_common.eps config.Fig_common.graphs_per_point
  in
  Ascii_plot.print ~title ~x_label:"granularity" ~y_label:"normalized latency"
    curves;
  table_of_series curves;
  csv_of_series
    (Filename.concat out_dir
       (Printf.sprintf "fig-latency-%s-eps%d.csv" what config.Fig_common.eps))
    curves;
  curves
