type row = {
  granularity : float;
  best_throughput : Stats.summary;
  best_eps : Stats.summary;
}

let run ?(out_dir = "results") ?(seed = 2009) ?(graphs = 10)
    ?(latency_factor = 1.5) () =
  let rows =
    List.filter_map
      (fun granularity ->
        let throughputs = ref [] and epss = ref [] in
        for rep = 0 to graphs - 1 do
          let rng = Rng.create ~seed:(seed + (104729 * rep)) in
          let inst = Spec.generate Spec.default ~rng ~granularity () in
          let dag = inst.Paper_workload.dag and plat = inst.Paper_workload.plat in
          let t1 = Paper_workload.throughput ~eps:1 in
          match Rltf.schedule (Types.problem ~dag ~platform:plat ~eps:1 ~throughput:t1) with
          | Error _ -> ()
          | Ok mapping ->
              let latency_bound =
                latency_factor *. Metrics.latency_bound mapping ~throughput:t1
              in
              (match
                 (Symmetric.max_throughput ~iterations:12 ~dag ~platform:plat
                    ~eps:1 ~latency_bound ())
                   .Symmetric.best
               with
              | Some (t, _) -> throughputs := t :: !throughputs
              | None -> ());
              (match
                 (Symmetric.max_failures ~dag ~platform:plat ~throughput:t1
                    ~latency_bound ())
                   .Symmetric.best
               with
              | Some (eps, _) -> epss := eps :: !epss
              | None -> ())
        done;
        match (Stats.summarize_opt !throughputs, Stats.summarize_opt !epss) with
        | Some best_throughput, Some best_eps ->
            Some { granularity; best_throughput; best_eps }
        | _ -> None)
      [ 0.6; 1.0; 1.4; 2.0 ]
  in
  Printf.printf
    "Symmetric problems (Section 6), latency bound = %.1fx the R-LTF bound:\n"
    latency_factor;
  Ascii_table.print
    ~header:[ "g"; "max throughput (eps=1)"; "max eps (T=1/20)" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.1f" r.granularity;
           Printf.sprintf "%.4f" r.best_throughput.Stats.mean;
           Printf.sprintf "%.2f" r.best_eps.Stats.mean;
         ])
       rows);
  Csv.write
    ~path:(Filename.concat out_dir "fig-symmetric.csv")
    ~header:[ "granularity"; "max_throughput"; "max_eps" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%.2f" r.granularity;
           Printf.sprintf "%.6f" r.best_throughput.Stats.mean;
           Printf.sprintf "%.3f" r.best_eps.Stats.mean;
         ])
       rows);
  rows
