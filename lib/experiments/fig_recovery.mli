(** Extension I: operating schedules under live failures.

    The §5 figures measure a mapping on independent one-shot runs; this
    experiment {e operates} each mapping over a long horizon with
    {!Stream_ops}: exponential fail-stop arrivals, per-crash recovery
    through the {!Recovery_policy} degradation chain, downtime and item
    loss.  It sweeps the failure pressure and compares LTF and R-LTF
    (replicated, ε from the config) against two unreplicated §3
    baselines (HEFT and Hary-Özgüner), plotting availability (items
    delivered / items injected) and the mean degraded-mode latency.

    Knobs are denominated in {e items} (crashes per processor per 1000
    injected items, horizon and reconfiguration delay in items) so every
    algorithm faces the same failure pressure per unit of delivered work
    even though their injection periods differ.  The per-trial RNG seed
    ignores the swept hazard (common random numbers): each curve moves
    along the sweep because of the rate, not resampling noise. *)

type config = {
  seed : int;
  reps : int;  (** random graphs per sweep point *)
  hazards : float list;  (** crashes per processor per 1000 items *)
  horizon_items : int;
  reconfig_items : float;  (** downtime per recovery attempt, in items *)
  eps : int;  (** replication degree for LTF / R-LTF *)
  exact : bool;
      (** also compute the analytic no-recovery survival curve with the
          {!Reliability} calculus (default [false]); purely additive —
          the sampled artifacts never change *)
  spec : Spec.t;
}

val default : config
(** 10 graphs/point, hazards 0.05 … 5, 200-item horizon, ε = 1, on a
    smaller workload than the figure sweeps (30–60 tasks, 12 processors)
    — an ops timeline replays hundreds of items per trial. *)

val quick : config
(** 3 graphs/point, 3 hazard points, 60-item horizon. *)

type trial = { hazard_per_kitem : float; rep : int }

type point = {
  availability : float;
  degraded_latency : float;
  had_outage : float;  (** 0/1, so the mean is the outage rate *)
}

val run_trial : config -> trial -> (string * point option) list
(** One (hazard, graph) cell: schedule every algorithm on the same
    instance and operate each mapping on its own pre-split RNG stream;
    [None] marks an algorithm that failed to schedule.  Pure function of
    its arguments (exposed for the regression tests). *)

val exact_survival_series : config -> Ascii_plot.series list
(** Analytic no-recovery reference: the exact probability (from
    {!Reliability}) that each algorithm's static schedule is never
    defeated within the horizon, with each processor failing
    independently with [q = 1 - exp (-. hazard *. horizon /. 1000.)] —
    the same Poisson process the timelines draw from.  Averaged over the
    same instances [run_trial] generates (same seed derivation), so the
    recovery timelines must sit above this curve: the gap is what
    recovery buys. *)

val run :
  ?out_dir:string ->
  ?jobs:int ->
  config:config ->
  unit ->
  Ascii_plot.series list * Ascii_plot.series list
(** Prints the availability and degraded-latency plots/tables plus the
    outage-rate table, writes [fig-recovery-availability.csv],
    [fig-recovery-latency.csv] and [fig-recovery-outages.csv], and
    returns the (availability, latency) series.  With [config.exact] it
    additionally prints the {!exact_survival_series} plot/table and
    writes [fig-recovery-exact-survival.csv].  [jobs] worker domains
    (default 1 = sequential, identical output for every value). *)
