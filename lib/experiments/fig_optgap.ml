type row = {
  name : string;
  mean_stages : float;
  mean_ratio : float;
  optimal_hits : int;
}

let heuristics ~throughput =
  [
    ( "LTF (eps=0)",
      fun dag plat ->
        Result.to_option
          (Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort)
             (Types.problem ~dag ~platform:plat ~eps:0 ~throughput)) );
    ( "R-LTF (eps=0)",
      fun dag plat ->
        Result.to_option
          (Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort)
             (Types.problem ~dag ~platform:plat ~eps:0 ~throughput)) );
    ("HEFT [9]", fun dag plat -> Some (Heft.mapping ~throughput dag plat));
    ("WMSH [10]", fun dag plat -> Some (Wmsh.mapping dag plat ~throughput));
    ("Hary-Ozguner [4]", fun dag plat -> Some (Hary.mapping dag plat ~throughput));
  ]

let run ?(out_dir = "results") ?(seed = 2009) ?(graphs = 15) ?(tasks = 9)
    ?(m = 4) () =
  let plat = Platform.homogeneous ~name:"optgap" ~m ~speed:1.0 ~bandwidth:1.0 () in
  let acc = Hashtbl.create 8 in
  let record name ratio stages optimal =
    let ratios, stages', hits =
      try Hashtbl.find acc name with Not_found -> ([], [], 0)
    in
    Hashtbl.replace acc name
      (ratio :: ratios, stages :: stages', if optimal then hits + 1 else hits)
  in
  let usable = ref 0 in
  let rep = ref 0 in
  while !usable < graphs && !rep < graphs * 4 do
    incr rep;
    let rng = Rng.create ~seed:(seed + (1009 * !rep)) in
    let dag = Random_dag.layered ~rng ~tasks () in
    let dag = Calibrate.calibrated dag plat ~granularity:1.0 in
    (* a period that makes placement non-trivial: roughly half the work
       must leave the first processor *)
    let throughput = float_of_int m /. (2.0 *. float_of_int tasks) in
    match Optimal.minimum_stages ~dag ~platform:plat ~throughput () with
    | None -> ()
    | Some exact ->
        incr usable;
        List.iter
          (fun (name, algo) ->
            match algo dag plat with
            | None -> ()
            | Some mapping ->
                let s = Metrics.stage_depth mapping in
                record name
                  (float_of_int s /. float_of_int (max 1 exact.Optimal.stages))
                  (float_of_int s)
                  (s = exact.Optimal.stages))
          (heuristics ~throughput)
  done;
  let rows =
    List.filter_map
      (fun (name, _) ->
        match Hashtbl.find_opt acc name with
        | Some (ratios, stages, hits) when ratios <> [] ->
            Some
              {
                name;
                mean_stages = Stats.mean stages;
                mean_ratio = Stats.mean ratios;
                optimal_hits = hits;
              }
        | _ -> None)
      (heuristics ~throughput:1.0)
  in
  Printf.printf
    "Optimality gap vs exact branch-and-bound (%d instances, %d tasks, m=%d):\n"
    !usable tasks m;
  Ascii_table.print
    ~header:[ "algorithm"; "mean stages"; "stages / optimal"; "optimal hits" ]
    (List.map
       (fun r ->
         [
           r.name;
           Printf.sprintf "%.2f" r.mean_stages;
           Printf.sprintf "%.2f" r.mean_ratio;
           Printf.sprintf "%d/%d" r.optimal_hits !usable;
         ])
       rows);
  Csv.write
    ~path:(Filename.concat out_dir "fig-optgap.csv")
    ~header:[ "algorithm"; "mean_stages"; "mean_ratio"; "optimal_hits" ]
    (List.map
       (fun r ->
         [
           r.name;
           Printf.sprintf "%.3f" r.mean_stages;
           Printf.sprintf "%.3f" r.mean_ratio;
           string_of_int r.optimal_hits;
         ])
       rows);
  rows
