(** Figures 3(a)/3(b) (ε = 1) and 4(a)/4(b) (ε = 3): average normalized
    latency versus granularity. *)

type mode =
  | Bounds      (** 0-crash simulated latency vs the (2S−1)/T upper bound *)
  | Crash       (** 0-crash vs c-crash simulated latency *)

val series : mode:mode -> Fig_common.sample list -> Ascii_plot.series list
(** The four curves of the figure, in the paper's legend order. *)

val run :
  ?out_dir:string -> ?jobs:int -> config:Fig_common.config -> mode:mode ->
  unit -> Ascii_plot.series list
(** Collect samples ([jobs] worker domains, default 1 = sequential; the
    output is identical for every value), print the plot and table, write
    [fig-latency-<bounds|crashN>-epsE.csv] under [out_dir] (default
    "results"), and return the series. *)

(** {1 Series rendering shared with the other figure drivers} *)

val table_of_series : Ascii_plot.series list -> unit
(** Print one row per x value, one column per series. *)

val csv_of_series : string -> Ascii_plot.series list -> unit
(** Write the same layout as CSV. *)
