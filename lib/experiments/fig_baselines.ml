type row = {
  name : string;
  stages : Stats.summary;
  latency_bound : Stats.summary;
  sim_latency : Stats.summary;
  meets_throughput : int;
}

(* One uniform sweep over the two registries: the core algorithms
   (labelled with the ε they run at, since they otherwise replicate) and
   the §3 baselines.  Every entry goes through the same [Algo.run] door —
   no per-algorithm cases. *)
let algorithms ~throughput =
  let opts = Scheduler.(default |> with_mode Best_effort) in
  let entry ?(suffix = "") (module A : Scheduler.Algo) =
    ( A.name ^ suffix,
      fun dag plat ->
        Result.to_option
          (A.run ~opts (Types.problem ~dag ~platform:plat ~eps:0 ~throughput))
    )
  in
  List.map (entry ~suffix:" (eps=0)") Scheduler.all
  @ List.map (fun a -> entry a) Baseline_registry.all

let run ?(out_dir = "results") ?(seed = 2009) ?(graphs = 30)
    ?(granularity = 1.0) ?(jobs = 1) () =
  let throughput = Paper_workload.throughput ~eps:0 in
  let algos = algorithms ~throughput in
  (* One graph is a pure function of its rep index, so the graphs can run
     on a domain pool; aggregation below stays in rep order, making the
     result identical for every [jobs]. *)
  let measure rep =
    let rng = Rng.create ~seed:(seed + (7919 * rep)) in
    let inst = Spec.generate Spec.default ~rng ~granularity () in
    let dag = inst.Paper_workload.dag and plat = inst.Paper_workload.plat in
    List.filter_map
      (fun (name, algo) ->
        match algo dag plat with
        | None -> None
        | Some mapping ->
            Some
              ( name,
                float_of_int (Metrics.stage_depth mapping),
                Metrics.latency_bound mapping ~throughput,
                Engine.latency mapping,
                Metrics.meets_throughput mapping ~throughput ))
      algos
  in
  let per_rep = Parallel.map_seeded ~jobs measure (List.init graphs Fun.id) in
  let acc = Hashtbl.create 16 in
  let record name field value =
    let key = (name, field) in
    let prev = try Hashtbl.find acc key with Not_found -> [] in
    Hashtbl.replace acc key (value :: prev)
  in
  let meets = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (name, stages, bound, sim, meets_t) ->
         record name `Stages stages;
         record name `Bound bound;
         (match sim with Some l -> record name `Sim l | None -> ());
         if meets_t then
           Hashtbl.replace meets name
             (1 + try Hashtbl.find meets name with Not_found -> 0)))
    per_rep;
  let rows =
    List.filter_map
      (fun (name, _) ->
        let get field = try Hashtbl.find acc (name, field) with Not_found -> [] in
        match
          ( Stats.summarize_opt (get `Stages),
            Stats.summarize_opt (get `Bound),
            Stats.summarize_opt (get `Sim) )
        with
        | Some stages, Some latency_bound, Some sim_latency ->
            Some
              {
                name;
                stages;
                latency_bound;
                sim_latency;
                meets_throughput =
                  (try Hashtbl.find meets name with Not_found -> 0);
              }
        | _ -> None)
      algos
  in
  Printf.printf
    "Baseline comparison (eps=0, g=%.1f, %d graphs, T=%.3f):\n" granularity
    graphs throughput;
  Ascii_table.print
    ~header:[ "algorithm"; "stages"; "latency bound"; "sim latency"; "meets T" ]
    (List.map
       (fun r ->
         [
           r.name;
           Printf.sprintf "%.1f" r.stages.Stats.mean;
           Printf.sprintf "%.1f" r.latency_bound.Stats.mean;
           Printf.sprintf "%.1f" r.sim_latency.Stats.mean;
           Printf.sprintf "%d/%d" r.meets_throughput graphs;
         ])
       rows);
  Csv.write
    ~path:(Filename.concat out_dir "fig-baselines.csv")
    ~header:[ "algorithm"; "stages"; "latency_bound"; "sim_latency"; "meets_T" ]
    (List.map
       (fun r ->
         [
           r.name;
           Printf.sprintf "%.3f" r.stages.Stats.mean;
           Printf.sprintf "%.3f" r.latency_bound.Stats.mean;
           Printf.sprintf "%.3f" r.sim_latency.Stats.mean;
           string_of_int r.meets_throughput;
         ])
       rows);
  rows
