type row = {
  name : string;
  stages : Stats.summary;
  latency_bound : Stats.summary;
  sim_latency : Stats.summary;
  meets_throughput : int;
}

let algorithms ~throughput =
  [
    ( "LTF (eps=0)",
      fun dag plat ->
        match
          Ltf.run ~mode:Scheduler.Best_effort
            (Types.problem ~dag ~platform:plat ~eps:0 ~throughput)
        with
        | Ok m -> Some m
        | Error _ -> None );
    ( "R-LTF (eps=0)",
      fun dag plat ->
        match
          Rltf.run ~mode:Scheduler.Best_effort
            (Types.problem ~dag ~platform:plat ~eps:0 ~throughput)
        with
        | Ok m -> Some m
        | Error _ -> None );
    ("HEFT [9]", fun dag plat -> Some (Heft.mapping ~throughput dag plat));
    ("ETF [6]", fun dag plat -> Some (Etf.mapping ~throughput dag plat));
    ("Hary-Ozguner [4]", fun dag plat -> Some (Hary.mapping dag plat ~throughput));
    ("EXPERT [3]", fun dag plat -> Some (Expert.mapping dag plat ~throughput));
    ("TDA [11]", fun dag plat -> Some (Tda.mapping dag plat ~throughput));
    ("STDP [8]", fun dag plat -> Some (Stdp.mapping dag plat ~throughput));
    ("WMSH [10]", fun dag plat -> Some (Wmsh.mapping dag plat ~throughput));
    ("Hoang-Rabaey [5]", fun dag plat -> Some (Hoang.mapping ~iterations:20 dag plat));
  ]

let run ?(out_dir = "results") ?(seed = 2009) ?(graphs = 30)
    ?(granularity = 1.0) ?(jobs = 1) () =
  let throughput = Paper_workload.throughput ~eps:0 in
  let algos = algorithms ~throughput in
  (* One graph is a pure function of its rep index, so the graphs can run
     on a domain pool; aggregation below stays in rep order, making the
     result identical for every [jobs]. *)
  let measure rep =
    let rng = Rng.create ~seed:(seed + (7919 * rep)) in
    let inst = Paper_workload.instance ~rng ~granularity () in
    let dag = inst.Paper_workload.dag and plat = inst.Paper_workload.plat in
    List.filter_map
      (fun (name, algo) ->
        match algo dag plat with
        | None -> None
        | Some mapping ->
            Some
              ( name,
                float_of_int (Metrics.stage_depth mapping),
                Metrics.latency_bound mapping ~throughput,
                Engine.latency mapping,
                Metrics.meets_throughput mapping ~throughput ))
      algos
  in
  let per_rep = Parallel.map_seeded ~jobs measure (List.init graphs Fun.id) in
  let acc = Hashtbl.create 16 in
  let record name field value =
    let key = (name, field) in
    let prev = try Hashtbl.find acc key with Not_found -> [] in
    Hashtbl.replace acc key (value :: prev)
  in
  let meets = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (name, stages, bound, sim, meets_t) ->
         record name `Stages stages;
         record name `Bound bound;
         (match sim with Some l -> record name `Sim l | None -> ());
         if meets_t then
           Hashtbl.replace meets name
             (1 + try Hashtbl.find meets name with Not_found -> 0)))
    per_rep;
  let rows =
    List.filter_map
      (fun (name, _) ->
        let get field = try Hashtbl.find acc (name, field) with Not_found -> [] in
        match
          ( Stats.summarize_opt (get `Stages),
            Stats.summarize_opt (get `Bound),
            Stats.summarize_opt (get `Sim) )
        with
        | Some stages, Some latency_bound, Some sim_latency ->
            Some
              {
                name;
                stages;
                latency_bound;
                sim_latency;
                meets_throughput =
                  (try Hashtbl.find meets name with Not_found -> 0);
              }
        | _ -> None)
      algos
  in
  Printf.printf
    "Baseline comparison (eps=0, g=%.1f, %d graphs, T=%.3f):\n" granularity
    graphs throughput;
  Ascii_table.print
    ~header:[ "algorithm"; "stages"; "latency bound"; "sim latency"; "meets T" ]
    (List.map
       (fun r ->
         [
           r.name;
           Printf.sprintf "%.1f" r.stages.Stats.mean;
           Printf.sprintf "%.1f" r.latency_bound.Stats.mean;
           Printf.sprintf "%.1f" r.sim_latency.Stats.mean;
           Printf.sprintf "%d/%d" r.meets_throughput graphs;
         ])
       rows);
  Csv.write
    ~path:(Filename.concat out_dir "fig-baselines.csv")
    ~header:[ "algorithm"; "stages"; "latency_bound"; "sim_latency"; "meets_T" ]
    (List.map
       (fun r ->
         [
           r.name;
           Printf.sprintf "%.3f" r.stages.Stats.mean;
           Printf.sprintf "%.3f" r.latency_bound.Stats.mean;
           Printf.sprintf "%.3f" r.sim_latency.Stats.mean;
           string_of_int r.meets_throughput;
         ])
       rows);
  rows
