(** Extension A: the §3 related-work heuristics on the paper workload.

    Not a figure of the paper — §3 describes these algorithms without
    evaluating them — but a natural sanity context for LTF/R-LTF: all
    heuristics run without replication (ε = 0) on the same instances, and
    we report pipeline stages, latency bound, simulated latency and
    throughput satisfaction. *)

type row = {
  name : string;
  stages : Stats.summary;
  latency_bound : Stats.summary;
  sim_latency : Stats.summary;
  meets_throughput : int;  (** graphs (out of the total) meeting T *)
}

val run :
  ?out_dir:string ->
  ?seed:int ->
  ?graphs:int ->
  ?granularity:float ->
  ?jobs:int ->
  unit ->
  row list
(** Defaults: seed 2009, 30 graphs, granularity 1.0, 1 job.  Graphs are
    measured on [jobs] worker domains (identical output for every value).
    Prints a table and writes [fig-baselines.csv]. *)
