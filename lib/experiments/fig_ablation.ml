type row = {
  name : string;
  strict_ok : int;
  meets : int;
  stages : Stats.summary;
  latency : Stats.summary;
  messages : Stats.summary;
}

let configurations =
  Scheduler.
    [
      ("default", default);
      ("no one-to-one", default |> with_use_one_to_one false);
      ("greedy sources only", default |> with_source_policy Greedy_only);
      ( "conservative sources only",
        default |> with_source_policy Conservative_only );
      ("half lane budget", default |> with_lane_budget_factor 0.5);
      ("double lane budget", default |> with_lane_budget_factor 2.0);
    ]

let run ?(out_dir = "results") ?(seed = 2009) ?(graphs = 20)
    ?(granularity = 1.0) ?(eps = 1) ?(jobs = 1) () =
  let throughput = Paper_workload.throughput ~eps in
  let rows =
    List.map
      (fun (name, opts) ->
        (* One graph is a pure function of its rep index; the graphs run
           on a domain pool and the folds below stay in rep order, so the
           row is identical for every [jobs]. *)
        let measure rep =
          let rng = Rng.create ~seed:(seed + (7919 * rep)) in
          let inst = Spec.generate Spec.default ~rng ~granularity () in
          let prob =
            Types.problem ~dag:inst.Paper_workload.dag
              ~platform:inst.Paper_workload.plat ~eps ~throughput
          in
          let strict_ok =
            match Rltf.schedule ~opts prob with Ok _ -> true | Error _ -> false
          in
          let best_effort =
            match
              Rltf.schedule ~opts:Scheduler.(opts |> with_mode Best_effort) prob
            with
            | Error _ -> None
            | Ok m ->
                Some
                  ( Metrics.meets_throughput m ~throughput,
                    float_of_int (Metrics.stage_depth m),
                    Metrics.latency_bound m ~throughput,
                    float_of_int (Mapping.n_messages m) )
          in
          (strict_ok, best_effort)
        in
        let per_rep =
          Parallel.map_seeded ~jobs measure (List.init graphs Fun.id)
        in
        let strict_ok = ref 0 and meets = ref 0 in
        let stages = ref [] and latency = ref [] and messages = ref [] in
        List.iter
          (fun (ok, best_effort) ->
            if ok then incr strict_ok;
            match best_effort with
            | None -> ()
            | Some (meets_t, s, l, msg) ->
                if meets_t then incr meets;
                stages := s :: !stages;
                latency := l :: !latency;
                messages := msg :: !messages)
          per_rep;
        {
          name;
          strict_ok = !strict_ok;
          meets = !meets;
          stages = Stats.summarize !stages;
          latency = Stats.summarize !latency;
          messages = Stats.summarize !messages;
        })
      configurations
  in
  Printf.printf
    "Ablation of the R-LTF implementation (g=%.1f, eps=%d, %d graphs):\n"
    granularity eps graphs;
  Ascii_table.print
    ~header:
      [ "configuration"; "strict ok"; "meets T"; "stages"; "latency bound"; "messages" ]
    (List.map
       (fun r ->
         [
           r.name;
           Printf.sprintf "%d/%d" r.strict_ok graphs;
           Printf.sprintf "%d/%d" r.meets graphs;
           Printf.sprintf "%.1f" r.stages.Stats.mean;
           Printf.sprintf "%.0f" r.latency.Stats.mean;
           Printf.sprintf "%.0f" r.messages.Stats.mean;
         ])
       rows);
  Csv.write
    ~path:(Filename.concat out_dir "fig-ablation.csv")
    ~header:
      [ "configuration"; "strict_ok"; "meets_T"; "stages"; "latency_bound"; "messages" ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.strict_ok;
           string_of_int r.meets;
           Printf.sprintf "%.3f" r.stages.Stats.mean;
           Printf.sprintf "%.3f" r.latency.Stats.mean;
           Printf.sprintf "%.3f" r.messages.Stats.mean;
         ])
       rows);
  rows
