(** Figures 3(c)/4(c): average fault-tolerance overhead (%) versus
    granularity.

    [Overhead = (L_algo − L_FF) / L_FF × 100] against the fault-free
    reference schedule (R-LTF without replication, ε = 0, on the same
    graph and platform), for LTF and R-LTF, each with 0 crashes and with
    [c] crashes. *)

val series : Fig_common.sample list -> Ascii_plot.series list

val defeat_series : Fig_common.sample list -> Ascii_plot.series list
(** Mean percentage of crash draws that defeated the mapping (an exit
    task lost every replica), per algorithm. *)

val run :
  ?out_dir:string -> ?jobs:int -> config:Fig_common.config -> unit ->
  Ascii_plot.series list
(** Prints the plot and table and writes [fig-overhead-epsE.csv];
    when [crashes > 0] also prints the defeat-rate table and writes it to
    the separate [fig-overhead-defeats-epsE.csv] (the overhead CSV itself
    is unchanged).  With [config.exact] the crash columns come from the
    {!Reliability} calculus and both files gain an [-exact] suffix, so
    the sampled artifacts never change.  [jobs] worker domains (default 1
    = sequential, identical output). *)
