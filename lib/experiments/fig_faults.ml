(* Fault-injection sweep (Extension M): transient faults with
   retry/backoff, gray failures, and correlated failure domains.

   The paper's reliability experiments only know permanent fail-silent
   crashes.  This figure exercises the three fault classes the
   simulator's fault model adds:

   - Part A re-runs the same closed-system stream under a grid of
     per-attempt transient fault rates x retry budgets.  Retries are
     charged against the one-port model, so latency climbs with the
     fault rate at every fixed budget, and a bigger budget trades
     latency for delivery (fewer exhausted work units).
   - Part B stretches the busiest processor by a straggler factor (a
     gray failure): the whole-stream mean latency degrades smoothly,
     with no crash and no lost item.
   - Part C sweeps the correlation strength of rack-level common
     shocks at a fixed per-processor total failure probability: the
     exact Marshall-Olkin calculus (Reliability.Correlated) against a
     Monte-Carlo estimate over the same model, with the independent
     model of equal marginals as the baseline the correlation defeats.
   - Part D drives the operations layer: a processor stuck in a
     permanent exec-fault window exhausts retries epoch after epoch
     until the escalation policy evicts it through the normal recovery
     chain. *)

type config = {
  seed : int;
  reps : int;  (** random graphs per sweep point *)
  fault_rates : float list;  (** per-attempt transient fault probability *)
  retry_budgets : int list;  (** max_retries values of the A sweep *)
  straggler_factors : float list;  (** gray slowdown factors of the B sweep *)
  rhos : float list;  (** correlation strengths of the C sweep *)
  p_total : float;  (** per-processor total failure probability of C *)
  rack_size : int;  (** processors per failure domain of C *)
  mc_draws : int;  (** Monte-Carlo draws per C point *)
  n_items : int;  (** items simulated per A/B run *)
  eps : int;  (** replication degree for R-LTF *)
  spec : Spec.t;
}

(* Same reduced scale as the traffic and recovery figures: the cost of a
   trial is items through the event engine, not graph size. *)
let spec =
  Spec.paper ~name:"paper-faults" ~descr:"reduced scale for the event engine"
    {
      Paper_workload.default_spec with
      Paper_workload.tasks_range = (30, 60);
      m = 12;
    }

let default =
  {
    seed = 2009;
    reps = 4;
    fault_rates = [ 0.0; 0.02; 0.05; 0.1; 0.2 ];
    retry_budgets = [ 0; 1; 3; 5 ];
    straggler_factors = [ 1.0; 1.5; 2.0; 4.0 ];
    rhos = [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
    p_total = 0.08;
    rack_size = 3;
    mc_draws = 2000;
    n_items = 60;
    eps = 1;
    spec;
  }

let quick =
  {
    default with
    reps = 2;
    fault_rates = [ 0.0; 0.05; 0.2 ];
    retry_budgets = [ 0; 3 ];
    straggler_factors = [ 1.0; 2.0 ];
    rhos = [ 0.0; 0.5; 1.0 ];
    mc_draws = 400;
    n_items = 24;
  }

(* ---- shared helpers ---------------------------------------------------- *)

let schedule_rltf ~eps inst =
  let throughput = Paper_workload.throughput ~eps in
  let prob =
    Types.problem ~dag:inst.Paper_workload.dag
      ~platform:inst.Paper_workload.plat ~eps ~throughput
  in
  match
    Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob
  with
  | Ok mapping -> Some (mapping, throughput)
  | Error _ -> None

let busiest_proc mapping =
  let n = Platform.size (Mapping.platform mapping) in
  let load = Array.make n 0 in
  Mapping.iter mapping (fun r ->
      load.(r.Replica.proc) <- load.(r.Replica.proc) + 1);
  let best = ref 0 in
  Array.iteri (fun u c -> if c > load.(!best) then best := u) load;
  !best

let mean = function
  | [] -> nan
  | vals -> List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)

(* ---- Part A: retry budget x fault rate --------------------------------- *)

type retry_point = {
  rp_latency : float;  (** mean delivered-item sojourn *)
  rp_delivered : float;  (** fraction of items delivered *)
  rp_retries : float;  (** retries per injected item *)
}

let measure_retry config ~fault_seed ~budget ~rate prog ~period =
  let retry =
    Faults.Backoff.make ~base_delay:(0.25 *. period) ~max_retries:budget ()
  in
  let transient =
    {
      Faults.Transient.none with
      Faults.Transient.exec_rate = rate;
      comm_rate = rate;
      seed = fault_seed;
    }
  in
  let faults = { Faults.none with Faults.transient; retry } in
  let r =
    Engine.simulate
      ~config:
        (Engine.Run.with_faults faults
           (Engine.Run.closed ~n_items:config.n_items ~period ()))
      prog
  in
  let sojourns = Engine.sojourns r in
  {
    rp_latency = mean sojourns;
    rp_delivered =
      float_of_int (List.length sojourns) /. float_of_int config.n_items;
    rp_retries =
      float_of_int r.Engine.faults.Engine.retries
      /. float_of_int config.n_items;
  }

(* ---- Part B: gray stragglers ------------------------------------------- *)

let measure_gray config ~factor prog ~period ~proc =
  (* The window outlives any run, so the whole stream is degraded.
     [is_none] is false even at factor 1.0: that point pays the
     instrumented path and doubles as a fast-path equivalence check. *)
  let gray =
    {
      Faults.Gray.stragglers =
        [ (proc, { Faults.Gray.g_from = 0.0; g_until = 1e15; factor }) ];
      links = [];
    }
  in
  let faults = { Faults.none with Faults.gray } in
  let r =
    Engine.simulate
      ~config:
        (Engine.Run.with_faults faults
           (Engine.Run.closed ~n_items:config.n_items ~period ()))
      prog
  in
  mean (Engine.sojourns r)

(* ---- Part C: correlated failure domains -------------------------------- *)

type corr_point = {
  cp_exact : float;  (** exact correlated defeat probability *)
  cp_mc : float;  (** Monte-Carlo estimate of the same model *)
  cp_independent : float;  (** independent model with equal marginals *)
}

(* Split the total per-processor failure probability between the rack
   shock and the idiosyncratic component so the marginal stays [p_total]
   at every correlation strength: P(dead) = 1-(1-p_shock)(1-p_ind). *)
let split_probability ~p_total ~rho =
  let p_shock = rho *. p_total in
  let p_ind =
    if p_shock >= 1.0 then 0.0 else 1.0 -. ((1.0 -. p_total) /. (1.0 -. p_shock))
  in
  (p_shock, p_ind)

let measure_corr config ~rng ~rho mapping =
  let m = Platform.size (Mapping.platform mapping) in
  let domains = Faults.Domains.racks ~size:config.rack_size ~procs:m in
  let p_shock, p_ind = split_probability ~p_total:config.p_total ~rho in
  let t = Reliability.analyze mapping in
  let cp_exact =
    Reliability.defeat_probability t
      (Reliability.Correlated
         {
           domains;
           p_shock = (fun _ -> p_shock);
           p_fail = (fun _ -> p_ind);
         })
  in
  let cp_independent =
    Reliability.defeat_probability t
      (Reliability.Independent (fun _ -> config.p_total))
  in
  let n_domains = Faults.Domains.count domains in
  let defeated = ref 0 in
  for _ = 1 to config.mc_draws do
    let shocked = Array.init n_domains (fun _ -> Rng.bool rng p_shock) in
    let failed = ref [] in
    for u = m - 1 downto 0 do
      if shocked.(Faults.Domains.domain_of domains u) || Rng.bool rng p_ind
      then failed := u :: !failed
    done;
    if Reliability.defeated_by t ~failed:!failed then incr defeated
  done;
  {
    cp_exact;
    cp_mc = float_of_int !defeated /. float_of_int config.mc_draws;
    cp_independent;
  }

(* ---- Part D: escalation to eviction ------------------------------------ *)

type drill = {
  dr_evictions : int;
  dr_availability : float;
  dr_decisions : string list;
}

(* A processor stuck in a permanent exec-fault window with a tiny retry
   budget: every instance dispatched to it exhausts, the ledger crosses
   the threshold at the first review, and the operations layer evicts
   the machine through the same chain a crash would take. *)
let eviction_drill config =
  let rng = Rng.create ~seed:config.seed in
  let inst = Spec.generate config.spec ~rng ~granularity:1.0 () in
  match schedule_rltf ~eps:config.eps inst with
  | None -> None
  | Some (mapping, throughput) ->
      let p = Float.max (1.0 /. throughput) (Metrics.period mapping) in
      let victim = busiest_proc mapping in
      let horizon = float_of_int config.n_items *. 8.0 *. p in
      let faults =
        {
          Stream_ops.engine_faults =
            {
              Faults.transient =
                {
                  Faults.Transient.none with
                  Faults.Transient.exec_windows = [ (victim, 0.0, 1e15) ];
                };
              retry = Faults.Backoff.make ~max_retries:1 ();
              gray = Faults.Gray.none;
            };
          eviction_threshold = 3;
          review_window = float_of_int config.n_items *. p;
        }
      in
      let ops_config =
        {
          Stream_ops.horizon;
          hazard = Failure_gen.uniform ~lambda:0.0;
          max_attempts = None;
          reconfig_delay = 2.0 *. p;
          max_items_per_epoch = config.n_items + 8;
          overload = None;
          faults = Some faults;
        }
      in
      let report =
        Stream_ops.run ~config:ops_config
          ~rng:(Rng.create ~seed:(config.seed + 1))
          ~throughput mapping
      in
      Some
        {
          dr_evictions = report.Stream_ops.evictions;
          dr_availability = report.Stream_ops.availability;
          dr_decisions =
            List.map
              (fun ep -> Stream_ops.decision_to_string ep.Stream_ops.decision)
              report.Stream_ops.epochs;
        }

(* ---- the sweep --------------------------------------------------------- *)

type trial_result = {
  tr_retry : ((int * float) * retry_point) list;  (** (budget, rate) *)
  tr_gray : (float * float) list;  (** factor -> mean latency *)
  tr_corr : (float * corr_point) list;  (** rho -> defeat rates *)
}

(* One trial = one random instance, measured at every sweep point.  The
   fault-model draws hash a per-trial seed, and the correlation MC
   stream is split off before use, so each axis moves because of its
   knob, never because of resampling noise (CRN along every sweep). *)
let run_trial config rep =
  let rng = Rng.create ~seed:(config.seed + (7919 * rep)) in
  let inst = Spec.generate config.spec ~rng ~granularity:1.0 () in
  match schedule_rltf ~eps:config.eps inst with
  | None -> None
  | Some (mapping, throughput) ->
      let p = Float.max (1.0 /. throughput) (Metrics.period mapping) in
      let prog = Engine.compile mapping in
      let fault_seed = config.seed + (104729 * rep) in
      let tr_retry =
        List.concat_map
          (fun budget ->
            List.map
              (fun rate ->
                ( (budget, rate),
                  measure_retry config ~fault_seed ~budget ~rate prog
                    ~period:p ))
              config.fault_rates)
          config.retry_budgets
      in
      let victim = busiest_proc mapping in
      let tr_gray =
        List.map
          (fun factor ->
            (factor, measure_gray config ~factor prog ~period:p ~proc:victim))
          config.straggler_factors
      in
      let mc_rng = Rng.split rng in
      let tr_corr =
        List.map
          (fun rho -> (rho, measure_corr config ~rng:mc_rng ~rho mapping))
          config.rhos
      in
      Some { tr_retry; tr_gray; tr_corr }

let run ?(out_dir = "results") ?(jobs = 1) ~(config : config) () =
  let trials =
    Parallel.map_seeded ~jobs (run_trial config)
      (List.init config.reps Fun.id)
    |> List.filter_map Fun.id
  in
  (* Part A: one latency and one delivery series per retry budget. *)
  let retry_series proj suffix =
    List.map
      (fun budget ->
        {
          Ascii_plot.label = Printf.sprintf "budget=%d%s" budget suffix;
          points =
            List.map
              (fun rate ->
                ( rate,
                  mean
                    (List.filter_map
                       (fun t -> Option.map proj
                           (List.assoc_opt (budget, rate) t.tr_retry))
                       trials) ))
              config.fault_rates;
        })
      config.retry_budgets
  in
  let lat = retry_series (fun rp -> rp.rp_latency) "" in
  let delivered = retry_series (fun rp -> 100.0 *. rp.rp_delivered) "" in
  let retries = retry_series (fun rp -> rp.rp_retries) "" in
  Ascii_plot.print
    ~title:
      (Printf.sprintf
         "Mean latency vs transient fault rate (R-LTF eps=%d, %d items, %d \
          graphs, backoff 0.25 period x2)"
         config.eps config.n_items config.reps)
    ~x_label:"per-attempt fault rate" ~y_label:"mean sojourn" lat;
  Fig_latency.table_of_series lat;
  Printf.printf "Delivered items (%% of injected):\n";
  Fig_latency.table_of_series delivered;
  Printf.printf "Retries per injected item:\n";
  Fig_latency.table_of_series retries;
  Fig_latency.csv_of_series (Filename.concat out_dir "fig-faults-retry-latency.csv") lat;
  Fig_latency.csv_of_series (Filename.concat out_dir "fig-faults-retry-delivered.csv") delivered;
  Fig_latency.csv_of_series (Filename.concat out_dir "fig-faults-retry-count.csv") retries;
  (* Part B: gray straggler factor. *)
  let gray =
    [
      {
        Ascii_plot.label = "straggler on busiest proc";
        points =
          List.map
            (fun factor ->
              ( factor,
                mean
                  (List.filter_map
                     (fun t -> List.assoc_opt factor t.tr_gray)
                     trials) ))
            config.straggler_factors;
      };
    ]
  in
  Ascii_plot.print
    ~title:"Mean latency vs gray straggler factor (no crash, no loss)"
    ~x_label:"execution slowdown factor" ~y_label:"mean sojourn" gray;
  Fig_latency.table_of_series gray;
  Fig_latency.csv_of_series (Filename.concat out_dir "fig-faults-gray.csv") gray;
  (* Part C: correlation strength. *)
  let corr_series label proj =
    {
      Ascii_plot.label;
      points =
        List.map
          (fun rho ->
            ( rho,
              mean
                (List.filter_map
                   (fun t -> Option.map proj (List.assoc_opt rho t.tr_corr))
                   trials) ))
          config.rhos;
    }
  in
  let corr =
    [
      corr_series "exact (Marshall-Olkin)" (fun c -> c.cp_exact);
      corr_series "Monte-Carlo" (fun c -> c.cp_mc);
      corr_series "independent (equal marginals)" (fun c -> c.cp_independent);
    ]
  in
  Ascii_plot.print
    ~title:
      (Printf.sprintf
         "Defeat probability vs correlation strength (racks of %d, p_total \
          %.2f, %d MC draws)"
         config.rack_size config.p_total config.mc_draws)
    ~x_label:"correlation rho (shock share of p_total)"
    ~y_label:"P(defeat)" corr;
  Fig_latency.table_of_series corr;
  Fig_latency.csv_of_series (Filename.concat out_dir "fig-faults-correlated.csv") corr;
  (* Part D: the eviction drill. *)
  (match eviction_drill config with
  | None -> Printf.printf "eviction drill: scheduling failed, skipped\n"
  | Some d ->
      Printf.printf
        "eviction drill: %d eviction(s), availability %.3f, epochs [%s]\n"
        d.dr_evictions d.dr_availability
        (String.concat "; " d.dr_decisions));
  (lat, gray, corr)
