(* Extension L: schedule-time and simulate-time scaling on the [huge]
   workload family, v up to 10⁶ tasks on p up to 10³ processors.

   Each sweep point draws one huge instance, schedules it with flat LTF
   and with the hierarchical C-LTF (cluster-then-place), then compiles
   and replays one period (one item) through the event engine.  The
   finish-time distribution of that item is summarized through a bounded
   reservoir ({!Stats.reservoir_add}) — at v = 10⁶ the sample has two
   million replica finish times, which must not be materialized or
   sorted. *)

type point = {
  v : int;  (** requested task count *)
  m : int;
  eps : int;
  algo : string;
  sched_s : float;  (** CPU seconds to schedule *)
  sim_s : float;  (** CPU seconds to compile + replay one item *)
  stages : int;
  latency : float;  (** simulated latency of item 0; nan if lost *)
  finish_p50 : float;  (** replica finish-time quantiles of item 0 *)
  finish_p999 : float;
}

let time_once f =
  let t0 = Sys.time () in
  let y = f () in
  (Sys.time () -. t0, y)

let algos () =
  let ltf : (module Sched_api.Algo) =
    (module struct
      let name = "LTF"
      let run ?opts prob = Ltf.schedule ?opts prob
    end)
  in
  match Baseline_registry.find "C-LTF" with
  | Some clustered -> [ ltf; clustered ]
  | None -> [ ltf ]

let measure ~rng ~eps ~spec prob (module A : Sched_api.Algo) =
  let opts = Scheduler.(default |> with_mode Best_effort) in
  let sched_s, outcome = time_once (fun () -> A.run ~opts prob) in
  match outcome with
  | Error f ->
      Printf.printf "  %-8s v=%-8d m=%-5d FAILED: %s\n%!" A.name
        spec.Huge.tasks spec.Huge.m
        (Types.failure_to_string f);
      None
  | Ok mapping ->
      let sim_s, result =
        time_once (fun () ->
            let prog = Engine.compile mapping in
            Engine.run_compiled ~n_items:1 prog)
      in
      let res =
        Stats.reservoir_create ~cap:4096 ~rand_int:(fun b -> Rng.int rng b)
      in
      Mapping.iter mapping (fun r ->
          match result.Engine.finish_time 0 r.Replica.id with
          | Some f -> Stats.reservoir_add res f
          | None -> ());
      let q = Stats.reservoir_quantiles res in
      let latency =
        match result.Engine.item_latency.(0) with Some l -> l | None -> nan
      in
      Some
        {
          v = spec.Huge.tasks;
          m = spec.Huge.m;
          eps;
          algo = A.name;
          sched_s;
          sim_s;
          stages = Metrics.stage_depth mapping;
          latency;
          finish_p50 = q.Stats.p50;
          finish_p999 = q.Stats.p999;
        }

let run ?(out_dir = "results") ?(seed = 2009) ?(eps = 1)
    ?(v_sweep = [ 1_000; 10_000; 100_000; 1_000_000 ])
    ?(m_sweep = [ 100; 1_000 ]) () =
  let points = ref [] in
  List.iter
    (fun m ->
      List.iter
        (fun v ->
          let spec = { Huge.default_spec with Huge.tasks = v; m } in
          let rng = Rng.create ~seed:(seed + (31 * m) + v) in
          let inst = Spec.generate (Spec.huge spec) ~rng ~granularity:1.0 () in
          let throughput = Huge.throughput ~spec ~eps () in
          let prob =
            Types.problem ~dag:inst.Paper_workload.dag
              ~platform:inst.Paper_workload.plat ~eps ~throughput
          in
          List.iter
            (fun algo ->
              match measure ~rng ~eps ~spec prob algo with
              | None -> ()
              | Some p ->
                  Printf.printf
                    "  %-8s v=%-8d m=%-5d sched %8.2fs  sim %8.2fs  S=%d\n%!"
                    p.algo p.v p.m p.sched_s p.sim_s p.stages;
                  points := p :: !points)
            (algos ()))
        v_sweep)
    m_sweep;
  let points = List.rev !points in
  let series proj =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun name ->
            let mine =
              List.filter (fun p -> p.m = m && p.algo = name) points
            in
            if mine = [] then None
            else
              Some
                {
                  Ascii_plot.label = Printf.sprintf "%s m=%d" name m;
                  points =
                    List.map
                      (fun p -> (log10 (float_of_int p.v), proj p))
                      mine;
                })
          [ "LTF"; "C-LTF" ])
      m_sweep
  in
  Ascii_plot.print ~title:"schedule time vs log10 v"
    ~x_label:"log10 tasks" ~y_label:"CPU s" (series (fun p -> p.sched_s));
  Ascii_plot.print ~title:"simulate time (1 item) vs log10 v"
    ~x_label:"log10 tasks" ~y_label:"CPU s" (series (fun p -> p.sim_s));
  Csv.write
    ~path:(Filename.concat out_dir "fig-scaling.csv")
    ~header:
      [
        "v"; "m"; "eps"; "algo"; "sched_seconds"; "sim_seconds"; "stages";
        "latency"; "finish_p50"; "finish_p999";
      ]
    (List.map
       (fun p ->
         [
           string_of_int p.v;
           string_of_int p.m;
           string_of_int p.eps;
           p.algo;
           Printf.sprintf "%.6f" p.sched_s;
           Printf.sprintf "%.6f" p.sim_s;
           string_of_int p.stages;
           Printf.sprintf "%.6f" p.latency;
           Printf.sprintf "%.6f" p.finish_p50;
           Printf.sprintf "%.6f" p.finish_p999;
         ])
       points);
  points
