type outcome = {
  what : string;
  paper : string;
  measured : string;
}

let fig1 () =
  let dag = Classic.fig1_graph and plat = Classic.fig1_platform in
  (* (i) Task parallelism: classical list scheduling; in streaming mode the
     period equals the makespan, so L = makespan and T = 1/L. *)
  let heft = Heft.run dag plat in
  let task_parallel =
    {
      what = "task parallelism: latency (= 1/throughput)";
      paper = "L = 39, T = 1/39";
      measured =
        Printf.sprintf "L = %.0f, T = 1/%.0f" heft.Heft.makespan heft.Heft.makespan;
    }
  in
  (* (ii) Data parallelism: the whole graph on one processor, one replica
     per processor, items dealt round-robin.  The aggregate throughput is
     the sum of the processors' processing rates. *)
  let total = Dag.total_exec dag in
  let aggregate =
    List.fold_left
      (fun acc u -> acc +. (Platform.speed plat u /. total))
      0.0 (Platform.procs plat)
  in
  let data_parallel =
    {
      what = "data parallelism: aggregate throughput";
      paper = "T = 2/40 = 1/20 (fast processors)";
      measured = Printf.sprintf "T = 1/%.1f (all four processors)" (1.0 /. aggregate);
    }
  in
  (* (iii) Pipelined execution with two stages (t1,t3) and (t2,t4) on two
     unit-speed processors. *)
  let mapping = Mapping.create ~dag ~platform:plat ~eps:0 in
  let place task proc sources =
    Mapping.assign mapping { Replica.id = { Replica.task; copy = 0 }; proc; sources }
  in
  let id task = { Replica.task; copy = 0 } in
  place 0 1 [];
  place 2 1 [ (0, [ id 0 ]) ];
  place 1 3 [ (0, [ id 0 ]) ];
  place 3 3 [ (1, [ id 1 ]); (2, [ id 2 ]) ];
  let throughput = Metrics.achieved_throughput mapping in
  let stages = Metrics.stage_depth mapping in
  let latency = Metrics.latency_bound mapping ~throughput in
  let pipelined =
    {
      what = "pipelined execution: S, T, L = (2S-1)/T";
      paper = "S = 2, T = 1/30, L = 90";
      measured =
        Printf.sprintf "S = %d, T = 1/%.0f, L = %.0f" stages (1.0 /. throughput)
          latency;
    }
  in
  [ task_parallel; data_parallel; pipelined ]

let fig2 () =
  let dag = Classic.fig2_graph in
  let throughput = 0.05 in
  let describe outcome =
    match outcome with
    | Error f -> Printf.sprintf "fails (%s)" (Types.failure_to_string f)
    | Ok m ->
        Printf.sprintf "succeeds: S = %d, L = %.0f" (Metrics.stage_depth m)
          (Metrics.latency_bound m ~throughput)
  in
  let run_ltf m =
    Ltf.schedule (Types.problem ~dag ~platform:(Classic.fig2_platform ~m) ~eps:1 ~throughput)
  in
  let run_rltf m =
    Rltf.schedule (Types.problem ~dag ~platform:(Classic.fig2_platform ~m) ~eps:1 ~throughput)
  in
  [
    {
      what = "LTF, m = 8";
      paper = "fails (throughput constraint)";
      measured = describe (run_ltf 8);
    };
    {
      what = "LTF, m = 10";
      paper = "succeeds: S = 4, L = 140";
      measured = describe (run_ltf 10);
    };
    {
      what = "R-LTF, m = 8";
      paper = "succeeds: S = 3, L = 100 (but with load 22 > 20)";
      measured = describe (run_rltf 8);
    };
    {
      what = "R-LTF, m = 10";
      paper = "(not reported)";
      measured = describe (run_rltf 10);
    };
  ]

let print () =
  let table title rows =
    Printf.printf "%s\n" title;
    Ascii_table.print
      ~header:[ "scenario"; "paper"; "this implementation" ]
      (List.map (fun o -> [ o.what; o.paper; o.measured ]) rows);
    print_newline ()
  in
  table "Fig. 1 — motivating example:" (fig1 ());
  table "Fig. 2 — LTF vs R-LTF worked example:" (fig2 ())
