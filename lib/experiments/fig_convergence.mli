(** Extension J: Monte-Carlo / exact cross-validation.

    The {!Reliability} calculus and the crash sampler measure the same
    two quantities — the defeat probability and the mean degraded
    latency — for a schedule under [c] uniform crashes.  This experiment
    schedules R-LTF on random paper-workload instances, computes both
    sides, and charts the mean absolute gap |MC − exact| against the
    number of crash draws: the gap must shrink roughly as 1/√draws if
    the sampler and the calculus agree on the underlying distribution.

    Everything (instances, schedules, every crash draw) derives from the
    seed; the exact side consumes no randomness, so the sweep is fully
    deterministic and {!check} is a regression gate, not a statistical
    test. *)

type config = {
  seed : int;
  reps : int;  (** random graphs, each scheduled once *)
  crashes : int;  (** c, simultaneous fail-stop processors *)
  eps : int;  (** replication degree for R-LTF *)
  draw_counts : int list;  (** MC sample sizes to sweep *)
  spec : Spec.t;
}

val default : config
(** 12 graphs, c = 2, ε = 1, draws 10 … 1000 on the paper workload. *)

val quick : config
(** 4 graphs, draws 10/40/160 — the smoke-run and CI-gate variant. *)

(** Per-graph gaps, one entry per draw count: [defeat_errors] is
    |MC defeat rate − exact defeat probability|; [latency_errors] is the
    relative error of the mean degraded latency (absent when either side
    could not measure it). *)
type rep_errors = {
  defeat_errors : (int * float) list;
  latency_errors : (int * float) list;
}

val run_rep : config -> int -> rep_errors option
(** One graph: schedule, evaluate exactly, then estimate at every draw
    count on independent child streams.  [None] when R-LTF failed to
    schedule the instance.  Pure function of (config, rep index). *)

val collect : ?jobs:int -> config -> rep_errors list
(** All reps that scheduled, in rep order; deterministic in the seed for
    every [jobs] value. *)

val run :
  ?out_dir:string -> ?jobs:int -> config:config -> unit ->
  Ascii_plot.series list
(** Prints the error-vs-draws plot and table and writes
    [fig-convergence.csv]. *)

val check : ?tolerance:float -> ?jobs:int -> config -> (unit, string) result
(** The CI cross-check: fails when the mean defeat-probability gap at
    the largest draw count exceeds [tolerance] (default 0.05), when it
    is NaN, or when the gap grew by more than [tolerance] along the
    sweep.  Deterministic in [config.seed]. *)
