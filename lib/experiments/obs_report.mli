(** The documented metric key set, and validation of metric dumps against
    it — the contract behind [bin/experiments.exe --check-metrics].

    A profiling run of the ["latency"] experiment (the fig3a sweep plus an
    event-driven replay) followed by the ["recovery"] experiment (the
    operations timelines) and the ["traffic"] experiment (open-system
    queue metrics) must produce every key listed here; CI validates one
    such dump, so renaming or dropping an instrumentation point breaks
    the build instead of downstream dashboards.  The lists are the
    single source of truth that EXPERIMENTS.md documents. *)

val required_counters : string list
(** [core.placement_probes] (one per {!State.evaluate}),
    [core.feasibility_rejections] (condition-(1) refusals),
    [core.one_to_one_calls] / [core.general_calls] (placement branch
    invocations), [core.commits], [core.chunks], [sim.events_popped],
    [sim.runs], [sim.failures_injected], [sim.crash.draws],
    [sim.crash.defeats] (draws that killed every replica of an exit
    task), [sim.epoch.resumes] (engine runs resumed from a non-boot
    snapshot), the open-system family — [sim.drops] (items shed under
    [Drop_newest]), [sim.queue.enqueued] (queue-slot charges) and
    [sim.queue.blocked] (admissions and local hand-offs that found a
    full queue) — the recovery-engine family — [ops.recovery.crashes],
    [ops.recovery.epochs], [ops.recovery.attempts],
    [ops.recovery.outages] and one [ops.recovery.restored.<level>] per
    degradation level — and [exp.trials]. *)

val required_histograms : string list
(** [core.chunk_size] (tasks per chunk β), [sim.heap_size] (event-heap
    occupancy after every push — its [max] is the high-water mark),
    [sim.epoch.items] (items injected per engine run under the epoch
    API), [sim.queue.occupancy] (per-replica input-queue depth sampled
    at every charge of an open-system run — its [max] is the high-water
    mark) and [ops.recovery.downtime] (reconfiguration pause per epoch,
    observed as 0 for clean epochs). *)

val required_spans : string list
(** [core.scheduler.chunk], [core.ltf.run], [core.rltf.run],
    [core.rltf.derive], [sim.engine.run], [sim.crash.sample],
    [ops.recovery.timeline] (one whole operations run),
    [ops.recovery.epoch] (crash handling within it), [exp.trial].  One
    dynamic [exp.fig.<name>] span per figure is additionally required by
    {!validate}. *)

val validate : Obs.Registry.t -> (unit, string list) result
(** Check that every required key is present (counters may be zero; they
    are pre-registered by the instrumented entry points precisely so
    presence is deterministic).  [Error] lists every missing key. *)

val validate_string : string -> (unit, string list) result
(** Parse a {!Obs.Registry.to_json} dump and {!validate} it. *)
