(* Minimal-cut-set calculus over the replica DAG.

   Every monotone event "replica contributes at stage >= s" is kept as an
   antichain of Bitset cuts (minimal processor sets forcing the event);
   [dead] is the threshold at infinity.  The recurrence mirrors the
   simulator's liveness sweep:

     val(r) >= s  <=>  proc(r) failed
                       \/ exists group g of r. forall src in g.
                            val(src) >= s - eta(src)

   with [infinity - eta = infinity], and for the whole schedule

     depth >= d   <=>  exists exit. forall copies. val(copy) >= d
     defeat       <=>  depth >= infinity.

   OR of families appends and re-minimizes; AND crosses unions.  Cuts only
   grow along the DP, so dropping every cut above a cardinality horizon is
   sound for any question about patterns with at most that many failures. *)

type model =
  | Uniform_crashes of int
  | Independent of (Platform.proc -> float)
  | Correlated of {
      domains : Faults.Domains.t;
      p_shock : int -> float;
      p_fail : Platform.proc -> float;
    }

type t = {
  t_mapping : Mapping.t;
  t_copies : int;
  t_rids : int;
  t_procs : int;
  t_proc : int array;  (* per rid *)
  t_grp_off : int array;  (* rid -> groups, length t_rids + 1 *)
  t_src_off : int array;  (* group -> sources, length n_groups + 1 *)
  t_src : int array;  (* source rid *)
  t_eta : int array;  (* 0 when co-located with the consumer, else 1 *)
  t_topo : int array;
  t_exits : int array;
  t_max_card : int;
  t_fam : (int * int, Bitset.t list) Hashtbl.t;  (* (rid, threshold) *)
  mutable t_defeat : Bitset.t list option;
}

let mapping t = t.t_mapping
let procs t = t.t_procs
let cut_card_horizon t = t.t_max_card

(* ---- antichain algebra ------------------------------------------------ *)

let always = [ Bitset.empty ]
let never = []

(* Keep only minimal cuts within the cardinality horizon, canonically
   ordered so families can be compared and hashed structurally. *)
let minimize ~max_card cuts =
  let cuts =
    if max_card = max_int then cuts
    else List.filter (fun c -> Bitset.cardinal c <= max_card) cuts
  in
  let by_card =
    List.sort
      (fun a b ->
        let c = compare (Bitset.cardinal a) (Bitset.cardinal b) in
        if c <> 0 then c else Bitset.compare a b)
      cuts
  in
  let rec keep acc = function
    | [] -> acc
    | c :: rest ->
        if List.exists (fun k -> Bitset.subset k c) acc then keep acc rest
        else keep (c :: acc) rest
  in
  List.sort_uniq Bitset.compare (keep [] by_card)

let or_ ~max_card a b =
  match (a, b) with
  | [], f | f, [] -> f
  | _ -> minimize ~max_card (List.rev_append a b)

let and_ ~max_card a b =
  match (a, b) with
  | [], _ | _, [] -> never
  | [ e ], f when Bitset.is_empty e -> f
  | f, [ e ] when Bitset.is_empty e -> f
  | _ ->
      (* Most pairs of a pruned cross product die on the cardinality
         horizon; skipping them before building the union keeps the AND
         quadratic in the surviving cuts, not in the input family. *)
      let prods =
        List.concat_map
          (fun ca ->
            let card_a = Bitset.cardinal ca in
            List.filter_map
              (fun cb ->
                if
                  max_card <> max_int
                  && card_a + Bitset.cardinal cb > max_card
                  && Bitset.disjoint ca cb
                then None
                else
                  let u = Bitset.union ca cb in
                  if Bitset.cardinal u > max_card then None else Some u)
              b)
          a
      in
      minimize ~max_card prods

(* ---- threshold families over the replica DAG -------------------------- *)

let dead = max_int

let sub_threshold s eta = if s = dead then dead else s - eta

let rec family t rid s =
  if s <> dead && s <= 1 then always
  else
    match Hashtbl.find_opt t.t_fam (rid, s) with
    | Some f -> f
    | None ->
        let max_card = t.t_max_card in
        let acc = ref [ Bitset.singleton t.t_proc.(rid) ] in
        for g = t.t_grp_off.(rid) to t.t_grp_off.(rid + 1) - 1 do
          let grp = ref always in
          for k = t.t_src_off.(g) to t.t_src_off.(g + 1) - 1 do
            if !grp <> never then
              grp :=
                and_ ~max_card !grp
                  (family t t.t_src.(k) (sub_threshold s t.t_eta.(k)))
          done;
          acc := or_ ~max_card !acc !grp
        done;
        let f = minimize ~max_card !acc in
        Hashtbl.add t.t_fam (rid, s) f;
        f

(* Event "effective depth >= d" (defeat included): some exit task has all
   of its copies at stage >= d. *)
let depth_family t d =
  Array.fold_left
    (fun acc exit_task ->
      let all = ref always in
      for copy = 0 to t.t_copies - 1 do
        if !all <> never then
          let rid = (exit_task * t.t_copies) + copy in
          all := and_ ~max_card:t.t_max_card !all (family t rid d)
      done;
      or_ ~max_card:t.t_max_card acc !all)
    never t.t_exits

let defeat_cut_sets t =
  match t.t_defeat with
  | Some f -> f
  | None ->
      let f = depth_family t dead in
      Obs.observe "rel.defeat_cuts" (float_of_int (List.length f));
      t.t_defeat <- Some f;
      f

(* ---- construction ------------------------------------------------------ *)

let analyze ?(max_cut_card = max_int) m =
  Obs.with_span "rel.analyze" (fun () ->
      Obs.incr "rel.analyses";
      if not (Mapping.is_complete m) then
        invalid_arg "Reliability.analyze: mapping is not complete";
      if max_cut_card < 0 then
        invalid_arg "Reliability.analyze: negative cut horizon";
      let dag = Mapping.dag m in
      let copies = Mapping.n_copies m in
      let n_tasks = Dag.size dag in
      let n_rids = n_tasks * copies in
      let proc_of = Array.make (max 1 n_rids) (-1) in
      let grp_off = Array.make (n_rids + 1) 0 in
      Mapping.iter m (fun r ->
          let rid = (r.Replica.id.task * copies) + r.Replica.id.copy in
          proc_of.(rid) <- r.Replica.proc;
          grp_off.(rid + 1) <- List.length r.Replica.sources);
      for rid = 0 to n_rids - 1 do
        grp_off.(rid + 1) <- grp_off.(rid) + grp_off.(rid + 1)
      done;
      let n_groups = grp_off.(n_rids) in
      let src_off = Array.make (n_groups + 1) 0 in
      let src = ref [] and n_srcs = ref 0 and g = ref 0 in
      Mapping.iter m (fun r ->
          List.iter
            (fun (_, ids) ->
              src_off.(!g + 1) <- src_off.(!g) + List.length ids;
              src := (r.Replica.proc, ids) :: !src;
              n_srcs := !n_srcs + List.length ids;
              incr g)
            r.Replica.sources);
      let src_arr = Array.make (max 1 !n_srcs) 0 in
      let eta_arr = Array.make (max 1 !n_srcs) 0 in
      List.iteri
        (fun rev_g (consumer_proc, ids) ->
          let gi = n_groups - 1 - rev_g in
          List.iteri
            (fun i (s : Replica.id) ->
              let srid = (s.task * copies) + s.copy in
              src_arr.(src_off.(gi) + i) <- srid;
              eta_arr.(src_off.(gi) + i) <-
                (if proc_of.(srid) = consumer_proc then 0 else 1))
            ids)
        !src;
      {
        t_mapping = m;
        t_copies = copies;
        t_rids = n_rids;
        t_procs = Platform.size (Mapping.platform m);
        t_proc = proc_of;
        t_grp_off = grp_off;
        t_src_off = src_off;
        t_src = src_arr;
        t_eta = eta_arr;
        t_topo = Topo.order dag;
        t_exits = Array.of_list (Dag.exits dag);
        t_max_card = max_cut_card;
        t_fam = Hashtbl.create 97;
        t_defeat = None;
      })

(* ---- oracle sweeps ------------------------------------------------------ *)

(* Direct replay of the simulator's liveness sweep — no cut sets, no
   probabilities.  The tests enumerate failure patterns through this and
   compare with the calculus. *)
let depth_with t ~failed =
  let copies = t.t_copies in
  let dead_proc = Array.make (max 1 t.t_procs) false in
  List.iter
    (fun p ->
      if p < 0 || p >= t.t_procs then
        invalid_arg "Reliability.depth_with: processor out of range";
      dead_proc.(p) <- true)
    failed;
  let stage = Array.make (max 1 t.t_rids) 0 in
  Array.iter
    (fun task ->
      for copy = 0 to copies - 1 do
        let rid = (task * copies) + copy in
        if not dead_proc.(t.t_proc.(rid)) then begin
          let acc = ref 1 and starved = ref false in
          let g = ref t.t_grp_off.(rid) in
          let g_end = t.t_grp_off.(rid + 1) in
          while (not !starved) && !g < g_end do
            let best = ref max_int in
            for k = t.t_src_off.(!g) to t.t_src_off.(!g + 1) - 1 do
              let s = stage.(t.t_src.(k)) in
              if s > 0 && s + t.t_eta.(k) < !best then best := s + t.t_eta.(k)
            done;
            if !best = max_int then starved := true
            else if !best > !acc then acc := !best;
            incr g
          done;
          if not !starved then stage.(rid) <- !acc
        end
      done)
    t.t_topo;
  let rec max_over_exits acc i =
    if i >= Array.length t.t_exits then Some acc
    else begin
      let exit_task = t.t_exits.(i) in
      let best = ref max_int in
      for copy = 0 to copies - 1 do
        let s = stage.((exit_task * copies) + copy) in
        if s > 0 && s < !best then best := s
      done;
      if !best = max_int then None else max_over_exits (max acc !best) (i + 1)
    end
  in
  max_over_exits 0 0

let defeated_by t ~failed = depth_with t ~failed = None

(* ---- probability evaluation ------------------------------------------- *)

let binom n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let r = ref 1.0 in
    for i = 1 to k do
      r := !r *. float_of_int (n - k + i) /. float_of_int i
    done;
    !r
  end

let support cuts = List.fold_left Bitset.union Bitset.empty cuts

(* Counting polynomial of a family restricted to its support: [n.(j)] is
   the number of [j]-subsets of [sup.(i..)] containing some cut.  Shannon
   decomposition on the pivot [sup.(i)], memoized on the residual family
   (cuts at depth [i] only mention [sup.(i..)], so the pair is a sound
   key). *)
let count_defeating cuts sup =
  let s = Array.length sup in
  let memo : (Bitset.t list * int, float array) Hashtbl.t =
    Hashtbl.create 97
  in
  let rec go cuts i =
    let len = s - i in
    if cuts = [] then Array.make (len + 1) 0.0
    else if List.exists Bitset.is_empty cuts then
      Array.init (len + 1) (fun j -> binom len j)
    else begin
      match Hashtbl.find_opt memo (cuts, i) with
      | Some r -> r
      | None ->
          let u = sup.(i) in
          let failed =
            minimize ~max_card:max_int
              (List.map (fun c -> Bitset.remove u c) cuts)
          in
          let alive = List.filter (fun c -> not (Bitset.mem u c)) cuts in
          let pf = go failed (i + 1) and pa = go alive (i + 1) in
          let r =
            Array.init (len + 1) (fun j ->
                (if j > 0 then pf.(j - 1) else 0.0)
                +. (if j <= len - 1 then pa.(j) else 0.0))
          in
          Hashtbl.add memo (cuts, i) r;
          r
    end
  in
  go cuts 0

let uniform_probability ~procs ~crashes cuts =
  if List.exists Bitset.is_empty cuts then 1.0
  else if cuts = [] then 0.0
  else begin
    let sup = Array.of_list (Bitset.elements (support cuts)) in
    let s = Array.length sup in
    let n = count_defeating cuts sup in
    let rec sum j acc =
      if j > min s crashes then acc
      else sum (j + 1) (acc +. (n.(j) *. binom (procs - s) (crashes - j)))
    in
    sum 0 0.0 /. binom procs crashes
  end

let check_pfail ~pfail u =
  let q = pfail u in
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Reliability: Independent probability outside [0, 1]";
  q

let independent_probability ~pfail cuts =
  let memo : (Bitset.t list, float) Hashtbl.t = Hashtbl.create 97 in
  let pivot cuts =
    List.fold_left
      (fun acc c ->
        match Bitset.min_elt c with
        | Some x -> min acc x
        | None -> acc)
      max_int cuts
  in
  let rec go cuts =
    if cuts = [] then 0.0
    else if List.exists Bitset.is_empty cuts then 1.0
    else begin
      match Hashtbl.find_opt memo cuts with
      | Some p -> p
      | None ->
          let u = pivot cuts in
          let q = check_pfail ~pfail u in
          let failed =
            minimize ~max_card:max_int
              (List.map (fun c -> Bitset.remove u c) cuts)
          in
          let alive = List.filter (fun c -> not (Bitset.mem u c)) cuts in
          let p = (q *. go failed) +. ((1.0 -. q) *. go alive) in
          Hashtbl.add memo cuts p;
          p
    end
  in
  go cuts

(* Marshall–Olkin evaluation: condition on the set of shocked domains.
   Given the shock pattern, processors are independent again — members of
   a shocked domain are dead with probability 1, everyone else with its
   idiosyncratic [p_fail] — so each of the [2^D] terms is one
   [independent_probability] call weighted by the pattern's probability.
   Exact, and exponential only in the domain count, which the cap keeps
   honest. *)
let max_correlated_domains = 20

let correlated_probability t ~domains ~p_shock ~p_fail cuts =
  if Faults.Domains.procs domains <> t.t_procs then
    invalid_arg "Reliability: Correlated domains partition a different platform";
  let n_domains = Faults.Domains.count domains in
  if n_domains > max_correlated_domains then
    invalid_arg "Reliability: Correlated model limited to 20 domains";
  let ps =
    Array.init n_domains (fun d ->
        let q = p_shock d in
        if not (q >= 0.0 && q <= 1.0) then
          invalid_arg "Reliability: Correlated shock probability outside [0, 1]";
        q)
  in
  let total = ref 0.0 in
  for mask = 0 to (1 lsl n_domains) - 1 do
    let weight = ref 1.0 in
    for d = 0 to n_domains - 1 do
      weight :=
        !weight *. (if mask land (1 lsl d) <> 0 then ps.(d) else 1.0 -. ps.(d))
    done;
    if !weight > 0.0 then begin
      let pfail u =
        if mask land (1 lsl (Faults.Domains.domain_of domains u)) <> 0 then 1.0
        else check_pfail ~pfail:p_fail u
      in
      total := !total +. (!weight *. independent_probability ~pfail cuts)
    end
  done;
  !total

let check_uniform t c =
  if c < 0 || c > t.t_procs then
    invalid_arg "Reliability: crash count outside [0, m]";
  if c > t.t_max_card then
    invalid_arg "Reliability: crash count exceeds the analysis cut horizon"

let probability t cuts = function
  | Uniform_crashes c ->
      check_uniform t c;
      uniform_probability ~procs:t.t_procs ~crashes:c cuts
  | Independent pfail ->
      if t.t_max_card <> max_int then
        invalid_arg "Reliability: Independent model needs an unpruned analysis";
      independent_probability ~pfail cuts
  | Correlated { domains; p_shock; p_fail } ->
      if t.t_max_card <> max_int then
        invalid_arg "Reliability: Correlated model needs an unpruned analysis";
      correlated_probability t ~domains ~p_shock ~p_fail cuts

(* ---- uniform enumeration fast path ------------------------------------- *)

(* When choose (m, c) is small, replaying the oracle sweep on every
   c-subset answers the Uniform_crashes questions exactly in
   O(choose (m, c) * replicas) — usually far cheaper than the antichain
   DP, which pays per (replica, threshold) pair.  Both paths are exact;
   the tests hold them equal pattern-for-pattern, and [enumerate_below]
   lets a caller force either one. *)
let default_enumeration_budget = 20_000

let foreach_subset m c f =
  let chosen = Array.make (max 1 c) 0 in
  let rec go idx from =
    if idx = c then f (Array.to_list (Array.sub chosen 0 c))
    else
      for u = from to m - (c - idx) do
        chosen.(idx) <- u;
        go (idx + 1) (u + 1)
      done
  in
  go 0 0

(* (defeat probability, finite-depth distribution) in one sweep. *)
let uniform_enumeration t ~crashes =
  let total = binom t.t_procs crashes in
  let defeated = ref 0.0 in
  let hist = Hashtbl.create 16 in
  foreach_subset t.t_procs crashes (fun failed ->
      match depth_with t ~failed with
      | None -> defeated := !defeated +. 1.0
      | Some d ->
          Hashtbl.replace hist d
            (1.0 +. Option.value ~default:0.0 (Hashtbl.find_opt hist d)));
  let dist =
    Hashtbl.fold (fun d n acc -> (d, n /. total) :: acc) hist []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  (!defeated /. total, dist)

let enumerable t ~budget = function
  | Independent _ | Correlated _ -> None
  | Uniform_crashes c ->
      check_uniform t c;
      if binom t.t_procs c <= float_of_int budget then Some c else None

let defeat_probability ?(enumerate_below = default_enumeration_budget) t model
    =
  match enumerable t ~budget:enumerate_below model with
  | Some c -> fst (uniform_enumeration t ~crashes:c)
  | None -> probability t (defeat_cut_sets t) model

let survival_probability ?enumerate_below t model =
  1.0 -. defeat_probability ?enumerate_below t model

(* ---- depth and latency distributions ----------------------------------- *)

let family_equal a b = List.equal Bitset.equal a b

(* P(depth = d) by telescoping P(depth >= d) - P(depth >= d + 1); the
   iteration stops when the family collapses onto the defeat family (all
   remaining mass is defeat).  Finite depths are bounded by the task count
   (a stage grows by at most one per DAG hop). *)
let depth_distribution_by_families t model =
  let defeat = defeat_cut_sets t in
  let n_tasks = Array.length t.t_topo in
  let p_defeat = probability t defeat model in
  let entry d p acc = if p > 0.0 then (d, p) :: acc else acc in
  let rec walk d fam_d p_d acc =
    if family_equal fam_d defeat then List.rev acc
    else if d > n_tasks + 1 then List.rev acc
    else begin
      let fam_next = depth_family t (d + 1) in
      let p_next =
        if family_equal fam_next defeat then p_defeat
        else probability t fam_next model
      in
      walk (d + 1) fam_next p_next (entry d (p_d -. p_next) acc)
    end
  in
  let fam1 = depth_family t 1 in
  let p1 =
    if family_equal fam1 defeat then p_defeat else probability t fam1 model
  in
  (* depth 0 only happens for an empty task graph *)
  walk 1 fam1 p1 (entry 0 (1.0 -. p1) [])

let depth_distribution ?(enumerate_below = default_enumeration_budget) t model
    =
  match enumerable t ~budget:enumerate_below model with
  | Some c -> snd (uniform_enumeration t ~crashes:c)
  | None -> depth_distribution_by_families t model

let expected_depth ?enumerate_below t model =
  let dist = depth_distribution ?enumerate_below t model in
  let mass = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 dist in
  if mass <= 0.0 then None
  else
    Some
      (List.fold_left (fun acc (d, p) -> acc +. (float_of_int d *. p)) 0.0 dist
      /. mass)

let latency_of_depth ~throughput d =
  float_of_int ((2 * d) - 1) /. throughput

let latency_distribution ?enumerate_below t ~throughput model =
  List.map
    (fun (d, p) -> (latency_of_depth ~throughput d, p))
    (depth_distribution ?enumerate_below t model)

let expected_latency ?enumerate_below t ~throughput model =
  let dist = depth_distribution ?enumerate_below t model in
  let mass = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 dist in
  if mass <= 0.0 then None
  else
    Some
      (List.fold_left
         (fun acc (d, p) -> acc +. (latency_of_depth ~throughput d *. p))
         0.0 dist
      /. mass)

(* ---- closed-form product ----------------------------------------------- *)

(* Exact when every per-copy death family is a union of singleton cuts and
   the supports never share a processor: then copies fail independently of
   each other and of the other exits, and defeat is a plain product. *)
let closed_form_defeat t ~pfail =
  if t.t_max_card <> max_int then None
  else begin
    let exception Not_closed in
    try
      let seen = ref Bitset.empty in
      let p_defeat =
        Array.fold_left
          (fun p_no_defeat exit_task ->
            let p_exit_dead = ref 1.0 in
            for copy = 0 to t.t_copies - 1 do
              let rid = (exit_task * t.t_copies) + copy in
              let fam = family t rid dead in
              let sup =
                List.fold_left
                  (fun acc c ->
                    if Bitset.cardinal c <> 1 then raise Not_closed;
                    Bitset.union acc c)
                  Bitset.empty fam
              in
              if not (Bitset.disjoint sup !seen) then raise Not_closed;
              seen := Bitset.union !seen sup;
              let p_alive =
                Bitset.fold
                  (fun u acc -> acc *. (1.0 -. check_pfail ~pfail u))
                  sup 1.0
              in
              p_exit_dead := !p_exit_dead *. (1.0 -. p_alive)
            done;
            p_no_defeat *. (1.0 -. !p_exit_dead))
          1.0 t.t_exits
      in
      Some (1.0 -. p_defeat)
    with Not_closed -> None
  end

