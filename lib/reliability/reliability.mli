(** Exact availability calculus for replicated mappings.

    The Monte-Carlo crash experiments ({!Crash}, [Stage_latency]) estimate
    the defeat probability of a schedule by drawing thousands of failure
    sets; yet for the static fail-silent model those probabilities are a
    finite inclusion–exclusion over the kill sets of the mapping.  This
    module computes them in closed form.

    {2 Model}

    A failure pattern is a set [F] of dead processors.  Replica liveness
    follows the same topological sweep as the simulator: a replica is dead
    iff its processor is in [F] or some predecessor group lost all of its
    source replicas; the schedule is {e defeated} iff some exit task loses
    every replica.  An alive replica computes in stage
    [max(1, max over groups (min over alive sources (stage + eta)))] with
    [eta = 0] when co-located and [1] across processors, and the effective
    depth of the pattern is [max over exits (min over alive copies stage)];
    single-item degraded latency is [(2 depth - 1) / T].

    Both the defeat predicate and the depth are monotone in [F] (killing
    more processors only deepens or defeats the schedule), so every event
    ["depth >= d"] — including defeat, its [d = infinity] limit — is an
    upward-closed family described exactly by its minimal {e cut sets}: the
    minimal processor sets whose failure triggers the event.  {!analyze}
    derives those antichains of {!Bitset} cuts by dynamic programming over
    the replica DAG; the probability evaluators then sum the family by
    Shannon decomposition over its support — exactly, with no sampling.

    {2 Assumptions}

    Failures are static (decided before the stream starts), fail-silent,
    and processor-level; the two supported distributions are the paper's
    uniform choice of exactly [c] distinct crashed processors and the
    independent per-processor fail-stop model.  These match what
    [Crash.estimate]'s sampler and [Failure_gen] draw from, which is
    what makes the calculus a ground truth for the Monte-Carlo
    estimators. *)

type t
(** The compiled analysis of one complete mapping: replica tables plus the
    memoized cut-set families. *)

(** Failure distribution to evaluate a cut-set family under. *)
type model =
  | Uniform_crashes of int
      (** Exactly [c] dead processors, chosen uniformly among the
          [choose (m, c)] subsets — the paper's §5 crash model. *)
  | Independent of (Platform.proc -> float)
      (** Each processor [u] dead independently with probability
          [f u] (the fail-stop model of {!Failure_gen}-style hazards). *)
  | Correlated of {
      domains : Faults.Domains.t;
          (** partition of the processors into failure domains (racks);
              must cover exactly the analysis' platform *)
      p_shock : int -> float;
          (** probability the domain's common shock fires, killing every
              member; indexed by domain *)
      p_fail : Platform.proc -> float;
          (** idiosyncratic failure probability of a processor whose
              domain was not shocked *)
    }
      (** Marshall–Olkin dependence: a processor is dead iff its own
          independent failure fires {e or} its domain's common shock
          does — the static counterpart of
          [Failure_gen.correlated_lifetimes].  [p_shock d = 0]
          everywhere degenerates to [Independent p_fail] exactly.
          Evaluated by conditioning on the [2^D] shock patterns (each
          conditional is an independent-model Shannon sum), so the
          domain count is capped at 20. *)

val analyze : ?max_cut_card:int -> Mapping.t -> t
(** Build the calculus for a complete mapping.  [max_cut_card] (default:
    unbounded) prunes every cut larger than the given cardinality while
    the families are built; pruning is sound for any evaluation that only
    asks about patterns with at most that many failures (cuts only grow
    along the DP, so a pruned cut can never re-enter the horizon), and it
    is what keeps the cross products polynomial on heavily replicated
    mappings.  Evaluators below refuse models the pruned analysis cannot
    answer exactly.
    @raise Invalid_argument if the mapping is not complete. *)

val mapping : t -> Mapping.t
val procs : t -> int

val cut_card_horizon : t -> int
(** The [max_cut_card] the analysis was built with ([max_int] when
    unbounded). *)

val defeat_cut_sets : t -> Bitset.t list
(** The minimal failure sets that defeat the schedule, as a canonically
    ordered antichain (cuts larger than the horizon pruned).  Empty when
    the schedule cannot be defeated within the horizon. *)

val defeat_probability : ?enumerate_below:int -> t -> model -> float
(** Exact probability that the failure pattern defeats the schedule.

    For [Uniform_crashes c] the evaluator picks between two exact
    strategies: when [choose (m, c)] is at most [enumerate_below]
    (default 20000) it replays the oracle sweep over every [c]-subset,
    otherwise it sums the cut-set family by Shannon decomposition.
    [~enumerate_below:0] forces the antichain path (the tests hold the
    two equal); the knob never changes the result, only the work.

    @raise Invalid_argument if the model is out of range ([c < 0] or
    [c > m]), if [c] exceeds the pruning horizon, if [Independent] or
    [Correlated] is asked of a pruned analysis (or returns a
    probability outside [0, 1]), or if a [Correlated] model has more
    than 20 domains or domains that partition a different platform
    size. *)

val survival_probability : ?enumerate_below:int -> t -> model -> float
(** [1 - defeat_probability]. *)

val depth_distribution :
  ?enumerate_below:int -> t -> model -> (int * float) list
(** Exact distribution of the effective depth over surviving patterns:
    [(d, P(depth = d))] with [d] increasing and only strictly positive
    masses listed.  The masses sum to [survival_probability] (defeat holds
    the rest).  Strategy choice and raises as {!defeat_probability}. *)

val expected_depth : ?enumerate_below:int -> t -> model -> float option
(** Mean depth conditioned on survival; [None] when the schedule is
    defeated with probability 1. *)

val latency_distribution :
  ?enumerate_below:int -> t -> throughput:float -> model ->
  (float * float) list
(** {!depth_distribution} mapped through the stage-synchronous latency
    [(2 d - 1) / throughput]: the exact degraded-latency distribution. *)

val expected_latency :
  ?enumerate_below:int -> t -> throughput:float -> model -> float option
(** Mean single-item latency conditioned on survival — the analytic
    counterpart of [Crash.stats.mean]; [None] when survival has
    probability 0. *)

val closed_form_defeat : t -> pfail:(Platform.proc -> float) -> float option
(** The independent-model defeat probability as a direct product
    [1 - prod over exits (1 - prod over copies (1 - prod over cut procs
    (1 - pfail u)))] — available exactly when every per-copy death family
    is a union of single-processor cuts with pairwise disjoint supports
    (e.g. unreplicated interval mappings), which is when the product
    formula is exact.  [None] when the structure does not admit it or the
    analysis was pruned; when [Some], it equals
    [defeat_probability t (Independent pfail)] up to rounding. *)

val defeated_by : t -> failed:Platform.proc list -> bool
(** Oracle: replay one failure pattern through the liveness sweep (no
    probabilities involved).  Used by the tests to cross-check the cut
    families against exhaustive enumeration. *)

val depth_with : t -> failed:Platform.proc list -> int option
(** Oracle sweep for the effective depth; [None] when defeated.  Agrees
    with [Stage_latency.effective_depth]. *)
