(** Long-horizon operations simulator: epochs, crashes, live recovery.

    The figure experiments evaluate a mapping on independent one-shot
    runs; this module instead {e operates} a mapping over a long horizon
    the way a deployment would.  Fail-stop crashes arrive with
    exponential lifetimes ({!Failure_gen}); the stream runs epoch by
    epoch, each epoch resuming the discrete-event engine from the
    previous surviving state ({!Engine.snapshot}).  When a processor
    hosting live replicas dies, the in-flight items it carried are lost,
    the stream pauses for a reconfiguration delay and
    {!Recovery_policy.react} picks the best surviving service level —
    full-strength in-place restoration down to an unreplicated remap —
    or declares a terminal {!Outage} after which every remaining item is
    counted lost.

    Every epoch records what an operator would want on a dashboard:
    items injected/delivered/lost, peak and mean latency, downtime, the
    recovery decision and the surviving fault tolerance.  The run emits
    [ops.recovery.*] counters, histograms and spans (plus the engine's
    [sim.epoch.*] keys), all pre-registered so metric dumps expose them
    deterministically. *)

(** Burst-during-failure scenario: the open-system traffic knobs of the
    timeline.  With an [overload] the epochs run the engine in open mode
    — each replica owns a [queue_bound]-deep input queue with the given
    overflow [policy] — and after every restoration the upstream backlog
    flushes: arrivals run at [burst_factor ×] the nominal rate for
    [burst_window] time units before settling back.  Items shed by
    [Drop_newest] count as lost (and in {!report.dropped}). *)
type overload = {
  queue_bound : int;  (** per-replica input-queue capacity, ≥ 1 *)
  policy : Engine.Run.drop_policy;  (** full-queue behavior *)
  burst_factor : float;  (** post-recovery arrival-rate multiplier, ≥ 1 *)
  burst_window : float;  (** burst length after a restoration (time units) *)
}

(** Transient/gray fault operation: the engine-level scenario plus the
    escalation policy that turns repeated retry exhaustion into an
    eviction.  [engine_faults] names {e original} processors; each epoch
    reindexes it onto the current (possibly restricted) platform,
    dropping entries whose processor has left the deployment.  When a
    processor accumulates [eviction_threshold] retry exhaustions
    ({!Engine.fault_stats}[.exhausted_on]) across epochs, it is evicted:
    a synthetic fail-stop driven through {!Recovery_policy.react}, with
    the same downtime, service-level degradation and epoch record as a
    real crash (counted in {!report.evictions}, not
    {!report.crashes}).  Quiet stretches are chunked into
    [review_window]-long epochs so the ledger is reviewed periodically;
    crash-bounded epochs are reviewed only at the crash. *)
type fault_injection = {
  engine_faults : Faults.t;  (** transient + retry + gray scenario *)
  eviction_threshold : int;
      (** cumulative retry exhaustions on one processor that trigger
          its eviction, ≥ 1 *)
  review_window : float;
      (** how often the quiet-tail epochs review the exhaustion
          ledger (time units), > 0 *)
}

type config = {
  horizon : float;  (** simulated operation time (time units) *)
  hazard : Failure_gen.hazard;  (** crash arrival law *)
  max_attempts : int option;
      (** retry budget forwarded to {!Recovery_policy.react};
          [None] = the policy default (the whole chain) *)
  reconfig_delay : float;
      (** stream downtime per recovery attempt (time units) *)
  max_items_per_epoch : int;
      (** cap on items simulated per epoch; slots beyond the cap are
          reported as [capped], not silently dropped *)
  overload : overload option;
      (** [None] (the default) runs the legacy closed-system epochs,
          bit-identical to the pre-overload API *)
  faults : fault_injection option;
      (** [None] (the default) runs fault-free epochs, bit-identical to
          the pre-faults API *)
}

val default_config : config
(** 400 time units, uniform λ = 10⁻³, policy-default retries, delay 5,
    at most 256 items per epoch, no overload, no fault injection. *)

type decision =
  | Ran_clean  (** no crash in the epoch *)
  | Restored of Recovery_policy.level
  | Outage of { attempts : int }

val decision_to_string : decision -> string

type epoch = {
  index : int;
  t_start : float;
  t_end : float;
  injected : int;
      (** items injected during the epoch, including slots lost to
          downtime (and, for an outage, the unserved tail) *)
  delivered : int;
  lost : int;  (** [injected - delivered] *)
  capped : int;  (** injection slots beyond [max_items_per_epoch] *)
  peak_latency : float;  (** worst delivered-item latency; [nan] if none *)
  mean_latency : float;  (** mean delivered-item latency; [nan] if none *)
  crash : (Platform.proc * float) option;
      (** the (original processor, time) crash closing the epoch *)
  downtime : float;  (** reconfiguration pause after the epoch *)
  decision : decision;
  tolerance : int;
      (** failures the epoch's mapping could still absorb when it ran *)
  mapping : Mapping.t;  (** the mapping the epoch ran with *)
}

type report = {
  epochs : epoch list;  (** in time order *)
  crashes : int;  (** crashes that hit live processors *)
  evictions : int;
      (** processors evicted after crossing the retry-exhaustion
          threshold; [0] without fault injection *)
  injected : int;
  delivered : int;
  dropped : int;
      (** items shed by the overload drop policy over the whole horizon
          (a subset of the lost items); [0] without an [overload] *)
  availability : float;
      (** [delivered / injected]; [1.0] when nothing was injected *)
  mean_latency : float;  (** over all delivered items; [nan] if none *)
  degraded_mean_latency : float;
      (** over delivered items from the first crash epoch onward;
          [nan] when no crash ever hit *)
  total_downtime : float;
  outage : bool;
  outage_clock : float;  (** when service stopped; [nan] if it never did *)
}

val touch : unit -> unit
(** Pre-register the [ops.recovery.*] counters at 0 (no-op when metrics
    are off). *)

val run :
  ?config:config -> rng:Rng.t -> throughput:float -> Mapping.t -> report
(** [run ~rng ~throughput m] operates the complete mapping [m] under the
    contractual [throughput] until the horizon.  Items are injected at
    the desired period while the current mapping sustains it, and at the
    mapping's achieved period when a degraded restoration runs slower.
    Deterministic for a given [rng] state.
    @raise Invalid_argument if [m] is incomplete, [throughput ≤ 0], or
    the config has a non-positive/non-finite horizon, a negative
    reconfiguration delay, a per-epoch item cap below 1, an overload
    with [queue_bound < 1], [burst_factor < 1] or a negative
    [burst_window], or a fault injection whose scenario fails
    {!Faults.validate}, whose [eviction_threshold < 1], or whose
    [review_window] is not positive and finite. *)
