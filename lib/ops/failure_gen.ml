type hazard = { lambda : float; speed_exponent : float }

let uniform ~lambda = { lambda; speed_exponent = 0.0 }

let rate hazard plat p =
  if hazard.lambda < 0.0 then invalid_arg "Failure_gen.rate: negative lambda";
  hazard.lambda *. (Platform.speed plat p ** hazard.speed_exponent)

let lifetimes ~rng hazard plat =
  let crashes =
    List.filter_map
      (fun p ->
        let r = rate hazard plat p in
        (* One standard-exponential quantum per processor, drawn in
           processor order from the same stream regardless of the rate:
           scaling λ rescales every lifetime by the same factor, so the
           crash set within any horizon is nested monotonically in λ
           (common random numbers across sweep points). *)
        let q = Rng.exponential rng ~rate:1.0 in
        if r <= 0.0 then None else Some (p, q /. r))
      (Platform.procs plat)
  in
  List.sort
    (fun (p1, t1) (p2, t2) ->
      match compare t1 t2 with 0 -> compare p1 p2 | c -> c)
    crashes
