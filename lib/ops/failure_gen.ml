type hazard = { lambda : float; speed_exponent : float }

let uniform ~lambda = { lambda; speed_exponent = 0.0 }

let rate hazard plat p =
  if hazard.lambda < 0.0 then invalid_arg "Failure_gen.rate: negative lambda";
  hazard.lambda *. (Platform.speed plat p ** hazard.speed_exponent)

let by_time =
  fun (p1, t1) (p2, t2) ->
    match compare t1 t2 with 0 -> compare p1 p2 | c -> c

let lifetimes ~rng hazard plat =
  let crashes =
    List.filter_map
      (fun p ->
        let r = rate hazard plat p in
        (* One standard-exponential quantum per processor, drawn in
           processor order from the same stream regardless of the rate:
           scaling λ rescales every lifetime by the same factor, so the
           crash set within any horizon is nested monotonically in λ
           (common random numbers across sweep points). *)
        let q = Rng.exponential rng ~rate:1.0 in
        if r <= 0.0 then None else Some (p, q /. r))
      (Platform.procs plat)
  in
  List.sort by_time crashes

type correlation = { domains : Faults.Domains.t; shock_lambda : float }

let correlated_lifetimes ~rng hazard correlation plat =
  if correlation.shock_lambda < 0.0 then
    invalid_arg "Failure_gen.correlated_lifetimes: negative shock_lambda";
  let n = Platform.size plat in
  if Faults.Domains.procs correlation.domains <> n then
    invalid_arg
      "Failure_gen.correlated_lifetimes: domains partition a different \
       platform size";
  (* Marshall–Olkin common shocks: each processor dies at the minimum of
     its idiosyncratic exponential and its domain's shock exponential.
     The per-processor quanta are drawn first, in processor order — the
     exact stream prefix [lifetimes] consumes — so shock_lambda = 0
     reproduces the independent timeline bit-identically and raising it
     only adds (possibly earlier) crashes: common random numbers along
     the correlation axis. *)
  let own =
    List.map
      (fun p ->
        let r = rate hazard plat p in
        let q = Rng.exponential rng ~rate:1.0 in
        (p, (if r <= 0.0 then infinity else q /. r)))
      (Platform.procs plat)
  in
  let n_domains = Faults.Domains.count correlation.domains in
  let shock = Array.make n_domains infinity in
  if correlation.shock_lambda > 0.0 then
    for d = 0 to n_domains - 1 do
      let q = Rng.exponential rng ~rate:1.0 in
      shock.(d) <- q /. correlation.shock_lambda
    done;
  let crashes =
    List.filter_map
      (fun (p, t_own) ->
        let t =
          Float.min t_own shock.(Faults.Domains.domain_of correlation.domains p)
        in
        if Float.is_finite t then Some (p, t) else None)
      own
  in
  List.sort by_time crashes
