(** Exponentially-distributed fail-stop arrivals for the operations
    simulator.

    Every processor [u] has an exponential lifetime with rate
    [λ · s_u^α]: [α = 0] makes failures uniform across the platform and
    [α > 0] makes fast processors fail more often (the usual
    speed/reliability trade-off of the bi-criteria reliability models —
    arXiv:0711.1231 uses exactly such per-processor failure rates).
    Processors are fail-stop: each crashes at most once and is never
    repaired, matching the paper's failure model. *)

type hazard = {
  lambda : float;  (** base failure rate λ (crashes per time unit) *)
  speed_exponent : float;  (** α in [λ · speed^α] *)
}

val uniform : lambda:float -> hazard
(** Speed-independent hazard ([α = 0]). *)

val rate : hazard -> Platform.t -> Platform.proc -> float
(** The processor's crash rate [λ · s_u^α].
    @raise Invalid_argument if [λ < 0]. *)

val lifetimes :
  rng:Rng.t -> hazard -> Platform.t -> (Platform.proc * float) list
(** One crash instant per processor, sorted by time (ties by processor
    id); processors with zero rate never crash and are omitted.  The
    standard-exponential quantum of each processor is drawn from [rng] in
    processor order {e before} the rate is applied, so two calls with
    equal-state generators and different [λ] return timelines that are
    exact time-rescalings of each other — the crash set inside any fixed
    horizon grows monotonically with [λ] (common random numbers, the
    property the chaos suite's availability-monotonicity assertion leans
    on). *)

(** Correlated crash draws: processors grouped into failure domains
    (racks, power feeds) share a Marshall–Olkin common shock. *)
type correlation = {
  domains : Faults.Domains.t;  (** the partition into failure domains *)
  shock_lambda : float;
      (** rate of each domain's common-shock exponential; [0] =
          independent crashes (exactly {!lifetimes}) *)
}

val correlated_lifetimes :
  rng:Rng.t -> hazard -> correlation -> Platform.t -> (Platform.proc * float) list
(** Common-shock crash draws: processor [u] crashes at
    [min(own_u, shock_{dom(u)})] where [own_u] is its {!lifetimes}
    exponential and each domain's shock is exponential with rate
    [shock_lambda] — every member of a shocked domain dies at the same
    instant (same [t], distinct processors).  Per-processor quanta are
    drawn first, in processor order — the exact stream prefix
    {!lifetimes} consumes — then one shock quantum per domain, in domain
    order; hence [shock_lambda = 0] reproduces the independent timeline
    bit-identically, and along the [shock_lambda] axis crash sets are
    nested (common random numbers), mirroring the λ-monotonicity of
    {!lifetimes}.
    @raise Invalid_argument if [λ < 0], [shock_lambda < 0], or the
    domains partition a different number of processors. *)
