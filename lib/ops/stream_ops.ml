type overload = {
  queue_bound : int;
  policy : Engine.Run.drop_policy;
  burst_factor : float;
  burst_window : float;
}

type fault_injection = {
  engine_faults : Faults.t;
  eviction_threshold : int;
  review_window : float;
}

type config = {
  horizon : float;
  hazard : Failure_gen.hazard;
  max_attempts : int option;
  reconfig_delay : float;
  max_items_per_epoch : int;
  overload : overload option;
  faults : fault_injection option;
}

let default_config =
  {
    horizon = 400.0;
    hazard = Failure_gen.uniform ~lambda:1e-3;
    max_attempts = None;
    reconfig_delay = 5.0;
    max_items_per_epoch = 256;
    overload = None;
    faults = None;
  }

type decision =
  | Ran_clean
  | Restored of Recovery_policy.level
  | Outage of { attempts : int }

let decision_to_string = function
  | Ran_clean -> "clean"
  | Restored level -> "restored:" ^ Recovery_policy.level_to_string level
  | Outage { attempts } -> Printf.sprintf "OUTAGE(after %d attempts)" attempts

type epoch = {
  index : int;
  t_start : float;
  t_end : float;
  injected : int;
  delivered : int;
  lost : int;
  capped : int;
  peak_latency : float;
  mean_latency : float;
  crash : (Platform.proc * float) option;
  downtime : float;
  decision : decision;
  tolerance : int;
  mapping : Mapping.t;
}

type report = {
  epochs : epoch list;
  crashes : int;
  evictions : int;
  injected : int;
  delivered : int;
  dropped : int;
  availability : float;
  mean_latency : float;
  degraded_mean_latency : float;
  total_downtime : float;
  outage : bool;
  outage_clock : float;
}

let touch () =
  Recovery_policy.touch ();
  List.iter Obs.touch
    [
      "ops.recovery.crashes";
      "ops.recovery.epochs";
      "ops.recovery.items_lost";
      "ops.recovery.items_capped";
      "ops.evictions";
      "sim.epoch.resumes";
    ]

(* Number of injection instants [t0 + k·p] with [k ≥ 0] that fall strictly
   before [t1]; robust to the float grid landing exactly on the boundary. *)
let slots ~period t0 t1 =
  if t1 <= t0 || period <= 0.0 then 0
  else max 0 (int_of_float (Float.ceil (((t1 -. t0) /. period) -. 1e-9)))

let run ?(config = default_config) ~rng ~throughput m0 =
  if not (Mapping.is_complete m0) then
    invalid_arg "Stream_ops.run: incomplete mapping";
  if config.horizon <= 0.0 || not (Float.is_finite config.horizon) then
    invalid_arg "Stream_ops.run: horizon must be positive and finite";
  if config.reconfig_delay < 0.0 then
    invalid_arg "Stream_ops.run: negative reconfig_delay";
  if config.max_items_per_epoch < 1 then
    invalid_arg "Stream_ops.run: max_items_per_epoch < 1";
  if throughput <= 0.0 then invalid_arg "Stream_ops.run: throughput <= 0";
  (match config.overload with
  | None -> ()
  | Some o ->
      if o.queue_bound < 1 then
        invalid_arg "Stream_ops.run: overload queue_bound < 1";
      if not (Float.is_finite o.burst_factor) || o.burst_factor < 1.0 then
        invalid_arg "Stream_ops.run: overload burst_factor < 1";
      if not (Float.is_finite o.burst_window) || o.burst_window < 0.0 then
        invalid_arg "Stream_ops.run: negative overload burst_window");
  (match config.faults with
  | None -> ()
  | Some fi ->
      Faults.validate
        ~procs:(Platform.size (Mapping.platform m0))
        fi.engine_faults;
      if fi.eviction_threshold < 1 then
        invalid_arg "Stream_ops.run: eviction_threshold < 1";
      if not (Float.is_finite fi.review_window) || fi.review_window <= 0.0 then
        invalid_arg "Stream_ops.run: review_window must be positive and finite");
  Obs.with_span "ops.recovery.timeline" @@ fun () ->
  touch ();
  let plat0 = Mapping.platform m0 in
  let desired_period = 1.0 /. throughput in
  (* The whole failure timeline is drawn up front: processors are
     fail-stop (each crashes once, never repaired), so one exponential
     lifetime per processor fully determines the arrivals. *)
  let timeline =
    List.filter
      (fun (_, t) -> t < config.horizon)
      (Failure_gen.lifetimes ~rng config.hazard plat0)
  in
  (* Mutable operational state.  [procs] maps the current mapping's
     platform indices back to original processors (degraded remaps live on
     restricted survivor sub-platforms); [down] lists already-crashed
     processors in current indices (their replicas were moved away by the
     in-place restorations, but the engine still prunes them). *)
  let mapping = ref m0 in
  (* The engine program for the current mapping: fetched once here (from
     the shared compiled-program cache, so a timeline replayed on a
     mapping content seen before skips the compile) and refreshed only
     when a restoration swaps the mapping, so every epoch of a quiet
     stretch replays the same program.  [arena] holds the engine's run
     state across epochs — recreated with the program, reused by every
     epoch in between, so a quiet stretch allocates no slabs at all. *)
  let compiled = ref (Program_cache.program m0) in
  let arena = ref (Engine.Run_state.create !compiled) in
  let procs = ref (Array.init (Platform.size plat0) Fun.id) in
  let down = ref [] in
  let tolerance = ref (Mapping.eps m0) in
  let clock = ref 0.0 in
  let epochs = ref [] in
  let n_epochs = ref 0 in
  let crashes = ref 0 in
  let injected = ref 0 and delivered = ref 0 in
  let lat_sum = ref 0.0 and lat_n = ref 0 in
  let degraded_sum = ref 0.0 and degraded_n = ref 0 in
  let first_crash_seen = ref false in
  let total_downtime = ref 0.0 in
  let outage_at = ref None in
  (* The injection period of the current mapping: the desired one when the
     mapping sustains it, the achieved one when a degraded restoration
     runs slower (upstream backpressure). *)
  let period () = Float.max desired_period (Engine.program_period !compiled) in
  let record_epoch ~t_start ~t_end ~crash ~downtime ~decision
      ~(run_result : Engine.result option) ~n_items ~capped ~extra_lost =
    let ep_delivered = ref 0 and ep_sum = ref 0.0 and ep_peak = ref nan in
    (match run_result with
    | None -> ()
    | Some r ->
        Array.iter
          (function
            | Some l ->
                incr ep_delivered;
                ep_sum := !ep_sum +. l;
                if Float.is_nan !ep_peak || l > !ep_peak then ep_peak := l
            | None -> ())
          r.Engine.item_latency);
    let ep_injected = n_items + extra_lost in
    let ep_lost = ep_injected - !ep_delivered in
    injected := !injected + ep_injected;
    delivered := !delivered + !ep_delivered;
    lat_sum := !lat_sum +. !ep_sum;
    lat_n := !lat_n + !ep_delivered;
    if !first_crash_seen || crash <> None then begin
      degraded_sum := !degraded_sum +. !ep_sum;
      degraded_n := !degraded_n + !ep_delivered
    end;
    if crash <> None then first_crash_seen := true;
    total_downtime := !total_downtime +. downtime;
    Obs.incr "ops.recovery.epochs";
    Obs.incr ~by:ep_lost "ops.recovery.items_lost";
    Obs.incr ~by:capped "ops.recovery.items_capped";
    Obs.observe "ops.recovery.downtime" downtime;
    if !ep_delivered > 0 then Obs.observe "ops.recovery.latency_spike" !ep_peak;
    let ep =
      {
        index = !n_epochs;
        t_start;
        t_end;
        injected = ep_injected;
        delivered = !ep_delivered;
        lost = ep_lost;
        capped;
        peak_latency = !ep_peak;
        mean_latency =
          (if !ep_delivered = 0 then nan
           else !ep_sum /. float_of_int !ep_delivered);
        crash;
        downtime;
        decision;
        tolerance = !tolerance;
        mapping = !mapping;
      }
    in
    incr n_epochs;
    epochs := ep :: !epochs
  in
  (* Overload state: after a restoration the upstream backlog flushes, so
     arrivals run at [burst_factor ×] the nominal rate until
     [burst_until] — through a bounded queue that sheds or blocks. *)
  let burst_until = ref neg_infinity in
  let total_dropped = ref 0 in
  (* Current platform index of an original processor, or [-1] when the
     processor is absent from the current (possibly restricted) platform. *)
  let index_of orig_p =
    let found = ref (-1) in
    Array.iteri (fun i op -> if op = orig_p then found := i) !procs;
    !found
  in
  (* Transient/gray operation state.  The scenario names original
     processors; each epoch runs on the current platform, so the engine
     faults are reindexed per epoch (entries whose processor has left the
     deployment are dropped — probabilistic rates are unaffected).
     [exh_counts] accumulates per-original-processor retry exhaustions
     across epochs; crossing the eviction threshold escalates to a
     fail-stop eviction through the normal recovery chain. *)
  let exh_counts = Array.make (Platform.size plat0) 0 in
  let evictions = ref 0 in
  let current_faults () =
    match config.faults with
    | None -> Faults.none
    | Some fi ->
        let f = fi.engine_faults in
        let tw ws =
          List.filter_map
            (fun (u, t0, t1) ->
              let i = index_of u in
              if i >= 0 then Some (i, t0, t1) else None)
            ws
        in
        let t = f.Faults.transient in
        let transient =
          {
            t with
            Faults.Transient.exec_windows = tw t.Faults.Transient.exec_windows;
            comm_windows = tw t.Faults.Transient.comm_windows;
          }
        in
        let g = f.Faults.gray in
        let gray =
          {
            Faults.Gray.stragglers =
              List.filter_map
                (fun (u, w) ->
                  let i = index_of u in
                  if i >= 0 then Some (i, w) else None)
                g.Faults.Gray.stragglers;
            links =
              List.filter_map
                (fun ((s, d), w) ->
                  let i = index_of s and j = index_of d in
                  if i >= 0 && j >= 0 then Some ((i, j), w) else None)
                g.Faults.Gray.links;
          }
        in
        { f with Faults.transient; gray }
  in
  let absorb_exhaustions run_result =
    match (config.faults, run_result) with
    | Some _, Some r ->
        Array.iteri
          (fun i c ->
            if c > 0 then begin
              let orig = !procs.(i) in
              exh_counts.(orig) <- exh_counts.(orig) + c
            end)
          r.Engine.faults.Engine.exhausted_on
    | _ -> ()
  in
  let eviction_candidate () =
    match config.faults with
    | None -> None
    | Some fi ->
        let found = ref None in
        Array.iteri
          (fun orig c ->
            if !found = None && c >= fi.eviction_threshold then begin
              let cur = index_of orig in
              if cur >= 0 && not (List.mem cur !down) then
                found := Some (orig, cur)
            end)
          exh_counts;
        !found
  in
  (* Run the stream from the surviving-state snapshot at [!clock] until
     [t_end], injecting at the current period, with an optional fail-stop
     crash during the window. *)
  let play ~t_end ~crash_now =
    let p = period () in
    let timed_failures =
      match crash_now with None -> [] | Some c -> [ c ]
    in
    match config.overload with
    | None ->
        let wanted = slots ~period:p !clock t_end in
        let n_items = min wanted config.max_items_per_epoch in
        let capped = wanted - n_items in
        let run_result =
          if n_items = 0 then None
          else
            Some
              (Engine.simulate ~state:!arena
                 ~config:
                   {
                     Engine.Run.traffic =
                       Engine.Run.Closed { n_items; period = Some p };
                     snapshot = Some { Engine.clock = !clock; down = !down };
                     failed = [];
                     timed_failures;
                     metrics = true;
                     (* epochs read latencies and fault stats, never the
                        per-transfer log *)
                     record_messages = false;
                     faults = current_faults ();
                   }
                 !compiled)
        in
        absorb_exhaustions run_result;
        (n_items, capped, run_result)
    | Some o ->
        (* The arrival grid mixes two deterministic rates: the burst
           period inside the post-recovery window, the nominal one
           after.  Offsets are relative to the epoch snapshot. *)
        let fast = p /. o.burst_factor in
        let rec collect acc n t =
          if t >= t_end then (List.rev acc, n)
          else
            let step = if t < !burst_until then fast else p in
            collect ((t -. !clock) :: acc) (n + 1) (t +. step)
        in
        let all_offsets, wanted = collect [] 0 !clock in
        let n_items = min wanted config.max_items_per_epoch in
        let capped = wanted - n_items in
        let offsets = List.filteri (fun i _ -> i < n_items) all_offsets in
        let run_result =
          if n_items = 0 then None
          else
            Some
              (Engine.simulate ~state:!arena
                 ~config:
                   {
                     Engine.Run.traffic =
                       Engine.Run.Open
                         {
                           arrival = Arrival.Trace offsets;
                           n_items;
                           rng = None;
                           queue_bound = Some o.queue_bound;
                           policy = o.policy;
                         };
                     snapshot = Some { Engine.clock = !clock; down = !down };
                     failed = [];
                     timed_failures;
                     metrics = true;
                     record_messages = false;
                     faults = current_faults ();
                   }
                 !compiled)
        in
        (match run_result with
        | Some r -> total_dropped := !total_dropped + r.Engine.dropped
        | None -> ());
        absorb_exhaustions run_result;
        (n_items, capped, run_result)
  in
  let rec loop timeline =
    if !clock >= config.horizon then ()
    else
      match timeline with
      | [] -> (
          match config.faults with
          | None ->
              (* Quiet tail: run out to the horizon and stop. *)
              let t_start = !clock in
              let n_items, capped, run_result =
                play ~t_end:config.horizon ~crash_now:None
              in
              clock := config.horizon;
              record_epoch ~t_start ~t_end:config.horizon ~crash:None
                ~downtime:0.0 ~decision:Ran_clean ~run_result ~n_items ~capped
                ~extra_lost:0
          | Some fi ->
              (* Faulty quiet tail: chunk into review windows so the
                 escalation policy gets a periodic look at the exhaustion
                 ledger.  A processor that crossed the eviction threshold
                 is evicted — a synthetic fail-stop driven through the
                 normal recovery chain at the review instant. *)
              let rec quiet () =
                if !clock < config.horizon then begin
                  let t_start = !clock in
                  let t_end =
                    Float.min config.horizon (!clock +. fi.review_window)
                  in
                  let n_items, capped, run_result =
                    play ~t_end ~crash_now:None
                  in
                  clock := t_end;
                  record_epoch ~t_start ~t_end ~crash:None ~downtime:0.0
                    ~decision:Ran_clean ~run_result ~n_items ~capped
                    ~extra_lost:0;
                  (match eviction_candidate () with
                  | Some (orig_p, cur) ->
                      incr evictions;
                      Obs.incr "ops.evictions";
                      Obs.with_span "ops.recovery.epoch" (fun () ->
                          handle_crash ~orig_p ~t_c:!clock ~cur)
                  | None -> ());
                  quiet ()
                end
              in
              quiet ())
      | (orig_p, t_c) :: rest ->
          let cur = index_of orig_p in
          if cur < 0 || List.mem cur !down then
            (* The machine is not part of the current deployment (already
               crashed, or excluded by a degraded remap): its death is
               invisible to the stream. *)
            loop rest
          else begin
            incr crashes;
            Obs.incr "ops.recovery.crashes";
            Obs.with_span "ops.recovery.epoch" (fun () ->
                handle_crash ~orig_p ~t_c ~cur);
            loop rest
          end
  and handle_crash ~orig_p ~t_c ~cur =
    let t_start = !clock in
    let p_before = period () in
    (* Items injected before the crash run through the engine with the
       fail-stop event at [t_c]; in-flight work on the victim is lost and
       surfaces as lost items / latency spikes.  [t_c ≤ clock] means the
       machine died while the stream was already down reconfiguring after
       a previous crash — there is nothing to run. *)
    let n_items, capped, run_result =
      if t_c > !clock then play ~t_end:t_c ~crash_now:(Some (cur, t_c))
      else (0, 0, None)
    in
    clock := Float.max t_c !clock;
    let verdict =
      Recovery_policy.react ?max_attempts:config.max_attempts ~throughput
        ~failed:(cur :: !down) !mapping
    in
    match verdict with
    | Recovery_policy.Restored o ->
        let downtime = float_of_int o.attempts *. config.reconfig_delay in
        (* Items that would have been injected while the stream was down
           for reconfiguration are lost at the pre-crash rate. *)
        let dt_lost = slots ~period:p_before !clock (!clock +. downtime) in
        let t_end = !clock +. downtime in
        record_epoch ~t_start ~t_end ~crash:(Some (orig_p, t_c)) ~downtime
          ~decision:(Restored o.level) ~run_result ~n_items ~capped
          ~extra_lost:dt_lost;
        mapping := o.mapping;
        compiled := Program_cache.program o.mapping;
        arena := Engine.Run_state.create !compiled;
        procs := Array.map (fun i -> !procs.(i)) o.procs;
        tolerance := o.tolerance;
        (match o.level with
        | Full_strength | Relaxed_throughput -> down := cur :: !down
        | Reduced_eps _ | Best_effort_remap ->
            (* The new mapping lives on the surviving sub-platform: every
               processor of the restricted platform is alive. *)
            down := []);
        (match config.overload with
        | Some ov ->
            (* The backlog accumulated during the outage flushes as a
               burst once the stream resumes. *)
            burst_until := t_end +. ov.burst_window
        | None -> ());
        clock := t_end
    | Recovery_policy.Outage { attempts } ->
        let downtime = float_of_int attempts *. config.reconfig_delay in
        (* Terminal: everything the stream should have delivered until the
           horizon is lost, at the rate the contract asked for. *)
        let tail_lost = slots ~period:desired_period !clock config.horizon in
        record_epoch ~t_start ~t_end:config.horizon
          ~crash:(Some (orig_p, t_c)) ~downtime ~decision:(Outage { attempts })
          ~run_result ~n_items ~capped ~extra_lost:tail_lost;
        outage_at := Some !clock;
        clock := config.horizon
  in
  loop timeline;
  let availability =
    if !injected = 0 then 1.0
    else float_of_int !delivered /. float_of_int !injected
  in
  {
    epochs = List.rev !epochs;
    crashes = !crashes;
    evictions = !evictions;
    injected = !injected;
    delivered = !delivered;
    dropped = !total_dropped;
    availability;
    mean_latency = (if !lat_n = 0 then nan else !lat_sum /. float_of_int !lat_n);
    degraded_mean_latency =
      (if !degraded_n = 0 then nan
       else !degraded_sum /. float_of_int !degraded_n);
    total_downtime = !total_downtime;
    outage = Option.is_some !outage_at;
    outage_clock = Option.value !outage_at ~default:nan;
  }
