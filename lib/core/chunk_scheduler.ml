type rank = State.t -> State.trial -> float * float

let by_finish_time : rank = fun _ trial -> (trial.State.t_finish, 0.0)

let by_stage_then_finish : rank =
 fun _ trial -> (float_of_int trial.State.t_stage, trial.State.t_finish)

(* Per-chunk-task working data.  [ct_claimed] is the union of the kill
   sets of the already-placed replicas of the task: the locking discipline
   of §4 ("locked" processors) generalized transitively — a new replica may
   neither be placed on, nor sole-source (directly or transitively)
   through, a processor whose failure already kills a sibling replica.
   Keeping the replicas' kill sets pairwise disjoint is what guarantees
   that no ε failures can silence all ε+1 of them. *)
type chunk_task = {
  ct_task : Dag.task;
  mutable ct_z : int;
  ct_theta : int;
  mutable ct_claimed : State.Pset.t;
  ct_heads : (Dag.task * Replica.id list ref) list;
      (* per predecessor: remaining singleton replicas, sorted by the
         one-to-one communication-readiness key *)
}

let record_placement state ct (trial : State.trial) =
  ct.ct_claimed <-
    State.Pset.union ct.ct_claimed
      (State.support_of_sources state ~proc:trial.State.t_proc
         ~sources:trial.State.t_sources)

let singleton_data state task =
  let prob = State.problem state in
  let dag = prob.Types.dag in
  let mapping = State.mapping state in
  let preds = List.map fst (Dag.preds dag task) in
  let n_procs = Platform.size prob.Types.platform in
  let count = Array.make n_procs 0 in
  List.iter
    (fun pred ->
      List.iter
        (fun (r : Replica.t) -> count.(r.proc) <- count.(r.proc) + 1)
        (Mapping.replicas_of_task mapping pred))
    preds;
  let heads =
    List.map
      (fun pred ->
        let on_singletons =
          Mapping.replicas_of_task mapping pred
          |> List.filter (fun (r : Replica.t) -> count.(r.proc) = 1)
          |> List.map (fun (r : Replica.t) -> (r.id, r.proc))
        in
        let key (id, proc) =
          (Float.max (State.finish state id) (State.send_ready state proc), id)
        in
        let sorted =
          List.sort (fun a b -> compare (key a) (key b)) on_singletons
          |> List.map fst
        in
        (pred, ref sorted))
      preds
  in
  let theta =
    match heads with
    | [] -> prob.Types.eps + 1 (* entry task: no communications to pair up *)
    | _ ->
        List.fold_left
          (fun acc (_, ids) -> min acc (List.length !ids))
          max_int heads
  in
  { ct_task = task; ct_z = 0; ct_theta = theta; ct_claimed = State.Pset.empty;
    ct_heads = heads }

let pick_best ~(mode : Sched_api.mode) ~rank state scored =
  let score trial =
    let penalty = match mode with Strict -> 0.0 | Best_effort -> State.overload state trial in
    (penalty, rank state trial)
  in
  List.fold_left
    (fun acc trial ->
      match acc with
      | Some (best_key, best) ->
          let key = score trial in
          if key < best_key
             || (key = best_key && trial.State.t_proc < best.State.t_proc)
          then Some (key, trial)
          else acc
      | None -> Some (score trial, trial))
    None scored
  |> Option.map snd

(* Condition-(1) admission shared by both placement branches: in strict
   mode an infeasible trial is rejected, in best-effort mode it survives
   (ranked by overload) but still counts as a rejection for the profile. *)
let admit ~(mode : Sched_api.mode) state trial =
  match mode with
  | Strict ->
      if State.feasible state trial then Some trial
      else begin
        Obs.incr "core.feasibility_rejections";
        None
      end
  | Best_effort ->
      if Obs.enabled () && not (State.feasible state trial) then
        Obs.incr "core.feasibility_rejections";
      Some trial

(* Each replica may sole-source (transitively) through at most a "lane" of
   [m / (ε+1)] processors: the kill sets of the ε+1 replicas of a task must
   be pairwise disjoint subsets of the m processors, so unbounded chains
   leave no room for the remaining siblings.  When the budget runs out, the
   full-replica-group fallback resets the chain (no single failure can
   silence a full group). *)
let lane_budget ~(opts : Sched_api.options) prob =
  let m = Platform.size prob.Types.platform in
  max 1
    (int_of_float
       (Float.round
          (opts.lane_budget_factor *. float_of_int m
          /. float_of_int (prob.Types.eps + 1))))

(* Algorithm 4.2: map one replica so that each head replica of every
   predecessor feeds exactly this replica.  A head is only usable while its
   kill set stays disjoint from the processors already claimed by sibling
   replicas and small enough to fit the lane budget; stale heads are
   dropped lazily. *)
let one_to_one ~(opts : Sched_api.options) ~rank state ct ~copy =
  Obs.incr "core.one_to_one_calls";
  let mode = opts.mode in
  let prob = State.problem state in
  let budget = lane_budget ~opts prob in
  let usable (id : Replica.id) =
    let s = State.support state id in
    State.Pset.disjoint s ct.ct_claimed && State.Pset.cardinal s < budget
  in
  List.iter (fun (_, ids) -> ids := List.filter usable !ids) ct.ct_heads;
  if List.exists (fun (_, ids) -> !ids = []) ct.ct_heads then None
  else begin
    let sources =
      List.map (fun (pred, ids) -> (pred, [ List.hd !ids ])) ct.ct_heads
    in
    let trials =
      List.filter_map
        (fun proc ->
          if State.Pset.mem proc ct.ct_claimed then None
          else begin
            let kill = State.support_of_sources state ~proc ~sources in
            if State.Pset.cardinal kill > budget then None
            else begin
              let trial =
                State.evaluate state ~task:ct.ct_task ~copy ~proc ~sources
              in
              admit ~mode state trial
            end
          end)
        (Platform.procs prob.Types.platform)
    in
    match pick_best ~mode ~rank state trials with
    | None -> None
    | Some trial ->
        State.commit state trial;
        record_placement state ct trial;
        List.iter (fun (_, ids) -> ids := List.tl !ids) ct.ct_heads;
        Some trial
  end

(* General branch: the replica receives, for each predecessor, either from
   a co-located predecessor replica whose kill set is still unclaimed (a
   single comm-free source), or from the cheapest remote replica with an
   unclaimed kill set (a single message), or from all replicas of the
   predecessor (heavy on communication, but immune to single failures).
   Two source-set variants are tried per candidate processor — the greedy
   single-source one and the conservative local-or-full one — because
   claiming long kill chains can paint later siblings into a corner while
   full groups keep them free.  A kill chain through the candidate
   processor itself is harmless (the replica dies with its host anyway)
   and is exempt from the disjointness requirement. *)
let general ~(opts : Sched_api.options) ~rank state ct ~copy =
  Obs.incr "core.general_calls";
  let mode = opts.mode in
  let prob = State.problem state in
  let mapping = State.mapping state in
  let plat = prob.Types.platform in
  let pred_replicas =
    List.map
      (fun (pred, vol) -> (pred, vol, Mapping.replicas_of_task mapping pred))
      (Dag.preds prob.Types.dag ct.ct_task)
  in
  let budget = lane_budget ~opts prob in
  let variants_on proc =
    let others = State.Pset.remove proc ct.ct_claimed in
    let disjoint (r : Replica.t) =
      State.Pset.disjoint (State.support state r.id) others
    in
    (* Greedy variant: fold over the predecessors accumulating the kill
       set, sole-sourcing only while the lane budget allows and preferring
       the source that grows the chain least, then the cheapest transfer. *)
    let greedy =
      let acc = ref (State.Pset.singleton proc) in
      List.map
        (fun (pred, vol, replicas) ->
          let full =
            (pred, List.map (fun (r : Replica.t) -> r.Replica.id) replicas)
          in
          let fits (r : Replica.t) =
            State.Pset.cardinal
              (State.Pset.union !acc (State.support state r.id))
            <= budget
          in
          let candidates =
            List.filter (fun r -> disjoint r && fits r) replicas
            |> List.map (fun (r : Replica.t) ->
                   let growth =
                     State.Pset.cardinal
                       (State.Pset.diff (State.support state r.id) !acc)
                   in
                   let comm =
                     if r.proc = proc then 0.0
                     else Platform.comm_time plat r.proc proc vol
                   in
                   ((growth, comm), r))
            |> List.sort (fun (ka, (ra : Replica.t)) (kb, rb) ->
                   match compare ka kb with
                   | 0 -> Replica.compare_id ra.id rb.Replica.id
                   | c -> c)
          in
          match candidates with
          | (_, r) :: _ ->
              acc := State.Pset.union !acc (State.support state r.id);
              (pred, [ r.Replica.id ])
          | [] -> full)
        pred_replicas
    in
    (* Conservative variant: local sole source when free, else the full
       group; keeps the claim small for later siblings. *)
    let conservative =
      let acc = ref (State.Pset.singleton proc) in
      List.map
        (fun (pred, _, replicas) ->
          let local =
            List.find_opt
              (fun (r : Replica.t) ->
                r.proc = proc && disjoint r
                && State.Pset.cardinal
                     (State.Pset.union !acc (State.support state r.id))
                   <= budget)
              replicas
          in
          match local with
          | Some r ->
              acc := State.Pset.union !acc (State.support state r.id);
              (pred, [ r.Replica.id ])
          | None ->
              (pred, List.map (fun (r : Replica.t) -> r.Replica.id) replicas))
        pred_replicas
    in
    match opts.source_policy with
    | Greedy_only -> [ greedy ]
    | Conservative_only -> [ conservative ]
    | Both_variants ->
        if greedy = conservative then [ greedy ] else [ greedy; conservative ]
  in
  let trials =
    List.concat_map
      (fun proc ->
        if State.Pset.mem proc ct.ct_claimed then []
        else
          List.filter_map
            (fun sources ->
              let kill_set = State.support_of_sources state ~proc ~sources in
              if
                not
                  (State.Pset.disjoint
                     (State.Pset.remove proc kill_set)
                     ct.ct_claimed)
              then None
              else begin
                let trial =
                  State.evaluate state ~task:ct.ct_task ~copy ~proc ~sources
                in
                admit ~mode state trial
              end)
            (variants_on proc))
      (Platform.procs prob.Types.platform)
  in
  match pick_best ~mode ~rank state trials with
  | None ->
      if Sys.getenv_opt "STREAMSCHED_DEBUG" <> None then begin
        Printf.eprintf "general: no proc for t%d(%d); claimed={%s}\n"
          ct.ct_task copy
          (String.concat ","
             (List.map string_of_int (State.Pset.elements ct.ct_claimed)));
        List.iter
          (fun proc ->
            let delta = Types.period prob in
            Printf.eprintf
              "  P%d claimed=%b sigma=%.2f c_in=%.2f c_out=%.2f (delta=%.1f)\n"
              proc
              (State.Pset.mem proc ct.ct_claimed)
              (State.sigma state proc) (State.c_in state proc)
              (State.c_out state proc) delta)
          (Platform.procs prob.Types.platform)
      end;
      None
  | Some trial ->
      State.commit state trial;
      record_placement state ct trial;
      Some trial

let schedule ?(opts = Sched_api.default) ~rank (prob : Types.problem) =
  Obs.touch "core.placement_probes";
  Obs.touch "core.feasibility_rejections";
  Obs.touch "core.one_to_one_calls";
  Obs.touch "core.general_calls";
  Obs.touch "core.commits";
  Obs.touch "core.chunks";
  let dag = prob.Types.dag and plat = prob.Types.platform in
  let state = State.create prob in
  let weights =
    {
      Levels.node = (fun t -> Dag.exec dag t *. Platform.mean_inverse_speed plat);
      Levels.edge = (fun _ _ vol -> vol *. Platform.mean_unit_delay plat);
    }
  in
  let priority = Levels.priority dag weights in
  let higher a b =
    if priority.(a) <> priority.(b) then compare priority.(b) priority.(a)
    else compare a b
  in
  let module Tset = Set.Make (struct
    type t = Dag.task

    let compare = higher
  end) in
  let ready = ref Tset.empty in
  List.iter (fun t -> ready := Tset.add t !ready) (Dag.entries dag);
  let n_pending_preds = Array.init (Dag.size dag) (Dag.in_degree dag) in
  let chunk_bound = Platform.size plat in
  let failure = ref None in
  let unscheduled = ref (Dag.size dag) in
  while !failure = None && not (Tset.is_empty !ready) do
    Obs.with_span "core.scheduler.chunk" (fun () ->
        (* Select the chunk β of highest-priority ready tasks. *)
        let rec take k acc =
          if k = 0 || Tset.is_empty !ready then List.rev acc
          else begin
            let t = Tset.min_elt !ready in
            ready := Tset.remove t !ready;
            take (k - 1) (t :: acc)
          end
        in
        let beta = take chunk_bound [] |> List.map (singleton_data state) in
        Obs.incr "core.chunks";
        Obs.observe "core.chunk_size" (float_of_int (List.length beta));
        (* Copy-major placement, as in Algorithm 4.1. *)
        let rec copies n =
          if n <= prob.Types.eps && !failure = None then begin
            List.iter
              (fun ct ->
                if !failure = None then begin
                  let placed =
                    if opts.use_one_to_one && ct.ct_z < ct.ct_theta then begin
                      match one_to_one ~opts ~rank state ct ~copy:n with
                      | Some _ ->
                          ct.ct_z <- ct.ct_z + 1;
                          true
                      | None ->
                          Option.is_some (general ~opts ~rank state ct ~copy:n)
                    end
                    else Option.is_some (general ~opts ~rank state ct ~copy:n)
                  in
                  if not placed then
                    failure := Some (Types.No_feasible_processor (ct.ct_task, n))
                end)
              beta;
            copies (n + 1)
          end
        in
        copies 0;
        if !failure = None then
          List.iter
            (fun ct ->
              unscheduled := !unscheduled - 1;
              List.iter
                (fun (succ, _) ->
                  n_pending_preds.(succ) <- n_pending_preds.(succ) - 1;
                  if n_pending_preds.(succ) = 0 then ready := Tset.add succ !ready)
                (Dag.succs dag ct.ct_task))
            beta)
  done;
  match !failure with
  | Some f -> Error f
  | None ->
      assert (!unscheduled = 0);
      Ok state
