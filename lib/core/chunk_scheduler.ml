(* A ranking is a score plus a cheap lower bound on that score.  The bound
   receives, for the (task, copy) being placed, the earliest instant any
   admissible source set can deliver data ([finish_lb] already includes the
   candidate's execution time) and a floor on the pipeline stage; both are
   valid for every source-set variant the placement branch may try, so a
   candidate processor whose bound already loses to the incumbent can skip
   the full timeline probe.  Soundness: each component of [bound] is ≤ the
   corresponding component of [score] of any trial on that processor, so
   [bound >lex incumbent] implies [score >lex incumbent]. *)
type rank = {
  score : State.t -> State.trial -> float * float;
  bound : stage_lb:int -> finish_lb:float -> float * float;
}

let by_finish_time : rank =
  {
    score = (fun _ trial -> (trial.State.t_finish, 0.0));
    bound = (fun ~stage_lb:_ ~finish_lb -> (finish_lb, 0.0));
  }

let by_stage_then_finish : rank =
  {
    score =
      (fun _ trial -> (float_of_int trial.State.t_stage, trial.State.t_finish));
    bound = (fun ~stage_lb ~finish_lb -> (float_of_int stage_lb, finish_lb));
  }

(* Per-chunk-task working data.  [ct_claimed] is the union of the kill
   sets of the already-placed replicas of the task: the locking discipline
   of §4 ("locked" processors) generalized transitively — a new replica may
   neither be placed on, nor sole-source (directly or transitively)
   through, a processor whose failure already kills a sibling replica.
   Keeping the replicas' kill sets pairwise disjoint is what guarantees
   that no ε failures can silence all ε+1 of them. *)
type chunk_task = {
  ct_task : Dag.task;
  mutable ct_z : int;
  ct_theta : int;
  mutable ct_claimed : State.Pset.t;
  ct_heads : (Dag.task * Replica.id list ref) list;
      (* per predecessor: remaining singleton replicas, sorted by the
         one-to-one communication-readiness key *)
}

let record_placement state ct (trial : State.trial) =
  ct.ct_claimed <-
    State.Pset.union ct.ct_claimed
      (State.support_of_sources state ~proc:trial.State.t_proc
         ~sources:trial.State.t_sources)

(* [count] is a caller-owned scratch array of length n_procs, zeroed on
   entry and re-zeroed before returning: at a million tasks the per-task
   O(m) allocation (and clearing) would dominate the whole chunk phase. *)
let singleton_data state count task =
  let prob = State.problem state in
  let dag = prob.Types.dag in
  let mapping = State.mapping state in
  let preds = List.map fst (Dag.preds dag task) in
  List.iter
    (fun pred ->
      List.iter
        (fun (r : Replica.t) -> count.(r.proc) <- count.(r.proc) + 1)
        (Mapping.replicas_of_task mapping pred))
    preds;
  let heads =
    List.map
      (fun pred ->
        let on_singletons =
          Mapping.replicas_of_task mapping pred
          |> List.filter (fun (r : Replica.t) -> count.(r.proc) = 1)
          |> List.map (fun (r : Replica.t) -> (r.id, r.proc))
        in
        let key (id, proc) =
          (Float.max (State.finish state id) (State.send_ready state proc), id)
        in
        let sorted =
          List.sort (fun a b -> compare (key a) (key b)) on_singletons
          |> List.map fst
        in
        (pred, ref sorted))
      preds
  in
  let theta =
    match heads with
    | [] -> prob.Types.eps + 1 (* entry task: no communications to pair up *)
    | _ ->
        List.fold_left
          (fun acc (_, ids) -> min acc (List.length !ids))
          max_int heads
  in
  List.iter
    (fun pred ->
      List.iter
        (fun (r : Replica.t) -> count.(r.proc) <- 0)
        (Mapping.replicas_of_task mapping pred))
    preds;
  { ct_task = task; ct_z = 0; ct_theta = theta; ct_claimed = State.Pset.empty;
    ct_heads = heads }

(* Incremental form of the historical pick-best fold: [offer] feeds
   admitted trials in their generation order (ascending processor, then
   variant order), keeping the winner under (penalty, rank) with ties
   broken by processor index — the same winner the materialize-then-fold
   version selected. *)
let offer ~(mode : Sched_api.mode) ~rank state best trial =
  let penalty =
    match mode with Strict -> 0.0 | Best_effort -> State.overload state trial
  in
  let key = (penalty, rank.score state trial) in
  match !best with
  | Some (best_key, best_trial) ->
      if
        key < best_key
        || (key = best_key && trial.State.t_proc < best_trial.State.t_proc)
      then best := Some (key, trial)
  | None -> best := Some (key, trial)

(* A candidate processor can be skipped without probing when the incumbent
   carries no overload penalty (so any candidate's penalty, ≥ 0, cannot
   beat it) and the rank lower bound already loses: the bound is
   component-wise ≤ the true score of every trial on that processor, so
   bound >lex incumbent implies score >lex incumbent, and the strict
   inequality also rules out the processor-index tie-break. *)
let prune ~rank best ~stage_lb ~finish_lb =
  match !best with
  | Some ((penalty, best_rank), _) ->
      penalty = 0.0 && rank.bound ~stage_lb ~finish_lb > best_rank
  | None -> false

(* The per-candidate floors feeding {!prune}.  [preds] holds, for each
   predecessor, the transfer volume and the admissible source replicas as
   (finish, stage, host) triples: every source set the placement branches
   may try draws at least one of them per predecessor, so data readiness
   is floored by the per-predecessor minimum arrival (finish plus the
   transfer time, zero when co-located) and the stage by the minimum
   stage (+1 when remote).  Adding the candidate's execution time floors
   the finish. *)
let candidate_bound plat ~preds ~work proc =
  let fin = ref 0.0 and stg = ref 1 in
  List.iter
    (fun (vol, reps) ->
      let f = ref infinity and s = ref max_int in
      List.iter
        (fun (rf, rs, rp) ->
          if rp = proc then begin
            if rf < !f then f := rf;
            if rs < !s then s := rs
          end
          else begin
            let arr = rf +. Platform.comm_time plat rp proc vol in
            if arr < !f then f := arr;
            if rs + 1 < !s then s := rs + 1
          end)
        reps;
      if reps <> [] then begin
        if !f > !fin then fin := !f;
        if !s > !stg then stg := !s
      end)
    preds;
  (!stg, !fin +. Platform.exec_time plat proc work)

(* Hosts of the admissible sources, probed ahead of the main sweep: a
   co-located placement pays no transfer, so it usually sets a strong
   zero-penalty incumbent that lets the bound discard most of the
   remaining sweep.  The selected trial is order-independent — the winner
   is the minimum under ((penalty, rank), processor index), which no
   traversal permutation changes. *)
let source_hosts preds =
  List.sort_uniq compare
    (List.concat_map (fun (_, reps) -> List.map (fun (_, _, p) -> p) reps) preds)

(* Condition-(1) admission shared by both placement branches: in strict
   mode an infeasible trial is rejected, in best-effort mode it survives
   (ranked by overload) but still counts as a rejection for the profile. *)
let admit ~(mode : Sched_api.mode) state trial =
  match mode with
  | Strict ->
      if State.feasible state trial then Some trial
      else begin
        Obs.incr "core.feasibility_rejections";
        None
      end
  | Best_effort ->
      if Obs.enabled () && not (State.feasible state trial) then
        Obs.incr "core.feasibility_rejections";
      Some trial

(* Each replica may sole-source (transitively) through at most a "lane" of
   [m / (ε+1)] processors: the kill sets of the ε+1 replicas of a task must
   be pairwise disjoint subsets of the m processors, so unbounded chains
   leave no room for the remaining siblings.  When the budget runs out, the
   full-replica-group fallback resets the chain (no single failure can
   silence a full group). *)
let lane_budget ~(opts : Sched_api.options) prob =
  let m = Platform.size prob.Types.platform in
  max 1
    (int_of_float
       (Float.round
          (opts.lane_budget_factor *. float_of_int m
          /. float_of_int (prob.Types.eps + 1))))

(* Algorithm 4.2: map one replica so that each head replica of every
   predecessor feeds exactly this replica.  A head is only usable while its
   kill set stays disjoint from the processors already claimed by sibling
   replicas and small enough to fit the lane budget; stale heads are
   dropped lazily. *)
let one_to_one ~(opts : Sched_api.options) ~rank ~procs state ct ~copy =
  Obs.incr "core.one_to_one_calls";
  let mode = opts.mode in
  let prob = State.problem state in
  let budget = lane_budget ~opts prob in
  let usable (id : Replica.id) =
    let s = State.support state id in
    State.Pset.disjoint s ct.ct_claimed && State.Pset.cardinal s < budget
  in
  List.iter (fun (_, ids) -> ids := List.filter usable !ids) ct.ct_heads;
  if List.exists (fun (_, ids) -> !ids = []) ct.ct_heads then None
  else begin
    let sources =
      List.map (fun (pred, ids) -> (pred, [ List.hd !ids ])) ct.ct_heads
    in
    let plat = prob.Types.platform and dag = prob.Types.dag in
    let work = Dag.exec dag ct.ct_task in
    (* The bound data for this fixed source set: exactly one admissible
       replica per predecessor. *)
    let preds =
      List.map
        (fun (pred, ids) ->
          let src = List.hd ids in
          ( Dag.volume dag pred ct.ct_task,
            [
              ( State.finish state src,
                State.stage state src,
                (Mapping.replica_exn (State.mapping state) src.Replica.task
                   src.Replica.copy)
                  .Replica.proc );
            ] ))
        sources
    in
    let best = ref None in
    let consider proc =
      if not (State.Pset.mem proc ct.ct_claimed) then begin
        let stage_lb, finish_lb = candidate_bound plat ~preds ~work proc in
        if prune ~rank best ~stage_lb ~finish_lb then
          Obs.incr "core.probe_prunes"
        else begin
          let kill = State.support_of_sources state ~proc ~sources in
          if State.Pset.cardinal kill <= budget then begin
            let trial =
              State.evaluate state ~task:ct.ct_task ~copy ~proc ~sources
            in
            match admit ~mode state trial with
            | Some trial -> offer ~mode ~rank state best trial
            | None -> ()
          end
        end
      end
    in
    let hosts = source_hosts preds in
    List.iter consider hosts;
    List.iter (fun p -> if not (List.mem p hosts) then consider p) procs;
    match Option.map snd !best with
    | None -> None
    | Some trial ->
        State.commit state trial;
        record_placement state ct trial;
        List.iter (fun (_, ids) -> ids := List.tl !ids) ct.ct_heads;
        Some trial
  end

(* General branch: the replica receives, for each predecessor, either from
   a co-located predecessor replica whose kill set is still unclaimed (a
   single comm-free source), or from the cheapest remote replica with an
   unclaimed kill set (a single message), or from all replicas of the
   predecessor (heavy on communication, but immune to single failures).
   Two source-set variants are tried per candidate processor — the greedy
   single-source one and the conservative local-or-full one — because
   claiming long kill chains can paint later siblings into a corner while
   full groups keep them free.  A kill chain through the candidate
   processor itself is harmless (the replica dies with its host anyway)
   and is exempt from the disjointness requirement. *)
let general ~(opts : Sched_api.options) ~rank ~procs state ct ~copy =
  Obs.incr "core.general_calls";
  let mode = opts.mode in
  let prob = State.problem state in
  let mapping = State.mapping state in
  let plat = prob.Types.platform in
  let pred_replicas =
    List.map
      (fun (pred, vol) -> (pred, vol, Mapping.replicas_of_task mapping pred))
      (Dag.preds prob.Types.dag ct.ct_task)
  in
  let budget = lane_budget ~opts prob in
  let variants_on proc =
    let others = State.Pset.remove proc ct.ct_claimed in
    let disjoint (r : Replica.t) =
      State.Pset.disjoint (State.support state r.id) others
    in
    (* Greedy variant: fold over the predecessors accumulating the kill
       set, sole-sourcing only while the lane budget allows and preferring
       the source that grows the chain least, then the cheapest transfer. *)
    let greedy =
      let acc = ref (State.Pset.singleton proc) in
      List.map
        (fun (pred, vol, replicas) ->
          let full =
            (pred, List.map (fun (r : Replica.t) -> r.Replica.id) replicas)
          in
          let fits (r : Replica.t) =
            State.Pset.cardinal
              (State.Pset.union !acc (State.support state r.id))
            <= budget
          in
          let candidates =
            List.filter (fun r -> disjoint r && fits r) replicas
            |> List.map (fun (r : Replica.t) ->
                   let growth =
                     State.Pset.cardinal
                       (State.Pset.diff (State.support state r.id) !acc)
                   in
                   let comm =
                     if r.proc = proc then 0.0
                     else Platform.comm_time plat r.proc proc vol
                   in
                   ((growth, comm), r))
            |> List.sort (fun (ka, (ra : Replica.t)) (kb, rb) ->
                   match compare ka kb with
                   | 0 -> Replica.compare_id ra.id rb.Replica.id
                   | c -> c)
          in
          match candidates with
          | (_, r) :: _ ->
              acc := State.Pset.union !acc (State.support state r.id);
              (pred, [ r.Replica.id ])
          | [] -> full)
        pred_replicas
    in
    (* Conservative variant: local sole source when free, else the full
       group; keeps the claim small for later siblings. *)
    let conservative =
      let acc = ref (State.Pset.singleton proc) in
      List.map
        (fun (pred, _, replicas) ->
          let local =
            List.find_opt
              (fun (r : Replica.t) ->
                r.proc = proc && disjoint r
                && State.Pset.cardinal
                     (State.Pset.union !acc (State.support state r.id))
                   <= budget)
              replicas
          in
          match local with
          | Some r ->
              acc := State.Pset.union !acc (State.support state r.id);
              (pred, [ r.Replica.id ])
          | None ->
              (pred, List.map (fun (r : Replica.t) -> r.Replica.id) replicas))
        pred_replicas
    in
    match opts.source_policy with
    | Greedy_only -> [ greedy ]
    | Conservative_only -> [ conservative ]
    | Both_variants ->
        if greedy = conservative then [ greedy ] else [ greedy; conservative ]
  in
  (* Bound data valid for every source-set variant: each predecessor must
     deliver from at least one of its replicas. *)
  let preds =
    List.map
      (fun (_, vol, replicas) ->
        ( vol,
          List.map
            (fun (r : Replica.t) ->
              (State.finish state r.id, State.stage state r.id, r.proc))
            replicas ))
      pred_replicas
  in
  let work = Dag.exec prob.Types.dag ct.ct_task in
  let best = ref None in
  let consider proc =
    if not (State.Pset.mem proc ct.ct_claimed) then begin
      let stage_lb, finish_lb = candidate_bound plat ~preds ~work proc in
      if prune ~rank best ~stage_lb ~finish_lb then
        Obs.incr "core.probe_prunes"
      else
        List.iter
          (fun sources ->
            let kill_set = State.support_of_sources state ~proc ~sources in
            if
              State.Pset.disjoint
                (State.Pset.remove proc kill_set)
                ct.ct_claimed
            then begin
              let trial =
                State.evaluate state ~task:ct.ct_task ~copy ~proc ~sources
              in
              match admit ~mode state trial with
              | Some trial -> offer ~mode ~rank state best trial
              | None -> ()
            end)
          (variants_on proc)
    end
  in
  let hosts = source_hosts preds in
  List.iter consider hosts;
  List.iter (fun p -> if not (List.mem p hosts) then consider p) procs;
  match Option.map snd !best with
  | None ->
      if Sys.getenv_opt "STREAMSCHED_DEBUG" <> None then begin
        Printf.eprintf "general: no proc for t%d(%d); claimed={%s}\n"
          ct.ct_task copy
          (String.concat ","
             (List.map string_of_int (State.Pset.elements ct.ct_claimed)));
        List.iter
          (fun proc ->
            let delta = Types.period prob in
            Printf.eprintf
              "  P%d claimed=%b sigma=%.2f c_in=%.2f c_out=%.2f (delta=%.1f)\n"
              proc
              (State.Pset.mem proc ct.ct_claimed)
              (State.sigma state proc) (State.c_in state proc)
              (State.c_out state proc) delta)
          procs
      end;
      None
  | Some trial ->
      State.commit state trial;
      record_placement state ct trial;
      Some trial

let schedule ?(opts = Sched_api.default) ~rank (prob : Types.problem) =
  Obs.touch "core.placement_probes";
  Obs.touch "core.probe_prunes";
  Obs.touch "core.feasibility_rejections";
  Obs.touch "core.one_to_one_calls";
  Obs.touch "core.general_calls";
  Obs.touch "core.commits";
  Obs.touch "core.chunks";
  let dag = prob.Types.dag and plat = prob.Types.platform in
  let state = State.create prob in
  let weights =
    {
      Levels.node = (fun t -> Dag.exec dag t *. Platform.mean_inverse_speed plat);
      Levels.edge = (fun _ _ vol -> vol *. Platform.mean_unit_delay plat);
    }
  in
  let priority = Levels.priority dag weights in
  let procs = Platform.procs plat in
  let count_scratch = Array.make (Platform.size plat) 0 in
  let higher a b =
    if priority.(a) <> priority.(b) then compare priority.(b) priority.(a)
    else compare a b
  in
  let module Tset = Set.Make (struct
    type t = Dag.task

    let compare = higher
  end) in
  let ready = ref Tset.empty in
  List.iter (fun t -> ready := Tset.add t !ready) (Dag.entries dag);
  let n_pending_preds = Array.init (Dag.size dag) (Dag.in_degree dag) in
  let chunk_bound = Platform.size plat in
  let failure = ref None in
  let unscheduled = ref (Dag.size dag) in
  while !failure = None && not (Tset.is_empty !ready) do
    Obs.with_span "core.scheduler.chunk" (fun () ->
        (* Select the chunk β of highest-priority ready tasks. *)
        let rec take k acc =
          if k = 0 || Tset.is_empty !ready then List.rev acc
          else begin
            let t = Tset.min_elt !ready in
            ready := Tset.remove t !ready;
            take (k - 1) (t :: acc)
          end
        in
        let beta =
          take chunk_bound [] |> List.map (singleton_data state count_scratch)
        in
        Obs.incr "core.chunks";
        Obs.observe "core.chunk_size" (float_of_int (List.length beta));
        (* Copy-major placement, as in Algorithm 4.1. *)
        let rec copies n =
          if n <= prob.Types.eps && !failure = None then begin
            List.iter
              (fun ct ->
                if !failure = None then begin
                  let placed =
                    if opts.use_one_to_one && ct.ct_z < ct.ct_theta then begin
                      match one_to_one ~opts ~rank ~procs state ct ~copy:n with
                      | Some _ ->
                          ct.ct_z <- ct.ct_z + 1;
                          true
                      | None ->
                          Option.is_some
                            (general ~opts ~rank ~procs state ct ~copy:n)
                    end
                    else
                      Option.is_some
                        (general ~opts ~rank ~procs state ct ~copy:n)
                  in
                  if not placed then
                    failure := Some (Types.No_feasible_processor (ct.ct_task, n))
                end)
              beta;
            copies (n + 1)
          end
        in
        copies 0;
        if !failure = None then
          List.iter
            (fun ct ->
              unscheduled := !unscheduled - 1;
              List.iter
                (fun (succ, _) ->
                  n_pending_preds.(succ) <- n_pending_preds.(succ) - 1;
                  if n_pending_preds.(succ) = 0 then ready := Tset.add succ !ready)
                (Dag.succs dag ct.ct_task))
            beta)
  done;
  match !failure with
  | Some f -> Error f
  | None ->
      assert (!unscheduled = 0);
      Ok state
