(** Post-failure recovery: re-establish the replication degree.

    The active replication scheme survives up to ε failures without any
    reaction, but every failure consumes tolerance: after [c] crashes the
    schedule only survives [ε − c] further ones.  This module rebuilds a
    full-strength mapping after actual failures, keeping every surviving
    replica where it is (no task migration: the pipeline keeps flowing) and
    re-placing only the replicas that lived on the failed processors, then
    re-deriving all communication structure under the kill-set discipline.

    The paper stops at static tolerance; this is the natural operational
    complement ("further work" in the §6 sense). *)

type error =
  | Not_enough_processors
      (** fewer than ε + 1 processors survive, so the replication degree
          cannot be restored *)
  | No_room of Dag.task * int
      (** the given replica cannot be re-placed on any surviving processor
          without colliding with a sibling or — when a throughput bound is
          given — without pushing the host's execution load beyond the
          period.  Unreachable without a bound: with ε + 1 survivors and
          at most ε live siblings, a sibling-free survivor always exists. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val restore :
  ?throughput:float ->
  Mapping.t ->
  failed:Platform.proc list ->
  (Mapping.t, error) result
(** [restore m ~failed] returns a complete mapping on the same platform in
    which no replica sits on a failed processor, replicas that were not on
    failed processors keep their placement, and the kill sets of each
    task's replicas are pairwise disjoint within the surviving processors
    (so the result again tolerates ε arbitrary further failures among
    them).  Re-placed replicas go to the least-loaded eligible surviving
    processor.  [throughput] makes the re-placement respect the execution
    part of condition (1) — a survivor whose cycle time would exceed the
    period is not eligible, so restoration can fail with {!No_room} where
    the unconstrained call would overload a processor — and makes the
    source derivation load-aware.  Degraded-mode callers drop the bound
    and accept the slower achieved period (see [Recovery_policy]). *)
