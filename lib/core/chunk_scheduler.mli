(** The chunked list-scheduling skeleton shared by LTF and R-LTF
    (Algorithm 4.1 of the paper, with Algorithm 4.2 as its inner
    procedure).

    At each step the scheduler selects a chunk [β] of up to [B = m] ready
    tasks of highest priority ([tℓ + bℓ] on platform-averaged weights) and
    places the [ε + 1] replicas of each, iterating copy-major as in the
    paper (copy [N] of every chunk task, then copy [N+1], ...).  While a
    task still has singleton predecessor replicas available ([Z_k < θ_k]),
    replicas are placed by the one-to-one mapping procedure — each selected
    head replica feeds exactly this replica — otherwise by the general rule
    where the replica receives from all [ε + 1] replicas of every
    predecessor.

    Processor eligibility follows §4: a candidate must not be locked for
    the task (hosting one of its replicas, or involved in a communication
    with one) and must satisfy the throughput condition (1).  When no
    unlocked processor is feasible, the general branch may fall back to
    communication-locked processors that are provably safe for the
    ε-failure guarantee (never those hosting a replica of the task, nor
    those that are the sole source of a placed replica); this implements
    the paper's "we use other processors" escape hatch without
    compromising fault tolerance.  If even the fallback finds no
    processor, the algorithm fails, as LTF does in the worked example of
    §4.3.

    Candidate ranking is a parameter: LTF minimizes the estimated finish
    time [F]; R-LTF minimizes the pipeline stage first (Rule 1) and the
    finish time second.

    When {!Obs.enabled} is on, a run records the counters
    [core.placement_probes], [core.feasibility_rejections],
    [core.one_to_one_calls], [core.general_calls], [core.commits] and
    [core.chunks], the histogram [core.chunk_size], and the per-chunk span
    [core.scheduler.chunk] into the calling domain's registry.  The
    instrumentation is purely observational: results are bit-identical
    whether it is on or off. *)

type rank = State.t -> State.trial -> float * float
(** Smaller is better, compared lexicographically; ties broken by processor
    index. *)

type mode =
  | Strict
      (** condition (1) is a hard constraint: the algorithm fails when no
          eligible processor satisfies it, as in the pseudocode of
          Algorithm 4.1 *)
  | Best_effort
      (** condition (1) is a preference: when no eligible processor
          satisfies it, the least-overloaded placement is used instead
          (the paper's "we use other processors, at the risk of increasing
          the communication overhead"; the paper's own worked example
          carries Σ = 22 > Δ = 20, so its experiments evidently allowed
          this).  The replica-placement and fault-tolerance rules remain
          hard. *)

(** Ablation knobs for the design choices DESIGN.md calls out; the
    defaults reproduce the paper's algorithms. *)
type source_policy =
  | Both_variants       (** trial greedy and conservative source sets *)
  | Greedy_only         (** sole-source whenever the kill sets allow *)
  | Conservative_only   (** local sole sources or full groups only *)

(** All scheduling knobs in one record.  Build variations from {!default}
    with the [with_*] builders:
    [Scheduler.(default |> with_mode Best_effort)]. *)
type options = {
  mode : mode;
  lane_budget_factor : float;
      (** scales the kill-chain budget m/(ε+1); 1.0 is the default *)
  use_one_to_one : bool;
      (** disable to force every placement through the general branch *)
  source_policy : source_policy;
}

val default : options
(** [Strict] mode with the paper's placement rules. *)

val with_mode : mode -> options -> options
val with_lane_budget_factor : float -> options -> options
val with_use_one_to_one : bool -> options -> options
val with_source_policy : source_policy -> options -> options

val resolve : ?mode:mode -> ?opts:options -> unit -> options
(** Combine the legacy optional arguments into one record: start from
    [opts] (default {!default}) and let an explicit [mode] override its
    mode field.  Used by the deprecated wrappers; new code should pass a
    full [options] value instead. *)

(** A schedulable algorithm as a first-class module, the registry entry
    point used by {!Scheduler.all} and the figure sweeps. *)
module type Algo = sig
  val name : string

  val run : ?mode:mode -> ?opts:options -> Types.problem -> Types.outcome
  (** [mode], when given, overrides [opts.mode] (see {!resolve}). *)
end

val by_finish_time : rank
(** LTF's policy: [(F, 0)]. *)

val by_stage_then_finish : rank
(** R-LTF's Rule 1 policy: [(stage, F)]. *)

val schedule :
  ?opts:options ->
  rank:rank ->
  Types.problem ->
  (State.t, Types.failure) result
(** Schedule every task of the problem's DAG.  On success the returned
    state holds a complete mapping. *)
