(** The chunked list-scheduling skeleton shared by LTF and R-LTF
    (Algorithm 4.1 of the paper, with Algorithm 4.2 as its inner
    procedure).

    At each step the scheduler selects a chunk [β] of up to [B = m] ready
    tasks of highest priority ([tℓ + bℓ] on platform-averaged weights) and
    places the [ε + 1] replicas of each, iterating copy-major as in the
    paper (copy [N] of every chunk task, then copy [N+1], ...).  While a
    task still has singleton predecessor replicas available ([Z_k < θ_k]),
    replicas are placed by the one-to-one mapping procedure — each selected
    head replica feeds exactly this replica — otherwise by the general rule
    where the replica receives from all [ε + 1] replicas of every
    predecessor.

    Processor eligibility follows §4: a candidate must not be locked for
    the task (hosting one of its replicas, or involved in a communication
    with one) and must satisfy the throughput condition (1).  When no
    unlocked processor is feasible, the general branch may fall back to
    communication-locked processors that are provably safe for the
    ε-failure guarantee (never those hosting a replica of the task, nor
    those that are the sole source of a placed replica); this implements
    the paper's "we use other processors" escape hatch without
    compromising fault tolerance.  If even the fallback finds no
    processor, the algorithm fails, as LTF does in the worked example of
    §4.3.

    Candidate ranking is a parameter: LTF minimizes the estimated finish
    time [F]; R-LTF minimizes the pipeline stage first (Rule 1) and the
    finish time second.

    Configuration lives in the one canonical {!Sched_api.options} record
    (re-exported by [Scheduler]); this module defines only the engine.

    When {!Obs.enabled} is on, a run records the counters
    [core.placement_probes], [core.feasibility_rejections],
    [core.one_to_one_calls], [core.general_calls], [core.commits] and
    [core.chunks], the histogram [core.chunk_size], and the per-chunk span
    [core.scheduler.chunk] into the calling domain's registry.  The
    instrumentation is purely observational: results are bit-identical
    whether it is on or off. *)

type rank = {
  score : State.t -> State.trial -> float * float;
      (** Smaller is better, compared lexicographically; ties broken by
          processor index. *)
  bound : stage_lb:int -> finish_lb:float -> float * float;
      (** A component-wise lower bound on [score] for any trial of the
          (task, copy) being placed on a candidate processor, given a floor
          on its pipeline stage and on its finish time (earliest source
          data readiness plus the candidate's execution time).  Candidates
          whose bound already loses lexicographically to a zero-overload
          incumbent are skipped without probing the timelines — the
          selected trial is identical, only the probe count changes. *)
}

val by_finish_time : rank
(** LTF's policy: score [(F, 0)], bound [(finish_lb, 0)]. *)

val by_stage_then_finish : rank
(** R-LTF's Rule 1 policy: score [(stage, F)], bound
    [(stage_lb, finish_lb)]. *)

val schedule :
  ?opts:Sched_api.options ->
  rank:rank ->
  Types.problem ->
  (State.t, Types.failure) result
(** Schedule every task of the problem's DAG.  On success the returned
    state holds a complete mapping. *)
