let run ?opts ~dag ~platform ~throughput () =
  Rltf.schedule ?opts (Types.problem ~dag ~platform ~eps:0 ~throughput)

let latency ?opts ~dag ~platform ~throughput () =
  match run ?opts ~dag ~platform ~throughput () with
  | Error _ -> None
  | Ok mapping -> Engine.latency mapping
