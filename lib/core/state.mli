(** Incremental scheduling state shared by LTF and R-LTF.

    Wraps a partial {!Mapping.t} together with everything the algorithms
    probe at each placement step: per-processor computing loads [Σ_u],
    communication cycle loads [Cᴵ_u]/[Cᴼ_u], persistent one-port timelines
    for contention-aware finish-time estimation, committed replica finish
    times, and incremental pipeline stages.

    A placement is evaluated as a {!trial} (pure, no state change) and then
    {!commit}ted.  Trials schedule each incoming transfer earliest-fit on
    the pair (sender send port, receiver receive port) and the execution
    earliest-fit on the target processor, on top of the committed
    timelines. *)

type t

val create : Types.problem -> t
(** Fresh state over the problem's DAG (which may be a reversed graph for
    the bottom-up traversal; the state is direction-agnostic). *)

val problem : t -> Types.problem
val mapping : t -> Mapping.t

val finish : t -> Replica.id -> float
(** Committed finish time of a placed replica.
    @raise Invalid_argument if not placed. *)

val stage : t -> Replica.id -> int
(** Incrementally maintained pipeline stage of a placed replica. *)

val sigma : t -> Platform.proc -> float
val c_in : t -> Platform.proc -> float
val c_out : t -> Platform.proc -> float

val loads : t -> Loads.t
(** The incrementally maintained per-processor loads (Σ/Cᴵ/Cᴼ and the
    cached max cycle time).  {!commit} charges them through the [Loads]
    primitives, so readers never pay a full [Loads.of_mapping] rewalk. *)

module Pset = Bitset
(** Kill sets are packed bitsets over the processor indices: [disjoint] /
    [union] / [cardinal] — the operations on the placement hot path — run
    in O(m/word_size) word steps instead of walking a balanced tree. *)

val support : t -> Replica.id -> Pset.t
(** The {e kill set} of a placed replica: the processors whose individual
    failure prevents it from producing its output — its own processor,
    plus (transitively) the kill set of every sole-source predecessor
    replica.  A predecessor fed by all [ε+1] replicas contributes nothing:
    no single failure can silence a full replica group whose kill sets are
    pairwise disjoint, and the scheduler maintains exactly that
    disjointness invariant per task (this is the locking discipline that
    makes the active replication scheme ε-fault-tolerant). *)

val support_of_sources :
  t ->
  proc:Platform.proc ->
  sources:(Dag.task * Replica.id list) list ->
  Pset.t
(** The kill set a replica would have if placed on [proc] with the given
    sources (all of which must be placed). *)

val send_ready : t -> Platform.proc -> float
(** Earliest instant the send port of the processor is free forever after —
    the key used to sort predecessor replicas in the one-to-one procedure. *)

(** A simulated placement of one replica. *)
type trial = {
  t_task : Dag.task;
  t_copy : int;
  t_proc : Platform.proc;
  t_sources : (Dag.task * Replica.id list) list;
  t_start : float;
  t_finish : float;
  t_stage : int;
  t_comms : (Replica.id * float * float * float) list;
      (** incoming transfers: source replica, start, duration, arrival *)
}

val evaluate :
  t ->
  task:Dag.task ->
  copy:int ->
  proc:Platform.proc ->
  sources:(Dag.task * Replica.id list) list ->
  trial
(** Simulate placing the replica on the processor with the given source
    sets (one entry per predecessor, each source already placed).  Does not
    check the throughput condition — see {!feasible}. *)

val feasible : t -> trial -> bool
(** Condition (1) of §4 for the trial: with the replica added, the target
    processor's computing load and input-communication load, and every
    source processor's output-communication load, all fit within the period
    [Δ = 1/T]. *)

val overload : t -> trial -> float
(** Total amount by which the trial would push the affected resource loads
    beyond the period; [0] iff {!feasible}.  Used by the best-effort
    scheduling mode to pick the least-overloaded placement when condition
    (1) cannot be met anywhere (the paper's "we use other processors, at
    the risk of increasing the communication overhead"). *)

val commit : t -> trial -> unit
(** Apply a trial: place the replica in the mapping, charge loads, reserve
    the timeline intervals, record finish time and stage.
    @raise Invalid_argument on mapping inconsistencies. *)
