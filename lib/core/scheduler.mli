(** The public face of the scheduling core: the chunked list-scheduling
    engine shared by LTF and R-LTF (re-exported from {!Chunk_scheduler},
    where the full algorithm documentation lives) plus the registry of
    first-class algorithm modules that drives the figure sweeps.

    New code configures a run with one {!options} record:
    {[
      let opts = Scheduler.(default |> with_mode Best_effort) in
      Ltf.schedule ~opts prob
    ]}
    and discovers algorithms through {!all} rather than naming [Ltf] /
    [Rltf] directly.  The pre-record entry points ([?mode] plus a modeless
    options record) survive one release as deprecated wrappers. *)

type rank = State.t -> State.trial -> float * float
(** Smaller is better, compared lexicographically; ties broken by processor
    index. *)

type mode = Chunk_scheduler.mode =
  | Strict
      (** condition (1) is a hard constraint: the algorithm fails when no
          eligible processor satisfies it, as in the pseudocode of
          Algorithm 4.1 *)
  | Best_effort
      (** condition (1) is a preference: when no eligible processor
          satisfies it, the least-overloaded placement is used instead.
          The replica-placement and fault-tolerance rules remain hard. *)

(** Ablation knobs for the design choices DESIGN.md calls out; the
    defaults reproduce the paper's algorithms. *)
type source_policy = Chunk_scheduler.source_policy =
  | Both_variants       (** trial greedy and conservative source sets *)
  | Greedy_only         (** sole-source whenever the kill sets allow *)
  | Conservative_only   (** local sole sources or full groups only *)

(** All scheduling knobs in one record; build variations from {!default}
    with the [with_*] builders. *)
type options = Chunk_scheduler.options = {
  mode : mode;
  lane_budget_factor : float;
      (** scales the kill-chain budget m/(ε+1); 1.0 is the default *)
  use_one_to_one : bool;
      (** disable to force every placement through the general branch *)
  source_policy : source_policy;
}

val default : options
(** [Strict] mode with the paper's placement rules. *)

val with_mode : mode -> options -> options
val with_lane_budget_factor : float -> options -> options
val with_use_one_to_one : bool -> options -> options
val with_source_policy : source_policy -> options -> options

val resolve : ?mode:mode -> ?opts:options -> unit -> options
(** Combine the legacy optional arguments into one record: start from
    [opts] (default {!default}) and let an explicit [mode] override its
    mode field. *)

(** A schedulable algorithm as a first-class module. *)
module type Algo = Chunk_scheduler.Algo

val all : (module Algo) list
(** The core algorithms, in presentation order: LTF then R-LTF.  Baseline
    heuristics register separately in [Baseline_registry.all]
    (lib/baselines). *)

val find : string -> (module Algo) option
(** Case-insensitive lookup in {!all} by [Algo.name]. *)

val by_finish_time : rank
(** LTF's policy: [(F, 0)]. *)

val by_stage_then_finish : rank
(** R-LTF's Rule 1 policy: [(stage, F)]. *)

val schedule :
  ?opts:options ->
  rank:rank ->
  Types.problem ->
  (State.t, Types.failure) result
(** Schedule every task of the problem's DAG.  On success the returned
    state holds a complete mapping.  See {!Chunk_scheduler.schedule} for
    the algorithm and the recorded metrics. *)

val default_options : options
[@@deprecated "use Scheduler.default (mode is a field now)"]

val run :
  ?mode:mode ->
  ?opts:options ->
  rank:rank ->
  Types.problem ->
  (State.t, Types.failure) result
[@@deprecated "use Scheduler.schedule with Scheduler.options"]
