(** The public face of the scheduling core: the canonical configuration
    surface (re-exported from {!Sched_api}, whose record and [Algo]
    signature are the only ones in the codebase), the chunked
    list-scheduling engine shared by LTF and R-LTF (re-exported from
    {!Chunk_scheduler}, where the full algorithm documentation lives), and
    the registry of first-class algorithm modules that drives the figure
    sweeps.

    Code configures a run with one {!options} record:
    {[
      let opts = Scheduler.(default |> with_mode Best_effort) in
      Ltf.schedule ~opts prob
    ]}
    and discovers algorithms through {!all} rather than naming [Ltf] /
    [Rltf] directly. *)

include module type of struct
  include Sched_api
end

type rank = Chunk_scheduler.rank
(** Smaller is better, compared lexicographically; ties broken by processor
    index. *)

val by_finish_time : rank
(** LTF's policy: [(F, 0)]. *)

val by_stage_then_finish : rank
(** R-LTF's Rule 1 policy: [(stage, F)]. *)

val schedule :
  ?opts:options ->
  rank:rank ->
  Types.problem ->
  (State.t, Types.failure) result
(** Schedule every task of the problem's DAG.  On success the returned
    state holds a complete mapping.  See {!Chunk_scheduler.schedule} for
    the algorithm and the recorded metrics. *)

val all : (module Algo) list
(** The core algorithms, in presentation order: LTF then R-LTF.  Baseline
    heuristics register separately in [Baseline_registry.all]
    (lib/baselines). *)

val find : string -> (module Algo) option
(** Case-insensitive lookup in {!all} by [Algo.name]. *)
