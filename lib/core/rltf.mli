(** The Reverse LTF algorithm — §4.2.

    R-LTF traverses the application graph bottom-up (from the sink tasks)
    and guides every placement by Rule 1 — do not increase the pipeline
    stage of the replica being placed — and only then by the finish time;
    Rule 2's communication reduction is achieved by the same one-to-one
    pairing as LTF, applied while singleton replicas remain.  Concretely
    the implementation runs the shared chunk scheduler on the transpose
    graph with the stage-first ranking; the reverse run fixes the
    placements, and the forward communication structure is re-derived
    under the forward kill-set discipline ({!Source_derivation}), with the
    reverse pairings as hints.  In strict mode, a derived structure that
    cannot fit the period is reported as {!Types.Derived_overload} rather
    than returned. *)

val schedule : ?opts:Chunk_scheduler.options -> Types.problem -> Types.outcome
(** Run R-LTF under the given options ({!Chunk_scheduler.default} when
    omitted) and return the forward mapping. *)

val schedule_state :
  ?opts:Chunk_scheduler.options ->
  Types.problem ->
  (State.t, Types.failure) result
(** The scheduling state of the reverse run (over the transpose graph);
    mainly for tests.  Use {!schedule} for the forward mapping. *)

val algo : (module Chunk_scheduler.Algo)
(** R-LTF as a registry entry (named ["R-LTF"]); see [Scheduler.all]. *)

val run :
  ?mode:Chunk_scheduler.mode ->
  ?opts:Chunk_scheduler.options ->
  Types.problem ->
  Types.outcome
[@@deprecated "use Rltf.schedule with Scheduler.options (mode is a field now)"]

val run_state :
  ?mode:Chunk_scheduler.mode ->
  ?opts:Chunk_scheduler.options ->
  Types.problem ->
  (State.t, Types.failure) result
[@@deprecated
  "use Rltf.schedule_state with Scheduler.options (mode is a field now)"]
