(** The Reverse LTF algorithm — §4.2.

    R-LTF traverses the application graph bottom-up (from the sink tasks)
    and guides every placement by Rule 1 — do not increase the pipeline
    stage of the replica being placed — and only then by the finish time;
    Rule 2's communication reduction is achieved by the same one-to-one
    pairing as LTF, applied while singleton replicas remain.  Concretely
    the implementation runs the shared chunk scheduler on the transpose
    graph with the stage-first ranking; the reverse run fixes the
    placements, and the forward communication structure is re-derived
    under the forward kill-set discipline ({!Source_derivation}), with the
    reverse pairings as hints.  In strict mode, a derived structure that
    cannot fit the period is reported as {!Types.Derived_overload} rather
    than returned. *)

val schedule : ?opts:Sched_api.options -> Types.problem -> Types.outcome
(** Run R-LTF under the given options ({!Sched_api.default} when omitted)
    and return the forward mapping. *)

val schedule_state :
  ?opts:Sched_api.options ->
  Types.problem ->
  (State.t, Types.failure) result
(** The scheduling state of the reverse run (over the transpose graph);
    mainly for tests.  Use {!schedule} for the forward mapping. *)

val algo : (module Sched_api.Algo)
(** R-LTF as a registry entry (named ["R-LTF"]); see [Scheduler.all]. *)
