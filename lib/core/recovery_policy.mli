(** Graceful degradation after real crashes: the recovery decision chain.

    {!Recovery.restore} re-establishes the full replication degree in
    place, but a long-running stream cannot simply stop when restoration
    fails — too few survivors, or no survivor with room under the
    throughput bound.  This module walks a fallback chain of decreasing
    service levels and reports which level it had to settle for:

    + {!Full_strength} — [Recovery.restore] under the throughput bound:
      every surviving replica stays put, the degree is back to ε, the
      desired period holds;
    + {!Relaxed_throughput} — [Recovery.restore] without the bound: full
      degree, but some processor may exceed the period, so the stream
      runs at the (slower) achieved period;
    + {!Reduced_eps ε′} — a fresh best-effort R-LTF schedule on the
      surviving sub-platform with ε′ < ε replicas per task, trying the
      largest ε′ first;
    + {!Best_effort_remap} — an unreplicated (ε′ = 0) best-effort LTF
      remap: the stream keeps flowing with no tolerance left.

    When every rung fails (or the retry budget [max_attempts] is spent)
    the verdict is a terminal {!Outage}.

    The chain records [ops.recovery.attempts], one
    [ops.recovery.restored.*] counter per service level and
    [ops.recovery.outages] (all pre-registered on entry, so metric dumps
    expose them deterministically). *)

type level =
  | Full_strength
  | Relaxed_throughput
  | Reduced_eps of int  (** the reduced degree ε′, [1 ≤ ε′ < ε] *)
  | Best_effort_remap

val level_to_string : level -> string

val touch : unit -> unit
(** Pre-register the decision counters at 0 (a no-op when metrics are
    off), so a timeline that never crashes still exports the keys. *)

type outcome = {
  mapping : Mapping.t;
      (** the mapping to run the next epoch with.  For the two restore
          levels it lives on the original platform; for the two
          re-schedule levels it lives on the surviving sub-platform. *)
  level : level;
  procs : Platform.proc array;
      (** original processor behind each processor index of
          [mapping]'s platform (identity for the restore levels) —
          compose with the previous epoch's table when degrading
          repeatedly *)
  tolerance : int;
      (** further failures the restored mapping survives (ε, ε′ or 0) *)
  attempts : int;  (** rungs tried, including the successful one *)
}

type verdict = Restored of outcome | Outage of { attempts : int }

val react :
  ?max_attempts:int ->
  throughput:float ->
  failed:Platform.proc list ->
  Mapping.t ->
  verdict
(** [react ~throughput ~failed m] walks the chain for a mapping whose
    [failed] processors (ids of [m]'s platform) have crashed.
    [max_attempts] (default [ε + 3], enough for the whole chain) bounds
    the rungs tried, so a pathological instance degrades to {!Outage}
    rather than retrying forever.
    @raise Invalid_argument if a failed processor is out of range or
    [max_attempts < 1]. *)
