(** The fault-free reference schedule of §5.

    The experimental overheads are measured against "the schedule generated
    by R-LTF without replication, assuming that the system is completely
    safe, setting ε = 0". *)

val run :
  ?opts:Sched_api.options ->
  dag:Dag.t -> platform:Platform.t -> throughput:float -> unit -> Types.outcome
(** R-LTF with [ε = 0] on the same graph, platform and throughput. *)

val latency :
  ?opts:Sched_api.options ->
  dag:Dag.t -> platform:Platform.t -> throughput:float -> unit -> float option
(** Simulated single-item latency [L_FF] of the fault-free schedule;
    [None] when even the unreplicated graph cannot meet the throughput. *)
