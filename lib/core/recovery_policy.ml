type level =
  | Full_strength
  | Relaxed_throughput
  | Reduced_eps of int
  | Best_effort_remap

let level_to_string = function
  | Full_strength -> "full-strength"
  | Relaxed_throughput -> "relaxed-throughput"
  | Reduced_eps e -> Printf.sprintf "reduced-eps(%d)" e
  | Best_effort_remap -> "best-effort-remap"

type outcome = {
  mapping : Mapping.t;
  level : level;
  procs : Platform.proc array;
  tolerance : int;
  attempts : int;
}

type verdict = Restored of outcome | Outage of { attempts : int }

let touch () =
  List.iter Obs.touch
    [
      "ops.recovery.attempts";
      "ops.recovery.outages";
      "ops.recovery.restored.full";
      "ops.recovery.restored.relaxed";
      "ops.recovery.restored.reduced_eps";
      "ops.recovery.restored.best_effort";
    ]

let count_restore = function
  | Full_strength -> Obs.incr "ops.recovery.restored.full"
  | Relaxed_throughput -> Obs.incr "ops.recovery.restored.relaxed"
  | Reduced_eps _ -> Obs.incr "ops.recovery.restored.reduced_eps"
  | Best_effort_remap -> Obs.incr "ops.recovery.restored.best_effort"

let react ?max_attempts ~throughput ~failed m =
  touch ();
  let plat = Mapping.platform m in
  let eps = Mapping.eps m in
  let n_procs = Platform.size plat in
  List.iter
    (fun p ->
      if p < 0 || p >= n_procs then
        invalid_arg "Recovery_policy.react: failed processor out of range")
    failed;
  let failed = List.sort_uniq compare failed in
  (* The chain has 2 restore rungs, eps − 1 reduced-degree rungs and the
     final unreplicated remap; eps + 3 covers it for every eps ≥ 0. *)
  let max_attempts = Option.value max_attempts ~default:(eps + 3) in
  if max_attempts < 1 then
    invalid_arg "Recovery_policy.react: max_attempts < 1";
  let survivors =
    List.filter (fun p -> not (List.mem p failed)) (Platform.procs plat)
  in
  let identity_procs = Array.init n_procs Fun.id in
  let attempts = ref 0 in
  (* Each rung is a thunk returning the restored outcome when it applies;
     the chain walks them in order of decreasing service level until one
     succeeds or the retry budget runs out. *)
  let rung level thunk =
    if !attempts >= max_attempts then None
    else begin
      incr attempts;
      Obs.incr "ops.recovery.attempts";
      match thunk () with
      | None -> None
      | Some (mapping, procs, tolerance) ->
          Some { mapping; level; procs; tolerance; attempts = !attempts }
    end
  in
  let restore_with bound =
    match Recovery.restore ?throughput:bound m ~failed with
    | Ok mapping -> Some (mapping, identity_procs, eps)
    | Error _ -> None
  in
  (* Degraded re-schedule from scratch on the surviving sub-platform with
     a reduced replication degree: surviving work is abandoned (the
     pipeline restarts), which is exactly why this rung ranks below the
     in-place restorations. *)
  let reschedule eps' =
    let procs = Array.of_list survivors in
    let sub = Platform.restrict plat procs in
    if eps' >= Platform.size sub then None
    else begin
      let prob =
        Types.problem ~dag:(Mapping.dag m) ~platform:sub ~eps:eps' ~throughput
      in
      let opts = Sched_api.(default |> with_mode Best_effort) in
      let outcome =
        if eps' = 0 then Ltf.schedule ~opts prob else Rltf.schedule ~opts prob
      in
      match outcome with
      | Ok mapping -> Some (mapping, procs, eps')
      | Error _ -> None
    end
  in
  let chain =
    (fun () -> rung Full_strength (fun () -> restore_with (Some throughput)))
    :: (fun () -> rung Relaxed_throughput (fun () -> restore_with None))
    :: List.init (max 0 (eps - 1)) (fun i ->
           let eps' = eps - 1 - i in
           fun () -> rung (Reduced_eps eps') (fun () -> reschedule eps'))
    @ [ (fun () -> rung Best_effort_remap (fun () -> reschedule 0)) ]
  in
  let result =
    if survivors = [] then None
    else List.find_map (fun attempt -> attempt ()) chain
  in
  match result with
  | Some outcome ->
      count_restore outcome.level;
      Restored outcome
  | None ->
      Obs.incr "ops.recovery.outages";
      Outage { attempts = !attempts }
