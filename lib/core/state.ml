module Pset = Bitset

(* Per-replica attributes live in flat arrays indexed [task * (eps+1) +
   copy] so a million-task schedule is a handful of contiguous slabs
   rather than a forest of per-task records. *)
type t = {
  prob : Types.problem;
  mapping : Mapping.t;
  delta : float;
  copies : int;
  loads : Loads.t;
  proc_tl : Timeline.t array;
  send_tl : Timeline.t array;
  recv_tl : Timeline.t array;
  finish_arr : float array; (* [task * copies + copy]; nan = unplaced *)
  stage_arr : int array;    (* [task * copies + copy]; 0 = unplaced *)
  support_arr : Pset.t array; (* [task * copies + copy]; kill sets *)
  scratch_out : (int, float) Hashtbl.t;
      (* reusable per-source-proc accumulator for trial loads; reset (not
         recreated) so the fold order matches a fresh 8-slot table and the
         best-effort overload sums stay bit-identical *)
}

let create (prob : Types.problem) =
  let n_procs = Platform.size prob.platform in
  let copies = prob.eps + 1 in
  let slots = Dag.size prob.dag * copies in
  {
    prob;
    mapping = Mapping.create ~dag:prob.dag ~platform:prob.platform ~eps:prob.eps;
    delta = Types.period prob;
    copies;
    loads = Loads.create ~n_procs;
    proc_tl = Array.make n_procs Timeline.empty;
    send_tl = Array.make n_procs Timeline.empty;
    recv_tl = Array.make n_procs Timeline.empty;
    finish_arr = Array.make slots nan;
    stage_arr = Array.make slots 0;
    support_arr = Array.make slots Pset.empty;
    scratch_out = Hashtbl.create 8;
  }

let problem s = s.prob
let mapping s = s.mapping

let slot s (id : Replica.id) = (id.task * s.copies) + id.copy

let finish s (id : Replica.id) =
  let f = s.finish_arr.(slot s id) in
  if Float.is_nan f then
    invalid_arg
      (Printf.sprintf "State.finish: %s not placed" (Replica.id_to_string id));
  f

let stage s (id : Replica.id) =
  let st = s.stage_arr.(slot s id) in
  if st = 0 then
    invalid_arg
      (Printf.sprintf "State.stage: %s not placed" (Replica.id_to_string id));
  st

let loads s = s.loads
let sigma s u = s.loads.Loads.sigma.(u)
let c_in s u = s.loads.Loads.c_in.(u)
let c_out s u = s.loads.Loads.c_out.(u)

let support s (id : Replica.id) = s.support_arr.(slot s id)

(* The kill set of a replica given its placement and sources: the
   processors whose individual failure makes it unable to run.  A
   predecessor covered by a single source replica inherits that source's
   kill set; a predecessor covered by all eps+1 replicas contributes
   nothing when their kill sets are pairwise disjoint (no single failure
   can starve it) — for any other source-set shape we fall back to the
   intersection of the sources' kill sets, which is the exact single-proc
   starvation channel. *)
let support_of_sources s ~proc ~sources =
  List.fold_left
    (fun acc (pred, ids) ->
      match ids with
      | [] -> acc
      | [ (src : Replica.id) ] -> Pset.union acc (support s src)
      | first :: rest ->
          let full = List.length ids = Mapping.n_copies s.mapping in
          ignore pred;
          if full then acc
          else
            Pset.union acc
              (List.fold_left
                 (fun inter (src : Replica.id) -> Pset.inter inter (support s src))
                 (support s first) rest))
    (Pset.singleton proc) sources

let send_ready s u = Timeline.busy_until s.send_tl.(u)

type trial = {
  t_task : Dag.task;
  t_copy : int;
  t_proc : Platform.proc;
  t_sources : (Dag.task * Replica.id list) list;
  t_start : float;
  t_finish : float;
  t_stage : int;
  t_comms : (Replica.id * float * float * float) list;
}

(* Earliest start >= ready fitting simultaneously in two timelines: iterate
   the two earliest-fit maps until they agree (both are monotone, so this
   terminates at their least common fixpoint). *)
let joint_fit a b ~ready ~duration =
  let rec settle candidate =
    let ca = Timeline.earliest_fit a ~ready:candidate ~duration in
    let cb = Timeline.earliest_fit b ~ready:ca ~duration in
    if cb = candidate then candidate else settle cb
  in
  settle (Timeline.earliest_fit a ~ready ~duration)

let proc_of_replica s (id : Replica.id) =
  (Mapping.replica_exn s.mapping id.task id.copy).Replica.proc

let evaluate s ~task ~copy ~proc ~sources =
  Obs.incr "core.placement_probes";
  let plat = s.prob.platform and dag = s.prob.dag in
  (* Off-processor transfers, scheduled in order of data readiness so the
     estimate is deterministic. *)
  let remote =
    List.concat_map
      (fun (pred, ids) ->
        let vol = Dag.volume dag pred task in
        List.filter_map
          (fun (src : Replica.id) ->
            let sp = proc_of_replica s src in
            if sp = proc then None
            else Some (src, sp, Platform.comm_time plat sp proc vol))
          ids)
      sources
    |> List.sort (fun (a, _, _) (b, _, _) ->
           match compare (finish s a) (finish s b) with
           | 0 -> Replica.compare_id a b
           | c -> c)
  in
  (* Place transfers sequentially on a private copy of the receive port and
     the (shared, persistent) send ports of their sources.  The handful of
     distinct source processors rides in an assoc list: probes run a
     billion times at scale and must not allocate hash tables. *)
  let recv = ref s.recv_tl.(proc) in
  let sends = ref [] in
  let send_of p =
    match List.assq_opt p !sends with Some tl -> tl | None -> s.send_tl.(p)
  in
  let comms =
    List.map
      (fun (src, sp, dur) ->
        let ready = finish s src in
        let start = joint_fit (send_of sp) !recv ~ready ~duration:dur in
        recv := Timeline.insert !recv ~start ~duration:dur;
        sends :=
          (sp, Timeline.insert (send_of sp) ~start ~duration:dur)
          :: List.remove_assq sp !sends;
        (src, start, dur, start +. dur))
      remote
  in
  (* Data from co-located sources is available at their finish time. *)
  let local_ready =
    List.fold_left
      (fun acc (_, ids) ->
        List.fold_left
          (fun acc (src : Replica.id) ->
            if proc_of_replica s src = proc then Float.max acc (finish s src)
            else acc)
          acc ids)
      0.0 sources
  in
  let data_ready =
    List.fold_left (fun acc (_, _, _, arrival) -> Float.max acc arrival)
      local_ready comms
  in
  let exec = Platform.exec_time plat proc (Dag.exec dag task) in
  let start = Timeline.earliest_fit s.proc_tl.(proc) ~ready:data_ready ~duration:exec in
  (* Pipeline stage: max over sources of their stage, +1 for remote ones. *)
  let t_stage =
    List.fold_left
      (fun acc (_, ids) ->
        List.fold_left
          (fun acc (src : Replica.id) ->
            let eta = if proc_of_replica s src = proc then 0 else 1 in
            max acc (s.stage_arr.(slot s src) + eta))
          acc ids)
      1 sources
  in
  {
    t_task = task;
    t_copy = copy;
    t_proc = proc;
    t_sources = sources;
    t_start = start;
    t_finish = start +. exec;
    t_stage;
    t_comms = comms;
  }

(* Fills [s.scratch_out] with the per-source-processor outgoing durations;
   callers must consume it before the next trial_loads call. *)
let trial_loads s trial =
  let plat = s.prob.platform and dag = s.prob.dag in
  let exec = Platform.exec_time plat trial.t_proc (Dag.exec dag trial.t_task) in
  let incoming =
    List.fold_left (fun acc (_, _, dur, _) -> acc +. dur) 0.0 trial.t_comms
  in
  let outgoing = s.scratch_out in
  Hashtbl.reset outgoing;
  List.iter
    (fun ((src : Replica.id), _, dur, _) ->
      let sp = proc_of_replica s src in
      let prev = try Hashtbl.find outgoing sp with Not_found -> 0.0 in
      Hashtbl.replace outgoing sp (prev +. dur))
    trial.t_comms;
  (exec, incoming, outgoing)

let feasible s trial =
  let slack = s.delta *. (1.0 +. 1e-9) in
  let exec, incoming, outgoing = trial_loads s trial in
  s.loads.Loads.sigma.(trial.t_proc) +. exec <= slack
  && s.loads.Loads.c_in.(trial.t_proc) +. incoming <= slack
  && Hashtbl.fold
       (fun sp extra ok -> ok && s.loads.Loads.c_out.(sp) +. extra <= slack)
       outgoing true

let overload s trial =
  let exec, incoming, outgoing = trial_loads s trial in
  let over current extra = Float.max 0.0 (current +. extra -. s.delta) in
  over s.loads.Loads.sigma.(trial.t_proc) exec
  +. over s.loads.Loads.c_in.(trial.t_proc) incoming
  +. Hashtbl.fold
       (fun sp extra acc -> acc +. over s.loads.Loads.c_out.(sp) extra)
       outgoing 0.0

let commit s trial =
  Obs.incr "core.commits";
  let plat = s.prob.platform and dag = s.prob.dag in
  Mapping.assign s.mapping
    {
      Replica.id = { Replica.task = trial.t_task; copy = trial.t_copy };
      proc = trial.t_proc;
      sources = trial.t_sources;
    };
  let exec = Platform.exec_time plat trial.t_proc (Dag.exec dag trial.t_task) in
  (* Charge through the Loads primitives in exactly the historical float
     order (Σ, then per transfer Cᴵ before Cᴼ): schedules are pinned
     bit-identical and float addition is order-sensitive. *)
  Loads.add_exec s.loads trial.t_proc exec;
  List.iter
    (fun ((src : Replica.id), start, dur, _) ->
      let sp = proc_of_replica s src in
      Loads.add_comm s.loads ~src:sp ~dst:trial.t_proc dur;
      (* Store the committed timelines compacted: probes branch private
         versions off these on every placement trial, and a committed
         overlay sitting at the pack bound would make each such probe
         re-pack the whole buffer only to discard it. *)
      s.recv_tl.(trial.t_proc) <-
        Timeline.compact
          (Timeline.insert s.recv_tl.(trial.t_proc) ~start ~duration:dur);
      s.send_tl.(sp) <-
        Timeline.compact (Timeline.insert s.send_tl.(sp) ~start ~duration:dur))
    trial.t_comms;
  s.proc_tl.(trial.t_proc) <-
    Timeline.compact
      (Timeline.insert s.proc_tl.(trial.t_proc) ~start:trial.t_start
         ~duration:(trial.t_finish -. trial.t_start));
  let k = (trial.t_task * s.copies) + trial.t_copy in
  s.finish_arr.(k) <- trial.t_finish;
  s.stage_arr.(k) <- trial.t_stage;
  s.support_arr.(k) <-
    support_of_sources s ~proc:trial.t_proc ~sources:trial.t_sources
