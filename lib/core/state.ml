module Pset = Bitset

type t = {
  prob : Types.problem;
  mapping : Mapping.t;
  delta : float;
  loads : Loads.t;
  proc_tl : Timeline.t array;
  send_tl : Timeline.t array;
  recv_tl : Timeline.t array;
  finish_arr : float array array; (* [task].(copy); nan = unplaced *)
  stage_arr : int array array;    (* [task].(copy); 0 = unplaced *)
  support_arr : Pset.t array array; (* [task].(copy); kill sets *)
}

let create (prob : Types.problem) =
  let n_procs = Platform.size prob.platform in
  let copies = prob.eps + 1 in
  {
    prob;
    mapping = Mapping.create ~dag:prob.dag ~platform:prob.platform ~eps:prob.eps;
    delta = Types.period prob;
    loads = Loads.create ~n_procs;
    proc_tl = Array.make n_procs Timeline.empty;
    send_tl = Array.make n_procs Timeline.empty;
    recv_tl = Array.make n_procs Timeline.empty;
    finish_arr = Array.init (Dag.size prob.dag) (fun _ -> Array.make copies nan);
    stage_arr = Array.init (Dag.size prob.dag) (fun _ -> Array.make copies 0);
    support_arr =
      Array.init (Dag.size prob.dag) (fun _ -> Array.make copies Pset.empty);
  }

let problem s = s.prob
let mapping s = s.mapping

let finish s (id : Replica.id) =
  let f = s.finish_arr.(id.task).(id.copy) in
  if Float.is_nan f then
    invalid_arg
      (Printf.sprintf "State.finish: %s not placed" (Replica.id_to_string id));
  f

let stage s (id : Replica.id) =
  let st = s.stage_arr.(id.task).(id.copy) in
  if st = 0 then
    invalid_arg
      (Printf.sprintf "State.stage: %s not placed" (Replica.id_to_string id));
  st

let loads s = s.loads
let sigma s u = s.loads.Loads.sigma.(u)
let c_in s u = s.loads.Loads.c_in.(u)
let c_out s u = s.loads.Loads.c_out.(u)

let support s (id : Replica.id) = s.support_arr.(id.task).(id.copy)

(* The kill set of a replica given its placement and sources: the
   processors whose individual failure makes it unable to run.  A
   predecessor covered by a single source replica inherits that source's
   kill set; a predecessor covered by all eps+1 replicas contributes
   nothing when their kill sets are pairwise disjoint (no single failure
   can starve it) — for any other source-set shape we fall back to the
   intersection of the sources' kill sets, which is the exact single-proc
   starvation channel. *)
let support_of_sources s ~proc ~sources =
  List.fold_left
    (fun acc (pred, ids) ->
      match ids with
      | [] -> acc
      | [ (src : Replica.id) ] -> Pset.union acc (support s src)
      | first :: rest ->
          let full = List.length ids = Mapping.n_copies s.mapping in
          ignore pred;
          if full then acc
          else
            Pset.union acc
              (List.fold_left
                 (fun inter (src : Replica.id) -> Pset.inter inter (support s src))
                 (support s first) rest))
    (Pset.singleton proc) sources

let send_ready s u = Timeline.busy_until s.send_tl.(u)

type trial = {
  t_task : Dag.task;
  t_copy : int;
  t_proc : Platform.proc;
  t_sources : (Dag.task * Replica.id list) list;
  t_start : float;
  t_finish : float;
  t_stage : int;
  t_comms : (Replica.id * float * float * float) list;
}

(* Earliest start >= ready fitting simultaneously in two timelines: iterate
   the two earliest-fit maps until they agree (both are monotone, so this
   terminates at their least common fixpoint). *)
let joint_fit a b ~ready ~duration =
  let rec settle candidate =
    let ca = Timeline.earliest_fit a ~ready:candidate ~duration in
    let cb = Timeline.earliest_fit b ~ready:ca ~duration in
    if cb = candidate then candidate else settle cb
  in
  settle (Timeline.earliest_fit a ~ready ~duration)

let proc_of_replica s (id : Replica.id) =
  (Mapping.replica_exn s.mapping id.task id.copy).Replica.proc

let evaluate s ~task ~copy ~proc ~sources =
  Obs.incr "core.placement_probes";
  let plat = s.prob.platform and dag = s.prob.dag in
  (* Off-processor transfers, scheduled in order of data readiness so the
     estimate is deterministic. *)
  let remote =
    List.concat_map
      (fun (pred, ids) ->
        let vol = Dag.volume dag pred task in
        List.filter_map
          (fun (src : Replica.id) ->
            let sp = proc_of_replica s src in
            if sp = proc then None
            else Some (src, sp, Platform.comm_time plat sp proc vol))
          ids)
      sources
    |> List.sort (fun (a, _, _) (b, _, _) ->
           match compare (finish s a) (finish s b) with
           | 0 -> Replica.compare_id a b
           | c -> c)
  in
  (* Place transfers sequentially on a private copy of the receive port and
     the (shared, persistent) send ports of their sources. *)
  let recv = ref s.recv_tl.(proc) in
  let sends = Hashtbl.create 8 in
  let send_of p =
    match Hashtbl.find_opt sends p with Some tl -> tl | None -> s.send_tl.(p)
  in
  let comms =
    List.map
      (fun (src, sp, dur) ->
        let ready = finish s src in
        let start = joint_fit (send_of sp) !recv ~ready ~duration:dur in
        recv := Timeline.insert !recv ~start ~duration:dur;
        Hashtbl.replace sends sp (Timeline.insert (send_of sp) ~start ~duration:dur);
        (src, start, dur, start +. dur))
      remote
  in
  (* Data from co-located sources is available at their finish time. *)
  let local_ready =
    List.fold_left
      (fun acc (_, ids) ->
        List.fold_left
          (fun acc (src : Replica.id) ->
            if proc_of_replica s src = proc then Float.max acc (finish s src)
            else acc)
          acc ids)
      0.0 sources
  in
  let data_ready =
    List.fold_left (fun acc (_, _, _, arrival) -> Float.max acc arrival)
      local_ready comms
  in
  let exec = Platform.exec_time plat proc (Dag.exec dag task) in
  let start = Timeline.earliest_fit s.proc_tl.(proc) ~ready:data_ready ~duration:exec in
  (* Pipeline stage: max over sources of their stage, +1 for remote ones. *)
  let t_stage =
    List.fold_left
      (fun acc (_, ids) ->
        List.fold_left
          (fun acc (src : Replica.id) ->
            let eta = if proc_of_replica s src = proc then 0 else 1 in
            max acc (s.stage_arr.(src.task).(src.copy) + eta))
          acc ids)
      1 sources
  in
  {
    t_task = task;
    t_copy = copy;
    t_proc = proc;
    t_sources = sources;
    t_start = start;
    t_finish = start +. exec;
    t_stage;
    t_comms = comms;
  }

let trial_loads s trial =
  let plat = s.prob.platform and dag = s.prob.dag in
  let exec = Platform.exec_time plat trial.t_proc (Dag.exec dag trial.t_task) in
  let incoming =
    List.fold_left (fun acc (_, _, dur, _) -> acc +. dur) 0.0 trial.t_comms
  in
  let outgoing = Hashtbl.create 8 in
  List.iter
    (fun ((src : Replica.id), _, dur, _) ->
      let sp = proc_of_replica s src in
      let prev = try Hashtbl.find outgoing sp with Not_found -> 0.0 in
      Hashtbl.replace outgoing sp (prev +. dur))
    trial.t_comms;
  (exec, incoming, outgoing)

let feasible s trial =
  let slack = s.delta *. (1.0 +. 1e-9) in
  let exec, incoming, outgoing = trial_loads s trial in
  s.loads.Loads.sigma.(trial.t_proc) +. exec <= slack
  && s.loads.Loads.c_in.(trial.t_proc) +. incoming <= slack
  && Hashtbl.fold
       (fun sp extra ok -> ok && s.loads.Loads.c_out.(sp) +. extra <= slack)
       outgoing true

let overload s trial =
  let exec, incoming, outgoing = trial_loads s trial in
  let over current extra = Float.max 0.0 (current +. extra -. s.delta) in
  over s.loads.Loads.sigma.(trial.t_proc) exec
  +. over s.loads.Loads.c_in.(trial.t_proc) incoming
  +. Hashtbl.fold
       (fun sp extra acc -> acc +. over s.loads.Loads.c_out.(sp) extra)
       outgoing 0.0

let commit s trial =
  Obs.incr "core.commits";
  let plat = s.prob.platform and dag = s.prob.dag in
  Mapping.assign s.mapping
    {
      Replica.id = { Replica.task = trial.t_task; copy = trial.t_copy };
      proc = trial.t_proc;
      sources = trial.t_sources;
    };
  let exec = Platform.exec_time plat trial.t_proc (Dag.exec dag trial.t_task) in
  (* Charge through the Loads primitives in exactly the historical float
     order (Σ, then per transfer Cᴵ before Cᴼ): schedules are pinned
     bit-identical and float addition is order-sensitive. *)
  Loads.add_exec s.loads trial.t_proc exec;
  List.iter
    (fun ((src : Replica.id), start, dur, _) ->
      let sp = proc_of_replica s src in
      Loads.add_comm s.loads ~src:sp ~dst:trial.t_proc dur;
      s.recv_tl.(trial.t_proc) <-
        Timeline.insert s.recv_tl.(trial.t_proc) ~start ~duration:dur;
      s.send_tl.(sp) <- Timeline.insert s.send_tl.(sp) ~start ~duration:dur)
    trial.t_comms;
  s.proc_tl.(trial.t_proc) <-
    Timeline.insert s.proc_tl.(trial.t_proc) ~start:trial.t_start
      ~duration:(trial.t_finish -. trial.t_start);
  s.finish_arr.(trial.t_task).(trial.t_copy) <- trial.t_finish;
  s.stage_arr.(trial.t_task).(trial.t_copy) <- trial.t_stage;
  s.support_arr.(trial.t_task).(trial.t_copy) <-
    support_of_sources s ~proc:trial.t_proc ~sources:trial.t_sources
