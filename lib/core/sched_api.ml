(** The one canonical scheduling-options surface.

    Every algorithm in the repo — the core LTF/R-LTF pair, the chunked
    engine underneath them and the §3 baseline heuristics — is configured
    by the single {!options} record and exposed as a single {!Algo} module
    type defined here.  [Scheduler] re-exports this module, so user code
    writes [Scheduler.(default |> with_mode Best_effort)]; the engine
    ([Chunk_scheduler]) and the registries consume the same definitions
    rather than re-declaring their own.

    This module deliberately has no interface file: the record and the
    module type exist exactly once in the codebase. *)

type mode =
  | Strict
      (** condition (1) is a hard constraint: the algorithm fails when no
          eligible processor satisfies it, as in the pseudocode of
          Algorithm 4.1 *)
  | Best_effort
      (** condition (1) is a preference: when no eligible processor
          satisfies it, the least-overloaded placement is used instead
          (the paper's "we use other processors, at the risk of increasing
          the communication overhead"; the paper's own worked example
          carries Σ = 22 > Δ = 20, so its experiments evidently allowed
          this).  The replica-placement and fault-tolerance rules remain
          hard. *)

(** Ablation knobs for the design choices DESIGN.md calls out; the
    defaults reproduce the paper's algorithms. *)
type source_policy =
  | Both_variants  (** trial greedy and conservative source sets *)
  | Greedy_only  (** sole-source whenever the kill sets allow *)
  | Conservative_only  (** local sole sources or full groups only *)

(** All scheduling knobs in one record.  Build variations from {!default}
    with the [with_*] builders:
    [Scheduler.(default |> with_mode Best_effort)]. *)
type options = {
  mode : mode;
  lane_budget_factor : float;
      (** scales the kill-chain budget m/(ε+1); 1.0 is the default *)
  use_one_to_one : bool;
      (** disable to force every placement through the general branch *)
  source_policy : source_policy;
}

let default =
  {
    mode = Strict;
    lane_budget_factor = 1.0;
    use_one_to_one = true;
    source_policy = Both_variants;
  }

let with_mode mode opts = { opts with mode }
let with_lane_budget_factor lane_budget_factor opts = { opts with lane_budget_factor }
let with_use_one_to_one use_one_to_one opts = { opts with use_one_to_one }
let with_source_policy source_policy opts = { opts with source_policy }

(** A schedulable algorithm as a first-class module, the registry entry
    point used by [Scheduler.all], [Baseline_registry.all] and the figure
    sweeps. *)
module type Algo = sig
  val name : string

  val run : ?opts:options -> Types.problem -> Types.outcome
end
