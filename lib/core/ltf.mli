(** The LTF (Latency, Throughput, Failures) algorithm — §4.1, Algorithm 4.1.

    LTF extends Iso-Level CAFT with the throughput constraint: tasks are
    scheduled top-down in chunks of ready tasks of highest [tℓ + bℓ]
    priority, each replica placed on the condition-(1)-feasible processor
    of minimum estimated finish time, using the one-to-one mapping
    procedure while singleton predecessor replicas remain.  LTF fails when
    some replica cannot be placed without violating the desired
    throughput. *)

val schedule : ?opts:Chunk_scheduler.options -> Types.problem -> Types.outcome
(** Run LTF under the given options ({!Chunk_scheduler.default} when
    omitted). *)

val schedule_state :
  ?opts:Chunk_scheduler.options ->
  Types.problem ->
  (State.t, Types.failure) result
(** Like {!schedule} but exposing the full scheduling state (committed
    finish times and stages), for inspection and tests. *)

val algo : (module Chunk_scheduler.Algo)
(** LTF as a registry entry (named ["LTF"]); see [Scheduler.all]. *)

val run :
  ?mode:Chunk_scheduler.mode ->
  ?opts:Chunk_scheduler.options ->
  Types.problem ->
  Types.outcome
[@@deprecated "use Ltf.schedule with Scheduler.options (mode is a field now)"]

val run_state :
  ?mode:Chunk_scheduler.mode ->
  ?opts:Chunk_scheduler.options ->
  Types.problem ->
  (State.t, Types.failure) result
[@@deprecated
  "use Ltf.schedule_state with Scheduler.options (mode is a field now)"]
