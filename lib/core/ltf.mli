(** The LTF (Latency, Throughput, Failures) algorithm — §4.1, Algorithm 4.1.

    LTF extends Iso-Level CAFT with the throughput constraint: tasks are
    scheduled top-down in chunks of ready tasks of highest [tℓ + bℓ]
    priority, each replica placed on the condition-(1)-feasible processor
    of minimum estimated finish time, using the one-to-one mapping
    procedure while singleton predecessor replicas remain.  LTF fails when
    some replica cannot be placed without violating the desired
    throughput. *)

val schedule : ?opts:Sched_api.options -> Types.problem -> Types.outcome
(** Run LTF under the given options ({!Sched_api.default} when omitted). *)

val schedule_state :
  ?opts:Sched_api.options ->
  Types.problem ->
  (State.t, Types.failure) result
(** Like {!schedule} but exposing the full scheduling state (committed
    finish times and stages), for inspection and tests. *)

val algo : (module Sched_api.Algo)
(** LTF as a registry entry (named ["LTF"]); see [Scheduler.all]. *)
