include Chunk_scheduler

let default_options = default

let run ?mode ?opts ~rank prob = schedule ~opts:(resolve ?mode ?opts ()) ~rank prob

let all : (module Algo) list = [ Ltf.algo; Rltf.algo ]

let find name =
  let norm s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun (module A : Algo) -> norm A.name = norm name) all
