include Sched_api
include Chunk_scheduler

let all : (module Sched_api.Algo) list = [ Ltf.algo; Rltf.algo ]

let find name =
  let norm s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun (module A : Sched_api.Algo) -> norm A.name = norm name) all
