let reverse_problem (prob : Types.problem) =
  Types.problem ~dag:(Dag.reverse prob.dag) ~platform:prob.platform
    ~eps:prob.eps ~throughput:prob.throughput

let schedule_state ?opts prob =
  Obs.with_span "core.rltf.run" (fun () ->
      Chunk_scheduler.schedule ?opts ~rank:Chunk_scheduler.by_stage_then_finish
        (reverse_problem prob))

(* The bottom-up run fixes where every replica lives; the forward
   communication structure is then re-derived under the forward support
   discipline (see {!Source_derivation}), which keeps the kill sets of each
   task's replicas pairwise disjoint — the reverse-direction pairing would
   not by itself bound the forward kill chains. *)
let forward_mapping (prob : Types.problem) rmapping =
  Obs.with_span "core.rltf.derive" (fun () ->
      (* The reverse-run source set of a replica r_p (of task p) lists, for
         its reverse predecessor t (= forward successor), the t-replicas it
         pairs with; transposed, r_p is a preferred forward source for
         exactly those t-replicas. *)
      let hint task copy pred =
        Mapping.replicas_of_task rmapping pred
        |> List.filter_map (fun (rp : Replica.t) ->
               let paired =
                 List.exists
                   (fun (src : Replica.id) -> src.task = task && src.copy = copy)
                   (Replica.sources_for rp task)
               in
               if paired then Some rp.Replica.id else None)
      in
      Source_derivation.derive ~throughput:prob.throughput ~hint ~dag:prob.dag
        ~platform:prob.platform ~eps:prob.eps
        ~proc_of:(fun task copy ->
          (Mapping.replica_exn rmapping task copy).Replica.proc)
        ())

let schedule ?(opts = Sched_api.default) prob =
  match schedule_state ~opts prob with
  | Error e -> Error e
  | Ok state -> (
      let mapping = forward_mapping prob (State.mapping state) in
      (* The reverse run enforced condition (1) on its own pairing; the
         forward derivation may need extra transfers for fault tolerance.
         In strict mode an overloaded result is an honest failure.  The
         loads are computed once and shared between the throughput check
         and the worst-processor scan. *)
      match opts.Sched_api.mode with
      | Sched_api.Best_effort -> Ok mapping
      | Sched_api.Strict ->
          let loads = Loads.of_mapping mapping in
          if
            Metrics.meets_throughput ~loads mapping
              ~throughput:prob.Types.throughput
          then Ok mapping
          else begin
            let worst = ref 0 in
            Array.iteri
              (fun u _ ->
                if Loads.cycle_time loads u > Loads.cycle_time loads !worst then
                  worst := u)
              loads.Loads.sigma;
            Error
              (Types.Derived_overload (!worst, Loads.cycle_time loads !worst))
          end)

module Algo = struct
  let name = "R-LTF"

  let run ?opts prob = schedule ?opts prob
end

let algo : (module Sched_api.Algo) = (module Algo)
