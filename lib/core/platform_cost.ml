type result = {
  kept : Platform.proc list;
  cost : float;
  full_cost : float;
  mapping : Mapping.t;
  evaluations : int;
}

let minimize ?cost_of ?(latency_bound = infinity) ~dag ~platform ~eps
    ~throughput () =
  let cost_of =
    match cost_of with Some f -> f | None -> Platform.speed platform
  in
  let evaluations = ref 0 in
  let schedulable kept =
    if List.length kept <= eps then None
    else begin
      incr evaluations;
      let sub = Platform.restrict platform (Array.of_list kept) in
      match Rltf.schedule (Types.problem ~dag ~platform:sub ~eps ~throughput) with
      | Error _ -> None
      | Ok mapping ->
          if Metrics.latency_bound mapping ~throughput <= latency_bound then
            Some mapping
          else None
    end
  in
  let total cost_list = List.fold_left (fun acc p -> acc +. cost_of p) 0.0 cost_list in
  let full = Platform.procs platform in
  match schedulable full with
  | None -> None
  | Some mapping ->
      (* Greedy backward elimination, most expensive candidates first. *)
      let rec shrink kept mapping =
        let candidates =
          List.sort
            (fun a b -> compare (cost_of b) (cost_of a))
            kept
        in
        let rec try_evict = function
          | [] -> (kept, mapping)
          | victim :: rest -> (
              let reduced = List.filter (fun p -> p <> victim) kept in
              match schedulable reduced with
              | Some better -> shrink reduced better
              | None -> try_evict rest)
        in
        try_evict candidates
      in
      let kept, mapping = shrink full mapping in
      Some
        {
          kept;
          cost = total kept;
          full_cost = total full;
          mapping;
          evaluations = !evaluations;
        }
