type error =
  | Not_enough_processors
  | No_room of Dag.task * int

let pp_error ppf = function
  | Not_enough_processors ->
      Format.fprintf ppf
        "fewer surviving processors than the replication degree requires"
  | No_room (task, copy) ->
      Format.fprintf ppf "no surviving processor can host replica t%d(%d)" task
        copy

let error_to_string e = Format.asprintf "%a" pp_error e

(* Mirror of Metrics.meets_throughput's slack: re-placement must not turn
   a mapping that was exactly at the bound into a rejection. *)
let tolerance = 1e-9

let restore ?throughput m ~failed =
  let dag = Mapping.dag m and plat = Mapping.platform m in
  let eps = Mapping.eps m in
  let n_procs = Platform.size plat in
  let is_failed = Array.make n_procs false in
  List.iter (fun p -> is_failed.(p) <- true) failed;
  let survivors =
    List.filter (fun p -> not is_failed.(p)) (Platform.procs plat)
  in
  if List.length survivors < eps + 1 then Error Not_enough_processors
  else begin
    (* New processor of every replica: survivors stay, casualties move to
       the least-loaded eligible survivor.  Loads are tracked in execution
       time so fast processors absorb more. *)
    let load = Array.make n_procs 0.0 in
    let proc_table = Array.make_matrix (Dag.size dag) (eps + 1) (-1) in
    Mapping.iter m (fun (r : Replica.t) ->
        if not is_failed.(r.Replica.proc) then begin
          proc_table.(r.Replica.id.Replica.task).(r.Replica.id.Replica.copy) <-
            r.Replica.proc;
          load.(r.Replica.proc) <-
            load.(r.Replica.proc)
            +. Platform.exec_time plat r.Replica.proc
                 (Dag.exec dag r.Replica.id.Replica.task)
        end);
    let place_failure = ref None in
    Mapping.iter m (fun (r : Replica.t) ->
        if is_failed.(r.Replica.proc) && !place_failure = None then begin
          let task = r.Replica.id.Replica.task in
          let siblings =
            Array.to_list proc_table.(task) |> List.filter (fun p -> p >= 0)
          in
          (* A survivor is eligible when it hosts no sibling and — under a
             throughput bound — when absorbing the replica's execution
             load keeps its cycle time within the period (the execution
             part of condition (1); the derived communications are checked
             by the caller).  Without the bound any sibling-free survivor
             qualifies, which is the degraded-mode relaxation the recovery
             policy falls back to. *)
          let fits p =
            match throughput with
            | None -> true
            | Some t ->
                (load.(p) +. Platform.exec_time plat p (Dag.exec dag task))
                *. t
                <= 1.0 +. tolerance
          in
          let eligible =
            List.filter
              (fun p -> (not (List.mem p siblings)) && fits p)
              survivors
          in
          let best =
            List.fold_left
              (fun acc p ->
                match acc with
                | Some b when load.(b) <= load.(p) -> acc
                | _ -> Some p)
              None eligible
          in
          match best with
          | None -> place_failure := Some (task, r.Replica.id.Replica.copy)
          | Some p ->
              proc_table.(task).(r.Replica.id.Replica.copy) <- p;
              load.(p) <-
                load.(p) +. Platform.exec_time plat p (Dag.exec dag task)
        end);
    match !place_failure with
    | Some (task, copy) -> Error (No_room (task, copy))
    | None ->
        (* Re-derive the whole communication structure; the original source
           sets are offered as hints so surviving pairings are kept where
           they remain safe. *)
        let hint task copy pred =
          match Mapping.replica m task copy with
          | Some r -> (
              match List.assoc_opt pred r.Replica.sources with
              | Some ids ->
                  List.filter
                    (fun (s : Replica.id) ->
                      proc_table.(s.task).(s.copy) >= 0
                      && not
                           (is_failed.((Mapping.replica_exn m s.task s.copy)
                                         .Replica.proc)))
                    ids
              | None -> [])
          | None -> []
        in
        Ok
          (Source_derivation.derive ?throughput ~hint ~dag ~platform:plat ~eps
             ~proc_of:(fun task copy -> proc_table.(task).(copy))
             ())
  end
