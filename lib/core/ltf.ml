let schedule_state ?opts prob =
  Obs.with_span "core.ltf.run" (fun () ->
      Chunk_scheduler.schedule ?opts ~rank:Chunk_scheduler.by_finish_time prob)

let schedule ?opts prob = Result.map State.mapping (schedule_state ?opts prob)

module Algo = struct
  let name = "LTF"

  let run ?opts prob = schedule ?opts prob
end

let algo : (module Sched_api.Algo) = (module Algo)
