let schedule_state ?opts prob =
  Obs.with_span "core.ltf.run" (fun () ->
      Chunk_scheduler.schedule ?opts ~rank:Chunk_scheduler.by_finish_time prob)

let schedule ?opts prob = Result.map State.mapping (schedule_state ?opts prob)

let run_state ?mode ?opts prob =
  schedule_state ~opts:(Chunk_scheduler.resolve ?mode ?opts ()) prob

let run ?mode ?opts prob =
  schedule ~opts:(Chunk_scheduler.resolve ?mode ?opts ()) prob

module Algo = struct
  let name = "LTF"

  let run ?mode ?opts prob =
    schedule ~opts:(Chunk_scheduler.resolve ?mode ?opts ()) prob
end

let algo : (module Chunk_scheduler.Algo) = (module Algo)
