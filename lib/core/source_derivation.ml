module Pset = Bitset

let derive ?throughput ?hint ~dag ~platform ~eps ~proc_of () =
  let hint =
    match hint with
    | Some f -> f
    | None -> fun _ _ _ -> ([] : Replica.id list)
  in
  let mapping = Mapping.create ~dag ~platform ~eps in
  let copies = eps + 1 in
  (* Same lane budget as the scheduler: a replica may sole-source through
     at most m/(ε+1) processors so that the ε+1 pairwise-disjoint kill sets
     all fit on the platform. *)
  let budget = max 1 (Platform.size platform / copies) in
  let delta = match throughput with Some t -> 1.0 /. t | None -> infinity in
  let slack = delta *. (1.0 +. 1e-9) in
  let n_procs = Platform.size platform in
  let c_in = Array.make n_procs 0.0 and c_out = Array.make n_procs 0.0 in
  let support = Array.init (Dag.size dag) (fun _ -> Array.make copies Pset.empty) in
  Array.iter
    (fun task ->
      (* Claim every sibling processor up front so that no replica's kill
         chain ever runs through the host of another replica of the task. *)
      let base_claim =
        List.fold_left
          (fun acc copy -> Pset.add (proc_of task copy) acc)
          Pset.empty
          (List.init copies Fun.id)
      in
      let claimed = ref base_claim in
      for copy = 0 to copies - 1 do
        let proc = proc_of task copy in
        (* A kill chain through the replica's own processor is harmless —
           the replica dies with that processor anyway — so it is exempt
           from the disjointness requirement. *)
        let others = Pset.remove proc !claimed in
        let acc = ref (Pset.singleton proc) in
        let commit_loads transfers =
          List.iter
            (fun (src_proc, time) ->
              if src_proc <> proc then begin
                c_out.(src_proc) <- c_out.(src_proc) +. time;
                c_in.(proc) <- c_in.(proc) +. time
              end)
            transfers
        in
        let fits transfers =
          let extra_in =
            List.fold_left
              (fun t (sp, time) -> if sp <> proc then t +. time else t)
              0.0 transfers
          in
          c_in.(proc) +. extra_in <= slack
          && List.for_all
               (fun (sp, time) -> sp = proc || c_out.(sp) +. time <= slack)
               transfers
        in
        let choose (pred, _) =
          let vol = Dag.volume dag pred task in
          let replicas = Mapping.replicas_of_task mapping pred in
          let usable (r : Replica.t) =
            let s = support.(pred).(r.id.Replica.copy) in
            copies = 1
            || (Pset.disjoint s others
                && Pset.cardinal (Pset.union !acc s) <= budget)
          in
          let transfer (r : Replica.t) =
            (r.proc, Platform.comm_time platform r.proc proc vol)
          in
          let pick (r : Replica.t) =
            acc := Pset.union !acc support.(pred).(r.id.Replica.copy);
            commit_loads [ transfer r ];
            (pred, [ r.Replica.id ])
          in
          let full () =
            let transfers =
              List.filter_map
                (fun (r : Replica.t) ->
                  if r.proc = proc then None else Some (transfer r))
                replicas
            in
            commit_loads transfers;
            (pred, List.map (fun (r : Replica.t) -> r.Replica.id) replicas)
          in
          match
            List.find_opt
              (fun (r : Replica.t) -> r.proc = proc && usable r)
              replicas
          with
          | Some r -> pick r
          | None ->
              (* Prefer the scheduler's own pairing when one was recorded:
                 that transfer was already accounted against the period
                 during the placement run. *)
              let hinted = hint task copy pred in
              let is_hinted (r : Replica.t) =
                List.exists (fun h -> Replica.compare_id h r.id = 0) hinted
              in
              let remote =
                List.filter usable replicas
                |> List.map (fun (r : Replica.t) ->
                       let growth =
                         Pset.cardinal
                           (Pset.diff support.(pred).(r.id.Replica.copy) !acc)
                       in
                       (((not (is_hinted r)), growth, snd (transfer r)), r))
                |> List.sort (fun (ka, ra) (kb, rb) ->
                       match compare ka kb with
                       | 0 -> Replica.compare_id ra.Replica.id rb.Replica.id
                       | c -> c)
              in
              let fitting =
                List.find_opt (fun (_, r) -> fits [ transfer r ]) remote
              in
              (match fitting with
              | Some (_, r) -> pick r
              | None ->
                  let full_transfers =
                    List.filter_map
                      (fun (r : Replica.t) ->
                        if r.proc = proc then None else Some (transfer r))
                      replicas
                  in
                  if fits full_transfers || remote = [] then full ()
                  else pick (snd (List.hd remote)))
        in
        let chosen = List.map choose (Dag.preds dag task) in
        support.(task).(copy) <- !acc;
        claimed := Pset.union !claimed !acc;
        Mapping.assign mapping
          { Replica.id = { Replica.task; copy }; proc; sources = chosen }
      done)
    (Topo.order dag);
  mapping
