type search_result = {
  best : (float * Mapping.t) option;
  evaluations : int;
}

let feasible ~dag ~platform ~eps ~latency_bound throughput =
  if throughput <= 0.0 then None
  else
    match Rltf.schedule (Types.problem ~dag ~platform ~eps ~throughput) with
    | Error _ -> None
    | Ok mapping ->
        if Metrics.latency_bound mapping ~throughput <= latency_bound then
          Some mapping
        else None

let max_throughput ?(iterations = 32) ~dag ~platform ~eps ~latency_bound () =
  let total_speed =
    List.fold_left (fun acc u -> acc +. Platform.speed platform u) 0.0
      (Platform.procs platform)
  in
  let work = Dag.total_exec dag *. float_of_int (eps + 1) in
  let t_max = if work = 0.0 then 1.0 else total_speed /. work in
  let evaluations = ref 0 in
  let try_t t =
    incr evaluations;
    feasible ~dag ~platform ~eps ~latency_bound t
  in
  (* Invariant: lo is feasible (with its mapping) or nothing is yet. *)
  let rec search lo best hi k =
    if k = 0 then best
    else begin
      let mid = (lo +. hi) /. 2.0 in
      match try_t mid with
      | Some mapping -> search mid (Some (mid, mapping)) hi (k - 1)
      | None -> search lo best mid (k - 1)
    end
  in
  let best =
    match try_t t_max with
    | Some mapping -> Some (t_max, mapping) (* the upper bound is attainable *)
    | None -> search 0.0 None t_max iterations
  in
  { best; evaluations = !evaluations }

let max_failures ~dag ~platform ~throughput ~latency_bound () =
  let evaluations = ref 0 in
  let rec scan eps =
    if eps < 0 then None
    else begin
      incr evaluations;
      match feasible ~dag ~platform ~eps ~latency_bound throughput with
      | Some mapping -> Some (float_of_int eps, mapping)
      | None -> scan (eps - 1)
    end
  in
  let best = scan (Platform.size platform - 1) in
  { best; evaluations = !evaluations }
