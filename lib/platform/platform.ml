type proc = int

type t = {
  name : string;
  speeds : float array;
  bw : float array array;
}

let create ?(name = "platform") ~speeds ~bandwidth () =
  let m = Array.length speeds in
  if m = 0 then invalid_arg "Platform.create: no processors";
  Array.iteri
    (fun u s ->
      if s <= 0.0 then
        invalid_arg (Printf.sprintf "Platform.create: speed of P%d not positive" u))
    speeds;
  if Array.length bandwidth <> m then
    invalid_arg "Platform.create: bandwidth matrix has wrong height";
  Array.iteri
    (fun k row ->
      if Array.length row <> m then
        invalid_arg "Platform.create: bandwidth matrix has wrong width";
      Array.iteri
        (fun h d ->
          if k <> h then begin
            if d <= 0.0 then
              invalid_arg
                (Printf.sprintf
                   "Platform.create: bandwidth of link %d-%d not positive" k h);
            if Float.abs (d -. bandwidth.(h).(k)) > 1e-9 *. Float.max 1.0 d then
              invalid_arg
                (Printf.sprintf "Platform.create: bandwidth matrix not symmetric \
                                 at %d-%d" k h)
          end)
        row)
    bandwidth;
  { name; speeds = Array.copy speeds; bw = Array.map Array.copy bandwidth }

let homogeneous ?(name = "homogeneous") ~m ~speed ~bandwidth () =
  if m <= 0 then invalid_arg "Platform.homogeneous: no processors";
  create ~name ~speeds:(Array.make m speed)
    ~bandwidth:(Array.make_matrix m m bandwidth)
    ()

let name p = p.name
let size p = Array.length p.speeds
let speed p u = p.speeds.(u)

let bandwidth p k h =
  if k = h then invalid_arg "Platform.bandwidth: same processor";
  p.bw.(k).(h)

let unit_delay p k h = if k = h then 0.0 else 1.0 /. p.bw.(k).(h)
let exec_time p u w = w /. p.speeds.(u)
let comm_time p src dst vol = if src = dst then 0.0 else vol /. p.bw.(src).(dst)
let procs p = List.init (size p) Fun.id

let mean_inverse_speed p =
  let total = Array.fold_left (fun acc s -> acc +. (1.0 /. s)) 0.0 p.speeds in
  total /. float_of_int (size p)

let mean_unit_delay p =
  let m = size p in
  if m = 1 then 0.0
  else begin
    let total = ref 0.0 in
    for k = 0 to m - 1 do
      for h = 0 to m - 1 do
        if k <> h then total := !total +. (1.0 /. p.bw.(k).(h))
      done
    done;
    !total /. float_of_int (m * (m - 1))
  end

let slowest_exec_time p w =
  let min_speed = Array.fold_left Float.min infinity p.speeds in
  w /. min_speed

let slowest_comm_time p vol =
  let m = size p in
  if m = 1 then 0.0
  else begin
    let min_bw = ref infinity in
    for k = 0 to m - 1 do
      for h = 0 to m - 1 do
        if k <> h && p.bw.(k).(h) < !min_bw then min_bw := p.bw.(k).(h)
      done
    done;
    vol /. !min_bw
  end

(* The caller (platform-cost minimization) probes hundreds of subsets: copy
   the rows straight out of an already-validated platform instead of going
   through [create]'s O(m²) re-validation and double copy. *)
let restrict p kept =
  let m = Array.length kept in
  if m = 0 then invalid_arg "Platform.restrict: no processors";
  let speeds = Array.map (fun u -> p.speeds.(u)) kept in
  let bw =
    Array.init m (fun i ->
        Array.init m (fun j ->
            if i = j then 1.0 else p.bw.(kept.(i)).(kept.(j))))
  in
  { name = p.name ^ "-subset"; speeds; bw }

let fastest_proc p =
  let best = ref 0 in
  Array.iteri (fun u s -> if s > p.speeds.(!best) then best := u) p.speeds;
  !best

let pp ppf p =
  Format.fprintf ppf "@[<v>platform %S: %d processors@," p.name (size p);
  Array.iteri (fun u s -> Format.fprintf ppf "P%d: speed %g@," u s) p.speeds;
  Format.fprintf ppf "@]"
