(** Heterogeneous target platforms (§2).

    A platform has [m] fully interconnected processors [P_0 .. P_{m-1}] of
    speeds [s_u]; the link between distinct processors [P_k] and [P_h] has a
    bandwidth [d_kh] (equivalently a unit message delay [1 / d_kh]).  The
    communication model is the bi-directional one-port model: a processor
    can be engaged in at most one send and one receive at any time, with
    full computation/communication overlap. *)

type proc = int
(** Processors are dense integer identifiers in [0 .. m - 1]. *)

type t

val create :
  ?name:string -> speeds:float array -> bandwidth:float array array -> unit -> t
(** [create ~speeds ~bandwidth ()] builds a platform with [m = Array.length
    speeds] processors.  [bandwidth] must be an [m × m] matrix, symmetric
    and positive off the diagonal (the diagonal is ignored: same-processor
    transfers are free).
    @raise Invalid_argument if shapes or signs are wrong. *)

val homogeneous : ?name:string -> m:int -> speed:float -> bandwidth:float -> unit -> t
(** A platform with [m] identical processors and identical links. *)

val name : t -> string
val size : t -> int
(** Number of processors [m]. *)

val speed : t -> proc -> float

val bandwidth : t -> proc -> proc -> float
(** Bandwidth of the link between two distinct processors.
    @raise Invalid_argument when both arguments are equal. *)

val unit_delay : t -> proc -> proc -> float
(** [1 / bandwidth]; [0] when both processors coincide (local transfers are
    free). *)

val exec_time : t -> proc -> float -> float
(** [exec_time p u w] is the execution time of [w] work units on processor
    [u], i.e. [w / speed u]. *)

val comm_time : t -> proc -> proc -> float -> float
(** [comm_time p src dst vol] is the transfer time of [vol] data units over
    the [src]–[dst] link; [0] if [src = dst]. *)

val procs : t -> proc list
(** All processors in increasing order. *)

val mean_inverse_speed : t -> float
(** Mean over processors of [1 / s_u]: the expected execution time of a unit
    of work on a random processor, used for averaged path lengths. *)

val mean_unit_delay : t -> float
(** Mean unit delay over the distinct processor pairs; [0] when [m = 1]. *)

val slowest_exec_time : t -> float -> float
(** Execution time of a workload on the slowest processor (used by the
    granularity g(G, P) of §2). *)

val slowest_comm_time : t -> float -> float
(** Transfer time of a volume over the slowest link; [0] when [m = 1]. *)

val restrict : t -> proc array -> t
(** The sub-platform induced by the given processors, in the given order
    (named ["<name>-subset"]).  Built directly from the parent's validated
    tables — no re-validation, one copy — so subset probes (platform-cost
    minimization) stay cheap.
    @raise Invalid_argument on an empty selection. *)

val fastest_proc : t -> proc
(** A processor of maximal speed (smallest index among ties). *)

val pp : Format.formatter -> t -> unit
