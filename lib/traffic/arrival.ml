type t =
  | Deterministic of { period : float }
  | Poisson of { rate : float }
  | Mmpp of {
      burst_rate : float;
      idle_rate : float;
      mean_burst : float;
      mean_idle : float;
    }
  | Trace of float list

let requires_rng = function
  | Deterministic _ | Trace _ -> false
  | Poisson _ | Mmpp _ -> true

let positive name v =
  if not (Float.is_finite v) || v <= 0.0 then
    invalid_arg ("Arrival.times: " ^ name ^ " must be positive and finite")

(* All randomized gaps are drawn as unit-rate exponential quanta and
   scaled by the phase rate afterwards: sweeping a rate re-times the
   same quanta instead of resampling them (common random numbers), so a
   load sweep moves every arrival monotonically. *)
let quantum rng = Rng.exponential rng ~rate:1.0

let times ?rng ~n t =
  if n < 0 then invalid_arg "Arrival.times: n < 0";
  let rng () =
    match rng with
    | Some r -> r
    | None -> invalid_arg "Arrival.times: this process needs an rng"
  in
  match t with
  | Deterministic { period } ->
      if not (Float.is_finite period) || period < 0.0 then
        invalid_arg "Arrival.times: period must be non-negative and finite";
      (* Exactly the closed-system engine's injection grid. *)
      Array.init n (fun k -> float_of_int k *. period)
  | Poisson { rate } ->
      positive "rate" rate;
      let rng = rng () in
      let t = ref 0.0 in
      Array.init n (fun _ ->
          t := !t +. (quantum rng /. rate);
          !t)
  | Mmpp { burst_rate; idle_rate; mean_burst; mean_idle } ->
      positive "burst_rate" burst_rate;
      positive "idle_rate" idle_rate;
      positive "mean_burst" mean_burst;
      positive "mean_idle" mean_idle;
      let rng = rng () in
      (* The process starts in the burst phase.  Both the arrivals
         within a phase and the phase lengths are exponential, so on a
         phase switch the next gap is simply redrawn at the new rate
         (memorylessness makes the discarded residual exact). *)
      let in_burst = ref true in
      let t = ref 0.0 in
      let phase_end = ref (quantum rng *. mean_burst) in
      let rec next () =
        let rate = if !in_burst then burst_rate else idle_rate in
        let candidate = !t +. (quantum rng /. rate) in
        if candidate <= !phase_end then t := candidate
        else begin
          t := !phase_end;
          in_burst := not !in_burst;
          phase_end :=
            !t +. (quantum rng *. if !in_burst then mean_burst else mean_idle);
          next ()
        end
      in
      Array.init n (fun _ ->
          next ();
          !t)
  | Trace offsets ->
      let arr = Array.make n 0.0 in
      let rec fill k = function
        | _ when k = n -> ()
        | [] -> invalid_arg "Arrival.times: trace shorter than n"
        | o :: rest ->
            if not (Float.is_finite o) || o < 0.0 then
              invalid_arg
                "Arrival.times: trace offsets must be non-negative and finite";
            if k > 0 && o < arr.(k - 1) then
              invalid_arg "Arrival.times: trace offsets must be nondecreasing";
            arr.(k) <- o;
            fill (k + 1) rest
      in
      fill 0 offsets;
      arr

let mean_rate = function
  | Deterministic { period } -> if period > 0.0 then Some (1.0 /. period) else None
  | Poisson { rate } -> Some rate
  | Mmpp { burst_rate; idle_rate; mean_burst; mean_idle } ->
      (* Expected arrivals per cycle over the expected cycle length. *)
      Some
        (((burst_rate *. mean_burst) +. (idle_rate *. mean_idle))
        /. (mean_burst +. mean_idle))
  | Trace _ -> None

let to_string = function
  | Deterministic { period } -> Printf.sprintf "deterministic(period=%g)" period
  | Poisson { rate } -> Printf.sprintf "poisson(rate=%g)" rate
  | Mmpp { burst_rate; idle_rate; mean_burst; mean_idle } ->
      Printf.sprintf "mmpp(burst=%g@%g, idle=%g@%g)" burst_rate mean_burst
        idle_rate mean_idle
  | Trace offsets -> Printf.sprintf "trace(%d offsets)" (List.length offsets)
