(** Arrival processes for the open-system traffic model.

    The closed-system engine injects item [k] at exactly [k · period] —
    a steady, clairvoyant source.  An {!t} instead describes {e when
    work shows up}: deterministic-period (the closed system as a special
    case), Poisson (memoryless open traffic), MMPP (a two-phase
    Markov-modulated Poisson process alternating burst and idle phases —
    the standard bursty-traffic model), or a trace of externally
    recorded timestamps.

    A process is {e materialized} by {!times} into the nondecreasing
    offsets of the first [n] arrivals, which is what
    [Engine.Run.Open] consumes.  Randomized processes draw from the
    caller's {!Rng.t} child stream, so the common-random-numbers
    discipline of the experiment sweeps applies unchanged: equal seeds
    give equal arrival sequences, and {!Poisson} inter-arrival gaps are
    drawn as unit-rate quanta scaled by [1/rate], so sweeping the rate
    moves every arrival monotonically instead of resampling it. *)

type t =
  | Deterministic of { period : float }
      (** item [k] arrives at exactly [float_of_int k *. period] — the
          same IEEE expression the closed-system engine uses, so a
          deterministic open run is bit-identical to a closed one *)
  | Poisson of { rate : float }
      (** exponential inter-arrival gaps with mean [1 / rate] *)
  | Mmpp of {
      burst_rate : float;  (** Poisson rate inside a burst phase *)
      idle_rate : float;  (** Poisson rate inside an idle phase *)
      mean_burst : float;  (** mean burst-phase length (time units) *)
      mean_idle : float;  (** mean idle-phase length (time units) *)
    }
      (** two-phase MMPP, starting in the burst phase; phase lengths are
          exponential with the given means *)
  | Trace of float list
      (** externally recorded arrival offsets, nondecreasing, relative
          to the start of the run *)

val requires_rng : t -> bool
(** Whether {!times} consumes randomness: [true] for {!Poisson} and
    {!Mmpp}, [false] for {!Deterministic} and {!Trace}. *)

val times : ?rng:Rng.t -> n:int -> t -> float array
(** The offsets of the first [n] arrivals, relative to the start of the
    run: a nondecreasing array of [n] finite non-negative floats.
    [Deterministic] and [Trace] consume no randomness; the others
    require [rng] and advance it deterministically.
    @raise Invalid_argument if [n < 0], a rate or mean phase length is
    not positive and finite, [rng] is missing for a random process, or
    a [Trace] has fewer than [n] offsets, a negative / non-finite
    offset, or decreasing offsets. *)

val mean_rate : t -> float option
(** Long-run arrival rate: [1 / period] for {!Deterministic}, [rate]
    for {!Poisson}, the phase-weighted rate for {!Mmpp}; [None] for a
    {!Trace} (no model behind the data). *)

val to_string : t -> string
(** One-line description for logs and figure captions. *)
