(** Performance metrics of a mapping (§2, §4). *)

val granularity : Dag.t -> Platform.t -> float
(** [g(G, P)]: ratio of the sum over tasks of their slowest computation time
    to the sum over edges of their slowest communication time (§2).
    [infinity] when the graph has no edge or the platform a single
    processor. *)

val achieved_throughput : ?loads:Loads.t -> Mapping.t -> float
(** [1 / max_u Δ_u] for the loads of the mapping; [infinity] for an empty
    mapping.  Callers holding incremental state pass [?loads] to skip the
    full {!Loads.of_mapping} rewalk. *)

val period : ?loads:Loads.t -> Mapping.t -> float
(** Inverse of {!achieved_throughput}: the smallest iteration period the
    mapping can sustain. *)

val meets_throughput : ?loads:Loads.t -> Mapping.t -> throughput:float -> bool
(** Whether every processor satisfies [T · Σ_u ≤ 1], [T · Cᴵ_u ≤ 1] and
    [T · Cᴼ_u ≤ 1] (condition (1) aggregated over the final mapping).
    A small relative tolerance absorbs floating-point accumulation.
    [?loads], when given, must be the loads of [m] (skips the rewalk). *)

val stage_depth : Mapping.t -> int
(** Pipeline stage number [S]. *)

val latency_bound : Mapping.t -> throughput:float -> float
(** The paper's pipelined latency [L = (2S − 1) / T] for the desired
    throughput [T] (§4, after [Hary–Özgüner 1999]). *)

val replication_messages : Mapping.t -> int
(** Cross-processor replica communications; between [e] and [e(ε+1)²]. *)
