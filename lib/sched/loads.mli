(** Per-processor computation and communication loads (§4), maintained
    incrementally.

    For a mapping [X], processor [u] carries per data item:
    - a computing load [Σ_u = Σ_{replicas r on u} E(task r) / s_u];
    - an input communication cycle time [Cᴵ_u]: total time the receive port
      of [u] is busy, i.e. the sum over replicas on [u] and over their
      off-processor sources of the corresponding transfer times;
    - an output cycle time [Cᴼ_u], symmetrically for the send port.

    The cycle time of [u] is [Δ_u = max(Σ_u, Cᴵ_u, Cᴼ_u)] and the achieved
    throughput is [1 / max_u Δ_u].

    The structure is mutable: {!add_replica} / {!remove_replica} /
    {!with_tentative} update the three vectors and a cached [max_u Δ_u] in
    O(degree) instead of the O(replicas · degree) full rewalk of
    {!of_mapping}, which is what makes candidate evaluation match the §4
    complexity bound.  The record is [private]: read the arrays freely, but
    all writes go through this interface so the cache stays coherent. *)

type t = private {
  sigma : float array;  (** computing load per processor *)
  c_in : float array;   (** receive-port load per processor *)
  c_out : float array;  (** send-port load per processor *)
  mutable max_cache : float;   (** cached [max_u Δ_u]; meaningful iff valid *)
  mutable max_valid : bool;
}

val create : n_procs:int -> t
(** All-zero loads (an empty mapping). *)

val of_mapping : Mapping.t -> t
(** Loads of a (possibly partial) mapping: only placed replicas count.
    Full O(replicas · degree) rewalk — counted under the
    [sched.loads.full_recomputes] metric. *)

val add_exec : t -> Platform.proc -> float -> unit
(** Charge execution time onto [Σ_u].  Low-level primitive for callers
    (e.g. [State.commit]) that must charge loads in a specific float
    order; prefer {!add_replica}. *)

val add_comm : t -> src:Platform.proc -> dst:Platform.proc -> float -> unit
(** Charge one transfer: [Cᴵ_dst] then [Cᴼ_src], in that order. *)

val add_replica : t -> Mapping.t -> Replica.t -> unit
(** Charge one replica and its incoming edges (sources must be placed in
    the mapping).  O(degree); identical float order to {!of_mapping}. *)

val remove_replica : t -> Mapping.t -> Replica.t -> unit
(** Undo {!add_replica} by subtraction.  O(degree), but float subtraction
    is not an exact inverse — loads drift within rounding error of the
    from-scratch value (tests compare with tolerance), and the cached
    maximum is invalidated.  For exact probes use {!with_tentative}. *)

val with_tentative : t -> Mapping.t -> Replica.t -> (t -> 'a) -> 'a
(** [with_tentative l m r f] charges [r], runs [f] on the updated loads
    and restores the touched entries {e verbatim} — the probe is
    bitwise-neutral, unlike a subtractive undo.  Exception-safe. *)

val cycle_time : t -> Platform.proc -> float
(** [Δ_u]. *)

val max_cycle_time : t -> float
(** [max_u Δ_u]; [0] for an empty mapping.  O(1) on a valid cache
    (additions keep it exact), O(p) recompute after a removal —
    hits/misses are counted under [sched.loads.max_cache_*]. *)

val utilization : t -> throughput:float -> Platform.proc -> float
(** [U_{P_u} = T · Σ_u] (§4); between 0 and 1 whenever the throughput
    constraint holds on [u]. *)
