let granularity dag plat =
  let comp =
    Dag.fold_tasks dag ~init:0.0 ~f:(fun acc t ->
        acc +. Platform.slowest_exec_time plat (Dag.exec dag t))
  in
  let comm =
    Dag.fold_edges dag ~init:0.0 ~f:(fun acc _ _ vol ->
        acc +. Platform.slowest_comm_time plat vol)
  in
  if comm = 0.0 then infinity else comp /. comm

let loads_of ?loads m =
  match loads with Some l -> l | None -> Loads.of_mapping m

let achieved_throughput ?loads m =
  let delta = Loads.max_cycle_time (loads_of ?loads m) in
  if delta = 0.0 then infinity else 1.0 /. delta

let period ?loads m =
  let t = achieved_throughput ?loads m in
  if t = infinity then 0.0 else 1.0 /. t

let tolerance = 1e-9

let meets_throughput ?loads m ~throughput =
  let loads = loads_of ?loads m in
  let budget = 1.0 /. throughput in
  let slack = 1.0 +. tolerance in
  let ok = ref true in
  Array.iteri
    (fun u _ ->
      if Loads.cycle_time loads u > budget *. slack then ok := false)
    loads.Loads.sigma;
  !ok

let stage_depth m = Stages.depth (Stages.compute m)

let latency_bound m ~throughput =
  let s = stage_depth m in
  float_of_int ((2 * s) - 1) /. throughput

let replication_messages = Mapping.n_messages
