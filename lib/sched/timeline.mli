(** Busy-interval timelines for one-port finish-time estimation.

    A timeline records disjoint half-open busy intervals on a resource (a
    compute core, a send port, a receive port).  Timelines are persistent:
    trial placements during processor selection share structure with the
    committed state and are discarded for free. *)

type t

val empty : t

val earliest_fit : t -> ready:float -> duration:float -> float
(** The earliest start [s ≥ ready] such that [[s, s + duration)] does not
    intersect any busy interval.  A zero-duration request returns the
    earliest instant not interior to a busy interval. *)

val insert : t -> start:float -> duration:float -> t
(** Mark [[start, start + duration)] busy.
    @raise Invalid_argument if it overlaps an existing interval (callers
    must reserve via {!earliest_fit}) or if [duration < 0]. *)

val busy_until : t -> float
(** End of the last busy interval; [0] for an empty timeline. *)

val total_busy : t -> float
(** Sum of busy durations. *)

val compact : t -> t
(** The same timeline re-packed into a flat buffer once its overlay of
    recent out-of-order inserts has grown to the compaction threshold;
    below it, the value is returned unchanged.  Queries are unaffected —
    only the representation changes.  Long-lived timelines (the
    scheduler's committed per-resource state) should be stored compacted
    so the trial versions branched off them during processor selection
    keep cheap overlay headroom instead of re-packing on every probe. *)

val intervals : t -> (float * float) list
(** Busy intervals in increasing order (for tests and rendering). *)
