(* Busy intervals on a resource, stored flat for million-task schedules.

   The committed intervals of a timeline live in a shared growable pair of
   sorted float arrays (starts, finishes); a timeline value is a *version*:
   a prefix length into that buffer plus a small persistent overlay of
   recent inserts.  Versions are cheap to branch — the trial placements of
   processor selection extend the overlay and are discarded for free,
   exactly like the old interval-list representation — while queries run a
   binary search over the flat prefix instead of a head-to-tail scan.

   In-place buffer appends are only permitted for the *tip* version (the
   one whose prefix length equals the committed buffer length), which is
   the single committed timeline held in the scheduler's per-resource
   arrays; every branched version sees an unchanged prefix.  Out-of-order
   inserts (gap filling) go through the overlay and are packed into a fresh
   buffer once the overlay grows past a small bound, keeping every
   operation amortized O(log n + overlay). *)

type buf = {
  mutable bs : float array; (* starts,   sorted, prefix [0, bn) committed *)
  mutable bf : float array; (* finishes, same indexing *)
  mutable bn : int;
}

type t = {
  buf : buf;
  n : int; (* this version's valid prefix of [buf] *)
  ov : (float * float) list; (* sorted by start; small *)
  ov_n : int;
}

let eps = 1e-12

(* Commit-side compaction threshold: {!compact} rebuilds a flat buffer once
   the overlay holds this many entries, so long-lived (committed) timelines
   always expose an overlay strictly below it. *)
let compact_at = 8

(* Trial-side safety valve.  Versions branched off a committed timeline
   (processor-selection probes) extend the overlay and are discarded, so
   packing them is wasted O(n) work; with committed overlays < [compact_at]
   a probe gets [max_overlay - compact_at + 1] cheap inserts of headroom
   before this bound forces a pack. *)
let max_overlay = 16

let empty =
  { buf = { bs = [||]; bf = [||]; bn = 0 }; n = 0; ov = []; ov_n = 0 }

(* First index in [0, n) with bs.(i) >= ready -. eps.  Every interval
   strictly before the returned index satisfies s + eps < ready and (by
   disjointness, up to the eps slack) f <= s_next + eps < ready + 2eps; the
   one interval stepped back to below may span [ready], so scans start at
   [lower_bound - 1]. *)
let lower_bound buf n ~ready =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if buf.bs.(mid) < ready -. eps then lo := mid + 1 else hi := mid
  done;
  !lo

let earliest_fit t ~ready ~duration =
  if duration < 0.0 then invalid_arg "Timeline.earliest_fit: negative duration";
  let buf = t.buf and n = t.n in
  let i0 =
    if n = 0 then 0
    else
      let lb = lower_bound buf n ~ready in
      if lb = 0 then 0 else lb - 1
  in
  (* Merge-scan the buffer prefix and the overlay in start order (buffer
     first on ties), applying the same candidate recurrence the interval
     list used: skip a busy interval by advancing past its finish, stop at
     the first gap wide enough. *)
  let rec scan candidate i ov =
    let take_buf =
      i < n
      && match ov with [] -> true | (os, _) :: _ -> buf.bs.(i) <= os
    in
    if take_buf then begin
      let s = buf.bs.(i) and f = buf.bf.(i) in
      if candidate +. duration <= s +. eps then candidate
      else scan (Float.max candidate f) (i + 1) ov
    end
    else
      match ov with
      | [] -> candidate
      | (s, f) :: rest ->
          if candidate +. duration <= s +. eps then candidate
          else scan (Float.max candidate f) i rest
  in
  scan ready i0 t.ov

(* Intervals skipped by the lower-bound jump end before [start]; checking
   the immediate predecessor and every interval from there on reproduces
   the old full-scan overlap validation. *)
let check_no_overlap t ~start ~finish =
  let buf = t.buf and n = t.n in
  let i0 =
    if n = 0 then 0
    else
      let lb = lower_bound buf n ~ready:start in
      if lb = 0 then 0 else lb - 1
  in
  let overlap s f = finish > s +. eps && f > start +. eps in
  let rec check i ov =
    let take_buf =
      i < n
      && match ov with [] -> true | (os, _) :: _ -> buf.bs.(i) <= os
    in
    if take_buf then begin
      if overlap buf.bs.(i) buf.bf.(i) then
        invalid_arg "Timeline.insert: overlapping interval";
      if buf.bs.(i) < finish then check (i + 1) ov
    end
    else
      match ov with
      | [] -> ()
      | (s, f) :: rest ->
          if overlap s f then invalid_arg "Timeline.insert: overlapping interval";
          if s < finish then check i rest
  in
  check i0 t.ov

(* Fold the merged (prefix, overlay) view left to right in start order,
   buffer entries first on ties — the order the old sorted list presented. *)
let fold_merged t ~init ~f =
  let buf = t.buf and n = t.n in
  let rec go acc i ov =
    let take_buf =
      i < n
      && match ov with [] -> true | (os, _) :: _ -> buf.bs.(i) <= os
    in
    if take_buf then go (f acc buf.bs.(i) buf.bf.(i)) (i + 1) ov
    else
      match ov with
      | [] -> acc
      | (s, fi) :: rest -> go (f acc s fi) i rest
  in
  go init 0 t.ov

let pack t ~start ~finish =
  Obs.incr "sched.timeline.trial_packs";
  let total = t.n + t.ov_n + 1 in
  let bs = Array.make (max 8 (2 * total)) 0.0 in
  let bf = Array.make (Array.length bs) 0.0 in
  let idx = ref 0 in
  let push s f =
    bs.(!idx) <- s;
    bf.(!idx) <- f;
    incr idx
  in
  (* Merge the new interval into the merged view in one pass (new interval
     goes after existing entries with the same start, matching the sorted
     overlay insertion below). *)
  let placed = ref false in
  fold_merged t ~init:() ~f:(fun () s f ->
      if (not !placed) && start < s then begin
        push start finish;
        placed := true
      end;
      push s f);
  if not !placed then push start finish;
  { buf = { bs; bf; bn = !idx }; n = !idx; ov = []; ov_n = 0 }

let grow buf =
  let cap = max 8 (2 * Array.length buf.bs) in
  let bs = Array.make cap 0.0 and bf = Array.make cap 0.0 in
  Array.blit buf.bs 0 bs 0 buf.bn;
  Array.blit buf.bf 0 bf 0 buf.bn;
  buf.bs <- bs;
  buf.bf <- bf

let insert t ~start ~duration =
  if duration < 0.0 then invalid_arg "Timeline.insert: negative duration";
  if duration = 0.0 then t
  else begin
    let finish = start +. duration in
    check_no_overlap t ~start ~finish;
    if t.n = 0 && t.ov_n = 0 then begin
      (* First interval: claim a fresh private buffer (never extend the
         shared [empty] buffer). *)
      let bs = Array.make 8 0.0 and bf = Array.make 8 0.0 in
      bs.(0) <- start;
      bf.(0) <- finish;
      { buf = { bs; bf; bn = 1 }; n = 1; ov = []; ov_n = 0 }
    end
    else if
      t.ov_n = 0 && t.n = t.buf.bn (* tip version: may extend in place *)
      && t.buf.bs.(t.n - 1) <= start
      && t.buf.bf.(t.n - 1) <= start +. eps
    then begin
      let buf = t.buf in
      if buf.bn = Array.length buf.bs then grow buf;
      buf.bs.(buf.bn) <- start;
      buf.bf.(buf.bn) <- finish;
      buf.bn <- buf.bn + 1;
      { t with n = buf.bn }
    end
    else if t.ov_n >= max_overlay then pack t ~start ~finish
    else begin
      (* Sorted persistent overlay insert; stable after equal starts. *)
      let rec place = function
        | [] -> [ (start, finish) ]
        | (s, f) :: rest when s <= start -> (s, f) :: place rest
        | later -> (start, finish) :: later
      in
      { t with ov = place t.ov; ov_n = t.ov_n + 1 }
    end
  end

(* Rebuild the merged view into a fresh flat buffer.  The merged order is
   preserved exactly, so every query over the compacted timeline returns
   the same result as over the original — only the representation changes.
   Callers holding a timeline for the long term (the scheduler's commit
   path) run this so probes branched off it always find overlay headroom
   below [max_overlay] and never pay the O(n) trial pack. *)
let compact t =
  if t.ov_n < compact_at then t
  else begin
    Obs.incr "sched.timeline.compactions";
    let total = t.n + t.ov_n in
    let bs = Array.make (max 8 (2 * total)) 0.0 in
    let bf = Array.make (Array.length bs) 0.0 in
    let idx = ref 0 in
    fold_merged t ~init:() ~f:(fun () s f ->
        bs.(!idx) <- s;
        bf.(!idx) <- f;
        incr idx);
    { buf = { bs; bf; bn = !idx }; n = !idx; ov = []; ov_n = 0 }
  end

(* End of the interval with the greatest start (the last one in the merged
   order), not the max finish: intervals may overlap by [eps], and the old
   list fold returned the final element's finish. *)
let busy_until t =
  fold_merged t ~init:0.0 ~f:(fun _ _ f -> f)

let total_busy t = fold_merged t ~init:0.0 ~f:(fun acc s f -> acc +. (f -. s))

let intervals t =
  List.rev (fold_merged t ~init:[] ~f:(fun acc s f -> (s, f) :: acc))
