type t = {
  sigma : float array;
  c_in : float array;
  c_out : float array;
  mutable max_cache : float;
  mutable max_valid : bool;
}

let touch_counters () =
  Obs.touch "sched.loads.full_recomputes";
  Obs.touch "sched.loads.incremental_updates";
  Obs.touch "sched.loads.max_cache_hits";
  Obs.touch "sched.loads.max_cache_misses"

let create ~n_procs =
  touch_counters ();
  {
    sigma = Array.make n_procs 0.0;
    c_in = Array.make n_procs 0.0;
    c_out = Array.make n_procs 0.0;
    max_cache = 0.0;
    max_valid = true;
  }

let cycle_time l u = Float.max l.sigma.(u) (Float.max l.c_in.(u) l.c_out.(u))

(* Loads only grow under additions, so folding the affected processor's new
   cycle time into the cached maximum keeps the cache exact; removals can
   lower the maximum, so they invalidate instead (lazy O(p) recompute). *)
let bump_max l u =
  if l.max_valid then l.max_cache <- Float.max l.max_cache (cycle_time l u)

let add_exec l u time =
  Obs.incr "sched.loads.incremental_updates";
  l.sigma.(u) <- l.sigma.(u) +. time;
  bump_max l u

let add_comm l ~src ~dst time =
  l.c_in.(dst) <- l.c_in.(dst) +. time;
  l.c_out.(src) <- l.c_out.(src) +. time;
  bump_max l dst;
  bump_max l src

(* Charge one replica against its already-placed sources, in exactly the
   order [of_mapping] has always used (float addition is order-sensitive and
   schedules are pinned bit-identical): Σ first, then per predecessor and
   per off-processor source, Cᴵ at the replica then Cᴼ at the source. *)
let charge l m (r : Replica.t) =
  let plat = Mapping.platform m in
  let dag = Mapping.dag m in
  l.sigma.(r.proc) <-
    l.sigma.(r.proc) +. Platform.exec_time plat r.proc (Dag.exec dag r.id.task);
  bump_max l r.proc;
  List.iter
    (fun (pred, ids) ->
      let vol = Dag.volume dag pred r.id.task in
      List.iter
        (fun (src : Replica.id) ->
          let src_r = Mapping.replica_exn m src.task src.copy in
          if src_r.proc <> r.proc then begin
            let time = Platform.comm_time plat src_r.proc r.proc vol in
            l.c_in.(r.proc) <- l.c_in.(r.proc) +. time;
            l.c_out.(src_r.proc) <- l.c_out.(src_r.proc) +. time;
            bump_max l r.proc;
            bump_max l src_r.proc
          end)
        ids)
    r.sources

(* A removal can only lower the cached maximum if one of the processors it
   touches could have been the argmax: a touched processor strictly below
   the cached value before its first decrement stays below it, so the
   maximum is still attained at some untouched processor and the cache
   remains exact.  Only when a touched processor sits at the cached value
   do we fall back to the dirty flag (lazy O(p) recompute on next read) —
   rollback-heavy probes at large v then skip the full rescan entirely. *)
let discharge l m (r : Replica.t) =
  let plat = Mapping.platform m in
  let dag = Mapping.dag m in
  let could_be_argmax = ref (not l.max_valid) in
  let check u =
    if l.max_valid && cycle_time l u >= l.max_cache then could_be_argmax := true
  in
  check r.proc;
  l.sigma.(r.proc) <-
    l.sigma.(r.proc) -. Platform.exec_time plat r.proc (Dag.exec dag r.id.task);
  List.iter
    (fun (pred, ids) ->
      let vol = Dag.volume dag pred r.id.task in
      List.iter
        (fun (src : Replica.id) ->
          let src_r = Mapping.replica_exn m src.task src.copy in
          if src_r.proc <> r.proc then begin
            let time = Platform.comm_time plat src_r.proc r.proc vol in
            check src_r.proc;
            l.c_in.(r.proc) <- l.c_in.(r.proc) -. time;
            l.c_out.(src_r.proc) <- l.c_out.(src_r.proc) -. time
          end)
        ids)
    r.sources;
  if !could_be_argmax then l.max_valid <- false

let add_replica l m r =
  Obs.incr "sched.loads.incremental_updates";
  charge l m r

let remove_replica l m r =
  Obs.incr "sched.loads.incremental_updates";
  discharge l m r

let with_tentative l m (r : Replica.t) f =
  Obs.incr "sched.loads.incremental_updates";
  (* Exact rollback: save the touched entries and restore them verbatim, so
     a probe is bitwise-neutral (subtracting back is not, in floats). *)
  let saved_sigma = l.sigma.(r.proc)
  and saved_c_in = l.c_in.(r.proc)
  and saved_max = l.max_cache
  and saved_valid = l.max_valid in
  let saved_out = ref [] in
  List.iter
    (fun (_, ids) ->
      List.iter
        (fun (src : Replica.id) ->
          let sp = (Mapping.replica_exn m src.task src.copy).Replica.proc in
          if not (List.mem_assoc sp !saved_out) then
            saved_out := (sp, l.c_out.(sp)) :: !saved_out)
        ids)
    r.sources;
  charge l m r;
  Fun.protect
    ~finally:(fun () ->
      l.sigma.(r.proc) <- saved_sigma;
      l.c_in.(r.proc) <- saved_c_in;
      List.iter (fun (p, v) -> l.c_out.(p) <- v) !saved_out;
      l.max_cache <- saved_max;
      l.max_valid <- saved_valid)
    (fun () -> f l)

let of_mapping m =
  Obs.incr "sched.loads.full_recomputes";
  let loads = create ~n_procs:(Platform.size (Mapping.platform m)) in
  Mapping.iter m (fun r -> charge loads m r);
  loads

let max_cycle_time l =
  if l.max_valid then begin
    Obs.incr "sched.loads.max_cache_hits";
    l.max_cache
  end
  else begin
    Obs.incr "sched.loads.max_cache_misses";
    let best = ref 0.0 in
    Array.iteri (fun u _ -> best := Float.max !best (cycle_time l u)) l.sigma;
    l.max_cache <- !best;
    l.max_valid <- true;
    !best
  end

let utilization l ~throughput u = throughput *. l.sigma.(u)
