(** Fault models beyond clean fail-stop: transient faults with
    retry/backoff, gray failures (stragglers, degraded links) and
    correlated failure domains.

    The paper's reliability model only knows permanent, independent,
    fail-silent processor crashes.  Real streaming deployments mostly
    die of something else: an execution or transfer that fails once and
    succeeds on retry (transient faults), a processor or link that keeps
    working but slowly (gray failures), and rack-level outages that take
    several processors at once (correlated failure domains).  This
    module is the pure description layer for all three — plain data
    plus deterministic draw functions, no simulator state — consumed by
    {!Engine} (transient + gray, through [Run.config.faults]),
    {!Failure_gen} (common-shock crash draws) and {!Reliability} (the
    [Correlated] model).

    Determinism: every probabilistic draw is a pure hash of
    [(seed, salt, key, attempt)] (a SplitMix64 finalizer), never a
    stateful stream.  Two runs of the same scenario agree bit-for-bit,
    and for a fixed key the set of failing attempts grows monotonically
    with the fault rate — the common-random-numbers property the
    monotonicity assertions lean on.  Processors are plain [int]
    indices so the module stays dependency-free. *)

(** Retry policy for transient faults: jitterless truncated exponential
    backoff.  A failed attempt [k] (1-based) is re-driven after
    [base_delay * multiplier^(k - 1)] time units, at most [max_retries]
    times; the [max_retries + 1]-th failure exhausts the budget and the
    work is abandoned (the instance, or the transfer chain, is lost). *)
module Backoff : sig
  type t = {
    max_retries : int;  (** re-drives after a failure; 0 = fail fast *)
    base_delay : float;  (** delay after the first failure (time units) *)
    multiplier : float;  (** geometric growth of successive delays *)
  }

  val none : t
  (** [{ max_retries = 0; base_delay = 0.; multiplier = 1. }]: every
      transient fault is immediately fatal to its attempt. *)

  val make :
    ?base_delay:float -> ?multiplier:float -> max_retries:int -> unit -> t
  (** [base_delay] defaults to [0.] (immediate retry), [multiplier]
      to [2.].  @raise Invalid_argument as {!validate}. *)

  val delay : t -> attempt:int -> float
  (** Backoff after the [attempt]-th failed attempt (1-based):
      [base_delay *. multiplier ** (attempt - 1)], and exactly [0.]
      when [base_delay = 0.] whatever the multiplier.
      @raise Invalid_argument when [attempt < 1]. *)

  val total_delay : t -> float
  (** Sum of {!delay} over the whole retry budget — the worst-case
      backoff time one work unit can spend before exhaustion. *)

  val validate : t -> unit
  (** @raise Invalid_argument when [max_retries < 0], [base_delay] is
      negative or not finite, or [multiplier] is negative or not
      finite. *)
end

(** Transient (soft) faults: an execution attempt or a transfer attempt
    fails, the work itself survives and can be retried.  Faults are
    drawn per attempt, either probabilistically (rate) or
    deterministically inside injected time windows, and attributed to
    the processor doing the work (the executor, or the sender's port). *)
module Transient : sig
  type t = {
    exec_rate : float;  (** per-attempt execution fault probability *)
    comm_rate : float;  (** per-attempt transfer fault probability *)
    exec_windows : (int * float * float) list;
        (** [(proc, t0, t1)]: every execution attempt starting on [proc]
            in [[t0, t1)] fails — injected deterministic faults, the
            transient analogue of [timed_failures] *)
    comm_windows : (int * float * float) list;
        (** [(proc, t0, t1)]: every transfer attempt committed by sender
            [proc] in [[t0, t1)] fails *)
    seed : int;  (** hash seed of the probabilistic draws *)
  }

  val none : t

  val is_none : t -> bool
  (** No fault source at all: both rates zero and no windows. *)

  val exec_fails : t -> proc:int -> key:int -> attempt:int -> at:float -> bool
  (** Whether the [attempt]-th execution attempt (1-based) of the work
      unit [key] (the engine's instance index), starting on [proc] at
      time [at], suffers a transient fault.  Deterministic in all
      arguments; for a fixed [(key, attempt)] the answer is monotone in
      [exec_rate]. *)

  val comm_fails : t -> src:int -> key:int -> attempt:int -> at:float -> bool
  (** Same for a transfer attempt committed by sender [src]; [key] is
      the transfer's creation sequence number. *)
end

(** Gray failures: components that keep answering, slowly.  A straggler
    window multiplies the execution time of every attempt starting on
    the processor inside the window; a link window multiplies the
    transfer time of every transfer committed on the (src, dst) pair
    inside it.  Factors of overlapping windows compound. *)
module Gray : sig
  type window = {
    g_from : float;
    g_until : float;  (** active on [[g_from, g_until)] *)
    factor : float;  (** duration multiplier, > 0 (usually > 1) *)
  }

  type t = {
    stragglers : (int * window) list;  (** per-processor slowdowns *)
    links : ((int * int) * window) list;
        (** per-(src, dst) bandwidth degradations *)
  }

  val none : t
  val is_none : t -> bool

  val exec_factor : t -> proc:int -> at:float -> float
  (** Product of the straggler factors active on [proc] at [at];
      [1.0] when none. *)

  val comm_factor : t -> src:int -> dst:int -> at:float -> float
  (** Product of the link factors active on [(src, dst)] at [at]. *)
end

(** Correlated failure domains: a partition of the processors into
    racks (or power domains, switches...).  A domain-wide common shock
    kills every member at once; {!Failure_gen} draws shock lifetimes
    and {!Reliability} evaluates the induced Marshall–Olkin-style
    dependence exactly. *)
module Domains : sig
  type t

  val make : procs:int -> int list list -> t
  (** [make ~procs groups] partitions processors [0 .. procs - 1]:
      each listed group is one domain (in list order); processors not
      listed become singleton domains, in index order after the listed
      groups.  @raise Invalid_argument when a processor is out of range
      or listed twice, or a group is empty. *)

  val racks : size:int -> procs:int -> t
  (** Contiguous blocks of [size] processors ([0..size-1], [size..2
      size-1], ...; the last rack may be smaller).
      @raise Invalid_argument when [size < 1] or [procs < 0]. *)

  val count : t -> int
  (** Number of domains. *)

  val procs : t -> int
  (** Number of processors partitioned. *)

  val members : t -> int -> int list
  (** Processors of one domain, ascending. *)

  val domain_of : t -> int -> int
  (** The domain a processor belongs to. *)
end

(** The full fault scenario of one simulation run. *)
type t = {
  transient : Transient.t;
  retry : Backoff.t;  (** how transient faults are re-driven *)
  gray : Gray.t;
}

val none : t
(** No transient faults, no retries, no gray failures — the engine's
    default, bit-identical to the pre-faults behavior. *)

val is_none : t -> bool
(** No fault source at all ({!Transient.is_none} and {!Gray.is_none});
    the retry policy is irrelevant when nothing ever fails. *)

val validate : procs:int -> t -> unit
(** Validate the whole scenario against a platform of [procs]
    processors.  @raise Invalid_argument when a rate is outside [0, 1],
    a window is malformed (negative or non-finite bounds, [t1 < t0]) or
    names an out-of-range processor, a gray factor is not finite and
    positive, or the retry policy fails {!Backoff.validate}. *)

val uniform : seed:int -> salt:int -> key:int -> attempt:int -> float
(** The deterministic draw under the probabilistic transient faults: a
    uniform in [[0, 1)] hashed from the four integers (SplitMix64
    finalizer).  Exposed for tests; [Transient] fails an attempt when
    [uniform ... < rate], which is what makes the failing set monotone
    in the rate for a fixed key. *)
