(* Pure fault-scenario descriptions: plain data plus deterministic draw
   functions.  No simulator state lives here — the engine, the failure
   generator and the reliability calculus all consume this one
   vocabulary. *)

let check_window what ~procs (u, t0, t1) =
  if u < 0 || u >= procs then
    invalid_arg (Printf.sprintf "Faults: %s window processor out of range" what);
  if not (Float.is_finite t0) || not (Float.is_finite t1) || t0 < 0.0 then
    invalid_arg (Printf.sprintf "Faults: %s window bounds must be finite and non-negative" what);
  if t1 < t0 then
    invalid_arg (Printf.sprintf "Faults: %s window ends before it starts" what)

let check_rate what r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Faults: %s rate outside [0, 1]" what)

(* ---- retry / timeout / backoff ---------------------------------------- *)

module Backoff = struct
  type t = { max_retries : int; base_delay : float; multiplier : float }

  let none = { max_retries = 0; base_delay = 0.0; multiplier = 1.0 }

  let validate t =
    if t.max_retries < 0 then invalid_arg "Faults.Backoff: max_retries < 0";
    if t.base_delay < 0.0 || not (Float.is_finite t.base_delay) then
      invalid_arg "Faults.Backoff: base_delay must be finite and non-negative";
    if t.multiplier < 0.0 || not (Float.is_finite t.multiplier) then
      invalid_arg "Faults.Backoff: multiplier must be finite and non-negative"

  let make ?(base_delay = 0.0) ?(multiplier = 2.0) ~max_retries () =
    let t = { max_retries; base_delay; multiplier } in
    validate t;
    t

  let delay t ~attempt =
    if attempt < 1 then invalid_arg "Faults.Backoff.delay: attempt < 1";
    if t.base_delay = 0.0 then 0.0
    else t.base_delay *. (t.multiplier ** float_of_int (attempt - 1))

  let total_delay t =
    let rec sum k acc =
      if k > t.max_retries then acc else sum (k + 1) (acc +. delay t ~attempt:k)
    in
    sum 1 0.0
end

(* ---- deterministic Bernoulli draws ------------------------------------ *)

(* SplitMix64 finalizer: a high-quality 64-bit mix.  The draw for one
   attempt is a pure hash of (seed, salt, key, attempt) — no stream, no
   order dependence — so the same scenario replays bit-identically
   whatever else the run does, and scaling the rate only grows the
   failing set (each (key, attempt) keeps its own fixed uniform). *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L

let feed st x = mix64 (Int64.add st (Int64.mul golden (Int64.of_int x)))

let uniform ~seed ~salt ~key ~attempt =
  let st = mix64 (Int64.logxor (Int64.of_int seed) 0x5851f42d4c957f2dL) in
  let st = feed st salt in
  let st = feed st key in
  let st = feed st attempt in
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical st 11) *. 0x1.0p-53

let flip ~seed ~salt ~key ~attempt p = uniform ~seed ~salt ~key ~attempt < p

(* ---- transient faults -------------------------------------------------- *)

module Transient = struct
  type t = {
    exec_rate : float;
    comm_rate : float;
    exec_windows : (int * float * float) list;
    comm_windows : (int * float * float) list;
    seed : int;
  }

  let none =
    { exec_rate = 0.0; comm_rate = 0.0; exec_windows = []; comm_windows = [];
      seed = 0 }

  let is_none t =
    t.exec_rate = 0.0 && t.comm_rate = 0.0 && t.exec_windows = []
    && t.comm_windows = []

  let in_window windows who at =
    List.exists (fun (u, t0, t1) -> u = who && at >= t0 && at < t1) windows

  (* Distinct salts keep the execution and communication draw spaces
     disjoint even when the same (key, attempt) pair occurs in both. *)
  let exec_salt = 0x45584543 (* "EXEC" *)
  let comm_salt = 0x434f4d4d (* "COMM" *)

  let exec_fails t ~proc ~key ~attempt ~at =
    in_window t.exec_windows proc at
    || (t.exec_rate > 0.0
       && flip ~seed:t.seed ~salt:exec_salt ~key ~attempt t.exec_rate)

  let comm_fails t ~src ~key ~attempt ~at =
    in_window t.comm_windows src at
    || (t.comm_rate > 0.0
       && flip ~seed:t.seed ~salt:comm_salt ~key ~attempt t.comm_rate)
end

(* ---- gray failures ----------------------------------------------------- *)

module Gray = struct
  type window = { g_from : float; g_until : float; factor : float }

  type t = {
    stragglers : (int * window) list;
    links : ((int * int) * window) list;
  }

  let none = { stragglers = []; links = [] }
  let is_none t = t.stragglers = [] && t.links = []

  let active w at = at >= w.g_from && at < w.g_until

  let exec_factor t ~proc ~at =
    List.fold_left
      (fun acc (u, w) -> if u = proc && active w at then acc *. w.factor else acc)
      1.0 t.stragglers

  let comm_factor t ~src ~dst ~at =
    List.fold_left
      (fun acc ((s, d), w) ->
        if s = src && d = dst && active w at then acc *. w.factor else acc)
      1.0 t.links
end

(* ---- correlated failure domains ---------------------------------------- *)

module Domains = struct
  type t = { d_members : int array array; d_of : int array }

  let make ~procs groups =
    if procs < 0 then invalid_arg "Faults.Domains.make: negative processor count";
    let seen = Array.make procs false in
    let listed =
      List.map
        (fun group ->
          if group = [] then invalid_arg "Faults.Domains.make: empty domain";
          List.iter
            (fun u ->
              if u < 0 || u >= procs then
                invalid_arg "Faults.Domains.make: processor out of range";
              if seen.(u) then
                invalid_arg "Faults.Domains.make: processor in two domains";
              seen.(u) <- true)
            group;
          Array.of_list (List.sort_uniq compare group))
        groups
    in
    (* Unlisted processors become singleton domains after the listed
       groups, in index order. *)
    let singles = ref [] in
    for u = procs - 1 downto 0 do
      if not seen.(u) then singles := [| u |] :: !singles
    done;
    let members = Array.of_list (listed @ !singles) in
    let d_of = Array.make procs (-1) in
    Array.iteri (fun d group -> Array.iter (fun u -> d_of.(u) <- d) group) members;
    { d_members = members; d_of }

  let racks ~size ~procs =
    if size < 1 then invalid_arg "Faults.Domains.racks: size < 1";
    if procs < 0 then invalid_arg "Faults.Domains.racks: negative processor count";
    let n = (procs + size - 1) / size in
    let groups =
      List.init n (fun r ->
          List.init (min size (procs - (r * size))) (fun i -> (r * size) + i))
    in
    make ~procs groups

  let count t = Array.length t.d_members
  let procs t = Array.length t.d_of
  let members t d = Array.to_list t.d_members.(d)
  let domain_of t u = t.d_of.(u)
end

(* ---- the full scenario ------------------------------------------------- *)

type t = { transient : Transient.t; retry : Backoff.t; gray : Gray.t }

let none = { transient = Transient.none; retry = Backoff.none; gray = Gray.none }
let is_none t = Transient.is_none t.transient && Gray.is_none t.gray

let check_gray_window what w =
  if
    not (Float.is_finite w.Gray.g_from)
    || not (Float.is_finite w.Gray.g_until)
    || w.Gray.g_from < 0.0
  then
    invalid_arg
      (Printf.sprintf "Faults: %s window bounds must be finite and non-negative"
         what);
  if w.Gray.g_until < w.Gray.g_from then
    invalid_arg (Printf.sprintf "Faults: %s window ends before it starts" what);
  if not (Float.is_finite w.Gray.factor) || w.Gray.factor <= 0.0 then
    invalid_arg
      (Printf.sprintf "Faults: %s factor must be finite and positive" what)

let validate ~procs t =
  Backoff.validate t.retry;
  check_rate "exec" t.transient.Transient.exec_rate;
  check_rate "comm" t.transient.Transient.comm_rate;
  List.iter (check_window "exec" ~procs) t.transient.Transient.exec_windows;
  List.iter (check_window "comm" ~procs) t.transient.Transient.comm_windows;
  List.iter
    (fun (u, w) ->
      if u < 0 || u >= procs then
        invalid_arg "Faults: straggler processor out of range";
      check_gray_window "straggler" w)
    t.gray.Gray.stragglers;
  List.iter
    (fun ((s, d), w) ->
      if s < 0 || s >= procs || d < 0 || d >= procs then
        invalid_arg "Faults: link endpoint out of range";
      check_gray_window "link" w)
    t.gray.Gray.links
