let default_jobs () = max 1 (Domain.recommended_domain_count ())

let map_seeded ?pool ~jobs f xs =
  match pool with
  | Some pool -> Domain_pool.map pool f xs
  | None ->
      if jobs <= 1 then List.map f xs
      else
        Domain_pool.with_pool ~num_domains:jobs (fun pool ->
            Domain_pool.map pool f xs)
