(** Deterministic parallel combinators for the experiment sweeps.

    The contract of {!map_seeded} is the whole point: as long as [f] is a
    pure function of its element — in the sweeps, every trial derives its
    entire RNG stream from the element's own seed — the output is
    byte-for-byte identical to [List.map f xs] for {e every} worker
    count.  Parallelism changes wall-clock, never results. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], the pool default. *)

val map_seeded :
  ?pool:Domain_pool.t -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_seeded ~jobs f xs] equals [List.map f xs] provided [f x] depends
    only on [x].

    [jobs <= 1] is a plain sequential [List.map] — no pool, no domains
    spawned.  Otherwise the elements are dispatched on a fresh
    [jobs]-worker {!Domain_pool} (shut down before returning) and the
    results are reassembled in input order.  The first (lowest-index)
    exception is re-raised after all elements settled.

    [?pool] dispatches on a caller-owned pool instead (ignoring [jobs]
    and shutting nothing down) — for call sites that amortize one pool
    across many maps, e.g. the crash estimator inside a figure sweep. *)
