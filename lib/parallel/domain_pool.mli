(** A fixed-size pool of worker domains (OCaml 5 [Domain]s).

    The pool owns its domains for its whole lifetime, so the per-spawn
    cost (~hundreds of microseconds each) is paid once, not per task.
    Tasks are closures; results come back in submission order; an
    exception raised by a task is re-raised in the caller — and the pool
    stays usable afterwards. *)

type t

val create : ?num_domains:int -> unit -> t
(** Spawn a pool of [num_domains] workers (default
    [Domain.recommended_domain_count ()], clamped to at least 1).
    @raise Invalid_argument if [num_domains < 1]. *)

val size : t -> int
(** Number of worker domains. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Execute every thunk on the pool and return the results in input
    order.  Blocks until all thunks finished.  If any thunk raised, the
    exception of the {e lowest-indexed} failing thunk is re-raised (with
    its backtrace) after every thunk has settled, so the pool is never
    left with stragglers and later calls keep working. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [run pool] over [fun () -> f x]; the result equals
    [List.map f xs] whenever [f] is pure per element. *)

val shutdown : t -> unit
(** Drain the queue, stop the workers and join their domains.
    Idempotent.  Submitting to a shut-down pool raises
    [Invalid_argument]. *)

val with_pool : ?num_domains:int -> (t -> 'a) -> 'a
(** [with_pool f] creates a pool, applies [f] and shuts the pool down,
    also on exceptions. *)
