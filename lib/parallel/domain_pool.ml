(* A classic mutex/condition work queue shared by a fixed set of worker
   domains.  Tasks submitted through [run] are wrapped so a worker never
   dies on a task's exception — failures are stored per slot and
   re-raised in the caller, keeping the pool reusable. *)

type task = unit -> unit

type t = {
  size : int;
  tasks : task Queue.t;
  mutex : Mutex.t;
  pending : Condition.t;  (* signalled on submit and on shutdown *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.size

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.tasks && not t.stopping do
      Condition.wait t.pending t.mutex
    done;
    match Queue.take_opt t.tasks with
    | Some task ->
        Mutex.unlock t.mutex;
        (* [run] wraps every task; the catch-all is belt and braces so a
           raw task can never take the worker down with it. *)
        (try task () with _ -> ());
        loop ()
    | None ->
        Mutex.unlock t.mutex (* stopping and drained *);
        (* Fold whatever this domain recorded into the shared accumulator
           before the domain dies; [shutdown] joins the workers, so the
           parent's next [Obs.snapshot] sees everything. *)
        Obs.publish ()
  in
  loop ()

let create ?num_domains () =
  let size =
    match num_domains with
    | None -> max 1 (Domain.recommended_domain_count ())
    | Some n when n >= 1 -> n
    | Some n ->
        invalid_arg (Printf.sprintf "Domain_pool.create: num_domains = %d" n)
  in
  let t =
    {
      size;
      tasks = Queue.create ();
      mutex = Mutex.create ();
      pending = Condition.create ();
      stopping = false;
      domains = [];
    }
  in
  t.domains <- List.init size (fun _ -> Domain.spawn (worker t));
  t

let submit t task =
  Mutex.lock t.mutex;
  if t.stopping then (
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool: submit after shutdown");
  Queue.add task t.tasks;
  Condition.signal t.pending;
  Mutex.unlock t.mutex

let run t thunks =
  let n = List.length thunks in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let remaining = ref n in
    let finished = Condition.create () in
    List.iteri
      (fun i f ->
        submit t (fun () ->
            let r =
              try Ok (f ())
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock t.mutex;
            results.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.broadcast finished;
            Mutex.unlock t.mutex))
      thunks;
    Mutex.lock t.mutex;
    while !remaining > 0 do
      Condition.wait finished t.mutex
    done;
    Mutex.unlock t.mutex;
    (* Ordered collection: the first (lowest-index) failure wins, and only
       after every task has settled, so no stragglers keep running. *)
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let map t f xs = run t (List.map (fun x () -> f x) xs)

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    t.stopping <- true;
    Condition.broadcast t.pending;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?num_domains f =
  let t = create ?num_domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
