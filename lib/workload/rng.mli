(** Deterministic random source (SplitMix64).

    The experiment harness needs runs that are reproducible across machines
    and OCaml versions, so it owns its generator instead of using
    [Stdlib.Random]. *)

type t

val create : seed:int -> t
(** A fresh stream; equal seeds give equal streams. *)

val split : t -> t
(** An independent stream derived from (and advancing) this one. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound - 1].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [[0, x)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [[lo, hi)]. *)

val exponential : t -> rate:float -> float
(** Exponentially distributed with the given rate (mean [1 / rate]) —
    the fail-stop inter-arrival law of the operations simulator.
    @raise Invalid_argument if [rate <= 0]. *)

val uniform_int : t -> lo:int -> hi:int -> int
(** Uniform in [[lo, hi]] (inclusive). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)
