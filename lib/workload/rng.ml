(* SplitMix64 (Steele, Lea, Flood 2014): tiny state, good quality, and the
   split operation gives independent streams for parallel experiments. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t x =
  let mantissa = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float mantissa /. 9007199254740992.0 *. x

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: non-positive rate";
  (* float is uniform in [0, 1), so 1 - u is in (0, 1] and the log is
     finite. *)
  -.log1p (-.float t 1.0) /. rate
let uniform_int t ~lo ~hi = lo + int t (hi - lo + 1)
let bool t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))
