(* The [huge] workload family: million-task layered pipelines on
   thousand-processor platforms, built directly through [Dag.Builder] in
   O(v + e) with no post-pass.

   The graph is a grid of [layers × width] tasks.  Each task feeds the
   task directly below it (a straight chain edge — out-degree 1 into
   in-degree 1, exactly what the hierarchical schedulers can contract);
   every [cross_every]-th layer, every eighth lane also feeds its right
   neighbor in the next layer, so the graph is connected across lanes and
   placement is not embarrassingly parallel.  Weights are drawn uniformly
   from the spec ranges; the granularity knob scales the communication
   volumes at draw time (the paper-workload calibration pass would copy a
   million-task graph twice, so the huge family bakes it in instead).

   The matching throughput target is analytic rather than drawn: with
   [v · mean_exec] total work spread over [m] processors of mean drawn
   speed, utilization [u] corresponds to [T = u · m · mean_speed /
   (v · mean_exec)].  The default 0.5 leaves best-effort schedulers a
   feasible condition (1) while keeping every processor busy. *)

type spec = {
  tasks : int;
  m : int;
  cross_every : int;  (** layers between cross-lane edges *)
  exec_range : float * float;
  volume_range : float * float;
  speed_range : float * float;
  unit_delay : float; (** uniform link delay; the delay matrix is constant *)
  target_utilization : float;
}

let default_spec =
  {
    tasks = 1_000_000;
    m = 1_000;
    cross_every = 16;
    exec_range = (50.0, 150.0);
    volume_range = (50.0, 150.0);
    speed_range = (0.5, 1.0);
    unit_delay = 0.75;
    target_utilization = 0.5;
  }

let mean (lo, hi) = 0.5 *. (lo +. hi)

let throughput ?(spec = default_spec) ~eps () =
  spec.target_utilization *. float_of_int spec.m *. mean spec.speed_range
  /. (float_of_int spec.tasks *. mean spec.exec_range
     *. float_of_int (eps + 1))

let platform ?(spec = default_spec) ~rng () =
  let lo_s, hi_s = spec.speed_range in
  let speeds = Array.make spec.m 1.0 in
  for p = 0 to spec.m - 1 do
    speeds.(p) <- Rng.uniform rng ~lo:lo_s ~hi:hi_s
  done;
  let bw = Array.make_matrix spec.m spec.m (1.0 /. spec.unit_delay) in
  Platform.create ~name:"huge-platform" ~speeds ~bandwidth:bw ()

let instance ?(spec = default_spec) ~rng ?(granularity = 1.0) () =
  if spec.tasks < 1 then invalid_arg "Huge.instance: empty graph";
  let v = spec.tasks in
  let width = max 1 spec.m in
  let b = Dag.Builder.create ~name:(Printf.sprintf "huge-v%d" v) v in
  let lo_e, hi_e = spec.exec_range in
  for t = 0 to v - 1 do
    Dag.Builder.set_exec b t (Rng.uniform rng ~lo:lo_e ~hi:hi_e)
  done;
  let lo_v, hi_v = spec.volume_range in
  let vol () = granularity *. Rng.uniform rng ~lo:lo_v ~hi:hi_v in
  for t = 0 to v - 1 do
    let layer = t / width and lane = t mod width in
    let below = t + width in
    if below < v then Dag.Builder.add_edge b ~volume:(vol ()) t below;
    if
      layer mod spec.cross_every = 0
      && lane mod 8 = 0
      && width > 1
    then begin
      let right = (layer + 1) * width + ((lane + 1) mod width) in
      if right < v && right <> below then
        Dag.Builder.add_edge b ~volume:(vol ()) t right
    end
  done;
  let dag = Dag.Builder.build b in
  let plat = platform ~spec ~rng () in
  { Paper_workload.dag; plat; granularity }
