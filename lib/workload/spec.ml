[@@@alert "-deprecated"]
(* This module is the one non-deprecated front door to the generators it
   wraps; the internal calls below are the sanctioned ones. *)

type impl =
  | Paper of Paper_workload.spec
  | Classic_fig1
  | Classic_fig2 of int
  | Huge of Huge.spec

type t = {
  name : string;
  descr : string;
  impl : impl;
}

let name s = s.name
let descr s = s.descr

let paper ?(name = "paper-custom") ?(descr = "custom paper-style workload")
    pspec =
  { name; descr; impl = Paper pspec }

let huge ?(name = "huge-custom") ?(descr = "custom huge workload") hspec =
  { name; descr; impl = Huge hspec }

let default =
  {
    name = "paper-layered";
    descr = "the paper's §5 workload: random layered DAGs, v∈[50,150], m=20";
    impl = Paper Paper_workload.default_spec;
  }

let all =
  [
    default;
    {
      name = "paper-fan-in-out";
      descr = "§5 parameters on bounded-degree random-growth graphs";
      impl =
        Paper
          { Paper_workload.default_spec with
            Paper_workload.family = Paper_workload.Fan_in_out };
    };
    {
      name = "paper-series-parallel";
      descr = "§5 parameters on random series-parallel graphs";
      impl =
        Paper
          { Paper_workload.default_spec with
            Paper_workload.family = Paper_workload.Series_parallel };
    };
    {
      name = "paper-stream-chain";
      descr = "§5 parameters on split/join pipelines (StreamIt-like)";
      impl =
        Paper
          { Paper_workload.default_spec with
            Paper_workload.family = Paper_workload.Stream_chain };
    };
    {
      name = "classic-fig1";
      descr = "the paper's Fig. 1 worked example (fixed graph and platform)";
      impl = Classic_fig1;
    };
    {
      name = "classic-fig2";
      descr = "the paper's Fig. 2 worked example on m=4 processors";
      impl = Classic_fig2 4;
    };
    {
      name = "huge";
      descr = "million-task layered pipeline on a thousand processors";
      impl = Huge Huge.default_spec;
    };
    {
      name = "huge-small";
      descr = "the huge family at test size: v=2000 on m=50";
      impl = Huge { Huge.default_spec with Huge.tasks = 2000; m = 50 };
    };
  ]

let find n = List.find_opt (fun s -> s.name = n) all

(* Spec strings: a registry name optionally followed by ':'-separated
   size overrides, e.g. "huge:v=100000:m=200" or "paper-layered:v=80".
   [v] pins the task count, [m] the processor count. *)
let of_string str =
  match String.split_on_char ':' str with
  | [] -> Error "empty spec string"
  | base :: overrides -> (
      match find base with
      | None -> Error (Printf.sprintf "unknown workload spec %S" base)
      | Some s ->
          let apply acc kv =
            match (acc, String.index_opt kv '=') with
            | Error _, _ -> acc
            | Ok _, None ->
                Error (Printf.sprintf "malformed override %S (want k=v)" kv)
            | Ok s, Some i -> (
                let key = String.sub kv 0 i in
                let value = String.sub kv (i + 1) (String.length kv - i - 1) in
                match (key, int_of_string_opt value) with
                | _, None ->
                    Error (Printf.sprintf "non-integer override %S" kv)
                | "v", Some v when v > 0 -> (
                    match s.impl with
                    | Paper p ->
                        Ok
                          { s with
                            impl = Paper { p with Paper_workload.tasks_range = (v, v) } }
                    | Huge h -> Ok { s with impl = Huge { h with Huge.tasks = v } }
                    | Classic_fig1 | Classic_fig2 _ ->
                        Error "classic specs have a fixed size")
                | "m", Some m when m > 0 -> (
                    match s.impl with
                    | Paper p ->
                        Ok { s with impl = Paper { p with Paper_workload.m } }
                    | Huge h -> Ok { s with impl = Huge { h with Huge.m } }
                    | Classic_fig2 _ -> Ok { s with impl = Classic_fig2 m }
                    | Classic_fig1 -> Error "classic-fig1 has a fixed platform")
                | _ -> Error (Printf.sprintf "unknown override key %S" key))
          in
          List.fold_left apply (Ok s) overrides)

let throughput s ~eps =
  match s.impl with
  | Paper _ | Classic_fig1 | Classic_fig2 _ -> Paper_workload.throughput ~eps
  | Huge h -> Huge.throughput ~spec:h ~eps ()

let generate s ~rng ?(granularity = 1.0) () =
  match s.impl with
  | Paper pspec -> Paper_workload.instance ~spec:pspec ~rng ~granularity ()
  | Classic_fig1 ->
      {
        Paper_workload.dag = Classic.fig1_graph;
        plat = Classic.fig1_platform;
        granularity;
      }
  | Classic_fig2 m ->
      {
        Paper_workload.dag = Classic.fig2_graph;
        plat = Classic.fig2_platform ~m;
        granularity;
      }
  | Huge hspec -> Huge.instance ~spec:hspec ~rng ~granularity ()
