(** One registry for every workload family.

    A {!t} names a complete recipe — graph family, sizes, platform,
    throughput law — and {!generate} turns it into a scheduling instance.
    Experiments should reach workloads through this module only; the
    per-family constructors ({!Paper_workload.instance},
    {!Huge.instance}, …) are implementation details and the first two are
    deprecated as direct entry points. *)

(** The recipe behind a spec.  Exposed so callers can resize
    programmatically ([{ p with tasks_range = … }]); prefer
    {!of_string} overrides where a string suffices. *)
type impl =
  | Paper of Paper_workload.spec
  | Classic_fig1
  | Classic_fig2 of int  (** processor count *)
  | Huge of Huge.spec

type t = {
  name : string;
  descr : string;
  impl : impl;
}

val name : t -> string
val descr : t -> string

val paper : ?name:string -> ?descr:string -> Paper_workload.spec -> t
(** Wrap a custom paper-style spec. *)

val huge : ?name:string -> ?descr:string -> Huge.spec -> t
(** Wrap a custom huge spec. *)

val default : t
(** ["paper-layered"] — the paper's own §5 workload. *)

val all : t list
(** Every registered spec, in presentation order. *)

val find : string -> t option
(** Lookup by exact name in {!all}. *)

val of_string : string -> (t, string) result
(** Parse a spec string: a registry name with optional ':'-separated size
    overrides, e.g. ["huge:v=100000:m=200"].  Keys: [v] pins the task
    count, [m] the processor count. *)

val throughput : t -> eps:int -> float
(** The spec's target throughput for [ε] failures. *)

val generate :
  t -> rng:Rng.t -> ?granularity:float -> unit -> Paper_workload.instance
(** Draw one instance.  For families migrated behind this registry the
    RNG consumption is identical to the old direct constructors, so
    historical figures reproduce byte-for-byte. *)
