type error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

let fail line fmt = Printf.ksprintf (fun message -> Error { line; message }) fmt

(* Split file contents into (line number, fields) with comments and blank
   lines removed. *)
let tokenize contents =
  String.split_on_char '\n' contents
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (n, line) ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         match
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun f -> f <> "")
         with
         | [] -> None
         | fields -> Some (n, fields))

let parse_float line what s =
  match float_of_string_opt s with
  | Some v when v > 0.0 -> Ok v
  | Some _ -> fail line "%s must be positive, got %s" what s
  | None -> fail line "cannot parse %s %S" what s

(* ------------------------------------------------------------------ *)
(* Workflows                                                           *)
(* ------------------------------------------------------------------ *)

type w_decl =
  | W_name of string
  | W_task of string * float
  | W_edge of string * string * float

let parse_workflow_decls contents =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | (line, fields) :: rest -> (
        match fields with
        | [ "workflow"; name ] -> loop ((line, W_name name) :: acc) rest
        | [ "task"; name; weight ] -> (
            match parse_float line "execution weight" weight with
            | Ok w -> loop ((line, W_task (name, w)) :: acc) rest
            | Error e -> Error e)
        | [ "edge"; src; dst; volume ] -> (
            match parse_float line "data volume" volume with
            | Ok v -> loop ((line, W_edge (src, dst, v)) :: acc) rest
            | Error e -> Error e)
        | keyword :: _ -> fail line "unexpected %S in a workflow file" keyword
        | [] -> loop acc rest)
  in
  loop [] (tokenize contents)

let parse_workflow contents =
  match parse_workflow_decls contents with
  | Error e -> Error e
  | Ok decls -> (
      let name = ref "workflow" in
      let tasks = ref [] and edges = ref [] in
      let rec collect = function
        | [] -> Ok ()
        | (_, W_name n) :: rest ->
            name := n;
            collect rest
        | (line, W_task (n, w)) :: rest ->
            if List.mem_assoc n !tasks then fail line "duplicate task %S" n
            else begin
              tasks := (n, w) :: !tasks;
              collect rest
            end
        | (line, W_edge (src, dst, v)) :: rest ->
            edges := (line, src, dst, v) :: !edges;
            collect rest
      in
      match collect decls with
      | Error e -> Error e
      | Ok () -> (
          let tasks = List.rev !tasks in
          if tasks = [] then fail 0 "workflow has no tasks"
          else begin
            let index = Hashtbl.create 16 in
            List.iteri (fun i (n, _) -> Hashtbl.replace index n i) tasks;
            let b = Dag.Builder.create ~name:!name (List.length tasks) in
            List.iteri
              (fun i (n, w) ->
                Dag.Builder.set_exec b i w;
                Dag.Builder.set_label b i n)
              tasks;
            let rec add_edges = function
              | [] -> Ok ()
              | (line, src, dst, v) :: rest -> (
                  match (Hashtbl.find_opt index src, Hashtbl.find_opt index dst) with
                  | None, _ -> fail line "edge source %S is not a task" src
                  | _, None -> fail line "edge destination %S is not a task" dst
                  | Some s, Some d -> (
                      match Dag.Builder.add_edge b ~volume:v s d with
                      | () -> add_edges rest
                      | exception Invalid_argument msg -> fail line "%s" msg))
            in
            match add_edges (List.rev !edges) with
            | Error e -> Error e
            | Ok () -> (
                match Dag.Builder.build b with
                | dag -> Ok dag
                | exception Invalid_argument _ ->
                    fail 0 "the edges form a cycle")
          end))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_workflow path =
  match read_file path with
  | contents -> parse_workflow contents
  | exception Sys_error msg -> fail 0 "%s" msg

let print_workflow dag =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "workflow %s\n" (Dag.name dag));
  Dag.iter_tasks dag (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "task %s %.12g\n" (Dag.label dag t) (Dag.exec dag t)));
  Dag.iter_edges dag (fun src dst vol ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s %.12g\n" (Dag.label dag src) (Dag.label dag dst)
           vol));
  Buffer.contents buf

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let save_workflow path dag = write_file path (print_workflow dag)

(* ------------------------------------------------------------------ *)
(* Platforms                                                           *)
(* ------------------------------------------------------------------ *)

let parse_platform contents =
  let name = ref "platform" in
  let procs = ref [] (* (name, speed), reverse order *) in
  let links = ref [] (* (line, a, b, bandwidth) *) in
  let default_bw = ref None in
  let rec collect = function
    | [] -> Ok ()
    | (line, fields) :: rest -> (
        match fields with
        | [ "platform"; n ] ->
            name := n;
            collect rest
        | [ "proc"; n; speed ] -> (
            if List.mem_assoc n !procs then fail line "duplicate processor %S" n
            else
              match parse_float line "speed" speed with
              | Ok s ->
                  procs := (n, s) :: !procs;
                  collect rest
              | Error e -> Error e)
        | [ "link"; a; b; bw ] -> (
            match parse_float line "bandwidth" bw with
            | Ok v ->
                links := (line, a, b, v) :: !links;
                collect rest
            | Error e -> Error e)
        | [ "default-bandwidth"; bw ] -> (
            match parse_float line "bandwidth" bw with
            | Ok v ->
                default_bw := Some v;
                collect rest
            | Error e -> Error e)
        | keyword :: _ -> fail line "unexpected %S in a platform file" keyword
        | [] -> collect rest)
  in
  match collect (tokenize contents) with
  | Error e -> Error e
  | Ok () -> (
      let procs = List.rev !procs in
      if procs = [] then fail 0 "platform has no processors"
      else begin
        let m = List.length procs in
        let index = Hashtbl.create 8 in
        List.iteri (fun i (n, _) -> Hashtbl.replace index n i) procs;
        let speeds = Array.of_list (List.map snd procs) in
        let default = Option.value ~default:1.0 !default_bw in
        let bw = Array.make_matrix m m default in
        let rec apply = function
          | [] -> Ok ()
          | (line, a, b, v) :: rest -> (
              match (Hashtbl.find_opt index a, Hashtbl.find_opt index b) with
              | None, _ -> fail line "link endpoint %S is not a processor" a
              | _, None -> fail line "link endpoint %S is not a processor" b
              | Some i, Some j ->
                  if i = j then fail line "link from %S to itself" a
                  else begin
                    bw.(i).(j) <- v;
                    bw.(j).(i) <- v;
                    apply rest
                  end)
        in
        match apply (List.rev !links) with
        | Error e -> Error e
        | Ok () -> (
            match Platform.create ~name:!name ~speeds ~bandwidth:bw () with
            | p -> Ok p
            | exception Invalid_argument msg -> fail 0 "%s" msg)
      end)

let load_platform path =
  match read_file path with
  | contents -> parse_platform contents
  | exception Sys_error msg -> fail 0 "%s" msg

let print_platform p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "platform %s\n" (Platform.name p));
  List.iter
    (fun u ->
      Buffer.add_string buf (Printf.sprintf "proc P%d %.12g\n" u (Platform.speed p u)))
    (Platform.procs p);
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if u < v then
            Buffer.add_string buf
              (Printf.sprintf "link P%d P%d %.12g\n" u v (Platform.bandwidth p u v)))
        (Platform.procs p))
    (Platform.procs p);
  Buffer.contents buf

let save_platform path p = write_file path (print_platform p)

(* ------------------------------------------------------------------ *)
(* Workload specs                                                      *)
(* ------------------------------------------------------------------ *)

let instance_of_spec ?(granularity = 1.0) ~seed str =
  match Spec.of_string str with
  | Error message -> Error { line = 0; message }
  | Ok spec ->
      let rng = Rng.create ~seed in
      Ok (Spec.generate spec ~rng ~granularity ())
