(** The [huge] workload family: million-task layered pipelines for the
    scaling experiments.

    A [layers × width] grid (width = [m]) of straight chain edges with
    sparse cross-lane edges every [cross_every] layers, built in O(v + e)
    with the granularity baked into the volume draws (no calibration
    pass).  See huge.ml for the layout and the analytic throughput. *)

type spec = {
  tasks : int;
  m : int;
  cross_every : int;
  exec_range : float * float;
  volume_range : float * float;
  speed_range : float * float;
  unit_delay : float;
  target_utilization : float;
}

val default_spec : spec
(** v = 10⁶ tasks on m = 10³ processors. *)

val throughput : ?spec:spec -> eps:int -> unit -> float
(** The analytic throughput putting every processor at
    [target_utilization] mean load with [ε+1] replicas. *)

val platform : ?spec:spec -> rng:Rng.t -> unit -> Platform.t
(** Speeds drawn from [speed_range]; constant link delay [unit_delay]. *)

val instance :
  ?spec:spec -> rng:Rng.t -> ?granularity:float -> unit -> Paper_workload.instance
(** One huge instance; [granularity] (default 1.0) scales the volumes. *)
