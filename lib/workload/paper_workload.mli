(** The random workload of the paper's evaluation (§5).

    Parameters, quoted: "The number of tasks is chosen uniformly from the
    range [50, 150].  The granularity of the task graph is varied from 0.2
    to 2.0, with increments of 0.2.  The number of processors is set to 20,
    the desired throughput is set to 1/(10(ε+1)) ... the unit message
    delay of the links and the message volume between two tasks are chosen
    uniformly from the ranges [0.5, 1] and [50, 150] respectively."

    Task execution weights are drawn from [50, 150] (the companion paper's
    range) and processor speeds from [0.5, 1]; each instance is then
    calibrated to its target granularity and time-normalized (see
    {!Calibrate}). *)

(** Structural family of the generated graphs.  The paper only says the
    parameters are "consistent with those used in the literature"; the
    default is the layered family, and Extension H sweeps the others. *)
type family =
  | Layered          (** random layered DAG (default) *)
  | Fan_in_out       (** bounded-degree random growth *)
  | Series_parallel  (** random two-terminal series-parallel graph *)
  | Stream_chain     (** split/join pipeline (StreamIt-like) *)

type spec = {
  tasks_range : int * int;          (** default (50, 150) *)
  m : int;                          (** default 20 *)
  speed_range : float * float;      (** default (0.5, 1.0) *)
  unit_delay_range : float * float; (** default (0.5, 1.0) *)
  exec_range : float * float;       (** default (50.0, 150.0) *)
  volume_range : float * float;     (** default (50.0, 150.0) *)
  family : family;
  edge_density : float;
      (** default 0.06, giving e/v ≈ 1.5 as in the chain-heavy streaming
          workflows of the literature; denser graphs make the one-port
          communication budget of the low-granularity points infeasible
          for any per-task scheduler (see DESIGN.md) *)
}

val default_spec : spec

val granularities : float list
(** The sweep [0.2; 0.4; …; 2.0]. *)

val throughput : eps:int -> float
(** The paper's desired throughput [1 / (10 (ε+1))]. *)

val platform : ?spec:spec -> rng:Rng.t -> unit -> Platform.t
  [@@deprecated
    "go through Spec.generate (Spec.paper spec) — the registry is the one workload entry point"]
(** A random heterogeneous platform: speeds and unit link delays drawn
    from the spec's ranges (the delay matrix is symmetric). *)

type instance = {
  dag : Dag.t;
  plat : Platform.t;
  granularity : float;
}

val instance : ?spec:spec -> rng:Rng.t -> granularity:float -> unit -> instance
  [@@deprecated
    "use Spec.generate (consumes the identical rng stream); direct calls bypass the registry"]
(** One calibrated random instance at the given granularity. *)
