(** A small plain-text interchange format for workflows and platforms, so
    schedules can be driven from files (see [bin/schedviz.exe --file]).

    Workflow files are line-oriented; [#] starts a comment:

    {v
    workflow video-pipeline
    task decode  8.0         # name and execution weight
    task encode  9.0
    edge decode encode 4.0   # source, destination, data volume
    v}

    Platform files:

    {v
    platform edge-cluster
    proc server-0 4.0        # name and speed
    proc node-1  1.5
    link server-0 node-1 8.0 # bandwidth; unlisted pairs get the default
    default-bandwidth 2.0
    v}

    Parsers report the first error with its line number.  Printers emit
    files the parsers accept (round-trip is exact up to float formatting
    and comment loss). *)

type error = { line : int; message : string }

val error_to_string : error -> string

(** {1 Workflows} *)

val parse_workflow : string -> (Dag.t, error) result
(** Parse from file contents.  Task names must be unique; edges must refer
    to declared tasks; the graph must be acyclic. *)

val load_workflow : string -> (Dag.t, error) result
(** Read the file at the given path; I/O failures are reported on line 0. *)

val print_workflow : Dag.t -> string
val save_workflow : string -> Dag.t -> unit

(** {1 Platforms} *)

val parse_platform : string -> (Platform.t, error) result
val load_platform : string -> (Platform.t, error) result
val print_platform : Platform.t -> string
val save_platform : string -> Platform.t -> unit

(** {1 Workload specs}

    Besides explicit workflow/platform files, a workload can be named by
    a registry spec string (see {!Spec.of_string}), so CLIs and
    experiment configs say ["huge:v=5000:m=50"] instead of wiring up a
    builder. *)

val instance_of_spec :
  ?granularity:float ->
  seed:int ->
  string ->
  (Paper_workload.instance, error) result
(** Generate a full instance (graph and platform) from a spec string.
    Deterministic in [seed]; parse errors are reported on line 0. *)
