(** Hierarchical cluster-then-place variants of LTF and R-LTF.

    Communication-heavy chain edges are contracted first
    ({!Clustering.affinity}, capped so no cluster exceeds a period on the
    slowest processor), the cluster DAG is scheduled with the ordinary
    LTF/R-LTF machinery, and the cluster schedule is expanded back to task
    level mirroring the quotient's processor and source choices — which
    preserves both condition (1) and the pairwise-disjoint kill-set
    discipline (see clustered.ml for the argument).

    At a million tasks on a thousand processors this trades the direct
    schedulers' [v·m] placement probes for a quotient of a few percent of
    [v], at the cost of the latency optimality of per-task placement. *)

val schedule :
  base:(?opts:Sched_api.options -> Types.problem -> Types.outcome) ->
  ?opts:Sched_api.options ->
  Types.problem ->
  Types.outcome
(** Cluster, schedule the quotient with [base], expand.  Failures on a
    cluster are reported at a representative member task. *)

val ltf : (module Sched_api.Algo)
(** ["C-LTF"]: clustered LTF. *)

val rltf : (module Sched_api.Algo)
(** ["C-R-LTF"]: clustered R-LTF. *)
