let wrap name (build : Types.problem -> Mapping.t) : (module Sched_api.Algo) =
  (module struct
    let name = name

    let run ?opts:_ (prob : Types.problem) : Types.outcome = Ok (build prob)
  end)

let all : (module Sched_api.Algo) list =
  [
    wrap "HEFT [9]" (fun p ->
        Heft.mapping ~throughput:p.Types.throughput p.Types.dag p.Types.platform);
    wrap "ETF [6]" (fun p ->
        Etf.mapping ~throughput:p.Types.throughput p.Types.dag p.Types.platform);
    wrap "Hary-Ozguner [4]" (fun p ->
        Hary.mapping p.Types.dag p.Types.platform ~throughput:p.Types.throughput);
    wrap "EXPERT [3]" (fun p ->
        Expert.mapping p.Types.dag p.Types.platform
          ~throughput:p.Types.throughput);
    wrap "TDA [11]" (fun p ->
        Tda.mapping p.Types.dag p.Types.platform ~throughput:p.Types.throughput);
    wrap "STDP [8]" (fun p ->
        Stdp.mapping p.Types.dag p.Types.platform ~throughput:p.Types.throughput);
    wrap "WMSH [10]" (fun p ->
        Wmsh.mapping p.Types.dag p.Types.platform ~throughput:p.Types.throughput);
    wrap "Hoang-Rabaey [5]" (fun p ->
        Hoang.mapping ~iterations:20 p.Types.dag p.Types.platform);
    (* Hierarchical cluster-then-place variants of the core pair; unlike
       the §3 heuristics above they honor the options record. *)
    Clustered.ltf;
    Clustered.rltf;
  ]

let find name =
  let norm s = String.lowercase_ascii (String.trim s) in
  List.find_opt
    (fun (module A : Sched_api.Algo) -> norm A.name = norm name)
    all
