type t = {
  dag : Dag.t;
  parent : int array;
  cluster_load : float array; (* valid at canonical representatives *)
}

let create dag =
  {
    dag;
    parent = Array.init (Dag.size dag) Fun.id;
    cluster_load = Array.init (Dag.size dag) (Dag.exec dag);
  }

let rec find t x =
  if t.parent.(x) = x then x
  else begin
    let root = find t t.parent.(x) in
    t.parent.(x) <- root;
    root
  end

let same t a b = find t a = find t b
let load t c = t.cluster_load.(find t c)

let merge t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let keep, drop = if ra < rb then (ra, rb) else (rb, ra) in
    t.parent.(drop) <- keep;
    t.cluster_load.(keep) <- t.cluster_load.(keep) +. t.cluster_load.(drop)
  end

let merge_if t ~max_load a b =
  let ra = find t a and rb = find t b in
  if ra = rb then true
  else if t.cluster_load.(ra) +. t.cluster_load.(rb) > max_load then false
  else begin
    merge t a b;
    true
  end

let canonical_ids t =
  let seen = Hashtbl.create 16 in
  let ids = ref [] in
  Dag.iter_tasks t.dag (fun task ->
      let c = find t task in
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        ids := c :: !ids
      end);
  List.rev !ids

let n_clusters t = List.length (canonical_ids t)

let members t =
  let ids = canonical_ids t in
  let index = Hashtbl.create 16 in
  List.iteri (fun i c -> Hashtbl.add index c i) ids;
  let slots = Array.make (List.length ids) [] in
  for task = Dag.size t.dag - 1 downto 0 do
    let i = Hashtbl.find index (find t task) in
    slots.(i) <- task :: slots.(i)
  done;
  slots

let cut_volume t =
  Dag.fold_edges t.dag ~init:0.0 ~f:(fun acc src dst vol ->
      if same t src dst then acc else acc +. vol)

(* Safe merges for hierarchical placement: an edge [u -> v] with
   [out_degree u = 1] and [in_degree v = 1] admits no alternate path
   between its endpoints, so contracting it (and, inductively, any set of
   such contractions — every cluster stays a path segment whose interior
   nodes have in/out degree 1) keeps the quotient graph acyclic.  This is
   the linear-chain clustering the Hary–Özgüner baseline hints at, made a
   reusable primitive. *)
let chain_edge dag src dst =
  Dag.out_degree dag src = 1 && Dag.in_degree dag dst = 1

let chains ?(max_load = infinity) dag =
  let t = create dag in
  let csr = Dag.csr_succs dag in
  for src = 0 to Dag.size dag - 1 do
    if csr.Dag.row_ptr.(src + 1) - csr.Dag.row_ptr.(src) = 1 then begin
      let dst = csr.Dag.cols.(csr.Dag.row_ptr.(src)) in
      if Dag.in_degree dag dst = 1 then ignore (merge_if t ~max_load src dst)
    end
  done;
  t

let affinity ?(max_load = infinity) dag =
  let t = create dag in
  let edges =
    Dag.fold_edges dag ~init:[] ~f:(fun acc src dst vol ->
        if chain_edge dag src dst then (src, dst, vol) :: acc else acc)
    |> List.sort (fun (sa, da, va) (sb, db, vb) ->
           match compare vb va with
           | 0 -> compare (sa, da) (sb, db)
           | c -> c)
  in
  List.iter (fun (src, dst, _) -> ignore (merge_if t ~max_load src dst)) edges;
  t

(* The cluster DAG: one node per cluster (dense ids in [members] order),
   execution weight the summed member weights, and one edge per pair of
   clusters joined by at least one task edge, carrying the summed volume.
   Merges restricted to [chain_edge] contractions guarantee acyclicity, so
   [Dag.Builder.build]'s cycle check never fires for quotients built from
   {!chains} or {!affinity}. *)
let quotient t =
  let groups = members t in
  let k = Array.length groups in
  let cluster_of = Array.make (Dag.size t.dag) 0 in
  Array.iteri
    (fun i tasks -> List.iter (fun task -> cluster_of.(task) <- i) tasks)
    groups;
  let b = Dag.Builder.create ~name:(Dag.name t.dag ^ "-quotient") k in
  Array.iteri
    (fun i tasks ->
      Dag.Builder.set_exec b i
        (List.fold_left (fun acc task -> acc +. Dag.exec t.dag task) 0.0 tasks);
      Dag.Builder.set_label b i (Printf.sprintf "c%d" i))
    groups;
  let vols = Hashtbl.create (max 16 k) in
  Dag.iter_edges t.dag (fun src dst vol ->
      let cs = cluster_of.(src) and cd = cluster_of.(dst) in
      if cs <> cd then begin
        let key = (cs, cd) in
        let prev = try Hashtbl.find vols key with Not_found -> 0.0 in
        Hashtbl.replace vols key (prev +. vol)
      end);
  (* Insert in a deterministic order (hash tables iterate arbitrarily). *)
  Hashtbl.fold (fun key vol acc -> (key, vol) :: acc) vols []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun ((cs, cd), vol) -> Dag.Builder.add_edge b ~volume:vol cs cd);
  (Dag.Builder.build b, cluster_of, groups)

let to_assignment t plat =
  let groups = members t in
  let group_load =
    Array.map
      (fun tasks ->
        List.fold_left (fun acc task -> acc +. Dag.exec t.dag task) 0.0 tasks)
      groups
  in
  let order =
    List.init (Array.length groups) Fun.id
    |> List.sort (fun a b ->
           match compare group_load.(b) group_load.(a) with
           | 0 -> compare a b
           | c -> c)
  in
  let proc_time = Array.make (Platform.size plat) 0.0 in
  let assignment = Array.make (Dag.size t.dag) 0 in
  List.iter
    (fun g ->
      (* Place on the processor finishing this cluster soonest. *)
      let best = ref 0 and best_time = ref infinity in
      List.iter
        (fun proc ->
          let time = proc_time.(proc) +. (group_load.(g) /. Platform.speed plat proc) in
          if time < !best_time then begin
            best := proc;
            best_time := time
          end)
        (Platform.procs plat);
      proc_time.(!best) <- !best_time;
      List.iter (fun task -> assignment.(task) <- !best) groups.(g))
    order;
  assignment
