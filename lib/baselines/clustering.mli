(** Cluster bookkeeping shared by the pre-clustering baselines
    (Hary–Özgüner, STDP, WMSH).

    A clustering is a partition of the tasks; clusters are later mapped
    one-to-one (or many-to-one, after merging) onto processors.  The
    structure is a union-find with per-cluster execution loads. *)

type t

val create : Dag.t -> t
(** One singleton cluster per task. *)

val find : t -> Dag.task -> int
(** Canonical cluster id of the task. *)

val same : t -> Dag.task -> Dag.task -> bool

val load : t -> int -> float
(** Total execution weight of the cluster (raw work units). *)

val merge : t -> Dag.task -> Dag.task -> unit
(** Union the two tasks' clusters. *)

val merge_if : t -> max_load:float -> Dag.task -> Dag.task -> bool
(** Merge unless the combined execution weight would exceed [max_load];
    returns whether the merge happened (also true when already together). *)

val n_clusters : t -> int

val members : t -> Dag.task list array
(** Tasks of each canonical cluster, indexed by a dense renumbering;
    clusters in increasing order of their smallest task. *)

val cut_volume : t -> float
(** Total volume of edges whose endpoints lie in different clusters. *)

(** {1 Hierarchical placement primitives}

    Cycle-safe clusterings for the cluster-then-place schedulers: only
    edges [u -> v] with [out_degree u = 1] and [in_degree v = 1] are ever
    contracted, so every cluster is a linear path segment and the quotient
    graph is guaranteed acyclic. *)

val chains : ?max_load:float -> Dag.t -> t
(** Contract every chain edge in task order, capping each cluster's
    execution weight at [max_load] (default unbounded). *)

val affinity : ?max_load:float -> Dag.t -> t
(** Contract chain edges in decreasing volume order (heaviest
    communication first), capping cluster weight at [max_load]. *)

val quotient : t -> Dag.t * int array * Dag.task list array
(** [quotient t] is [(cluster_dag, cluster_of, members)]: the cluster DAG
    with summed execution weights and summed inter-cluster volumes, the
    task -> cluster-id map, and the member lists (cluster ids match
    {!members} order).  Only valid for clusterings built from {!chains} /
    {!affinity} (arbitrary merges may make the quotient cyclic, which
    [Dag.Builder.build] rejects). *)

val to_assignment :
  t -> Platform.t -> Assignment.t
(** Map clusters to processors: clusters in decreasing load order, each
    placed on the processor with the smallest accumulated time load
    (largest-first bin packing on heterogeneous speeds), merging beyond
    [m] clusters implicitly. *)
