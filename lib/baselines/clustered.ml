(* Hierarchical (cluster-then-place) variants of LTF and R-LTF.

   A million-task DAG on a thousand-processor platform makes the direct
   schedulers pay v · m placement probes.  The clustered variants first
   contract communication-heavy chain edges (see {!Clustering.affinity};
   every cluster is a linear path segment, so the quotient stays acyclic),
   schedule the much smaller cluster DAG with the ordinary LTF/R-LTF
   machinery, and then expand the cluster schedule back to task level.

   The expansion mirrors the quotient schedule exactly:
   - copy [k] of every member task runs on the processor of copy [k] of
     its cluster (so sibling replicas inherit the quotient's
     distinct-processor discipline),
   - a within-cluster predecessor feeds copy [k] from its own copy [k]
     (co-located, communication-free),
   - a cross-cluster predecessor feeds copy [k] through the same replica
     copies the quotient schedule chose for the cluster edge.

   Fault tolerance carries over: the task-level kill set of copy [k] is
   (contained in) the quotient kill set of its cluster's copy [k], and the
   quotient scheduler keeps those pairwise disjoint per cluster, hence per
   task.  Per-processor loads also carry over — cluster execution weights
   are member sums and cluster edge volumes are cross-edge sums, so
   condition (1) on the quotient is condition (1) on the expansion (up to
   float association). *)

let cluster_cap (prob : Types.problem) =
  if prob.Types.throughput <= 0.0 then infinity
  else begin
    let plat = prob.Types.platform in
    let min_speed =
      List.fold_left
        (fun acc p -> Float.min acc (Platform.speed plat p))
        infinity
        (Platform.procs plat)
    in
    (* No cluster may exceed a full period on the slowest processor, or
       the quotient problem is infeasible by construction. *)
    Types.period prob *. min_speed
  end

(* Chain order of a path-segment cluster: start from the member with no
   predecessor inside the cluster and follow the unique within-cluster
   successor. *)
let chain_order dag cluster_of members_of_c c =
  let inside t = cluster_of.(t) = c in
  let head =
    List.filter
      (fun t -> not (List.exists (fun (p, _) -> inside p) (Dag.preds dag t)))
      members_of_c
  in
  match (head, members_of_c) with
  | [ h ], _ :: _ :: _ ->
      let rec follow t acc =
        match List.find_opt (fun (s, _) -> inside s) (Dag.succs dag t) with
        | Some (s, _) -> follow s (s :: acc)
        | None -> List.rev acc
      in
      follow h [ h ]
  | _ -> members_of_c (* singleton, or not a path segment: id order *)

let expand (prob : Types.problem) ~cluster_of ~groups (qmapping : Mapping.t) =
  let dag = prob.Types.dag in
  let qdag = Mapping.dag qmapping in
  let copies = Mapping.n_copies qmapping in
  let mapping =
    Mapping.create ~dag ~platform:prob.Types.platform ~eps:prob.Types.eps
  in
  let order = Topo.order qdag in
  Array.iter
    (fun c ->
      let chain = chain_order dag cluster_of groups.(c) c in
      List.iter
        (fun t ->
          for k = 0 to copies - 1 do
            let qr = Mapping.replica_exn qmapping c k in
            let sources =
              List.map
                (fun (p, _) ->
                  if cluster_of.(p) = c then
                    (p, [ { Replica.task = p; copy = k } ])
                  else
                    ( p,
                      List.map
                        (fun (src : Replica.id) ->
                          { Replica.task = p; copy = src.copy })
                        (Replica.sources_for qr cluster_of.(p)) ))
                (Dag.preds dag t)
            in
            Mapping.assign mapping
              {
                Replica.id = { Replica.task = t; copy = k };
                proc = qr.Replica.proc;
                sources;
              }
          done)
        chain)
    order;
  mapping

let quotient_problem (prob : Types.problem) qdag =
  Types.problem ~dag:qdag ~platform:prob.Types.platform ~eps:prob.Types.eps
    ~throughput:prob.Types.throughput

let schedule ~base ?opts (prob : Types.problem) : Types.outcome =
  Obs.with_span "baseline.clustered.run" (fun () ->
      let clustering =
        Clustering.affinity ~max_load:(cluster_cap prob) prob.Types.dag
      in
      let qdag, cluster_of, groups = Clustering.quotient clustering in
      let qprob = quotient_problem prob qdag in
      match base ?opts qprob with
      | Error (Types.No_feasible_processor (c, copy))
        when c >= 0 && c < Array.length groups ->
          (* Report the failure at a representative member task. *)
          Error (Types.No_feasible_processor (List.hd groups.(c), copy))
      | Error e -> Error e
      | Ok qmapping -> Ok (expand prob ~cluster_of ~groups qmapping))

module Ltf_algo = struct
  let name = "C-LTF"
  let run ?opts prob = schedule ~base:Ltf.schedule ?opts prob
end

module Rltf_algo = struct
  let name = "C-R-LTF"
  let run ?opts prob = schedule ~base:Rltf.schedule ?opts prob
end

let ltf : (module Sched_api.Algo) = (module Ltf_algo)
let rltf : (module Sched_api.Algo) = (module Rltf_algo)
