(** The §3 related-work heuristics as {!Sched_api.Algo} registry
    entries, so figure sweeps iterate one uniform list instead of naming
    each baseline.

    The baselines are single-copy (ε = 0) heuristics: each entry ignores
    the scheduling options and the problem's [eps] and always succeeds,
    returning the mapping its assignment induces under the support
    discipline.  Pass problems with [eps = 0] — the entries themselves
    never replicate.  The core algorithms live in [Scheduler.all]; the
    two registries concatenate cleanly. *)

val all : (module Sched_api.Algo) list
(** In the presentation order of the baseline comparison figure:
    HEFT, ETF, Hary-Özgüner, EXPERT, TDA, STDP, WMSH, Hoang-Rabaey. *)

val find : string -> (module Sched_api.Algo) option
(** Case-insensitive lookup in {!all} by name. *)
