(* The observability layer: registry semantics, merge laws, the JSON
   round trip, the documented key set, the Scheduler.Algo registry — and
   the two contracts everything else leans on: recording never changes a
   result, and parallel sweeps fold worker registries deterministically. *)

open Test_support

let case = Fixtures.case
let slow_case = Fixtures.slow_case
let check_int = Fixtures.check_int
let check_float = Fixtures.check_float
let check_true = Fixtures.check_true
let must_schedule = Fixtures.must_schedule
let paper_instance = Fixtures.paper_instance

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i =
    i + n <= h && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

(* Most tests drive a private registry directly; the ones that exercise
   the process-global accumulator flip [Obs.set_enabled] and must restore
   the disabled default so they cannot leak state into each other. *)
let with_obs f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Registry semantics                                                  *)
(* ------------------------------------------------------------------ *)

let registry_tests =
  [
    case "counters add up and default to zero" (fun () ->
        let r = Obs.Registry.create () in
        check_int "absent" 0 (Obs.Registry.counter r "x");
        Obs.Registry.incr r "x";
        Obs.Registry.incr ~by:41 r "x";
        check_int "42" 42 (Obs.Registry.counter r "x");
        Obs.Registry.incr ~by:0 r "y";
        check_true "touch registers" (List.mem_assoc "y" (Obs.Registry.counters r)));
    case "histograms track count/sum/min/max" (fun () ->
        let r = Obs.Registry.create () in
        List.iter (Obs.Registry.observe r "h") [ 3.0; 1.0; 2.0 ];
        match Obs.Registry.histogram r "h" with
        | None -> Alcotest.fail "histogram missing"
        | Some h ->
            check_int "count" 3 h.Obs.Registry.count;
            check_float "sum" 6.0 h.Obs.Registry.sum;
            check_float "min" 1.0 h.Obs.Registry.min;
            check_float "max" 3.0 h.Obs.Registry.max;
            check_int "bucket total" 3
              (List.fold_left (fun a (_, c) -> a + c) 0 h.Obs.Registry.buckets));
    case "log-scale buckets separate magnitudes" (fun () ->
        let r = Obs.Registry.create () in
        Obs.Registry.observe r "h" 1.0;
        Obs.Registry.observe r "h" 1000.0;
        match Obs.Registry.histogram r "h" with
        | None -> Alcotest.fail "histogram missing"
        | Some h ->
            check_true "two distinct buckets"
              (List.length h.Obs.Registry.buckets >= 2));
    case "span stats accumulate calls and total" (fun () ->
        let r = Obs.Registry.create () in
        Obs.Registry.span_add r "s" 0.25;
        Obs.Registry.span_add r "s" 0.75;
        match Obs.Registry.span_stats r "s" with
        | None -> Alcotest.fail "span missing"
        | Some s ->
            check_int "calls" 2 s.Obs.Registry.calls;
            check_float "total" 1.0 s.Obs.Registry.total);
    case "clear empties, is_empty reports it" (fun () ->
        let r = Obs.Registry.create () in
        check_true "fresh is empty" (Obs.Registry.is_empty r);
        Obs.Registry.incr r "x";
        Obs.Registry.observe r "h" 1.0;
        check_true "not empty" (not (Obs.Registry.is_empty r));
        Obs.Registry.clear r;
        check_true "cleared" (Obs.Registry.is_empty r));
  ]

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)
(* ------------------------------------------------------------------ *)

(* A registry with a deterministic but varied content, derived from an
   integer seed without any RNG. *)
let synth seed =
  let r = Obs.Registry.create () in
  let n = 1 + (seed mod 5) in
  for i = 0 to n do
    Obs.Registry.incr ~by:(1 + ((seed + i) mod 7)) r
      (Printf.sprintf "c%d" (i mod 3));
    Obs.Registry.observe r "h"
      (float_of_int (1 + ((seed * (i + 1)) mod 1000)));
    Obs.Registry.span_add r
      (Printf.sprintf "s%d" (i mod 2))
      (float_of_int ((seed + i) mod 10) /. 8.0)
  done;
  r

let registry_equal a b =
  (* Canonical JSON sorts keys, so equality of dumps is registry
     equality. *)
  String.equal (Obs.Registry.to_json a) (Obs.Registry.to_json b)

let merge_tests =
  let merged rs =
    let into = Obs.Registry.create () in
    List.iter (fun r -> Obs.Registry.merge ~into r) rs;
    into
  in
  [
    case "merge adds counters, histograms and spans" (fun () ->
        let m = merged [ synth 1; synth 2 ] in
        check_int "counter"
          (Obs.Registry.counter (synth 1) "c0" + Obs.Registry.counter (synth 2) "c0")
          (Obs.Registry.counter m "c0");
        let count r =
          match Obs.Registry.histogram r "h" with
          | None -> 0
          | Some h -> h.Obs.Registry.count
        in
        check_int "histogram count"
          (count (synth 1) + count (synth 2))
          (count m));
    case "merge into empty is identity" (fun () ->
        check_true "identity" (registry_equal (merged [ synth 7 ]) (synth 7)));
    case "merge is associative (QCheck)" (fun () ->
        let prop (a, b, c) =
          let left =
            merged [ merged [ synth a; synth b ]; synth c ]
          and right = merged [ synth a; merged [ synth b; synth c ] ] in
          registry_equal left right
        in
        let arb = QCheck.(triple (int_range 0 50) (int_range 0 50) (int_range 0 50)) in
        let t = QCheck.Test.make ~count:50 ~name:"assoc" arb prop in
        QCheck.Test.check_exn t);
  ]

(* ------------------------------------------------------------------ *)
(* JSON round trip                                                     *)
(* ------------------------------------------------------------------ *)

let json_tests =
  [
    case "to_json / of_json round trips" (fun () ->
        let r = synth 13 in
        match Obs.Registry.of_json (Obs.Registry.to_json r) with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok r' -> check_true "round trip" (registry_equal r r'));
    case "round trip over synthetic registries (QCheck)" (fun () ->
        let prop seed =
          let r = synth seed in
          match Obs.Registry.of_json (Obs.Registry.to_json r) with
          | Error _ -> false
          | Ok r' -> registry_equal r r'
        in
        QCheck.Test.check_exn
          (QCheck.Test.make ~count:100 ~name:"round-trip"
             QCheck.(int_range 0 10_000)
             prop));
    case "of_json rejects garbage" (fun () ->
        check_true "not JSON"
          (Result.is_error (Obs.Registry.of_json "not json at all"));
        check_true "wrong shape"
          (Result.is_error (Obs.Registry.of_json "[1,2,3]")));
    case "pp_text mentions every section" (fun () ->
        let s = Format.asprintf "%a" Obs.Registry.pp_text (synth 3) in
        List.iter
          (fun needle -> check_true needle (contains s needle))
          [ "c0"; "h"; "s0" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Instrumentation is observational                                    *)
(* ------------------------------------------------------------------ *)

let paper_problem ?(seed = 42) () =
  let inst = paper_instance ~seed () in
  Types.problem ~dag:inst.Paper_workload.dag ~platform:inst.Paper_workload.plat
    ~eps:1
    ~throughput:(Paper_workload.throughput ~eps:1)

let fingerprint mapping = Mapping_io.print mapping

let purity_tests =
  [
    case "disabled by default; recording off costs nothing visible" (fun () ->
        check_true "disabled" (not (Obs.enabled ()));
        Obs.incr "never";
        Obs.observe "never.h" 1.0;
        Obs.with_span "never.s" ignore;
        check_true "nothing recorded" (Obs.Registry.is_empty (Obs.snapshot ())));
    case "LTF schedule identical with metrics on and off (QCheck)" (fun () ->
        let prop seed =
          let prob = paper_problem ~seed () in
          let opts = Scheduler.(default |> with_mode Best_effort) in
          let plain =
            match Ltf.schedule ~opts prob with
            | Ok m -> fingerprint m
            | Error f -> Types.failure_to_string f
          in
          let observed =
            with_obs (fun () ->
                match Ltf.schedule ~opts prob with
                | Ok m -> fingerprint m
                | Error f -> Types.failure_to_string f)
          in
          String.equal plain observed
        in
        QCheck.Test.check_exn
          (QCheck.Test.make ~count:10 ~name:"obs-invariant"
             QCheck.(int_range 0 10_000)
             prop));
    case "a scheduler run populates the core metrics" (fun () ->
        with_obs (fun () ->
            let opts = Scheduler.(default |> with_mode Best_effort) in
            (match Ltf.schedule ~opts (paper_problem ()) with
            | Ok _ -> ()
            | Error f -> Alcotest.failf "LTF failed: %s" (Types.failure_to_string f));
            (match Rltf.schedule ~opts (paper_problem ()) with
            | Ok _ -> ()
            | Error f -> Alcotest.failf "R-LTF failed: %s" (Types.failure_to_string f));
            let reg = Obs.snapshot () in
            check_true "probes" (Obs.Registry.counter reg "core.placement_probes" > 0);
            check_true "commits" (Obs.Registry.counter reg "core.commits" > 0);
            check_true "chunks" (Obs.Registry.counter reg "core.chunks" > 0);
            check_true "chunk-size histogram"
              (Obs.Registry.histogram reg "core.chunk_size" <> None);
            check_true "ltf span"
              (Obs.Registry.span_stats reg "core.ltf.run" <> None);
            check_true "rltf span"
              (Obs.Registry.span_stats reg "core.rltf.run" <> None)));
    case "a simulator run populates the sim metrics" (fun () ->
        with_obs (fun () ->
            let mapping =
              must_schedule ~mode:Scheduler.Best_effort `Rltf (paper_problem ())
            in
            ignore (Engine.run ~n_items:2 mapping);
            let reg = Obs.snapshot () in
            check_true "events" (Obs.Registry.counter reg "sim.events_popped" > 0);
            check_int "runs" 1 (Obs.Registry.counter reg "sim.runs");
            check_true "heap high-water"
              (match Obs.Registry.histogram reg "sim.heap_size" with
              | Some h -> h.Obs.Registry.max >= 1.0
              | None -> false)));
    case "collect under a domain pool folds worker registries" (fun () ->
        let config =
          {
            (Fig_common.quick ~eps:1 ~crashes:0) with
            Fig_common.graphs_per_point = 2;
            granularities = [ 0.8; 1.2 ];
          }
        in
        let trials reg = Obs.Registry.counter reg "exp.trials" in
        let seq, seq_samples =
          with_obs (fun () ->
              let samples = Fig_common.collect ~jobs:1 config in
              (trials (Obs.snapshot ()), samples))
        in
        let par, par_samples =
          with_obs (fun () ->
              let samples = Fig_common.collect ~jobs:2 config in
              (trials (Obs.snapshot ()), samples))
        in
        check_int "same trial count either way" seq par;
        check_int "all trials counted" 4 par;
        check_true "samples byte-identical"
          (List.for_all2
             (fun (x : Fig_common.sample) (y : Fig_common.sample) ->
               Int64.equal
                 (Int64.bits_of_float (Fig_common.ltf_sim x))
                 (Int64.bits_of_float (Fig_common.ltf_sim y)))
             seq_samples par_samples));
  ]

(* ------------------------------------------------------------------ *)
(* The documented key set                                              *)
(* ------------------------------------------------------------------ *)

let report_tests =
  [
    case "an empty registry misses every required key" (fun () ->
        match Obs_report.validate (Obs.Registry.create ()) with
        | Ok () -> Alcotest.fail "empty registry validated"
        | Error missing ->
            check_int "all keys missing"
              (List.length Obs_report.required_counters
              + List.length Obs_report.required_histograms
              + List.length Obs_report.required_spans
              + 1 (* the exp.fig.<figure> span *))
              (List.length missing));
    case "validate_string rejects invalid JSON" (fun () ->
        check_true "rejected" (Result.is_error (Obs_report.validate_string "{")));
    slow_case
      "a latency+recovery+convergence+traffic+faults run satisfies \
       --check-metrics"
      (fun () ->
        with_obs (fun () ->
            (* The documented key set spans all five profiles: the
               latency experiment covers the scheduler/simulator/sweep
               keys, the recovery experiment the ops.recovery.* family,
               the traffic experiment the sim.queue.* / sim.drops
               open-system keys (only open runs record the occupancy
               histogram), the convergence + exact-recovery runs the
               rel.* calculus keys, and the faults experiment the
               sim.retries / sim.gray.* / sim.faults.* / ops.evictions
               family (the sim.retry_backoff_time histogram only exists
               once a retry actually fires) — the same set CI profiles
               for --check-metrics.  [exact:true] matters: the recovery
               survival curve analyses under the [Independent] model,
               the only caller guaranteed to take the antichain
               evaluator and record the rel.defeat_cuts histogram
               (small uniform analyses dispatch to subset enumeration,
               which never builds the defeat cut family). *)
            let out_dir = Filename.temp_file "obs" ".d" in
            Sys.remove out_dir;
            List.iter
              (fun name ->
                let e = Option.get (Runner.find name) in
                e.Runner.run ~workload:None ~quick:true ~seed:7 ~jobs:2 ~exact:true ~out_dir)
              [ "latency"; "recovery"; "convergence"; "traffic"; "faults" ];
            let json = Obs.Registry.to_json (Obs.snapshot ()) in
            match Obs_report.validate_string json with
            | Ok () -> ()
            | Error missing ->
                Alcotest.failf "missing keys: %s" (String.concat ", " missing)));
  ]

(* ------------------------------------------------------------------ *)
(* The Algo registry and the deprecated wrappers                       *)
(* ------------------------------------------------------------------ *)

let registry_api_tests =
  [
    case "Scheduler.all exposes LTF and R-LTF" (fun () ->
        check_int "two algorithms" 2 (List.length Scheduler.all);
        List.iter
          (fun name -> check_true name (Scheduler.find name <> None))
          [ "LTF"; "r-ltf"; "  ltf  " ];
        check_true "unknown" (Scheduler.find "nope" = None));
    case "registry entries schedule like the direct calls" (fun () ->
        let prob = paper_problem () in
        let opts = Scheduler.(default |> with_mode Best_effort) in
        let via_registry name =
          match Scheduler.find name with
          | None -> Alcotest.failf "%s not registered" name
          | Some (module A : Scheduler.Algo) -> (
              match A.run ~opts prob with
              | Ok m -> fingerprint m
              | Error f -> Types.failure_to_string f)
        in
        let direct outcome =
          match outcome with
          | Ok m -> fingerprint m
          | Error f -> Types.failure_to_string f
        in
        Alcotest.(check string) "LTF"
          (direct (Ltf.schedule ~opts prob))
          (via_registry "LTF");
        Alcotest.(check string) "R-LTF"
          (direct (Rltf.schedule ~opts prob))
          (via_registry "R-LTF"));
    case "baseline registry covers the Section 3 heuristics" (fun () ->
        check_int "eight heuristics plus the clustered pair" 10
          (List.length Baseline_registry.all);
        check_true "HEFT" (Baseline_registry.find "HEFT [9]" <> None);
        check_true "C-LTF" (Baseline_registry.find "C-LTF" <> None);
        check_true "C-R-LTF" (Baseline_registry.find "C-R-LTF" <> None));
    case "builders and record syntax build the same options" (fun () ->
        let prob = paper_problem () in
        let built = Scheduler.(default |> with_mode Best_effort) in
        (* The canonical record re-exported by Scheduler is the one the
           algorithms consume: literal record syntax and the builders are
           interchangeable. *)
        let literal = { Scheduler.default with mode = Scheduler.Best_effort } in
        let fp opts =
          match Ltf.schedule ~opts prob with
          | Ok m -> fingerprint m
          | Error f -> Types.failure_to_string f
        in
        Alcotest.(check string) "same mapping" (fp built) (fp literal));
  ]

let () =
  Alcotest.run "observability"
    [
      ("registry", registry_tests);
      ("merge", merge_tests);
      ("json", json_tests);
      ("purity", purity_tests);
      ("report", report_tests);
      ("algo-registry", registry_api_tests);
    ]
