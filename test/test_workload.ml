(* This file unit-tests the per-family generators themselves, so it is
   the one test allowed to call the deprecated direct constructors. *)
[@@@alert "-deprecated"]

open Test_support

let case = Fixtures.case
let check_int = Fixtures.check_int
let check_float = Fixtures.check_float
let check_true = Fixtures.check_true

(* ------------------------------------------------------------------ *)
(* RNG                                                                 *)
(* ------------------------------------------------------------------ *)

let rng_tests =
  [
    case "equal seeds give equal streams" (fun () ->
        let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
        for _ = 1 to 100 do
          check_true "same" (Rng.bits64 a = Rng.bits64 b)
        done);
    case "different seeds differ" (fun () ->
        let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
        check_true "differ" (Rng.bits64 a <> Rng.bits64 b));
    case "int stays in range" (fun () ->
        let rng = Rng.create ~seed:1 in
        for _ = 1 to 1000 do
          let v = Rng.int rng 7 in
          check_true "range" (v >= 0 && v < 7)
        done);
    case "int rejects non-positive bounds" (fun () ->
        Alcotest.check_raises "bound" (Invalid_argument "") (fun () ->
            try ignore (Rng.int (Rng.create ~seed:1) 0)
            with Invalid_argument _ -> raise (Invalid_argument "")));
    case "uniform stays in range" (fun () ->
        let rng = Rng.create ~seed:2 in
        for _ = 1 to 1000 do
          let v = Rng.uniform rng ~lo:0.5 ~hi:1.0 in
          check_true "range" (v >= 0.5 && v < 1.0)
        done);
    case "uniform_int is inclusive" (fun () ->
        let rng = Rng.create ~seed:3 in
        let seen = Array.make 3 false in
        for _ = 1 to 200 do
          seen.(Rng.uniform_int rng ~lo:0 ~hi:2) <- true
        done;
        check_true "all values hit" (Array.for_all Fun.id seen));
    case "int is roughly uniform" (fun () ->
        let rng = Rng.create ~seed:4 in
        let counts = Array.make 4 0 in
        for _ = 1 to 4000 do
          let v = Rng.int rng 4 in
          counts.(v) <- counts.(v) + 1
        done;
        Array.iter
          (fun c -> check_true "within 20% of fair" (c > 800 && c < 1200))
          counts);
    case "split decorrelates" (fun () ->
        let a = Rng.create ~seed:5 in
        let b = Rng.split a in
        check_true "streams differ" (Rng.bits64 a <> Rng.bits64 b));
    case "shuffle permutes" (fun () ->
        let rng = Rng.create ~seed:6 in
        let a = Array.init 20 Fun.id in
        Rng.shuffle rng a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "same multiset" (Array.init 20 Fun.id) sorted);
    case "choose picks members" (fun () ->
        let rng = Rng.create ~seed:7 in
        for _ = 1 to 50 do
          check_true "member" (List.mem (Rng.choose rng [ 1; 2; 3 ]) [ 1; 2; 3 ])
        done);
    case "bool respects extreme probabilities" (fun () ->
        let rng = Rng.create ~seed:8 in
        for _ = 1 to 100 do
          check_true "p=1" (Rng.bool rng 1.0);
          check_true "p=0" (not (Rng.bool rng 0.0))
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let connected_to_entry g =
  (* every task is reachable from some entry *)
  let reached = Array.make (Dag.size g) false in
  List.iter
    (fun entry ->
      reached.(entry) <- true;
      Array.iteri (fun t r -> if r then reached.(t) <- true) (Topo.reachable g entry))
    (Dag.entries g);
  Array.for_all Fun.id reached

let generator_tests =
  [
    case "layered graphs have the requested size" (fun () ->
        let rng = Rng.create ~seed:1 in
        for _ = 1 to 10 do
          let g = Random_dag.layered ~rng ~tasks:40 () in
          check_int "tasks" 40 (Dag.size g);
          check_true "every non-entry task has a predecessor"
            (connected_to_entry g)
        done);
    case "layered graphs are acyclic by construction" (fun () ->
        let rng = Rng.create ~seed:2 in
        let g = Random_dag.layered ~rng ~tasks:60 () in
        check_int "topological order covers all" 60
          (Array.length (Topo.order g)));
    case "layered density increases edges" (fun () ->
        let edges density =
          let rng = Rng.create ~seed:3 in
          Dag.n_edges (Random_dag.layered ~rng ~tasks:80 ~edge_density:density ())
        in
        check_true "denser has more" (edges 0.5 > edges 0.02));
    case "layer count is honoured" (fun () ->
        let rng = Rng.create ~seed:4 in
        let g = Random_dag.layered ~rng ~tasks:30 ~layers:5 () in
        check_true "depth below layer count"
          (Array.fold_left max 0 (Topo.depth g) < 5));
    case "fan_in_out respects the degree bound" (fun () ->
        let rng = Rng.create ~seed:5 in
        let g = Random_dag.fan_in_out ~rng ~tasks:50 ~max_degree:3 () in
        Dag.iter_tasks g (fun t -> check_true "bounded" (Dag.in_degree g t <= 3)));
    case "series_parallel generates SP graphs of the right size" (fun () ->
        let rng = Rng.create ~seed:6 in
        for _ = 1 to 10 do
          let g = Random_dag.series_parallel ~rng ~tasks:25 () in
          check_int "tasks" 25 (Dag.size g);
          check_true "recognized" (Sp.is_series_parallel g)
        done);
    case "series_parallel has unique source and sink" (fun () ->
        let rng = Rng.create ~seed:7 in
        let g = Random_dag.series_parallel ~rng ~tasks:30 () in
        check_int "source" 1 (List.length (Dag.entries g));
        check_int "sink" 1 (List.length (Dag.exits g)));
    case "weights fall in the requested ranges" (fun () ->
        let rng = Rng.create ~seed:8 in
        let weights =
          { Random_dag.exec_range = (10.0, 20.0); volume_range = (1.0, 2.0) }
        in
        let g = Random_dag.layered ~weights ~rng ~tasks:40 () in
        Dag.iter_tasks g (fun t ->
            let w = Dag.exec g t in
            check_true "exec range" (w >= 10.0 && w < 20.0));
        Dag.iter_edges g (fun _ _ v ->
            check_true "volume range" (v >= 1.0 && v < 2.0)));
  ]

(* ------------------------------------------------------------------ *)
(* Calibration                                                         *)
(* ------------------------------------------------------------------ *)

let calibration_tests =
  [
    case "with_granularity hits the target exactly" (fun () ->
        let rng = Rng.create ~seed:9 in
        let g = Random_dag.layered ~rng ~tasks:50 () in
        let plat = Fixtures.hetero4 in
        List.iter
          (fun target ->
            let g' = Calibrate.with_granularity g plat ~target in
            check_float "granularity"
              target
              (Metrics.granularity g' plat))
          [ 0.2; 1.0; 2.0 ]);
    case "normalize_time sets the mean exec time to one" (fun () ->
        let rng = Rng.create ~seed:10 in
        let g = Random_dag.layered ~rng ~tasks:50 () in
        let plat = Fixtures.hetero4 in
        let g' = Calibrate.normalize_time g plat in
        let mean_time =
          Dag.total_exec g' /. float_of_int (Dag.size g')
          *. Platform.mean_inverse_speed plat
        in
        check_float "normalized" 1.0 mean_time);
    case "normalization preserves the granularity" (fun () ->
        let rng = Rng.create ~seed:11 in
        let g = Random_dag.layered ~rng ~tasks:50 () in
        let plat = Fixtures.hetero4 in
        let g1 = Calibrate.with_granularity g plat ~target:0.8 in
        let g2 = Calibrate.normalize_time g1 plat in
        check_float "granularity kept" 0.8 (Metrics.granularity g2 plat));
    case "calibrated composes both" (fun () ->
        let rng = Rng.create ~seed:12 in
        let g = Random_dag.layered ~rng ~tasks:50 () in
        let plat = Fixtures.hetero4 in
        let g' = Calibrate.calibrated g plat ~granularity:1.4 in
        check_float "granularity" 1.4 (Metrics.granularity g' plat));
    case "with_granularity rejects edgeless graphs" (fun () ->
        Alcotest.check_raises "no comm" (Invalid_argument "") (fun () ->
            try
              ignore
                (Calibrate.with_granularity Fixtures.singleton Fixtures.hetero4
                   ~target:1.0)
            with Invalid_argument _ -> raise (Invalid_argument "")));
  ]

(* ------------------------------------------------------------------ *)
(* Paper workload                                                      *)
(* ------------------------------------------------------------------ *)

let paper_tests =
  [
    case "granularity sweep matches the paper" (fun () ->
        check_int "ten points" 10 (List.length Paper_workload.granularities);
        check_float "first" 0.2 (List.hd Paper_workload.granularities);
        check_float "last" 2.0
          (List.nth Paper_workload.granularities 9));
    case "throughput rule" (fun () ->
        check_float "eps=0" 0.1 (Paper_workload.throughput ~eps:0);
        check_float "eps=1" 0.05 (Paper_workload.throughput ~eps:1);
        check_float "eps=3" 0.025 (Paper_workload.throughput ~eps:3));
    case "platform has twenty processors in the given ranges" (fun () ->
        let rng = Rng.create ~seed:13 in
        let p = Paper_workload.platform ~rng () in
        check_int "m" 20 (Platform.size p);
        List.iter
          (fun u ->
            let s = Platform.speed p u in
            check_true "speed range" (s >= 0.5 && s < 1.0))
          (Platform.procs p);
        let d = Platform.unit_delay p 0 1 in
        check_true "delay range" (d >= 0.5 && d <= 1.0));
    case "instance sizes and calibration" (fun () ->
        let rng = Rng.create ~seed:14 in
        for _ = 1 to 5 do
          let inst = Paper_workload.instance ~rng ~granularity:0.6 () in
          let v = Dag.size inst.Paper_workload.dag in
          check_true "task range" (v >= 50 && v <= 150);
          check_float "granularity" 0.6
            (Metrics.granularity inst.Paper_workload.dag inst.Paper_workload.plat);
          check_float "time normalized" 1.0
            (Dag.total_exec inst.Paper_workload.dag
            /. float_of_int v
            *. Platform.mean_inverse_speed inst.Paper_workload.plat)
        done);
    case "custom specs are honoured" (fun () ->
        let rng = Rng.create ~seed:15 in
        let spec =
          { Paper_workload.default_spec with Paper_workload.m = 5; tasks_range = (10, 10) }
        in
        let inst = Paper_workload.instance ~spec ~rng ~granularity:1.0 () in
        check_int "five processors" 5 (Platform.size inst.Paper_workload.plat);
        check_int "ten tasks" 10 (Dag.size inst.Paper_workload.dag));
  ]

(* ------------------------------------------------------------------ *)
(* Workload spec registry                                              *)
(* ------------------------------------------------------------------ *)

let instance_fingerprint (inst : Paper_workload.instance) =
  let b = Buffer.create 4096 in
  let dag = inst.Paper_workload.dag and plat = inst.Paper_workload.plat in
  Dag.iter_tasks dag (fun t -> Buffer.add_string b (Printf.sprintf "t%d=%.17g;" t (Dag.exec dag t)));
  Dag.iter_edges dag (fun s d v ->
      Buffer.add_string b (Printf.sprintf "e%d-%d=%.17g;" s d v));
  List.iter
    (fun u ->
      Buffer.add_string b (Printf.sprintf "p%d=%.17g;" u (Platform.speed plat u)))
    (Platform.procs plat);
  Digest.to_hex (Digest.string (Buffer.contents b))

let spec_tests =
  [
    case "every registry entry round-trips through its name" (fun () ->
        check_true "registry is non-empty" (Spec.all <> []);
        List.iter
          (fun s ->
            match Spec.find (Spec.name s) with
            | Some s' -> check_true (Spec.name s) (s' = s)
            | None -> Alcotest.failf "%s not in the registry" (Spec.name s))
          Spec.all);
    case "registry names are unique" (fun () ->
        let names = List.map Spec.name Spec.all in
        check_int "no duplicates"
          (List.length names)
          (List.length (List.sort_uniq compare names)));
    case "of_string resolves plain registry names" (fun () ->
        List.iter
          (fun s ->
            match Spec.of_string (Spec.name s) with
            | Ok s' -> check_true (Spec.name s) (s' = s)
            | Error e -> Alcotest.fail e)
          Spec.all);
    case "of_string applies size overrides" (fun () ->
        match Spec.of_string "huge:v=4000:m=40" with
        | Error e -> Alcotest.fail e
        | Ok s ->
            let rng = Rng.create ~seed:21 in
            let inst = Spec.generate s ~rng () in
            check_int "tasks" 4000 (Dag.size inst.Paper_workload.dag);
            check_int "procs" 40 (Platform.size inst.Paper_workload.plat));
    case "of_string rejects unknown names and bad overrides" (fun () ->
        check_true "unknown name"
          (Result.is_error (Spec.of_string "no-such-workload"));
        check_true "bad override key"
          (Result.is_error (Spec.of_string "huge:zz=3")));
    case "generate is deterministic under the seed" (fun () ->
        List.iter
          (fun name ->
            match Spec.of_string name with
            | Error e -> Alcotest.fail e
            | Ok s ->
                let draw () =
                  let rng = Rng.create ~seed:99 in
                  instance_fingerprint (Spec.generate s ~rng ())
                in
                Alcotest.(check string) name (draw ()) (draw ()))
          [ "paper-layered"; "huge:v=3000:m=30" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Classic graph families                                              *)
(* ------------------------------------------------------------------ *)

let classic_tests =
  [
    case "in_tree shape" (fun () ->
        let g = Classic.in_tree ~depth:2 ~arity:2 ~exec:1.0 ~volume:1.0 in
        check_int "size 1+2+4" 7 (Dag.size g);
        Alcotest.(check (list int)) "single exit (the root)" [ 0 ] (Dag.exits g);
        check_int "four leaves" 4 (List.length (Dag.entries g));
        check_int "in-degree of the root" 2 (Dag.in_degree g 0);
        check_true "recognized as SP" (Sp.is_series_parallel g));
    case "in_tree depth zero is a single task" (fun () ->
        check_int "one task" 1
          (Dag.size (Classic.in_tree ~depth:0 ~arity:3 ~exec:1.0 ~volume:1.0)));
    case "out_tree is the transpose of in_tree" (fun () ->
        let i = Classic.in_tree ~depth:2 ~arity:3 ~exec:1.0 ~volume:1.0 in
        let o = Classic.out_tree ~depth:2 ~arity:3 ~exec:1.0 ~volume:1.0 in
        check_int "same size" (Dag.size i) (Dag.size o);
        Alcotest.(check (list int)) "root becomes the entry" [ 0 ] (Dag.entries o);
        Dag.iter_edges i (fun s d _ -> check_true "edge flipped" (Dag.has_edge o d s)));
    case "stream_pipeline shape" (fun () ->
        let g = Classic.stream_pipeline ~stages:3 ~branches:4 ~exec:1.0 ~volume:1.0 in
        check_int "size 3*(4+2)" 18 (Dag.size g);
        check_int "one entry" 1 (List.length (Dag.entries g));
        check_int "one exit" 1 (List.length (Dag.exits g));
        check_int "width is the branch count" 4 (Width.exact g);
        check_true "labels name the filters"
          (Dag.label g 1 = "filter0.1"));
    case "stream_pipeline chains its segments" (fun () ->
        let g = Classic.stream_pipeline ~stages:2 ~branches:2 ~exec:1.0 ~volume:1.0 in
        (* join of segment 0 (index 3) feeds split of segment 1 (index 4) *)
        check_true "joined" (Dag.has_edge g 3 4));
    case "stream_pipeline is schedulable with replication" (fun () ->
        let plat = Fixtures.uniform 6 in
        let dag =
          Calibrate.normalize_time
            (Classic.stream_pipeline ~stages:3 ~branches:2 ~exec:5.0 ~volume:1.0)
            plat
        in
        let prob = Types.problem ~dag ~platform:plat ~eps:1 ~throughput:0.1 in
        let m = Fixtures.must_schedule `Rltf prob in
        Fixtures.check_valid m ~throughput:0.1);
  ]

let () =
  Alcotest.run "stream_workload"
    [
      ("rng", rng_tests);
      ("generators", generator_tests);
      ("calibration", calibration_tests);
      ("paper", paper_tests);
      ("spec", spec_tests);
      ("classic", classic_tests);
    ]
