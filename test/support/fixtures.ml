(* Shared graphs, platforms and helpers for the test suites. *)

let chain3 = Classic.chain ~n:3 ~exec:1.0 ~volume:1.0
let chain5 = Classic.chain ~n:5 ~exec:2.0 ~volume:0.5
let diamond4 = Classic.fig1_graph (* t0 -> {t1, t2} -> t3, weights 15/2 *)
let fork3 = Classic.fork_join ~width:3 ~exec:1.0 ~volume:1.0
let fft8 = Classic.fft ~p:3 ~exec:1.0 ~volume:0.5
let gauss5 = Classic.gaussian_elimination ~n:5 ~exec:1.0 ~volume:0.5
let stencil33 = Classic.stencil ~rows:3 ~cols:3 ~exec:1.0 ~volume:0.5

let singleton =
  let b = Dag.Builder.create ~name:"singleton" 1 in
  Dag.Builder.build b

let empty =
  let b = Dag.Builder.create ~name:"empty" 0 in
  Dag.Builder.build b

let uniform m = Platform.homogeneous ~name:"uniform" ~m ~speed:1.0 ~bandwidth:1.0 ()

let hetero4 =
  Platform.create ~name:"hetero4"
    ~speeds:[| 2.0; 1.0; 0.5; 1.0 |]
    ~bandwidth:
      [|
        [| 0.0; 4.0; 1.0; 2.0 |];
        [| 4.0; 0.0; 2.0; 1.0 |];
        [| 1.0; 2.0; 0.0; 4.0 |];
        [| 2.0; 1.0; 4.0; 0.0 |];
      |]
    ()

(* Deterministic paper-workload instance for integration tests. *)
let paper_instance ?(seed = 42) ?(granularity = 1.0) () =
  let rng = Rng.create ~seed in
  Spec.generate Spec.default ~rng ~granularity ()

(* Schedule helpers. *)
let must_schedule ?mode algo prob =
  let opts =
    match mode with
    | None -> Scheduler.default
    | Some mode -> Scheduler.(default |> with_mode mode)
  in
  let run =
    match algo with `Ltf -> Ltf.schedule ~opts | `Rltf -> Rltf.schedule ~opts
  in
  match run prob with
  | Ok mapping -> mapping
  | Error f ->
      Alcotest.failf "expected a schedule, got failure: %s"
        (Types.failure_to_string f)

let check_valid ?(what = "mapping") mapping ~throughput =
  match Validate.all mapping ~throughput with
  | [] -> ()
  | errors ->
      Alcotest.failf "%s invalid: %s" what
        (String.concat "; " (List.map Validate.error_to_string errors))

let check_tolerant ?(what = "mapping") mapping =
  match Validate.structure mapping with
  | _ :: _ as errors ->
      Alcotest.failf "%s structurally broken: %s" what
        (Validate.error_to_string (List.hd errors))
  | [] -> (
      match Validate.fault_tolerance mapping with
      | [] -> ()
      | errors ->
          Alcotest.failf "%s not fault tolerant: %s" what
            (Validate.error_to_string (List.hd errors)))

(* Alcotest shorthands. *)
let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_true name b = Alcotest.(check bool) name true b
