open Test_support

(* The incremental scheduling-state engine: Loads add/remove/tentative
   equivalence with the from-scratch recompute, the cached max-cycle-time
   invariant, Bitset agreement with the Set.Make(Int) reference, and the
   pinned figure/schedule regression guaranteeing the engine produces
   bit-identical results. *)

let to_alcotest = QCheck_alcotest.to_alcotest

let case = Fixtures.case
let slow_case = Fixtures.slow_case
let check_true = Fixtures.check_true

let seed_arb = QCheck.int_range 0 100_000

(* ------------------------------------------------------------------ *)
(* Incremental Loads vs of_mapping                                     *)
(* ------------------------------------------------------------------ *)

(* A complete mapping to replay replica-by-replica: LTF best-effort on a
   random layered graph (best-effort only fails on replication-rule dead
   ends, which a 6-processor platform avoids at these sizes). *)
let mapping_of_seed seed =
  let rng = Rng.create ~seed in
  let tasks = 2 + Rng.int rng 19 in
  let dag = Random_dag.layered ~rng ~tasks () in
  let prob =
    Types.problem ~dag ~platform:(Fixtures.uniform 6) ~eps:1 ~throughput:0.01
  in
  match
    Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob
  with
  | Ok m -> Some m
  | Error _ -> None

let replicas_of m =
  let acc = ref [] in
  Mapping.iter m (fun r -> acc := r :: !acc);
  List.rev !acc

let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b)

let agrees (l : Loads.t) (ref_l : Loads.t) =
  let arrays_close x y =
    Array.for_all2 (fun a b -> close a b) x y
  in
  arrays_close l.Loads.sigma ref_l.Loads.sigma
  && arrays_close l.Loads.c_in ref_l.Loads.c_in
  && arrays_close l.Loads.c_out ref_l.Loads.c_out

let recomputed_max (l : Loads.t) =
  let best = ref 0.0 in
  Array.iteri (fun u _ -> best := Float.max !best (Loads.cycle_time l u)) l.Loads.sigma;
  !best

let prop_incremental_equals_scratch =
  QCheck.Test.make
    ~name:"random add/remove/tentative sequence matches of_mapping" ~count:60
    seed_arb (fun seed ->
      match mapping_of_seed seed with
      | None -> true
      | Some m ->
          let rng = Rng.create ~seed:(seed + 7919) in
          let l =
            Loads.create ~n_procs:(Platform.size (Mapping.platform m))
          in
          (* Replay every replica into [l]; along the way, churn with
             remove/re-add pairs and bitwise-neutral tentative probes. *)
          let rebounds = ref 0 in
          let ok = ref true in
          let check_cache () =
            if l.Loads.max_valid then
              ok :=
                !ok && Loads.max_cycle_time l = recomputed_max l
          in
          let rec drain = function
            | [] -> ()
            | r :: rest -> (
                match Rng.int rng 4 with
                | 0 ->
                    (* Tentative probe first: must leave every entry
                       bitwise unchanged. *)
                    let snap_sigma = Array.copy l.Loads.sigma
                    and snap_in = Array.copy l.Loads.c_in
                    and snap_out = Array.copy l.Loads.c_out in
                    let probed =
                      Loads.with_tentative l m r (fun l' ->
                          Loads.max_cycle_time l')
                    in
                    ok :=
                      !ok && probed >= 0.0
                      && l.Loads.sigma = snap_sigma
                      && l.Loads.c_in = snap_in
                      && l.Loads.c_out = snap_out;
                    Loads.add_replica l m r;
                    check_cache ();
                    drain rest
                | 1 when !rebounds < 40 ->
                    (* Add, remove again, and retry later. *)
                    incr rebounds;
                    Loads.add_replica l m r;
                    Loads.remove_replica l m r;
                    check_cache ();
                    drain (rest @ [ r ])
                | _ ->
                    Loads.add_replica l m r;
                    check_cache ();
                    drain rest)
          in
          drain (replicas_of m);
          let scratch = Loads.of_mapping m in
          !ok && agrees l scratch
          && close (Loads.max_cycle_time l) (Loads.max_cycle_time scratch))

let prop_tentative_matches_committed =
  QCheck.Test.make
    ~name:"with_tentative sees the same loads as a committed add" ~count:60
    seed_arb (fun seed ->
      match mapping_of_seed seed with
      | None -> true
      | Some m -> (
          match List.rev (replicas_of m) with
          | [] -> true
          | last :: _ ->
              let n_procs = Platform.size (Mapping.platform m) in
              let build skip_last =
                let l = Loads.create ~n_procs in
                List.iter
                  (fun (r : Replica.t) ->
                    if not (skip_last && r == last) then Loads.add_replica l m r)
                  (replicas_of m);
                l
              in
              let committed = build false in
              let l = build true in
              Loads.with_tentative l m last (fun l' ->
                  agrees l' committed
                  && Loads.max_cycle_time l'
                     = Loads.max_cycle_time committed)))

(* ------------------------------------------------------------------ *)
(* Flat State arrays vs a from-mapping reference                       *)
(* ------------------------------------------------------------------ *)

module Rset = Set.Make (Int)

(* The committed stage/support values live in flat arrays indexed by
   [task * copies + copy]; recompute both from the mapping's source lists
   alone (memoized recursion over Set.Make(Int) for the kill sets) and
   check the arrays agree replica by replica. *)
let prop_flat_state_matches_reference =
  QCheck.Test.make
    ~name:"flat stage/support arrays match a from-mapping reference"
    ~count:40 seed_arb (fun seed ->
      let rng = Rng.create ~seed in
      let tasks = 2 + Rng.int rng 19 in
      let dag = Random_dag.layered ~rng ~tasks () in
      let prob =
        Types.problem ~dag ~platform:(Fixtures.uniform 6) ~eps:1
          ~throughput:0.01
      in
      match
        Ltf.schedule_state
          ~opts:Scheduler.(default |> with_mode Best_effort)
          prob
      with
      | Error _ -> true
      | Ok st ->
          let m = State.mapping st in
          let proc_of (id : Replica.id) =
            (Mapping.replica_exn m id.Replica.task id.Replica.copy).Replica.proc
          in
          let stage_memo = Hashtbl.create 64 in
          let supp_memo = Hashtbl.create 64 in
          let rec ref_stage (id : Replica.id) =
            match Hashtbl.find_opt stage_memo id with
            | Some v -> v
            | None ->
                let r = Mapping.replica_exn m id.Replica.task id.Replica.copy in
                let v =
                  List.fold_left
                    (fun acc (_, ids) ->
                      List.fold_left
                        (fun acc (src : Replica.id) ->
                          let eta =
                            if proc_of src = r.Replica.proc then 0 else 1
                          in
                          max acc (ref_stage src + eta))
                        acc ids)
                    1 r.Replica.sources
                in
                Hashtbl.add stage_memo id v;
                v
          in
          let rec ref_supp (id : Replica.id) =
            match Hashtbl.find_opt supp_memo id with
            | Some v -> v
            | None ->
                let r = Mapping.replica_exn m id.Replica.task id.Replica.copy in
                let v =
                  List.fold_left
                    (fun acc (_, ids) ->
                      match ids with
                      | [] -> acc
                      | [ src ] -> Rset.union acc (ref_supp src)
                      | first :: rest ->
                          if List.length ids = Mapping.n_copies m then acc
                          else
                            Rset.union acc
                              (List.fold_left
                                 (fun i src -> Rset.inter i (ref_supp src))
                                 (ref_supp first) rest))
                    (Rset.singleton r.Replica.proc)
                    r.Replica.sources
                in
                Hashtbl.add supp_memo id v;
                v
          in
          let ok = ref true in
          Mapping.iter m (fun r ->
              let id = r.Replica.id in
              if State.stage st id <> ref_stage id then ok := false;
              if Rset.elements (ref_supp id)
                 <> Bitset.elements (State.support st id)
              then ok := false;
              if Float.is_nan (State.finish st id) then ok := false);
          !ok)

(* ------------------------------------------------------------------ *)
(* Bitset vs Set.Make (Int)                                            *)
(* ------------------------------------------------------------------ *)

module Iset = Set.Make (Int)

let sets_of_seed seed =
  let rng = Rng.create ~seed in
  let random_list () =
    List.init (Rng.int rng 40) (fun _ -> Rng.int rng 200)
  in
  let la = random_list () and lb = random_list () in
  ((Bitset.of_list la, Iset.of_list la), (Bitset.of_list lb, Iset.of_list lb))

let mirrors b s = Bitset.elements b = Iset.elements s

let prop_bitset_matches_set =
  QCheck.Test.make ~name:"bitset ops agree with the Set.Make(Int) reference"
    ~count:200 seed_arb (fun seed ->
      let (ba, sa), (bb, sb) = sets_of_seed seed in
      mirrors ba sa && mirrors bb sb
      && mirrors (Bitset.union ba bb) (Iset.union sa sb)
      && mirrors (Bitset.inter ba bb) (Iset.inter sa sb)
      && mirrors (Bitset.diff ba bb) (Iset.diff sa sb)
      && Bitset.disjoint ba bb = Iset.disjoint sa sb
      && Bitset.subset ba bb = Iset.subset sa sb
      && Bitset.cardinal ba = Iset.cardinal sa
      && Bitset.is_empty ba = Iset.is_empty sa
      && List.for_all
           (fun x -> Bitset.mem x ba = Iset.mem x sa)
           (List.init 210 Fun.id)
      && Bitset.equal (Bitset.inter ba ba) ba
      && Bitset.fold (fun x acc -> x :: acc) ba []
         = Iset.fold (fun x acc -> x :: acc) sa [])

let prop_bitset_add_remove =
  QCheck.Test.make ~name:"bitset add/remove round-trips like the reference"
    ~count:200 seed_arb (fun seed ->
      let rng = Rng.create ~seed in
      let steps = List.init 60 (fun _ -> (Rng.int rng 2 = 0, Rng.int rng 300)) in
      let b, s =
        List.fold_left
          (fun (b, s) (add, x) ->
            if add then (Bitset.add x b, Iset.add x s)
            else (Bitset.remove x b, Iset.remove x s))
          (Bitset.empty, Iset.empty) steps
      in
      mirrors b s
      (* normalization: equal contents imply structural equality *)
      && Bitset.equal b (Bitset.of_list (Iset.elements s))
      && Bitset.compare b (Bitset.of_list (Iset.elements s)) = 0)

let bitset_tests =
  [
    case "singleton and negative elements" (fun () ->
        check_true "mem" (Bitset.mem 63 (Bitset.singleton 63));
        check_true "not mem" (not (Bitset.mem 62 (Bitset.singleton 63)));
        check_true "mem negative is false" (not (Bitset.mem (-1) Bitset.empty));
        Alcotest.check_raises "singleton -1"
          (Invalid_argument "Bitset.singleton: negative element") (fun () ->
            ignore (Bitset.singleton (-1))));
    case "empty removal keeps the representation canonical" (fun () ->
        let s = Bitset.remove 100 (Bitset.add 100 Bitset.empty) in
        check_true "is_empty" (Bitset.is_empty s);
        check_true "equal empty" (Bitset.equal s Bitset.empty));
  ]

(* ------------------------------------------------------------------ *)
(* Pinned regression: figure samples and schedule fingerprints         *)
(* ------------------------------------------------------------------ *)

(* These values were captured on the pre-incremental engine (PR 2); the
   incremental state, bitset kill sets and restriction fast path must
   reproduce them bit for bit. *)
let pinned_samples =
  [
    "g=0.6 ltf=(420,380,380,false) rltf=(420,300,353.33333333333331,false) \
     ff=170";
    "g=0.6 ltf=(380,300,340,false) rltf=(380,300,300,false) ff=150";
    "g=1.0 ltf=(380,300,326.66666666666669,true) \
     rltf=(300,220,233.33333333333334,true) ff=110";
    "g=1.0 ltf=(380,340,353.33333333333331,true) rltf=(260,220,220,false) \
     ff=130";
  ]

let pinned_ltf_digest = "3451d182152d61149471dcfa142c5e32"
let pinned_rltf_digest = "3444c193041d492b90169cd79973f9e8"

(* The registry's [huge-small] point (v=2000, m=50); guards the whole
   scaling path — Huge generation through Spec, flat placement, and the
   clustered C-LTF expansion — against silent drift. *)
let pinned_huge_ltf_digest = "a2bdbcb8820260d28eaabcc3086b5a4f"
let pinned_huge_cltf_digest = "42a874c0cd0230bdc50bbd5eab61c27c"

let fingerprint mapping =
  let parts = ref [] in
  Mapping.iter mapping (fun r ->
      parts :=
        Printf.sprintf "%s@%d" (Replica.id_to_string r.Replica.id) r.Replica.proc
        :: !parts);
  String.concat ";" (List.rev !parts)

let regression_tests =
  [
    slow_case "figure samples are bit-identical to the pinned run" (fun () ->
        let config =
          {
            (Fig_common.quick ~eps:1 ~crashes:1) with
            Fig_common.graphs_per_point = 2;
            granularities = [ 0.6; 1.0 ];
          }
        in
        let lines =
          Fig_common.collect config
          |> List.map (fun (s : Fig_common.sample) ->
                 Printf.sprintf
                   "g=%.1f ltf=(%.17g,%.17g,%.17g,%b) \
                    rltf=(%.17g,%.17g,%.17g,%b) ff=%.17g"
                   s.Fig_common.granularity s.ltf.Fig_common.bound s.ltf.sim
                   s.ltf.crash s.ltf.meets s.rltf.Fig_common.bound s.rltf.sim
                   s.rltf.crash s.rltf.meets s.ff_sim)
        in
        Alcotest.(check (list string)) "samples" pinned_samples lines);
    case "paper-instance schedules are bit-identical to the pinned run"
      (fun () ->
        let inst =
          let rng = Rng.create ~seed:11 in
          Spec.generate Spec.default ~rng ~granularity:1.0 ()
        in
        let prob =
          Types.problem ~dag:inst.Paper_workload.dag
            ~platform:inst.Paper_workload.plat ~eps:1
            ~throughput:(Paper_workload.throughput ~eps:1)
        in
        let opts = Scheduler.(default |> with_mode Best_effort) in
        (match Ltf.schedule ~opts prob with
        | Ok m ->
            Alcotest.(check string)
              "LTF" pinned_ltf_digest
              (Digest.to_hex (Digest.string (fingerprint m)))
        | Error f -> Alcotest.failf "LTF failed: %s" (Types.failure_to_string f));
        match Rltf.schedule ~opts prob with
        | Ok m ->
            Alcotest.(check string)
              "R-LTF" pinned_rltf_digest
              (Digest.to_hex (Digest.string (fingerprint m)))
        | Error f ->
            Alcotest.failf "R-LTF failed: %s" (Types.failure_to_string f));
    case "huge-small schedules are bit-identical to the pinned run" (fun () ->
        let spec =
          match Spec.find "huge-small" with
          | Some s -> s
          | None -> Alcotest.fail "huge-small not registered"
        in
        let opts = Scheduler.(default |> with_mode Best_effort) in
        let schedule_with (module A : Sched_api.Algo) =
          let rng = Rng.create ~seed:42 in
          let inst = Spec.generate spec ~rng ~granularity:1.0 () in
          let prob =
            Types.problem ~dag:inst.Paper_workload.dag
              ~platform:inst.Paper_workload.plat ~eps:1
              ~throughput:(Spec.throughput spec ~eps:1)
          in
          match A.run ~opts prob with
          | Ok m -> Digest.to_hex (Digest.string (fingerprint m))
          | Error f ->
              Alcotest.failf "%s failed: %s" A.name (Types.failure_to_string f)
        in
        Alcotest.(check string) "LTF" pinned_huge_ltf_digest
          (schedule_with Ltf.algo);
        match Baseline_registry.find "C-LTF" with
        | None -> Alcotest.fail "C-LTF not registered"
        | Some a ->
            Alcotest.(check string) "C-LTF" pinned_huge_cltf_digest
              (schedule_with a));
  ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "incremental"
    [
      ( "loads",
        [
          to_alcotest prop_incremental_equals_scratch;
          to_alcotest prop_tentative_matches_committed;
        ] );
      ("state", [ to_alcotest prop_flat_state_matches_reference ]);
      ( "bitset",
        bitset_tests
        @ [ to_alcotest prop_bitset_matches_set;
            to_alcotest prop_bitset_add_remove;
          ] );
      ("regression", regression_tests);
    ]
