open Test_support

(* Property-based tests.  Structured inputs (graphs, platforms, mappings)
   are derived from integer seeds so every case is reproducible and
   shrinking stays meaningful on the seed. *)

let to_alcotest = QCheck_alcotest.to_alcotest

let layered_of_seed ?(max_tasks = 40) seed =
  let rng = Rng.create ~seed in
  let tasks = 2 + Rng.int rng (max_tasks - 1) in
  Random_dag.layered ~rng ~tasks ()

let seed_arb = QCheck.int_range 0 100_000

(* ------------------------------------------------------------------ *)
(* Graph properties                                                    *)
(* ------------------------------------------------------------------ *)

let prop_topo_order_valid =
  QCheck.Test.make ~name:"topological order respects every edge" ~count:100
    seed_arb (fun seed ->
      let g = layered_of_seed seed in
      let position = Array.make (Dag.size g) (-1) in
      Array.iteri (fun i t -> position.(t) <- i) (Topo.order g);
      Dag.fold_edges g ~init:true ~f:(fun acc s d _ ->
          acc && position.(s) < position.(d)))

let prop_depth_bounded =
  QCheck.Test.make ~name:"depth < size and height mirrors reverse depth"
    ~count:100 seed_arb (fun seed ->
      let g = layered_of_seed seed in
      let depth = Topo.depth g and height = Topo.height g in
      let rev_depth = Topo.depth (Dag.reverse g) in
      Array.for_all (fun d -> d < Dag.size g) depth
      && Array.for_all2 ( = ) height rev_depth)

let prop_width_bounds =
  QCheck.Test.make ~name:"layer bound <= exact width <= size" ~count:50
    seed_arb (fun seed ->
      let g = layered_of_seed ~max_tasks:25 seed in
      let exact = Width.exact g in
      Width.layer_lower_bound g <= exact && exact <= Dag.size g && exact >= 1)

let prop_priority_peak_is_critical_path =
  QCheck.Test.make ~name:"max(tl+bl) equals the critical path length"
    ~count:100 seed_arb (fun seed ->
      let g = layered_of_seed seed in
      let w = Levels.exec_weights g in
      let p = Levels.priority g w in
      let cp = Levels.critical_path_length g w in
      let peak = Array.fold_left Float.max neg_infinity p in
      Float.abs (peak -. cp) <= 1e-9 *. Float.max 1.0 cp)

let prop_reverse_involution =
  QCheck.Test.make ~name:"reverse is an involution on the edge set" ~count:100
    seed_arb (fun seed ->
      let g = layered_of_seed seed in
      let rr = Dag.reverse (Dag.reverse g) in
      Dag.fold_edges g ~init:true ~f:(fun acc s d v ->
          acc && Dag.has_edge rr s d && Dag.volume rr s d = v))

let prop_sp_generator_recognized =
  QCheck.Test.make ~name:"generated series-parallel graphs are recognized"
    ~count:50 seed_arb (fun seed ->
      let rng = Rng.create ~seed in
      let tasks = 2 + Rng.int rng 40 in
      Sp.is_series_parallel (Random_dag.series_parallel ~rng ~tasks ()))

(* ------------------------------------------------------------------ *)
(* Timeline properties                                                 *)
(* ------------------------------------------------------------------ *)

let prop_timeline_no_overlap =
  QCheck.Test.make ~name:"earliest-fit insertions never overlap" ~count:100
    QCheck.(pair seed_arb (int_range 1 30))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let tl = ref Timeline.empty in
      for _ = 1 to n do
        let ready = Rng.float rng 20.0 and duration = 0.1 +. Rng.float rng 5.0 in
        let start = Timeline.earliest_fit !tl ~ready ~duration in
        tl := Timeline.insert !tl ~start ~duration
      done;
      let rec disjoint = function
        | (_, f) :: ((s, _) :: _ as rest) -> f <= s +. 1e-9 && disjoint rest
        | _ -> true
      in
      disjoint (Timeline.intervals !tl))

let prop_timeline_busy_sum =
  QCheck.Test.make ~name:"total busy time is the sum of inserted durations"
    ~count:100
    QCheck.(pair seed_arb (int_range 1 20))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let tl = ref Timeline.empty and total = ref 0.0 in
      for _ = 1 to n do
        let duration = 0.5 +. Rng.float rng 3.0 in
        let start = Timeline.earliest_fit !tl ~ready:(Rng.float rng 10.0) ~duration in
        tl := Timeline.insert !tl ~start ~duration;
        total := !total +. duration
      done;
      Float.abs (Timeline.total_busy !tl -. !total) <= 1e-6)

(* ------------------------------------------------------------------ *)
(* Event heap vs a sorted-list model                                   *)
(* ------------------------------------------------------------------ *)

let prop_heap_matches_model =
  QCheck.Test.make ~name:"event heap pops like a stable sorted list"
    ~count:200
    QCheck.(list (int_range 0 20))
    (fun keys ->
      let h = Event_heap.create () in
      List.iteri (fun i k -> Event_heap.add h (float_of_int k) i) keys;
      let model =
        List.mapi (fun i k -> (float_of_int k, i)) keys
        |> List.stable_sort (fun (ka, ia) (kb, ib) ->
               match compare ka kb with 0 -> compare ia ib | c -> c)
      in
      let rec drain acc =
        match Event_heap.pop_min h with
        | Some (k, v) -> drain ((k, v) :: acc)
        | None -> List.rev acc
      in
      drain [] = model)

(* ------------------------------------------------------------------ *)
(* Bitsets vs the Set.Make (Int) reference                             *)
(* ------------------------------------------------------------------ *)

(* The packed bitset replaced [Set.Make (Int)] in the kill-set hot path;
   every operation must keep agreeing with the balanced-tree reference on
   the same element lists. *)
module IntSet = Set.Make (Int)

let universe = 63

let elems_of_seed ?(salt = 0) seed =
  let rng = Rng.create ~seed:(seed + salt) in
  List.init (Rng.int rng 40) (fun _ -> Rng.int rng universe)

let prop_bitset_matches_reference =
  QCheck.Test.make
    ~name:"bitset algebra agrees with the Set.Make (Int) reference" ~count:200
    seed_arb (fun seed ->
      let xs = elems_of_seed seed and ys = elems_of_seed ~salt:7919 seed in
      let a = Bitset.of_list xs and b = Bitset.of_list ys in
      let ra = IntSet.of_list xs and rb = IntSet.of_list ys in
      let agrees op rop =
        Bitset.elements (op a b) = IntSet.elements (rop ra rb)
      in
      agrees Bitset.union IntSet.union
      && agrees Bitset.inter IntSet.inter
      && agrees Bitset.diff IntSet.diff
      && Bitset.subset a b = IntSet.subset ra rb
      && Bitset.disjoint a b = IntSet.disjoint ra rb
      && Bitset.cardinal a = IntSet.cardinal ra
      && Bitset.equal a b = IntSet.equal ra rb
      && Bitset.min_elt a = IntSet.min_elt_opt ra
      && Bitset.elements a = IntSet.elements ra
      && Bitset.fold List.cons a [] = IntSet.fold List.cons ra [])

let prop_bitset_complement_reference =
  QCheck.Test.make
    ~name:"complement matches the dense-universe set difference" ~count:200
    seed_arb (fun seed ->
      let xs = elems_of_seed seed in
      let full = List.init universe Fun.id in
      Bitset.elements (Bitset.complement ~universe (Bitset.of_list xs))
      = IntSet.elements (IntSet.diff (IntSet.of_list full) (IntSet.of_list xs)))

let prop_bitset_complement_involution =
  QCheck.Test.make ~name:"complement is an involution on the universe"
    ~count:200 seed_arb (fun seed ->
      let s = Bitset.of_list (elems_of_seed seed) in
      let cc = Bitset.complement ~universe (Bitset.complement ~universe s) in
      Bitset.equal cc s
      && Bitset.cardinal (Bitset.complement ~universe s)
         = universe - Bitset.cardinal s)

let prop_bitset_inclusion_exclusion =
  QCheck.Test.make ~name:"|A union B| = |A| + |B| - |A inter B|" ~count:200
    seed_arb (fun seed ->
      let a = Bitset.of_list (elems_of_seed seed)
      and b = Bitset.of_list (elems_of_seed ~salt:104729 seed) in
      Bitset.cardinal (Bitset.union a b)
      = Bitset.cardinal a + Bitset.cardinal b
        - Bitset.cardinal (Bitset.inter a b))

(* ------------------------------------------------------------------ *)
(* Calibration properties                                              *)
(* ------------------------------------------------------------------ *)

let prop_calibration_exact =
  QCheck.Test.make ~name:"calibrated instances hit the requested granularity"
    ~count:40
    QCheck.(pair seed_arb (int_range 1 20))
    (fun (seed, tenths) ->
      let g = layered_of_seed seed in
      let target = 0.1 *. float_of_int tenths in
      let plat = Fixtures.hetero4 in
      let g' = Calibrate.calibrated g plat ~granularity:target in
      Float.abs (Metrics.granularity g' plat -. target) <= 1e-6 *. target)

(* ------------------------------------------------------------------ *)
(* Scheduling properties: the heart of the suite                       *)
(* ------------------------------------------------------------------ *)

let small_problem_of_seed seed =
  let rng = Rng.create ~seed in
  let tasks = 4 + Rng.int rng 25 in
  let dag = Random_dag.layered ~rng ~tasks () in
  let m = 4 + Rng.int rng 6 in
  let speeds = Array.init m (fun _ -> Rng.uniform rng ~lo:0.5 ~hi:1.0) in
  let bw = Array.make_matrix m m 1.0 in
  for k = 0 to m - 1 do
    for h = k + 1 to m - 1 do
      let b = Rng.uniform rng ~lo:1.0 ~hi:2.0 in
      bw.(k).(h) <- b;
      bw.(h).(k) <- b
    done
  done;
  let plat = Platform.create ~speeds ~bandwidth:bw () in
  let dag = Calibrate.calibrated dag plat ~granularity:(0.4 +. Rng.float rng 1.6) in
  let eps = Rng.int rng (min 3 (m - 1) + 1) in
  (* a generous period so strict mode succeeds often *)
  let throughput =
    1.0 /. (4.0 *. float_of_int (eps + 1) *. float_of_int tasks /. float_of_int m)
  in
  Types.problem ~dag ~platform:plat ~eps ~throughput

let prop_ltf_valid =
  QCheck.Test.make
    ~name:"strict LTF schedules are complete, feasible and eps-tolerant"
    ~count:60 seed_arb (fun seed ->
      let prob = small_problem_of_seed seed in
      match Ltf.schedule prob with
      | Error _ -> QCheck.assume_fail ()
      | Ok m -> Validate.all m ~throughput:prob.Types.throughput = [])

let prop_rltf_valid =
  QCheck.Test.make
    ~name:"strict R-LTF schedules are complete, feasible and eps-tolerant"
    ~count:60 seed_arb (fun seed ->
      let prob = small_problem_of_seed seed in
      match Rltf.schedule prob with
      | Error _ -> QCheck.assume_fail ()
      | Ok m -> Validate.all m ~throughput:prob.Types.throughput = [])

let prop_best_effort_tolerant =
  QCheck.Test.make
    ~name:"best-effort schedules always keep the tolerance guarantee"
    ~count:60 seed_arb (fun seed ->
      let prob = small_problem_of_seed seed in
      let check outcome =
        match outcome with
        | Error _ -> true (* structural dead ends are allowed, rare *)
        | Ok m ->
            Validate.structure m = [] && Validate.fault_tolerance m = []
      in
      check (Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob)
      && check (Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob))

let prop_effective_depth_bounded =
  QCheck.Test.make
    ~name:"effective pipeline depth never exceeds the official stage count"
    ~count:40 seed_arb (fun seed ->
      let prob = small_problem_of_seed seed in
      match Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob with
      | Error _ -> QCheck.assume_fail ()
      | Ok m -> (
          match Stage_latency.effective_depth m with
          | None -> false
          | Some depth -> depth >= 1 && depth <= Metrics.stage_depth m))

let prop_crash_monotone =
  QCheck.Test.make ~name:"a crash never shrinks the effective depth" ~count:40
    seed_arb (fun seed ->
      let prob = small_problem_of_seed seed in
      match Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob with
      | Error _ -> QCheck.assume_fail ()
      | Ok m -> (
          match Stage_latency.effective_depth m with
          | None -> false
          | Some healthy ->
              List.for_all
                (fun p ->
                  match Stage_latency.effective_depth ~failed:[ p ] m with
                  | None -> prob.Types.eps = 0
                  | Some depth -> depth >= healthy)
                (Platform.procs prob.Types.platform)))

let prop_single_failure_survival =
  QCheck.Test.make
    ~name:"eps >= 1 schedules survive every single processor failure"
    ~count:40 seed_arb (fun seed ->
      let prob = small_problem_of_seed seed in
      if prob.Types.eps = 0 then true
      else
        match Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob with
        | Error _ -> QCheck.assume_fail ()
        | Ok m ->
            List.for_all
              (fun p -> Engine.latency ~failed:[ p ] m <> None)
              (Platform.procs prob.Types.platform))

let prop_derive_tolerant =
  QCheck.Test.make
    ~name:"source derivation is tolerant for any distinct placement"
    ~count:60 seed_arb (fun seed ->
      let rng = Rng.create ~seed in
      let tasks = 3 + Rng.int rng 20 in
      let dag = Random_dag.layered ~rng ~tasks () in
      let m_procs = 6 + Rng.int rng 6 in
      let plat = Fixtures.uniform m_procs in
      let eps = Rng.int rng 3 in
      (* random placement with distinct processors per task *)
      let proc_table =
        Array.init tasks (fun _ ->
            let all = Array.init m_procs Fun.id in
            Rng.shuffle rng all;
            Array.sub all 0 (eps + 1))
      in
      let mapping =
        Source_derivation.derive ~dag ~platform:plat ~eps
          ~proc_of:(fun task copy -> proc_table.(task).(copy))
          ()
      in
      Validate.structure mapping = [] && Validate.fault_tolerance mapping = [])

(* Three independent implementations decide whether a failure set defeats a
   schedule: the static validator, the discrete-event engine, and the
   stage-synchronous model.  They must always agree. *)
let prop_survival_consistency =
  QCheck.Test.make
    ~name:"validator, engine and stage model agree on survival" ~count:30
    (QCheck.pair seed_arb (QCheck.int_range 0 3))
    (fun (seed, n_failures) ->
      let prob = small_problem_of_seed seed in
      match Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob with
      | Error _ -> QCheck.assume_fail ()
      | Ok m ->
          let rng = Rng.create ~seed:(seed + 1) in
          let m_procs = Platform.size prob.Types.platform in
          let failed =
            List.sort_uniq compare
              (List.init (min n_failures m_procs) (fun _ -> Rng.int rng m_procs))
          in
          let validator = Validate.survives m ~failed in
          let engine = Engine.latency ~failed m <> None in
          let stage = Stage_latency.effective_depth ~failed m <> None in
          validator = engine && engine = stage)

(* The one-port invariants, checked on the engine's own message log: on any
   processor, transfers it sends must not overlap pairwise, and neither may
   transfers it receives; executions on one processor must not overlap. *)
let prop_engine_one_port =
  QCheck.Test.make ~name:"engine respects the bi-directional one-port model"
    ~count:30 seed_arb (fun seed ->
      let prob = small_problem_of_seed seed in
      match Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob with
      | Error _ -> QCheck.assume_fail ()
      | Ok m ->
          let result = Engine.run ~n_items:3 m in
          let proc_of (inst : Engine.instance) =
            (Mapping.replica_exn m inst.Engine.rep.Replica.task
               inst.Engine.rep.Replica.copy)
              .Replica.proc
          in
          let no_overlap intervals =
            let sorted = List.sort compare intervals in
            let rec check = function
              | (_, f) :: ((s, _) :: _ as rest) -> f <= s +. 1e-9 && check rest
              | _ -> true
            in
            check sorted
          in
          let sends = Hashtbl.create 16 and recvs = Hashtbl.create 16 in
          let push tbl key interval =
            Hashtbl.replace tbl key
              (interval :: (try Hashtbl.find tbl key with Not_found -> []))
          in
          List.iter
            (fun (msg : Engine.message) ->
              let interval = (msg.Engine.msg_start, msg.Engine.msg_finish) in
              push sends (proc_of msg.Engine.msg_src) interval;
              push recvs (proc_of msg.Engine.msg_dst) interval)
            result.Engine.messages;
          let ports_ok =
            Hashtbl.fold (fun _ l acc -> acc && no_overlap l) sends true
            && Hashtbl.fold (fun _ l acc -> acc && no_overlap l) recvs true
          in
          (* executions per processor *)
          let execs = Hashtbl.create 16 in
          for item = 0 to 2 do
            Mapping.iter m (fun (r : Replica.t) ->
                match
                  ( result.Engine.start_time item r.Replica.id,
                    result.Engine.finish_time item r.Replica.id )
                with
                | Some s, Some f -> push execs r.Replica.proc (s, f)
                | _ -> ())
          done;
          let execs_ok = Hashtbl.fold (fun _ l acc -> acc && no_overlap l) execs true in
          ports_ok && execs_ok)

let prop_recovery_restores_tolerance =
  QCheck.Test.make
    ~name:"recovery restores full tolerance among the survivors" ~count:30
    seed_arb (fun seed ->
      let prob = small_problem_of_seed seed in
      match Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob with
      | Error _ -> QCheck.assume_fail ()
      | Ok m ->
          let rng = Rng.create ~seed:(seed + 7) in
          let m_procs = Platform.size prob.Types.platform in
          let victim = Rng.int rng m_procs in
          (match Recovery.restore m ~failed:[ victim ] with
          | Error Recovery.Not_enough_processors ->
              m_procs - 1 < prob.Types.eps + 1
          | Error (Recovery.No_room _) -> false
          | Ok restored ->
              Mapping.on_proc restored victim = []
              && Validate.structure restored = []
              && Validate.fault_tolerance restored = []))

let prop_engine_latency_lower_bound =
  QCheck.Test.make
    ~name:"simulated latency is at least the heaviest task's execution"
    ~count:40 seed_arb (fun seed ->
      let prob = small_problem_of_seed seed in
      match Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob with
      | Error _ -> QCheck.assume_fail ()
      | Ok m -> (
          match Engine.latency m with
          | None -> false
          | Some latency ->
              let slowest_needed =
                Dag.fold_tasks prob.Types.dag ~init:0.0 ~f:(fun acc t ->
                    (* every task runs somewhere: at least the fastest
                       processor's time for it *)
                    let best =
                      List.fold_left
                        (fun best u ->
                          Float.min best
                            (Platform.exec_time prob.Types.platform u
                               (Dag.exec prob.Types.dag t)))
                        infinity
                        (Platform.procs prob.Types.platform)
                    in
                    Float.max acc best)
              in
              latency >= slowest_needed -. 1e-9))

let prop_workflow_io_roundtrip =
  QCheck.Test.make ~name:"workflow files round-trip through print and parse"
    ~count:60 seed_arb (fun seed ->
      let g = layered_of_seed seed in
      match Workflow_io.parse_workflow (Workflow_io.print_workflow g) with
      | Error _ -> false
      | Ok g' ->
          Dag.size g = Dag.size g'
          && Dag.n_edges g = Dag.n_edges g'
          && Dag.fold_edges g ~init:true ~f:(fun acc s d v ->
                 acc
                 && Dag.has_edge g' s d
                 && Float.abs (Dag.volume g' s d -. v)
                    <= 1e-6 *. Float.max 1.0 v))

(* ------------------------------------------------------------------ *)
(* Parallel sweep engine                                               *)
(* ------------------------------------------------------------------ *)

(* Byte-for-byte float equality: NaN = NaN, and -0.0 <> 0.0, which is
   exactly the determinism contract of Parallel.map_seeded. *)
let float_bits_equal x y =
  Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let trial_bits_equal (a : Fig_common.trial_result) (b : Fig_common.trial_result)
    =
  float_bits_equal a.Fig_common.bound b.Fig_common.bound
  && float_bits_equal a.Fig_common.sim b.Fig_common.sim
  && float_bits_equal a.Fig_common.crash b.Fig_common.crash
  && a.Fig_common.meets = b.Fig_common.meets

let sample_bits_equal (a : Fig_common.sample) (b : Fig_common.sample) =
  float_bits_equal a.Fig_common.granularity b.Fig_common.granularity
  && trial_bits_equal a.Fig_common.ltf b.Fig_common.ltf
  && trial_bits_equal a.Fig_common.rltf b.Fig_common.rltf
  && float_bits_equal (Fig_common.ff_sim a) (Fig_common.ff_sim b)

let prop_parallel_collect_deterministic =
  QCheck.Test.make
    ~name:"parallel collect is byte-identical to the sequential collect"
    ~count:4
    QCheck.(
      quad (int_range 0 100_000) (int_range 0 3) (int_range 0 2)
        (int_range 1 4))
    (fun (seed, eps, crashes, jobs) ->
      let config =
        {
          (Fig_common.quick ~eps ~crashes) with
          Fig_common.seed;
          graphs_per_point = 2;
          granularities = [ 0.6; 1.4 ];
        }
      in
      let sequential = Fig_common.collect ~jobs:1 config in
      let parallel = Fig_common.collect ~jobs config in
      List.length sequential = List.length parallel
      && List.for_all2 sample_bits_equal sequential parallel)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays within arbitrary bounds" ~count:200
    QCheck.(pair seed_arb (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let () =
  Alcotest.run "properties"
    [
      ( "graphs",
        List.map to_alcotest
          [
            prop_topo_order_valid;
            prop_depth_bounded;
            prop_width_bounds;
            prop_priority_peak_is_critical_path;
            prop_reverse_involution;
            prop_sp_generator_recognized;
          ] );
      ( "structures",
        List.map to_alcotest
          [ prop_timeline_no_overlap; prop_timeline_busy_sum; prop_heap_matches_model ]
      );
      ( "bitsets",
        List.map to_alcotest
          [
            prop_bitset_matches_reference;
            prop_bitset_complement_reference;
            prop_bitset_complement_involution;
            prop_bitset_inclusion_exclusion;
          ] );
      ( "workload",
        List.map to_alcotest
          [ prop_calibration_exact; prop_rng_int_bounds; prop_workflow_io_roundtrip ] );
      ( "parallel",
        List.map to_alcotest [ prop_parallel_collect_deterministic ] );
      ( "scheduling",
        List.map to_alcotest
          [
            prop_ltf_valid;
            prop_rltf_valid;
            prop_best_effort_tolerant;
            prop_effective_depth_bounded;
            prop_crash_monotone;
            prop_single_failure_survival;
            prop_derive_tolerant;
            prop_survival_consistency;
            prop_recovery_restores_tolerance;
            prop_engine_one_port;
            prop_engine_latency_lower_bound;
          ] );
    ]
