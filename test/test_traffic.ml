(* Open-system traffic: arrival processes, bounded queues, backpressure.

   The load-bearing guarantee is the degenerate point: a Deterministic
   arrival process through an unbounded Block queue must reproduce the
   closed-system engine bit-for-bit (same latencies, same message log,
   same makespan), because the open machinery is advertised as a strict
   superset of the legacy API.  Around it: pinned digests for the
   randomized processes (Poisson / MMPP), queue-bound invariants, drop
   accounting, and the percentile helpers the traffic figures consume. *)

open Test_support

let case = Fixtures.case
let check_true = Fixtures.check_true
let check_int = Fixtures.check_int
let to_alcotest = QCheck_alcotest.to_alcotest
let seed_arb = QCheck.int_range 0 100_000

let bits = Int64.bits_of_float
let float_bits_equal a b = bits a = bits b

(* ------------------------------------------------------------------ *)
(* Arrival processes                                                   *)
(* ------------------------------------------------------------------ *)

let digest_of_times ts =
  let buf = Buffer.create 1024 in
  Array.iter (fun t -> Buffer.add_string buf (Printf.sprintf "%h;" t)) ts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let arrival_tests =
  [
    case "a deterministic process is the closed injection grid, bit-for-bit"
      (fun () ->
        let period = 0.3 in
        let ts = Arrival.times ~n:16 (Arrival.Deterministic { period }) in
        check_int "sixteen offsets" 16 (Array.length ts);
        Array.iteri
          (fun k t ->
            check_true
              (Printf.sprintf "offset %d equals k * period" k)
              (float_bits_equal t (float_of_int k *. period)))
          ts);
    case "offsets are nondecreasing, finite and nonnegative" (fun () ->
        let processes =
          [
            Arrival.Deterministic { period = 0.25 };
            Arrival.Poisson { rate = 3.0 };
            Arrival.Mmpp
              {
                burst_rate = 6.0;
                idle_rate = 0.5;
                mean_burst = 2.0;
                mean_idle = 4.0;
              };
            Arrival.Trace [ 0.0; 0.0; 0.5; 1.25; 1.25; 3.0 ];
          ]
        in
        List.iter
          (fun p ->
            let rng = Rng.create ~seed:7 in
            let ts = Arrival.times ~rng ~n:6 p in
            let prev = ref (-1.0) in
            Array.iter
              (fun t ->
                check_true
                  (Arrival.to_string p ^ ": finite nonneg nondecreasing")
                  (Float.is_finite t && t >= 0.0 && t >= !prev);
                prev := t)
              ts)
          processes);
    case "pinned Poisson offsets for a pinned seed" (fun () ->
        (* Digest guard: any change to the gap-drawing expression (unit
           quanta scaled by 1/rate) re-times every experiment. *)
        let rng = Rng.create ~seed:2009 in
        let ts = Arrival.times ~rng ~n:32 (Arrival.Poisson { rate = 2.0 }) in
        Alcotest.(check string)
          "digest" "e45d1da485c0c138e09ab70260b18e37" (digest_of_times ts));
    case "pinned MMPP offsets for a pinned seed" (fun () ->
        let rng = Rng.create ~seed:2009 in
        let ts =
          Arrival.times ~rng ~n:32
            (Arrival.Mmpp
               {
                 burst_rate = 4.0;
                 idle_rate = 0.4;
                 mean_burst = 5.0;
                 mean_idle = 10.0;
               })
        in
        Alcotest.(check string) "digest" "745728cfa16a3ca2038b4f9cc344313e" (digest_of_times ts));
    case "a Poisson rate sweep re-times the same quanta monotonically"
      (fun () ->
        (* Common random numbers: equal seeds draw equal unit-rate quanta,
           so a higher rate can only move every arrival earlier. *)
        let times rate =
          let rng = Rng.create ~seed:99 in
          Arrival.times ~rng ~n:64 (Arrival.Poisson { rate })
        in
        let slow = times 1.0 and fast = times 2.0 in
        Array.iteri
          (fun k t ->
            check_true
              (Printf.sprintf "arrival %d no later at the higher rate" k)
              (fast.(k) <= t))
          slow);
    case "validation rejects malformed processes and traces" (fun () ->
        let rejects what thunk =
          match thunk () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.failf "%s: expected Invalid_argument" what
        in
        rejects "negative n" (fun () ->
            Arrival.times ~n:(-1) (Arrival.Deterministic { period = 1.0 }));
        rejects "negative period" (fun () ->
            Arrival.times ~n:2 (Arrival.Deterministic { period = -1.0 }));
        rejects "Poisson without rng" (fun () ->
            Arrival.times ~n:2 (Arrival.Poisson { rate = 1.0 }));
        rejects "nonpositive rate" (fun () ->
            Arrival.times ~rng:(Rng.create ~seed:1) ~n:2
              (Arrival.Poisson { rate = 0.0 }));
        rejects "MMPP without rng" (fun () ->
            Arrival.times ~n:2
              (Arrival.Mmpp
                 {
                   burst_rate = 1.0;
                   idle_rate = 1.0;
                   mean_burst = 1.0;
                   mean_idle = 1.0;
                 }));
        rejects "short trace" (fun () ->
            Arrival.times ~n:3 (Arrival.Trace [ 0.0; 1.0 ]));
        rejects "decreasing trace" (fun () ->
            Arrival.times ~n:3 (Arrival.Trace [ 0.0; 2.0; 1.0 ]));
        rejects "negative trace offset" (fun () ->
            Arrival.times ~n:2 (Arrival.Trace [ -1.0; 0.0 ]));
        rejects "non-finite trace offset" (fun () ->
            Arrival.times ~n:2 (Arrival.Trace [ 0.0; nan ])));
    case "mean rates match the models" (fun () ->
        let check_rate what expected p =
          match Arrival.mean_rate p with
          | None -> Alcotest.failf "%s: expected a rate" what
          | Some r -> Fixtures.check_float what expected r
        in
        check_rate "deterministic" 4.0
          (Arrival.Deterministic { period = 0.25 });
        check_rate "poisson" 2.5 (Arrival.Poisson { rate = 2.5 });
        (* phase-weighted: (6*2 + 0.5*4) / (2 + 4) *)
        check_rate "mmpp"
          (((6.0 *. 2.0) +. (0.5 *. 4.0)) /. 6.0)
          (Arrival.Mmpp
             {
               burst_rate = 6.0;
               idle_rate = 0.5;
               mean_burst = 2.0;
               mean_idle = 4.0;
             });
        check_true "trace has no model"
          (Arrival.mean_rate (Arrival.Trace [ 0.0 ]) = None);
        check_true "randomness flags"
          (Arrival.requires_rng (Arrival.Poisson { rate = 1.0 })
          && Arrival.requires_rng
               (Arrival.Mmpp
                  {
                    burst_rate = 1.0;
                    idle_rate = 1.0;
                    mean_burst = 1.0;
                    mean_idle = 1.0;
                  })
          && (not (Arrival.requires_rng (Arrival.Deterministic { period = 1.0 })))
          && not (Arrival.requires_rng (Arrival.Trace []))));
  ]

(* ------------------------------------------------------------------ *)
(* Degenerate point: open(Deterministic, unbounded, Block) == closed    *)
(* ------------------------------------------------------------------ *)

(* A small schedulable problem per seed, in the style of the scheduler
   property suite: random layered DAG on a uniform platform. *)
let mapping_of_seed seed =
  let rng = Rng.create ~seed in
  let tasks = 5 + Rng.int rng 12 in
  let dag = Random_dag.layered ~rng ~tasks () in
  let m = 3 + Rng.int rng 4 in
  let plat = Fixtures.uniform m in
  let eps = Rng.int rng (min 2 (m - 1) + 1) in
  let throughput =
    1.0 /. (4.0 *. float_of_int (eps + 1) *. float_of_int tasks /. float_of_int m)
  in
  let prob = Types.problem ~dag ~platform:plat ~eps ~throughput in
  match
    Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob
  with
  | Ok mapping -> Some mapping
  | Error _ -> None

let message_log (r : Engine.result) =
  List.map
    (fun (m : Engine.message) ->
      ( m.Engine.msg_src.Engine.item,
        m.Engine.msg_src.Engine.rep,
        m.Engine.msg_dst.Engine.item,
        m.Engine.msg_dst.Engine.rep,
        bits m.Engine.msg_start,
        bits m.Engine.msg_finish ))
    r.Engine.messages

let float_opt_bits = function None -> None | Some l -> Some (bits l)

let results_bit_identical (a : Engine.result) (b : Engine.result) =
  Array.map float_opt_bits a.Engine.item_latency
  = Array.map float_opt_bits b.Engine.item_latency
  && float_bits_equal a.Engine.makespan b.Engine.makespan
  && float_bits_equal a.Engine.period b.Engine.period
  && Array.map bits a.Engine.arrivals = Array.map bits b.Engine.arrivals
  && Array.map bits a.Engine.injections = Array.map bits b.Engine.injections
  && message_log a = message_log b

let prop_degenerate_open_is_closed =
  QCheck.Test.make
    ~name:"deterministic unbounded open runs are bit-identical to closed ones"
    ~count:40
    QCheck.(pair seed_arb (int_range 1 8))
    (fun (seed, n_items) ->
      match mapping_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some mapping ->
          let prog = Engine.compile mapping in
          let period = Engine.program_period prog in
          let closed = Engine.run_compiled ~n_items ~period prog in
          let opened =
            Engine.simulate
              ~config:
                (Engine.Run.open_ ~n_items
                   (Arrival.Deterministic { period }))
              prog
          in
          opened.Engine.dropped = 0
          && opened.Engine.stalled = 0
          && float_bits_equal opened.Engine.stall_time 0.0
          && results_bit_identical closed opened)

let prop_degenerate_under_failures =
  QCheck.Test.make
    ~name:"the degenerate point holds under timed failures too" ~count:25
    seed_arb (fun seed ->
      match mapping_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some mapping ->
          let prog = Engine.compile mapping in
          let period = Engine.program_period prog in
          let n_items = 4 in
          let m = Platform.size (Mapping.platform mapping) in
          let timed_failures = [ (seed mod m, 1.5 *. period) ] in
          let closed =
            Engine.run_compiled ~n_items ~period ~timed_failures prog
          in
          let opened =
            Engine.simulate
              ~config:
                {
                  (Engine.Run.open_ ~n_items
                     (Arrival.Deterministic { period }))
                  with
                  Engine.Run.timed_failures;
                }
              prog
          in
          results_bit_identical closed opened)

(* ------------------------------------------------------------------ *)
(* Queue bounds, backpressure and shedding                              *)
(* ------------------------------------------------------------------ *)

let delivered (r : Engine.result) =
  Array.fold_left
    (fun acc l -> match l with Some _ -> acc + 1 | None -> acc)
    0 r.Engine.item_latency

let overload_run ~seed ~bound ~policy mapping =
  let prog = Engine.compile mapping in
  let period = Engine.program_period prog in
  (* Twice the sustainable rate: the queue is guaranteed to fill. *)
  let arrival = Arrival.Poisson { rate = 2.0 /. period } in
  Engine.simulate
    ~config:
      (Engine.Run.open_ ~queue_bound:bound ~policy
         ~rng:(Rng.create ~seed) ~n_items:24 arrival)
    prog

let prop_queue_invariants =
  QCheck.Test.make
    ~name:"bounded queues never exceed their bound and account every item"
    ~count:30
    QCheck.(pair seed_arb (int_range 1 4))
    (fun (seed, bound) ->
      match mapping_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some mapping ->
          let check policy =
            let r = overload_run ~seed ~bound ~policy mapping in
            let n = Array.length r.Engine.item_latency in
            let admitted = n - r.Engine.dropped - r.Engine.stalled in
            r.Engine.peak_queue <= bound
            && r.Engine.peak_queue >= 0
            && r.Engine.dropped >= 0
            && r.Engine.stalled >= 0
            (* no failures: every admitted item is delivered *)
            && delivered r = admitted
            && Float.is_finite r.Engine.stall_time
            && r.Engine.stall_time >= 0.0
            (* no failures here, so injections are nan exactly for the
               shed / stalled items, i.e. the undelivered ones *)
            && (let ok = ref true in
                Array.iteri
                  (fun k l ->
                    if Float.is_nan r.Engine.injections.(k) <> (l = None) then
                      ok := false)
                  r.Engine.item_latency;
                !ok && n = Array.length r.Engine.injections)
          in
          check Engine.Run.Block && check Engine.Run.Drop_newest)

let queue_tests =
  [
    case "backpressure blocks instead of dropping; shedding drops instead"
      (fun () ->
        match mapping_of_seed 5 with
        | None -> Alcotest.fail "seed 5 must schedule"
        | Some mapping ->
            let blocked =
              overload_run ~seed:17 ~bound:1 ~policy:Engine.Run.Block mapping
            in
            let shed =
              overload_run ~seed:17 ~bound:1 ~policy:Engine.Run.Drop_newest
                mapping
            in
            check_int "Block never drops" 0 blocked.Engine.dropped;
            check_true "Block accumulates stall time"
              (blocked.Engine.stall_time > 0.0);
            check_true
              (Printf.sprintf "Drop_newest sheds under 2x overload (%d)"
                 shed.Engine.dropped)
              (shed.Engine.dropped > 0);
            check_true "shedding keeps sojourns bounded by backpressure's"
              (delivered shed > 0));
    case "a crashed entry shard wedges a blocked source, not the engine"
      (fun () ->
        (* eps = 0 mapping, kill the entry processor mid-run: with Block
           the backlog can never drain, the run must terminate anyway and
           report the wedged items as stalled. *)
        match mapping_of_seed 3 with
        | None -> Alcotest.fail "seed 3 must schedule"
        | Some mapping ->
            let prog = Engine.compile mapping in
            let period = Engine.program_period prog in
            let n_items = 12 in
            let procs = Platform.procs (Mapping.platform mapping) in
            let r =
              Engine.simulate
                ~config:
                  {
                    (Engine.Run.open_ ~queue_bound:1 ~n_items
                       (Arrival.Deterministic { period }))
                    with
                    Engine.Run.timed_failures =
                      List.map (fun p -> (p, 3.0 *. period)) procs;
                  }
                prog
            in
            check_true "every item is delivered, shed, stalled or defeated"
              (delivered r + r.Engine.dropped + r.Engine.stalled <= n_items);
            check_true "nothing delivered after the platform died entirely"
              (delivered r < n_items));
  ]

(* ------------------------------------------------------------------ *)
(* Percentile helpers                                                   *)
(* ------------------------------------------------------------------ *)

let stats_tests =
  [
    case "percentiles interpolate linearly (R-7)" (fun () ->
        let sample = [ 40.0; 10.0; 30.0; 20.0 ] in
        Fixtures.check_float "p0 is the min" 10.0 (Stats.percentile 0.0 sample);
        Fixtures.check_float "p100 is the max" 40.0
          (Stats.percentile 100.0 sample);
        Fixtures.check_float "p50 interpolates" 25.0
          (Stats.percentile 50.0 sample);
        Fixtures.check_float "p25 interpolates" 17.5
          (Stats.percentile 25.0 sample);
        Fixtures.check_float "singleton is every percentile" 7.0
          (Stats.percentile 99.0 [ 7.0 ]));
    case "empty samples yield nan, never zero" (fun () ->
        check_true "percentile" (Float.is_nan (Stats.percentile 50.0 []));
        let q = Stats.quantiles [] in
        check_int "q_n" 0 q.Stats.q_n;
        check_true "all nan"
          (Float.is_nan q.Stats.p50 && Float.is_nan q.Stats.p95
          && Float.is_nan q.Stats.p99 && Float.is_nan q.Stats.p999));
    case "out-of-range percentile levels are rejected" (fun () ->
        let rejects p =
          match Stats.percentile p [ 1.0 ] with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.failf "p = %g: expected Invalid_argument" p
        in
        rejects (-1.0);
        rejects 100.5;
        rejects nan);
    case "quantiles agree with percentile on the same sample" (fun () ->
        let sample = List.init 200 (fun k -> float_of_int ((k * 37) mod 200)) in
        let q = Stats.quantiles sample in
        check_int "q_n" 200 q.Stats.q_n;
        Fixtures.check_float "p50" (Stats.percentile 50.0 sample) q.Stats.p50;
        Fixtures.check_float "p95" (Stats.percentile 95.0 sample) q.Stats.p95;
        Fixtures.check_float "p99" (Stats.percentile 99.0 sample) q.Stats.p99;
        Fixtures.check_float "p999" (Stats.percentile 99.9 sample)
          q.Stats.p999);
  ]

let () =
  Alcotest.run "traffic"
    [
      ("arrival-processes", arrival_tests);
      ( "degenerate-point",
        List.map to_alcotest
          [ prop_degenerate_open_is_closed; prop_degenerate_under_failures ] );
      ("queues", List.map to_alcotest [ prop_queue_invariants ] @ queue_tests);
      ("percentiles", stats_tests);
    ]
