(* The chaos harness: seed-pinned long-horizon operation of R-LTF
   mappings under escalating failure pressure.  Every timeline is
   deterministic (pinned seeds, pinned sweep), so the assertions are
   exact, not statistical:

   - the recovery engine never throws across hundreds of epochs;
   - every epoch that is not a terminal outage runs a structurally valid
     mapping, fault-tolerant to the tolerance it advertises;
   - per-epoch accounting is sane (downtime >= 0, delivered <= injected,
     availability in [0,1]);
   - for a fixed seed, availability is monotonically non-increasing in
     the failure rate — the common-random-numbers design of
     Failure_gen.lifetimes makes the crash sets nested across the sweep,
     so more pressure can only lose more items. *)

open Test_support

let case = Fixtures.case
let check_true = Fixtures.check_true

let seeds = [ 11; 23; 37; 51; 64; 78; 86; 99 ]

(* Failure pressure in crashes per processor per 1000 injected items;
   increasing, for the monotonicity assertion. *)
let pressures = [ 2.0; 5.0; 10.0 ]

let horizon_items = 100

let spec =
  {
    Paper_workload.default_spec with
    Paper_workload.tasks_range = (20, 40);
    m = 8;
  }

let eps = 1

let mapping_of seed =
  let rng = Rng.create ~seed in
  let inst = Spec.generate (Spec.paper spec) ~rng ~granularity:1.0 () in
  Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf
    (Types.problem ~dag:inst.Paper_workload.dag
       ~platform:inst.Paper_workload.plat ~eps
       ~throughput:(Paper_workload.throughput ~eps))

let operate ?(overload = None) ?(faults = None) ~seed ~pressure mapping =
  let throughput = Paper_workload.throughput ~eps in
  let p = Float.max (1.0 /. throughput) (Metrics.period mapping) in
  let config =
    {
      Stream_ops.horizon = float_of_int horizon_items *. p;
      hazard = Failure_gen.uniform ~lambda:(pressure /. (1000.0 *. p));
      max_attempts = None;
      reconfig_delay = 2.0 *. p;
      max_items_per_epoch = horizon_items + 8;
      overload;
      faults;
    }
  in
  (* The operations RNG depends on the seed only, never on the pressure:
     equal generator states across the sweep are what make the crash
     sets nested (common random numbers). *)
  let rng = Rng.create ~seed:(0x5EED + seed) in
  Stream_ops.run ~config ~rng ~throughput mapping

let check_epoch ~seed ~pressure (ep : Stream_ops.epoch) =
  let ctx = Printf.sprintf "seed %d pressure %.1f epoch %d" seed pressure in
  check_true (ctx ep.Stream_ops.index ^ ": downtime >= 0")
    (ep.Stream_ops.downtime >= 0.0);
  check_true (ctx ep.Stream_ops.index ^ ": delivered <= injected")
    (ep.Stream_ops.delivered <= ep.Stream_ops.injected
    && ep.Stream_ops.delivered >= 0);
  check_true (ctx ep.Stream_ops.index ^ ": lost accounts for the rest")
    (ep.Stream_ops.lost = ep.Stream_ops.injected - ep.Stream_ops.delivered);
  check_true (ctx ep.Stream_ops.index ^ ": time moves forward")
    (ep.Stream_ops.t_end >= ep.Stream_ops.t_start);
  match ep.Stream_ops.decision with
  | Stream_ops.Outage _ -> ()
  | Stream_ops.Ran_clean | Stream_ops.Restored _ -> (
      (match Validate.structure ep.Stream_ops.mapping with
      | [] -> ()
      | e :: _ ->
          Alcotest.failf "%s: invalid mapping: %s"
            (ctx ep.Stream_ops.index)
            (Validate.error_to_string e));
      if ep.Stream_ops.tolerance > 0 then
        match Validate.fault_tolerance ep.Stream_ops.mapping with
        | [] -> ()
        | e :: _ ->
            Alcotest.failf "%s: tolerance %d not honoured: %s"
              (ctx ep.Stream_ops.index)
              ep.Stream_ops.tolerance
              (Validate.error_to_string e))

let chaos_tests =
  [
    case "hundreds of epochs survive escalating failure pressure" (fun () ->
        let total_epochs = ref 0 and total_crashes = ref 0 in
        List.iter
          (fun seed ->
            let mapping = mapping_of seed in
            let availabilities =
              List.map
                (fun pressure ->
                  let report = operate ~seed ~pressure mapping in
                  total_epochs :=
                    !total_epochs + List.length report.Stream_ops.epochs;
                  total_crashes := !total_crashes + report.Stream_ops.crashes;
                  check_true
                    (Printf.sprintf "seed %d pressure %.1f: availability in range"
                       seed pressure)
                    (report.Stream_ops.availability >= 0.0
                    && report.Stream_ops.availability <= 1.0);
                  check_true
                    (Printf.sprintf "seed %d pressure %.1f: downtime >= 0" seed
                       pressure)
                    (report.Stream_ops.total_downtime >= 0.0);
                  List.iter (check_epoch ~seed ~pressure)
                    report.Stream_ops.epochs;
                  report.Stream_ops.availability)
                pressures
            in
            (* nested crash sets: more pressure can only lose more *)
            ignore
              (List.fold_left
                 (fun prev avail ->
                   check_true
                     (Printf.sprintf
                        "seed %d: availability non-increasing in the rate" seed)
                     (avail <= prev +. 1e-9);
                   avail)
                 infinity availabilities))
          seeds;
        check_true
          (Printf.sprintf "enough epochs driven (%d)" !total_epochs)
          (!total_epochs >= 100);
        check_true
          (Printf.sprintf "enough crashes recovered (%d)" !total_crashes)
          (!total_crashes >= 30));
    case "a timeline is deterministic for a pinned seed" (fun () ->
        let seed = List.hd seeds and pressure = List.nth pressures 1 in
        let mapping = mapping_of seed in
        let a = operate ~seed ~pressure mapping in
        let b = operate ~seed ~pressure mapping in
        Fixtures.check_int "same epoch count"
          (List.length a.Stream_ops.epochs)
          (List.length b.Stream_ops.epochs);
        check_true "same availability bits"
          (Int64.bits_of_float a.Stream_ops.availability
          = Int64.bits_of_float b.Stream_ops.availability);
        check_true "same latency bits"
          (Int64.bits_of_float a.Stream_ops.mean_latency
          = Int64.bits_of_float b.Stream_ops.mean_latency));
    case "a zero rate never crashes and delivers everything" (fun () ->
        let mapping = mapping_of 11 in
        let report = operate ~seed:11 ~pressure:0.0 mapping in
        Fixtures.check_int "no crashes" 0 report.Stream_ops.crashes;
        Fixtures.check_int "one clean epoch" 1
          (List.length report.Stream_ops.epochs);
        check_true "full availability" (report.Stream_ops.availability = 1.0);
        check_true "no outage" (not report.Stream_ops.outage));
    case "a post-recovery burst through a tight queue sheds items" (fun () ->
        (* Burst-during-failure scenario: after every restoration the
           backlog flushes at 8x the nominal rate through a depth-1 queue
           that drops on overflow.  The window is effectively unbounded so
           any restoration at all guarantees overload pressure. *)
        let overload =
          Some
            {
              Stream_ops.queue_bound = 1;
              policy = Engine.Run.Drop_newest;
              burst_factor = 8.0;
              burst_window = 1e9;
            }
        in
        let seed = 11 and pressure = 10.0 in
        let mapping = mapping_of seed in
        let report = operate ~overload ~seed ~pressure mapping in
        check_true "at least one restoration happened"
          (List.exists
             (fun ep ->
               match ep.Stream_ops.decision with
               | Stream_ops.Restored _ -> true
               | _ -> false)
             report.Stream_ops.epochs);
        check_true
          (Printf.sprintf "the burst sheds items (%d dropped)"
             report.Stream_ops.dropped)
          (report.Stream_ops.dropped > 0);
        check_true "drops are a subset of the lost items"
          (report.Stream_ops.dropped
          <= report.Stream_ops.injected - report.Stream_ops.delivered);
        let again = operate ~overload ~seed ~pressure mapping in
        Fixtures.check_int "deterministic drop count"
          report.Stream_ops.dropped again.Stream_ops.dropped;
        check_true "deterministic availability bits"
          (Int64.bits_of_float report.Stream_ops.availability
          = Int64.bits_of_float again.Stream_ops.availability));
    case "backpressure never sheds; a quiet overload run delivers all"
      (fun () ->
        (* Block = upstream backpressure: the queue stalls the source
           instead of dropping, so [dropped] stays 0 under the same
           pressure that sheds under Drop_newest... *)
        let block =
          Some
            {
              Stream_ops.queue_bound = 1;
              policy = Engine.Run.Block;
              burst_factor = 8.0;
              burst_window = 1e9;
            }
        in
        let mapping = mapping_of 11 in
        let report = operate ~overload:block ~seed:11 ~pressure:10.0 mapping in
        Fixtures.check_int "backpressure drops nothing" 0
          report.Stream_ops.dropped;
        (* ... and with no crash there is never a burst, so the open-mode
           timeline matches the legacy closed one on the dashboard. *)
        let quiet = operate ~overload:block ~seed:11 ~pressure:0.0 mapping in
        let legacy = operate ~seed:11 ~pressure:0.0 mapping in
        Fixtures.check_int "no crashes" 0 quiet.Stream_ops.crashes;
        Fixtures.check_int "nothing dropped" 0 quiet.Stream_ops.dropped;
        check_true "full availability" (quiet.Stream_ops.availability = 1.0);
        Fixtures.check_int "same injections as the closed path"
          legacy.Stream_ops.injected quiet.Stream_ops.injected;
        Fixtures.check_int "same deliveries as the closed path"
          legacy.Stream_ops.delivered quiet.Stream_ops.delivered);
    case "retry exhaustion escalates to eviction through the recovery chain"
      (fun () ->
        (* No crashes at all: the only pressure is a processor stuck in a
           permanent exec-fault window with a one-retry budget.  Every
           instance dispatched to it times out twice and is abandoned;
           the exhaustion ledger crosses the threshold at a review
           instant and the machine is evicted — a synthetic fail-stop
           that must flow through the same recovery chain as a crash. *)
        let mapping = mapping_of 11 in
        let victim =
          (* a processor that actually executes work *)
          let n = Platform.size (Mapping.platform mapping) in
          let load = Array.make n 0 in
          Mapping.iter mapping (fun r ->
              load.(r.Replica.proc) <- load.(r.Replica.proc) + 1);
          let best = ref 0 in
          Array.iteri (fun u c -> if c > load.(!best) then best := u) load;
          !best
        in
        let throughput = Paper_workload.throughput ~eps in
        let p = Float.max (1.0 /. throughput) (Metrics.period mapping) in
        let faults =
          Some
            {
              Stream_ops.engine_faults =
                {
                  Faults.transient =
                    {
                      Faults.Transient.none with
                      Faults.Transient.exec_windows = [ (victim, 0.0, 1e15) ];
                    };
                  retry = Faults.Backoff.make ~max_retries:1 ();
                  gray = Faults.Gray.none;
                };
              eviction_threshold = 3;
              review_window = float_of_int horizon_items *. p /. 8.0;
            }
        in
        let report = operate ~faults ~seed:11 ~pressure:0.0 mapping in
        check_true
          (Printf.sprintf "the victim was evicted (%d evictions)"
             report.Stream_ops.evictions)
          (report.Stream_ops.evictions >= 1);
        Fixtures.check_int "an eviction is not a crash" 0
          report.Stream_ops.crashes;
        check_true "the eviction went through the recovery chain"
          (List.exists
             (fun ep ->
               match ep.Stream_ops.decision with
               | Stream_ops.Restored _ -> true
               | _ -> false)
             report.Stream_ops.epochs);
        check_true "the evicted processor closes its epoch"
          (List.exists
             (fun ep ->
               match ep.Stream_ops.crash with
               | Some (p, _) -> p = victim
               | None -> false)
             report.Stream_ops.epochs);
        check_true "post-eviction epochs deliver again"
          (report.Stream_ops.availability > 0.0);
        let again = operate ~faults ~seed:11 ~pressure:0.0 mapping in
        Fixtures.check_int "deterministic eviction count"
          report.Stream_ops.evictions again.Stream_ops.evictions;
        check_true "deterministic availability bits"
          (Int64.bits_of_float report.Stream_ops.availability
          = Int64.bits_of_float again.Stream_ops.availability));
  ]

let () = Alcotest.run "chaos" [ ("recovery-engine", chaos_tests) ]
