open Test_support

(* The exact availability calculus against ground truth: exhaustive
   enumeration of every failure pattern on small platforms (p <= 8), the
   Monte-Carlo estimators it is meant to replace, and pinned values for
   the seed workloads. *)

let case = Fixtures.case
let to_alcotest = QCheck_alcotest.to_alcotest
let seed_arb = QCheck.int_range 0 100_000

(* Small problems on at most 8 processors, so 2^m enumeration stays cheap. *)
let small_problem_of_seed seed =
  let rng = Rng.create ~seed in
  let tasks = 4 + Rng.int rng 16 in
  let dag = Random_dag.layered ~rng ~tasks () in
  let m = 4 + Rng.int rng 5 in
  let plat = Fixtures.uniform m in
  let eps = Rng.int rng (min 2 (m - 1) + 1) in
  let throughput =
    1.0 /. (4.0 *. float_of_int (eps + 1) *. float_of_int tasks /. float_of_int m)
  in
  Types.problem ~dag ~platform:plat ~eps ~throughput

let schedule_of_seed seed =
  let prob = small_problem_of_seed seed in
  match Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob with
  | Error _ -> None
  | Ok m -> Some (prob, m)

let subset_of_mask ~m mask =
  List.filter (fun p -> mask land (1 lsl p) <> 0) (List.init m Fun.id)

let popcount mask =
  let rec go mask acc = if mask = 0 then acc else go (mask land (mask - 1)) (acc + 1) in
  go mask 0

let float_binom n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let r = ref 1.0 in
    for i = 1 to k do
      r := !r *. float_of_int (n - k + i) /. float_of_int i
    done;
    !r
  end

(* ------------------------------------------------------------------ *)
(* Exhaustive oracles: every failure pattern on p <= 8                  *)
(* ------------------------------------------------------------------ *)

(* The cut families ARE the defeat predicate: a pattern defeats the
   schedule iff it contains a minimal cut.  Checked against the calculus
   oracle sweep, the stage model and the discrete-event engine, for all
   2^m patterns. *)
let prop_cut_sets_match_enumeration =
  QCheck.Test.make ~name:"defeat cuts reproduce every failure pattern"
    ~count:25 seed_arb (fun seed ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let t = Reliability.analyze m in
          let cuts = Reliability.defeat_cut_sets t in
          let program = Engine.compile m in
          let n_procs = Platform.size prob.Types.platform in
          let ok = ref true in
          for mask = 0 to (1 lsl n_procs) - 1 do
            let failed = subset_of_mask ~m:n_procs mask in
            let failed_set = Bitset.of_list failed in
            let by_cuts = List.exists (fun c -> Bitset.subset c failed_set) cuts in
            let by_oracle = Reliability.defeated_by t ~failed in
            let by_stage = Stage_latency.effective_depth ~failed m = None in
            let by_engine = Engine.latency_compiled ~failed program = None in
            if not (by_cuts = by_oracle && by_oracle = by_stage && by_stage = by_engine)
            then ok := false
          done;
          !ok)

(* The oracle depth sweep agrees with the stage model on every pattern,
   and the calculus depth distribution matches the enumeration counts for
   every crash count c. *)
let prop_depth_distribution_exhaustive =
  QCheck.Test.make ~name:"depth distribution matches exhaustive enumeration"
    ~count:15 seed_arb (fun seed ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let t = Reliability.analyze m in
          let n_procs = Platform.size prob.Types.platform in
          let ok = ref true in
          (* per crash count: depth histogram over all masks of that size *)
          let histo = Array.make (n_procs + 1) [] in
          for mask = 0 to (1 lsl n_procs) - 1 do
            let failed = subset_of_mask ~m:n_procs mask in
            let d = Reliability.depth_with t ~failed in
            if d <> Stage_latency.effective_depth ~failed m then ok := false;
            let c = popcount mask in
            histo.(c) <- d :: histo.(c)
          done;
          for c = 0 to n_procs do
            let total = float_binom n_procs c in
            (* both evaluation strategies — subset enumeration and the
               antichain telescoping — must match the mask histogram *)
            List.iter
              (fun dist ->
                (* every listed mass equals its enumeration frequency *)
                List.iter
                  (fun (d, p) ->
                    let count =
                      List.length (List.filter (fun x -> x = Some d) histo.(c))
                    in
                    if Float.abs (p -. (float_of_int count /. total)) > 1e-9
                    then ok := false)
                  dist;
                (* and the masses cover every surviving pattern *)
                let survivors =
                  List.length (List.filter (fun x -> x <> None) histo.(c))
                in
                let mass =
                  List.fold_left (fun acc (_, p) -> acc +. p) 0.0 dist
                in
                if Float.abs (mass -. (float_of_int survivors /. total)) > 1e-9
                then ok := false)
              [
                Reliability.depth_distribution t (Reliability.Uniform_crashes c);
                Reliability.depth_distribution ~enumerate_below:0 t
                  (Reliability.Uniform_crashes c);
              ]
          done;
          !ok)

let prop_uniform_probability_exhaustive =
  QCheck.Test.make ~name:"uniform defeat probability matches enumeration"
    ~count:20 seed_arb (fun seed ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let t = Reliability.analyze m in
          let n_procs = Platform.size prob.Types.platform in
          List.for_all
            (fun c ->
              let defeated = ref 0 in
              for mask = 0 to (1 lsl n_procs) - 1 do
                if popcount mask = c then
                  if
                    Reliability.defeated_by t
                      ~failed:(subset_of_mask ~m:n_procs mask)
                  then incr defeated
              done;
              let brute = float_of_int !defeated /. float_binom n_procs c in
              let by_enum =
                Reliability.defeat_probability t (Reliability.Uniform_crashes c)
              in
              let by_cuts =
                Reliability.defeat_probability ~enumerate_below:0 t
                  (Reliability.Uniform_crashes c)
              in
              Float.abs (brute -. by_enum) <= 1e-9
              && Float.abs (brute -. by_cuts) <= 1e-9)
            (List.init (n_procs + 1) Fun.id))

let prop_independent_probability_exhaustive =
  QCheck.Test.make ~name:"independent defeat probability matches enumeration"
    ~count:20 seed_arb (fun seed ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let t = Reliability.analyze m in
          let n_procs = Platform.size prob.Types.platform in
          let rng = Rng.create ~seed:(seed + 13) in
          let hazard = Array.init n_procs (fun _ -> Rng.float rng 0.9) in
          let brute = ref 0.0 in
          for mask = 0 to (1 lsl n_procs) - 1 do
            let failed = subset_of_mask ~m:n_procs mask in
            if Reliability.defeated_by t ~failed then begin
              let w = ref 1.0 in
              for u = 0 to n_procs - 1 do
                w :=
                  !w
                  *.
                  if mask land (1 lsl u) <> 0 then hazard.(u)
                  else 1.0 -. hazard.(u)
              done;
              brute := !brute +. !w
            end
          done;
          let exact =
            Reliability.defeat_probability t
              (Reliability.Independent (fun u -> hazard.(u)))
          in
          ignore prob;
          Float.abs (!brute -. exact) <= 1e-9)

(* Expected degraded latency conditioned on survival, against the same
   enumeration. *)
let prop_expected_latency_exhaustive =
  QCheck.Test.make ~name:"expected degraded latency matches enumeration"
    ~count:15 seed_arb (fun seed ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let t = Reliability.analyze m in
          let throughput = prob.Types.throughput in
          let n_procs = Platform.size prob.Types.platform in
          List.for_all
            (fun c ->
              let total = ref 0.0 and survivors = ref 0 in
              for mask = 0 to (1 lsl n_procs) - 1 do
                if popcount mask = c then
                  match
                    Reliability.depth_with t
                      ~failed:(subset_of_mask ~m:n_procs mask)
                  with
                  | None -> ()
                  | Some d ->
                      incr survivors;
                      total :=
                        !total
                        +. (float_of_int ((2 * d) - 1) /. throughput)
              done;
              let brute =
                if !survivors = 0 then None
                else Some (!total /. float_of_int !survivors)
              in
              List.for_all
                (fun exact ->
                  match (brute, exact) with
                  | None, None -> true
                  | Some b, Some e ->
                      Float.abs (b -. e) <= 1e-9 *. Float.max 1.0 (Float.abs b)
                  | _ -> false)
                [
                  Reliability.expected_latency t ~throughput
                    (Reliability.Uniform_crashes c);
                  Reliability.expected_latency ~enumerate_below:0 t ~throughput
                    (Reliability.Uniform_crashes c);
                ])
            (List.init (n_procs + 1) Fun.id))

(* ------------------------------------------------------------------ *)
(* Structural properties of the calculus                                *)
(* ------------------------------------------------------------------ *)

let prop_probability_in_unit_interval =
  QCheck.Test.make ~name:"defeat probabilities live in [0, 1]" ~count:30
    (QCheck.pair seed_arb (QCheck.int_range 0 8))
    (fun (seed, c) ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let t = Reliability.analyze m in
          let n_procs = Platform.size prob.Types.platform in
          let c = min c n_procs in
          let pu = Reliability.defeat_probability t (Reliability.Uniform_crashes c) in
          let q = 0.001 *. float_of_int (1 + (seed mod 900)) in
          let pi = Reliability.defeat_probability t (Reliability.Independent (fun _ -> q)) in
          pu >= 0.0 && pu <= 1.0 && pi >= 0.0 && pi <= 1.0)

let prop_monotone_in_hazard =
  QCheck.Test.make ~name:"defeat probability is monotone in the hazard"
    ~count:30
    (QCheck.triple seed_arb (QCheck.float_range 0.0 1.0) (QCheck.float_range 0.0 1.0))
    (fun (seed, q1, q2) ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (_, m) ->
          let t = Reliability.analyze m in
          let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
          let p_lo = Reliability.defeat_probability t (Reliability.Independent (fun _ -> lo)) in
          let p_hi = Reliability.defeat_probability t (Reliability.Independent (fun _ -> hi)) in
          p_lo <= p_hi +. 1e-12)

let prop_monotone_in_crashes =
  QCheck.Test.make ~name:"defeat probability is monotone in the crash count"
    ~count:30 seed_arb (fun seed ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let t = Reliability.analyze m in
          let n_procs = Platform.size prob.Types.platform in
          let p c = Reliability.defeat_probability t (Reliability.Uniform_crashes c) in
          let rec mono c prev =
            c > n_procs
            ||
            let here = p c in
            here >= prev -. 1e-12 && mono (c + 1) here
          in
          mono 0 0.0)

(* eps-tolerance restated analytically: with at most eps crashes the
   schedule never loses (the validator's guarantee, via the calculus). *)
let prop_tolerance_within_eps =
  QCheck.Test.make ~name:"defeat probability is 0 for c <= eps" ~count:30
    seed_arb (fun seed ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let t = Reliability.analyze m in
          List.for_all
            (fun c ->
              Reliability.defeat_probability t (Reliability.Uniform_crashes c)
              = 0.0)
            (List.init (prob.Types.eps + 1) Fun.id))

(* Pruning at the crash-count horizon is invisible to the uniform model. *)
let prop_pruned_analysis_agrees =
  QCheck.Test.make ~name:"cut-cardinality pruning preserves uniform answers"
    ~count:20
    (QCheck.pair seed_arb (QCheck.int_range 0 4))
    (fun (seed, c) ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let c = min c (Platform.size prob.Types.platform) in
          let full = Reliability.analyze m in
          let pruned = Reliability.analyze ~max_cut_card:c m in
          let model = Reliability.Uniform_crashes c in
          (* force the antichain evaluator: pruning lives in the families *)
          Float.abs
            (Reliability.defeat_probability ~enumerate_below:0 full model
            -. Reliability.defeat_probability ~enumerate_below:0 pruned model)
          <= 1e-12)

(* Unreplicated chains always admit the closed-form product; it must agree
   with the Shannon evaluator. *)
let prop_closed_form_agrees =
  QCheck.Test.make ~name:"closed-form product agrees with the general evaluator"
    ~count:40 seed_arb (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2 + Rng.int rng 7 in
      let dag = Classic.chain ~n ~exec:1.0 ~volume:1.0 in
      let m_procs = 2 + Rng.int rng 7 in
      let plat = Fixtures.uniform m_procs in
      let placement = Array.init n (fun _ -> Rng.int rng m_procs) in
      let m =
        Source_derivation.derive ~dag ~platform:plat ~eps:0
          ~proc_of:(fun task _copy -> placement.(task))
          ()
      in
      let t = Reliability.analyze m in
      let hazard = Array.init m_procs (fun _ -> Rng.float rng 0.9) in
      let pfail u = hazard.(u) in
      match Reliability.closed_form_defeat t ~pfail with
      | None -> false
      | Some p ->
          Float.abs (p -. Reliability.defeat_probability t (Reliability.Independent pfail))
          <= 1e-12)

(* The three exact surfaces agree: Crash's engine enumeration, the
   analytic stage-model stats, and the raw calculus. *)
let prop_exact_siblings_agree =
  QCheck.Test.make ~name:"Crash and Stage_latency exact siblings agree"
    ~count:20
    (QCheck.pair seed_arb (QCheck.int_range 0 3))
    (fun (seed, c) ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let c = min c (Platform.size prob.Types.platform) in
          let engine =
            Crash.estimate ~source:(Crash.Of_mapping m)
              ~method_:(Crash.Exact { crashes = c; max_evaluations = None })
              ()
          in
          let stage =
            Stage_latency.exact_crash_latency_stats ~crashes:c
              ~throughput:prob.Types.throughput m
          in
          let calculus =
            let t = Reliability.analyze ~max_cut_card:c m in
            Reliability.defeat_probability t (Reliability.Uniform_crashes c)
          in
          Float.abs (engine.Crash.est_p_defeat -. stage.Crash.p_defeat) <= 1e-9
          && Float.abs (engine.Crash.est_p_defeat -. calculus) <= 1e-9
          && (stage.Crash.degraded_mean = None) = (engine.Crash.est_mean = None))

(* ------------------------------------------------------------------ *)
(* Monte-Carlo convergence: the estimator approaches the exact value    *)
(* ------------------------------------------------------------------ *)

(* For growing draw counts the defeat-rate estimate must fall within a
   z-score band around the analytic value; the band narrows as 1/sqrt(n).
   z = 5 keeps the statistical false-failure rate around 6e-7 per
   check. *)
let prop_mc_converges_to_exact =
  QCheck.Test.make ~name:"Monte-Carlo defeat rates converge to the calculus"
    ~count:15
    (QCheck.pair seed_arb (QCheck.int_range 1 3))
    (fun (seed, c) ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let n_procs = Platform.size prob.Types.platform in
          let c = min c n_procs in
          let t = Reliability.analyze ~max_cut_card:c m in
          let exact =
            Reliability.defeat_probability t (Reliability.Uniform_crashes c)
          in
          let program = Engine.compile m in
          ignore prob;
          List.for_all
            (fun runs ->
              let rng = Rng.create ~seed:(seed + (7 * runs)) in
              let e =
                Crash.estimate ~source:(Crash.Of_program program)
                  ~method_:(Crash.Sampled { crashes = c; draws = runs; rng })
                  ()
              in
              let est = e.Crash.est_p_defeat in
              let sigma =
                Float.sqrt (Float.max (exact *. (1.0 -. exact)) 1e-6 /. float_of_int runs)
              in
              Float.abs (est -. exact) <= 5.0 *. sigma)
            [ 100; 400; 1600 ])

(* ------------------------------------------------------------------ *)
(* Hand-checkable unit cases and pinned seed workloads                  *)
(* ------------------------------------------------------------------ *)

let place m task copy proc sources =
  Mapping.assign m { Replica.id = { Replica.task; copy }; proc; sources }

(* chain3 on 3 processors, eps = 0, one replica per processor: the
   schedule dies iff any of the three processors dies. *)
let unreplicated_chain () =
  let m =
    Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 3) ~eps:0
  in
  place m 0 0 0 [];
  place m 1 0 1 [ (0, [ { Replica.task = 0; copy = 0 } ]) ];
  place m 2 0 2 [ (1, [ { Replica.task = 1; copy = 0 } ]) ];
  m

let chain_cut_sets () =
  let t = Reliability.analyze (unreplicated_chain ()) in
  let cuts = Reliability.defeat_cut_sets t in
  Alcotest.(check int) "three singleton cuts" 3 (List.length cuts);
  List.iter
    (fun c -> Alcotest.(check int) "singleton" 1 (Bitset.cardinal c))
    cuts;
  Fixtures.check_float "uniform c=1"
    1.0
    (Reliability.defeat_probability t (Reliability.Uniform_crashes 1));
  Fixtures.check_float "uniform c=1 (antichain)" 1.0
    (Reliability.defeat_probability ~enumerate_below:0 t
       (Reliability.Uniform_crashes 1));
  let q = 0.1 in
  let expected = 1.0 -. ((1.0 -. q) ** 3.0) in
  Fixtures.check_float "independent q=0.1" expected
    (Reliability.defeat_probability t (Reliability.Independent (fun _ -> q)));
  match Reliability.closed_form_defeat t ~pfail:(fun _ -> q) with
  | None -> Alcotest.fail "chain should admit the closed form"
  | Some p -> Fixtures.check_float "closed form" expected p

(* chain3 mirrored on two processors, eps = 1, fully cross-wired: every
   stage survives one crash; both processors must die to defeat it. *)
let mirrored_chain () =
  let m =
    Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 2) ~eps:1
  in
  let both task = [ { Replica.task; copy = 0 }; { Replica.task; copy = 1 } ] in
  place m 0 0 0 [];
  place m 0 1 1 [];
  place m 1 0 0 [ (0, both 0) ];
  place m 1 1 1 [ (0, both 0) ];
  place m 2 0 0 [ (1, both 1) ];
  place m 2 1 1 [ (1, both 1) ];
  m

let mirrored_cut_sets () =
  let t = Reliability.analyze (mirrored_chain ()) in
  (match Reliability.defeat_cut_sets t with
  | [ c ] ->
      Alcotest.(check (list int)) "both procs" [ 0; 1 ] (Bitset.elements c)
  | cuts ->
      Alcotest.failf "expected one cut, got %d" (List.length cuts));
  Fixtures.check_float "survives one crash" 0.0
    (Reliability.defeat_probability t (Reliability.Uniform_crashes 1));
  Fixtures.check_float "defeated by two" 1.0
    (Reliability.defeat_probability t (Reliability.Uniform_crashes 2));
  Fixtures.check_float "survives one crash (antichain)" 0.0
    (Reliability.defeat_probability ~enumerate_below:0 t
       (Reliability.Uniform_crashes 1));
  Fixtures.check_float "defeated by two (antichain)" 1.0
    (Reliability.defeat_probability ~enumerate_below:0 t
       (Reliability.Uniform_crashes 2));
  let q = 0.25 in
  Fixtures.check_float "independent" (q *. q)
    (Reliability.defeat_probability t (Reliability.Independent (fun _ -> q)))

let validation_errors () =
  let incomplete =
    Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 3) ~eps:0
  in
  Alcotest.check_raises "incomplete mapping"
    (Invalid_argument "Reliability.analyze: mapping is not complete")
    (fun () -> ignore (Reliability.analyze incomplete));
  let t = Reliability.analyze (unreplicated_chain ()) in
  Alcotest.check_raises "crash count out of range"
    (Invalid_argument "Reliability: crash count outside [0, m]")
    (fun () ->
      ignore (Reliability.defeat_probability t (Reliability.Uniform_crashes 4)));
  let pruned = Reliability.analyze ~max_cut_card:1 (unreplicated_chain ()) in
  Alcotest.check_raises "past the pruning horizon"
    (Invalid_argument "Reliability: crash count exceeds the analysis cut horizon")
    (fun () ->
      ignore (Reliability.defeat_probability pruned (Reliability.Uniform_crashes 2)));
  Alcotest.check_raises "independent needs the unpruned analysis"
    (Invalid_argument "Reliability: Independent model needs an unpruned analysis")
    (fun () ->
      ignore
        (Reliability.defeat_probability pruned (Reliability.Independent (fun _ -> 0.1))))

(* ------------------------------------------------------------------ *)
(* Correlated failure domains (Marshall–Olkin common shocks)            *)
(* ------------------------------------------------------------------ *)

(* Exhaustive ground truth: condition on every shock pattern, then sum
   over every idiosyncratic pattern with the oracle as defeat predicate
   — the definition the 2^D evaluation must reproduce. *)
let brute_force_correlated t ~domains ~p_shock ~p_fail =
  let m = Reliability.procs t in
  let n_domains = Faults.Domains.count domains in
  let total = ref 0.0 in
  for shock_mask = 0 to (1 lsl n_domains) - 1 do
    let weight = ref 1.0 in
    for d = 0 to n_domains - 1 do
      let p = p_shock d in
      weight := !weight *. (if shock_mask land (1 lsl d) <> 0 then p else 1.0 -. p)
    done;
    if !weight > 0.0 then
      for idio_mask = 0 to (1 lsl m) - 1 do
        let prob = ref !weight in
        let failed = ref [] in
        for u = m - 1 downto 0 do
          let shocked =
            shock_mask land (1 lsl Faults.Domains.domain_of domains u) <> 0
          in
          let idio = idio_mask land (1 lsl u) <> 0 in
          let q = p_fail u in
          prob := !prob *. (if idio then q else 1.0 -. q);
          if shocked || idio then failed := u :: !failed
        done;
        if !prob > 0.0 && Reliability.defeated_by t ~failed:!failed then
          total := !total +. !prob
      done
  done;
  !total

let prop_correlated_matches_brute_force =
  QCheck.Test.make ~name:"correlated evaluation equals exhaustive conditioning"
    ~count:10 seed_arb (fun seed ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let t = Reliability.analyze m in
          let procs = Platform.size prob.Types.platform in
          let domains = Faults.Domains.racks ~size:3 ~procs in
          let p_shock d = 0.02 +. (0.03 *. float_of_int d) in
          let p_fail u = 0.05 +. (0.01 *. float_of_int u) in
          let exact =
            Reliability.defeat_probability t
              (Reliability.Correlated { domains; p_shock; p_fail })
          in
          Float.abs
            (exact -. brute_force_correlated t ~domains ~p_shock ~p_fail)
          < 1e-9)

let prop_zero_shock_degenerates_to_independent =
  QCheck.Test.make ~name:"p_shock = 0 equals the Independent model exactly"
    ~count:15 seed_arb (fun seed ->
      match schedule_of_seed seed with
      | None -> QCheck.assume_fail ()
      | Some (prob, m) ->
          let t = Reliability.analyze m in
          let procs = Platform.size prob.Types.platform in
          let domains = Faults.Domains.racks ~size:2 ~procs in
          let p_fail u = 0.03 +. (0.02 *. float_of_int u) in
          let correlated =
            Reliability.defeat_probability t
              (Reliability.Correlated
                 { domains; p_shock = (fun _ -> 0.0); p_fail })
          in
          let independent =
            Reliability.defeat_probability t (Reliability.Independent p_fail)
          in
          Float.abs (correlated -. independent) < 1e-12)

(* The mirrored chain is defeated only when both processors die, so the
   correlated probability is computable by hand: with both processors in
   one domain of shock probability s and idiosyncratic probability q,
   P(defeat) = s + (1 - s) q².  Splitting a total marginal p = 0.2 at
   correlation 1/2 (s = 0.1, q = 1 - 0.8/0.9 = 1/9) gives exactly 1/9 —
   nearly three times the independent p² = 0.04.  Pinned: any drift is a
   semantic change to the calculus. *)
let correlated_mirrored_chain () =
  let t = Reliability.analyze (mirrored_chain ()) in
  let domains = Faults.Domains.make ~procs:2 [ [ 0; 1 ] ] in
  let evaluate ~s ~q =
    Reliability.defeat_probability t
      (Reliability.Correlated
         { domains; p_shock = (fun _ -> s); p_fail = (fun _ -> q) })
  in
  Fixtures.check_float "correlated defeat (rho = 1/2)" (1.0 /. 9.0)
    (evaluate ~s:0.1 ~q:(1.0 /. 9.0));
  Fixtures.check_float "independent baseline" 0.04
    (Reliability.defeat_probability t (Reliability.Independent (fun _ -> 0.2)));
  Fixtures.check_float "pure shock (rho = 1)" 0.2 (evaluate ~s:0.2 ~q:0.0);
  Fixtures.check_float "no shock (rho = 0)" 0.04 (evaluate ~s:0.0 ~q:0.2)

(* Monte-Carlo cross-validation of the same model: draw the shock and
   the idiosyncratic failures, replay the oracle.  Seed-pinned, so the
   estimate is deterministic and the gate is a convergence bound, not a
   flaky statistical test. *)
let correlated_mc_cross_check () =
  let t = Reliability.analyze (mirrored_chain ()) in
  let domains = Faults.Domains.make ~procs:2 [ [ 0; 1 ] ] in
  let s = 0.1 and q = 1.0 /. 9.0 in
  let exact =
    Reliability.defeat_probability t
      (Reliability.Correlated
         { domains; p_shock = (fun _ -> s); p_fail = (fun _ -> q) })
  in
  let rng = Rng.create ~seed:2009 in
  let draws = 20_000 in
  let defeated = ref 0 in
  for _ = 1 to draws do
    let shocked = Rng.bool rng s in
    let failed = ref [] in
    for u = 1 downto 0 do
      if shocked || Rng.bool rng q then failed := u :: !failed
    done;
    if Reliability.defeated_by t ~failed:!failed then incr defeated
  done;
  let mc = float_of_int !defeated /. float_of_int draws in
  Fixtures.check_float_eps 0.01 "MC within the convergence gate" exact mc

let correlated_validation_errors () =
  let t = Reliability.analyze (mirrored_chain ()) in
  Alcotest.check_raises "mismatched platform"
    (Invalid_argument
       "Reliability: Correlated domains partition a different platform")
    (fun () ->
      ignore
        (Reliability.defeat_probability t
           (Reliability.Correlated
              {
                domains = Faults.Domains.racks ~size:2 ~procs:4;
                p_shock = (fun _ -> 0.1);
                p_fail = (fun _ -> 0.1);
              })));
  Alcotest.check_raises "shock probability out of range"
    (Invalid_argument
       "Reliability: Correlated shock probability outside [0, 1]")
    (fun () ->
      ignore
        (Reliability.defeat_probability t
           (Reliability.Correlated
              {
                domains = Faults.Domains.make ~procs:2 [ [ 0; 1 ] ];
                p_shock = (fun _ -> 1.5);
                p_fail = (fun _ -> 0.1);
              })));
  let pruned = Reliability.analyze ~max_cut_card:1 (unreplicated_chain ()) in
  Alcotest.check_raises "needs the unpruned analysis"
    (Invalid_argument
       "Reliability: Correlated model needs an unpruned analysis")
    (fun () ->
      ignore
        (Reliability.defeat_probability pruned
           (Reliability.Correlated
              {
                domains = Faults.Domains.racks ~size:1 ~procs:3;
                p_shock = (fun _ -> 0.1);
                p_fail = (fun _ -> 0.1);
              })))

(* Pinned analytic defeat probabilities for the deterministic seed
   workload (Rng seed 42, R-LTF best-effort).  These are ground truth for
   future reliability changes: any drift here is a semantic change to the
   scheduler or the calculus, not noise. *)
let pinned_defeat_rates : (int * float) list =
  [
    (2, 0.53157894736842104);
    (3, 0.85175438596491226);
    (4, 0.96780185758513937);
  ]

let pinned_paper_workload () =
  let inst = Fixtures.paper_instance () in
  let eps = 1 in
  let prob =
    Types.problem ~dag:inst.Paper_workload.dag ~platform:inst.Paper_workload.plat
      ~eps ~throughput:(Paper_workload.throughput ~eps)
  in
  let m = Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf prob in
  let t = Reliability.analyze ~max_cut_card:4 m in
  let p c = Reliability.defeat_probability t (Reliability.Uniform_crashes c) in
  let p_cuts c =
    Reliability.defeat_probability ~enumerate_below:0 t
      (Reliability.Uniform_crashes c)
  in
  List.iter
    (fun c ->
      Fixtures.check_float (Printf.sprintf "defeat within eps, c=%d" c) 0.0 (p c))
    (List.init (eps + 1) Fun.id);
  (* values computed by this calculus and cross-checked against the
     exhaustive oracle machinery above; pinned to catch drift *)
  List.iter
    (fun (c, expected) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "pinned defeat rate, c=%d" c)
        expected (p c);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "pinned defeat rate via antichain, c=%d" c)
        expected (p_cuts c))
    pinned_defeat_rates

let () =
  Alcotest.run "reliability"
    [
      ( "exhaustive",
        List.map to_alcotest
          [
            prop_cut_sets_match_enumeration;
            prop_depth_distribution_exhaustive;
            prop_uniform_probability_exhaustive;
            prop_independent_probability_exhaustive;
            prop_expected_latency_exhaustive;
          ] );
      ( "properties",
        List.map to_alcotest
          [
            prop_probability_in_unit_interval;
            prop_monotone_in_hazard;
            prop_monotone_in_crashes;
            prop_tolerance_within_eps;
            prop_pruned_analysis_agrees;
            prop_closed_form_agrees;
            prop_exact_siblings_agree;
          ] );
      ("convergence", List.map to_alcotest [ prop_mc_converges_to_exact ]);
      ( "correlated",
        List.map to_alcotest
          [
            prop_correlated_matches_brute_force;
            prop_zero_shock_degenerates_to_independent;
          ]
        @ [
            case "pinned correlated vs independent defeat rates"
              correlated_mirrored_chain;
            case "Monte-Carlo cross-validation" correlated_mc_cross_check;
            case "validation errors" correlated_validation_errors;
          ] );
      ( "units",
        [
          case "unreplicated chain cut sets" chain_cut_sets;
          case "mirrored chain cut sets" mirrored_cut_sets;
          case "validation errors" validation_errors;
          case "pinned paper workload" pinned_paper_workload;
        ] );
    ]
