open Test_support

let case = Fixtures.case
let slow_case = Fixtures.slow_case
let check_int = Fixtures.check_int
let check_float = Fixtures.check_float
let check_true = Fixtures.check_true

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let stats_tests =
  [
    case "summary of a known sample" (fun () ->
        let s = Stats.summarize [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
        check_int "n" 8 s.Stats.n;
        check_float "mean" 5.0 s.Stats.mean;
        Fixtures.check_float_eps 1e-9 "stddev"
          (sqrt (32.0 /. 7.0)) s.Stats.stddev;
        check_float "min" 2.0 s.Stats.min;
        check_float "max" 9.0 s.Stats.max);
    case "single sample has zero spread" (fun () ->
        let s = Stats.summarize [ 3.5 ] in
        check_float "mean" 3.5 s.Stats.mean;
        check_float "stddev" 0.0 s.Stats.stddev;
        check_float "stderr" 0.0 s.Stats.stderr);
    case "empty sample raises / returns None" (fun () ->
        check_true "opt none" (Stats.summarize_opt [] = None);
        Alcotest.check_raises "raise" (Invalid_argument "") (fun () ->
            try ignore (Stats.summarize [])
            with Invalid_argument _ -> raise (Invalid_argument "")));
    case "median of odd and even samples" (fun () ->
        check_float "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
        check_float "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]));
    case "quantiles_in_place matches the sorting path" (fun () ->
        let rng = Rng.create ~seed:33 in
        let xs = List.init 1000 (fun _ -> Rng.uniform rng ~lo:0.0 ~hi:100.0) in
        let a = Stats.quantiles xs in
        let b = Stats.quantiles_in_place (Array.of_list xs) in
        check_int "n" a.Stats.q_n b.Stats.q_n;
        check_float "p50" a.Stats.p50 b.Stats.p50;
        check_float "p95" a.Stats.p95 b.Stats.p95;
        check_float "p99" a.Stats.p99 b.Stats.p99;
        check_float "p999" a.Stats.p999 b.Stats.p999);
    case "quantiles_in_place on an empty array is all-nan" (fun () ->
        let q = Stats.quantiles_in_place [||] in
        check_int "n" 0 q.Stats.q_n;
        check_true "nan" (Float.is_nan q.Stats.p50));
    case "reservoir is exact below its capacity" (fun () ->
        let rng = Rng.create ~seed:34 in
        let r =
          Stats.reservoir_create ~cap:256 ~rand_int:(fun b -> Rng.int rng b)
        in
        let xs = List.init 200 (fun i -> float_of_int ((i * 37) mod 200)) in
        List.iter (Stats.reservoir_add r) xs;
        Stats.reservoir_add r nan;
        check_int "nan skipped" 200 (Stats.reservoir_count r);
        let a = Stats.quantiles xs and b = Stats.reservoir_quantiles r in
        check_int "n" a.Stats.q_n b.Stats.q_n;
        check_float "p50" a.Stats.p50 b.Stats.p50;
        check_float "p95" a.Stats.p95 b.Stats.p95;
        check_float "p999" a.Stats.p999 b.Stats.p999);
    case "reservoir beyond capacity keeps the true count and sane bounds"
      (fun () ->
        let rng = Rng.create ~seed:35 in
        let r =
          Stats.reservoir_create ~cap:64 ~rand_int:(fun b -> Rng.int rng b)
        in
        for i = 1 to 10_000 do
          Stats.reservoir_add r (float_of_int i)
        done;
        check_int "count" 10_000 (Stats.reservoir_count r);
        let q = Stats.reservoir_quantiles r in
        check_int "n is the stream count" 10_000 q.Stats.q_n;
        check_true "p50 within range" (q.Stats.p50 >= 1.0 && q.Stats.p50 <= 10_000.0);
        check_true "quantiles ordered"
          (q.Stats.p50 <= q.Stats.p95 && q.Stats.p95 <= q.Stats.p999));
  ]

(* ------------------------------------------------------------------ *)
(* CSV and tables                                                      *)
(* ------------------------------------------------------------------ *)

let output_tests =
  [
    case "csv escaping" (fun () ->
        Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
        Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
        Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b"));
    case "csv round trip on disk" (fun () ->
        let path = Filename.temp_file "streamsched" ".csv" in
        Csv.write ~path ~header:[ "a"; "b" ] [ [ "1"; "x,y" ]; [ "2"; "z" ] ];
        let ic = open_in path in
        let lines = List.init 3 (fun _ -> input_line ic) in
        close_in ic;
        Sys.remove path;
        Alcotest.(check (list string))
          "content"
          [ "a,b"; "1,\"x,y\""; "2,z" ]
          lines);
    case "csv of floats renders NaN as empty" (fun () ->
        let path = Filename.temp_file "streamsched" ".csv" in
        Csv.write_floats ~path ~header:[ "x" ] [ [ nan ]; [ 1.5 ] ];
        let ic = open_in path in
        let lines = List.init 3 (fun _ -> input_line ic) in
        close_in ic;
        Sys.remove path;
        Alcotest.(check (list string)) "content" [ "x"; ""; "1.5" ] lines);
    case "table alignment pads columns" (fun () ->
        let s = Ascii_table.render ~header:[ "col"; "x" ] [ [ "a"; "1" ]; [ "long"; "2" ] ] in
        check_true "has rule" (contains s "---");
        check_true "rows present" (contains s "long"));
    case "table pads ragged rows" (fun () ->
        let s = Ascii_table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
        check_true "renders" (String.length s > 0));
    case "plot renders data and legend" (fun () ->
        let s =
          Ascii_plot.render ~width:20 ~height:8 ~title:"t"
            [
              { Ascii_plot.label = "up"; points = [ (0.0, 0.0); (1.0, 1.0) ] };
              { Ascii_plot.label = "down"; points = [ (0.0, 1.0); (1.0, 0.0) ] };
            ]
        in
        check_true "title" (contains s "t\n");
        check_true "legend up" (contains s "up");
        check_true "glyph" (contains s "*"));
    case "plot with no data" (fun () ->
        let s = Ascii_plot.render ~title:"empty" [ { Ascii_plot.label = "s"; points = [] } ] in
        check_true "message" (contains s "no data"));
    case "plot skips NaN points" (fun () ->
        let s =
          Ascii_plot.render ~width:10 ~height:4 ~title:"nan"
            [ { Ascii_plot.label = "s"; points = [ (0.0, nan); (1.0, 2.0) ] } ]
        in
        check_true "renders" (String.length s > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Figure machinery                                                    *)
(* ------------------------------------------------------------------ *)

let tiny_config ~eps ~crashes =
  {
    (Fig_common.quick ~eps ~crashes) with
    Fig_common.graphs_per_point = 3;
    granularities = [ 0.6; 1.4 ];
  }

let fig_tests =
  [
    slow_case "collect produces one sample per (g, graph)" (fun () ->
        let config = tiny_config ~eps:1 ~crashes:1 in
        let samples = Fig_common.collect config in
        check_int "count" 6 (List.length samples);
        let grouped = Fig_common.by_granularity samples in
        check_int "two granularities" 2 (List.length grouped);
        List.iter
          (fun (_, ss) -> check_int "three graphs" 3 (List.length ss))
          grouped);
    slow_case "bounds dominate simulated latencies" (fun () ->
        let config = tiny_config ~eps:1 ~crashes:0 in
        List.iter
          (fun s ->
            let open Fig_common in
            if not (Float.is_nan (ltf_sim s) || Float.is_nan (ltf_bound s))
            then check_true "ltf bound" (ltf_sim s <= ltf_bound s +. 1e-6);
            if not (Float.is_nan (rltf_sim s) || Float.is_nan (rltf_bound s))
            then check_true "rltf bound" (rltf_sim s <= rltf_bound s +. 1e-6))
          (Fig_common.collect config));
    slow_case "crashes never speed things up" (fun () ->
        let config = tiny_config ~eps:1 ~crashes:1 in
        List.iter
          (fun s ->
            let open Fig_common in
            if not (Float.is_nan (ltf_sim s) || Float.is_nan (ltf_crash s))
            then check_true "ltf crash" (ltf_crash s >= ltf_sim s -. 1e-6);
            if not (Float.is_nan (rltf_sim s) || Float.is_nan (rltf_crash s))
            then check_true "rltf crash" (rltf_crash s >= rltf_sim s -. 1e-6))
          (Fig_common.collect config));
    slow_case "R-LTF crash draws are independent of LTF's outcome" (fun () ->
        (* Regression: measure_algo used to consume crash draws from one
           shared stream, so R-LTF's sample shifted with the number of
           draws LTF made (none at all when LTF errored out).  Each
           algorithm now measures on its own child stream, derived as in
           Fig_common.run_trial. *)
        let config = { (Fig_common.quick ~eps:1 ~crashes:2) with Fig_common.crash_draws = 4 } in
        let throughput = Paper_workload.throughput ~eps:1 in
        let inst = Fixtures.paper_instance () in
        let prob =
          Types.problem ~dag:inst.Paper_workload.dag
            ~platform:inst.Paper_workload.plat ~eps:1 ~throughput
        in
        let mapping = Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf prob in
        let ltf_outcome =
          Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob
        in
        check_true "fixture: LTF schedules and draws crashes"
          (match ltf_outcome with Ok _ -> true | Error _ -> false);
        let streams () =
          let rng = Rng.create ~seed:4242 in
          let ltf_rng = Rng.split rng in
          let rltf_rng = Rng.split rng in
          (ltf_rng, rltf_rng)
        in
        let rltf_crash ~ltf_outcome =
          let ltf_rng, rltf_rng = streams () in
          ignore (Fig_common.measure_algo config ~throughput ~rng:ltf_rng ltf_outcome);
          let r =
            Fig_common.measure_algo config ~throughput ~rng:rltf_rng (Ok mapping)
          in
          r.Fig_common.crash
        in
        let with_ltf_ok = rltf_crash ~ltf_outcome in
        let with_ltf_failed = rltf_crash ~ltf_outcome:(Error ()) in
        check_true "crash latency is not NaN" (not (Float.is_nan with_ltf_ok));
        check_true "identical crash latency"
          (Int64.equal
             (Int64.bits_of_float with_ltf_ok)
             (Int64.bits_of_float with_ltf_failed)));
    slow_case "parallel collect matches sequential field-for-field" (fun () ->
        let config = tiny_config ~eps:1 ~crashes:1 in
        let sequential = Fig_common.collect ~jobs:1 config in
        let parallel = Fig_common.collect ~jobs:3 config in
        check_int "same length" (List.length sequential) (List.length parallel);
        List.iter2
          (fun (x : Fig_common.sample) (y : Fig_common.sample) ->
            let open Fig_common in
            let same u v =
              Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v)
            in
            check_true "granularity" (same x.granularity y.granularity);
            check_true "ltf"
              (same (ltf_sim x) (ltf_sim y) && same (ltf_crash x) (ltf_crash y));
            check_true "rltf"
              (same (rltf_sim x) (rltf_sim y)
              && same (rltf_crash x) (rltf_crash y));
            check_true "ff" (same (ff_sim x) (ff_sim y));
            check_true "meets"
              (ltf_meets x = ltf_meets y && rltf_meets x = rltf_meets y))
          sequential parallel);
    slow_case "collect is deterministic in the seed" (fun () ->
        let config = tiny_config ~eps:1 ~crashes:0 in
        let a = Fig_common.collect config and b = Fig_common.collect config in
        List.iter2
          (fun (x : Fig_common.sample) (y : Fig_common.sample) ->
            let same u v = (Float.is_nan u && Float.is_nan v) || u = v in
            check_true "identical" (same (Fig_common.ltf_sim x) (Fig_common.ltf_sim y));
            check_true "identical bound"
              (same (Fig_common.rltf_bound x) (Fig_common.rltf_bound y)))
          a b);
    case "mean series handles all-NaN groups" (fun () ->
        let samples =
          [
            {
              Fig_common.granularity = 1.0;
              ltf = Fig_common.no_result;
              rltf = Fig_common.no_result;
              ff_sim = nan;
            };
          ]
        in
        let s = Fig_common.mean_series ~label:"x" Fig_common.ltf_sim samples in
        match s.Ascii_plot.points with
        | [ (g, y) ] ->
            check_float "granularity" 1.0 g;
            check_true "nan mean" (Float.is_nan y)
        | _ -> Alcotest.fail "one point expected");
    case "runner registry is complete" (fun () ->
        List.iter
          (fun name -> check_true name (Runner.find name <> None))
          [ "fig3a"; "fig3b"; "fig3c"; "fig4a"; "fig4b"; "fig4c";
            "examples"; "baselines"; "complexity"; "symmetric";
            "ablation"; "pipeline"; "optgap"; "families"; "topology"; "cost";
            "recovery"; "convergence"; "latency"; "faults" ];
        check_true "unknown name" (Runner.find "fig9z" = None));
    slow_case "pipeline validation sustains the desired throughput" (fun () ->
        let rows =
          Fig_pipeline.run ~out_dir:(Filename.get_temp_dir_name ()) ~graphs:2
            ~items:15 ()
        in
        List.iter
          (fun r ->
            let open Fig_pipeline in
            check_true "within 10% of desired"
              (r.sustained.Stats.mean >= 0.9 *. r.desired_throughput);
            check_true "steady latency below the stage model"
              (r.steady_latency.Stats.mean <= r.stage_model.Stats.mean +. 1e-6))
          rows);
    slow_case "ablation rows cover every configuration" (fun () ->
        let rows =
          Fig_ablation.run ~out_dir:(Filename.get_temp_dir_name ()) ~graphs:2 ()
        in
        check_int "rows" (List.length Fig_ablation.configurations)
          (List.length rows));
    slow_case "optimality-gap ratios are at least one" (fun () ->
        let rows =
          Fig_optgap.run ~out_dir:(Filename.get_temp_dir_name ()) ~graphs:3
            ~tasks:7 ()
        in
        check_true "has rows" (rows <> []);
        List.iter
          (fun r ->
            check_true
              (r.Fig_optgap.name ^ " ratio >= 1")
              (r.Fig_optgap.mean_ratio >= 1.0 -. 1e-9))
          rows);
    slow_case "topology experiment covers every (topology, algorithm) pair"
      (fun () ->
        let rows =
          Fig_topology.run ~out_dir:(Filename.get_temp_dir_name ()) ~graphs:2 ()
        in
        check_int "six rows" 6 (List.length rows));
    slow_case "cost experiment keeps fractions within [0, 1]" (fun () ->
        let rows =
          Fig_cost.run ~out_dir:(Filename.get_temp_dir_name ()) ~graphs:1 ()
        in
        List.iter
          (fun r ->
            let f = r.Fig_cost.cost_fraction.Stats.mean in
            check_true "fraction" (f > 0.0 && f <= 1.0 +. 1e-9))
          rows);
    case "paper examples produce comparable rows" (fun () ->
        check_int "fig1 rows" 3 (List.length (Paper_examples.fig1 ()));
        check_int "fig2 rows" 4 (List.length (Paper_examples.fig2 ())));
    case "fig1 pipelined scenario matches the paper exactly" (fun () ->
        let rows = Paper_examples.fig1 () in
        let pipelined = List.nth rows 2 in
        check_true "S=2 T=1/30 L=90"
          (contains pipelined.Paper_examples.measured "S = 2"
          && contains pipelined.Paper_examples.measured "1/30"
          && contains pipelined.Paper_examples.measured "L = 90"));
  ]

let () =
  Alcotest.run "stream_experiments"
    [
      ("stats", stats_tests);
      ("output", output_tests);
      ("figures", fig_tests);
    ]
