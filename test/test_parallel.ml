open Test_support

let case = Fixtures.case
let check_int = Fixtures.check_int
let check_true = Fixtures.check_true

exception Boom of int

let pool_tests =
  [
    case "empty input returns immediately" (fun () ->
        Domain_pool.with_pool ~num_domains:2 (fun pool ->
            check_true "run []" (Domain_pool.run pool [] = []);
            check_true "map []" (Domain_pool.map pool string_of_int [] = [])));
    case "pool of size 1 behaves like List.map" (fun () ->
        Domain_pool.with_pool ~num_domains:1 (fun pool ->
            let xs = List.init 20 Fun.id in
            check_true "squares"
              (Domain_pool.map pool (fun x -> x * x) xs
              = List.map (fun x -> x * x) xs)));
    case "pool larger than the task count" (fun () ->
        Domain_pool.with_pool ~num_domains:8 (fun pool ->
            check_int "size" 8 (Domain_pool.size pool);
            check_true "three tasks"
              (Domain_pool.run pool
                 [ (fun () -> "a"); (fun () -> "b"); (fun () -> "c") ]
              = [ "a"; "b"; "c" ])));
    case "an exception propagates and the pool survives" (fun () ->
        Domain_pool.with_pool ~num_domains:2 (fun pool ->
            (match
               Domain_pool.run pool
                 [ (fun () -> 1); (fun () -> raise (Boom 7)); (fun () -> 3) ]
             with
            | _ -> Alcotest.fail "expected Boom to propagate"
            | exception Boom 7 -> ());
            (* the pool must still accept and complete work *)
            check_true "pool usable after failure"
              (Domain_pool.map pool succ [ 1; 2; 3 ] = [ 2; 3; 4 ])));
    case "the lowest-indexed failure wins" (fun () ->
        Domain_pool.with_pool ~num_domains:4 (fun pool ->
            match
              Domain_pool.run pool
                [
                  (fun () -> 0);
                  (fun () -> raise (Boom 1));
                  (fun () -> 2);
                  (fun () -> raise (Boom 3));
                ]
            with
            | _ -> Alcotest.fail "expected Boom to propagate"
            | exception Boom i -> check_int "first failing index" 1 i));
    case "1000 tiny tasks come back in order" (fun () ->
        Domain_pool.with_pool ~num_domains:4 (fun pool ->
            let xs = List.init 1000 Fun.id in
            check_true "order preserved"
              (Domain_pool.map pool (fun i -> (2 * i) + 1) xs
              = List.map (fun i -> (2 * i) + 1) xs)));
    case "default size is at least one" (fun () ->
        let pool = Domain_pool.create () in
        check_true "size >= 1" (Domain_pool.size pool >= 1);
        Domain_pool.shutdown pool);
    case "invalid sizes are rejected" (fun () ->
        check_true "zero"
          (match Domain_pool.create ~num_domains:0 () with
          | _ -> false
          | exception Invalid_argument _ -> true));
    case "shutdown is idempotent and closes submission" (fun () ->
        let pool = Domain_pool.create ~num_domains:2 () in
        check_true "works" (Domain_pool.map pool succ [ 1 ] = [ 2 ]);
        Domain_pool.shutdown pool;
        Domain_pool.shutdown pool;
        check_true "submit after shutdown"
          (match Domain_pool.run pool [ (fun () -> 1) ] with
          | _ -> false
          | exception Invalid_argument _ -> true));
  ]

let map_seeded_tests =
  [
    case "jobs = 1 equals List.map" (fun () ->
        let xs = List.init 50 Fun.id in
        check_true "sequential path"
          (Parallel.map_seeded ~jobs:1 (fun x -> 3 * x) xs
          = List.map (fun x -> 3 * x) xs));
    case "jobs = 4 equals List.map" (fun () ->
        let xs = List.init 50 Fun.id in
        check_true "parallel path"
          (Parallel.map_seeded ~jobs:4 (fun x -> 3 * x) xs
          = List.map (fun x -> 3 * x) xs));
    case "per-element seeded streams are identical under parallelism"
      (fun () ->
        (* each element derives all randomness from its own seed — the
           map_seeded contract — so draws must match the sequential run *)
        let draw seed =
          let rng = Rng.create ~seed in
          List.init 5 (fun _ -> Rng.int rng 1000)
        in
        let xs = List.init 40 Fun.id in
        check_true "byte-identical draws"
          (Parallel.map_seeded ~jobs:4 draw xs = List.map draw xs));
    case "exceptions surface from the parallel path" (fun () ->
        check_true "raises"
          (match
             Parallel.map_seeded ~jobs:2
               (fun x -> if x = 3 then raise (Boom x) else x)
               [ 1; 2; 3; 4 ]
           with
          | _ -> false
          | exception Boom 3 -> true));
    case "default_jobs is positive" (fun () ->
        check_true "positive" (Parallel.default_jobs () >= 1));
  ]

let () =
  Alcotest.run "stream_parallel"
    [ ("domain_pool", pool_tests); ("map_seeded", map_seeded_tests) ]
