open Test_support

let case = Fixtures.case
let check_float = Fixtures.check_float
let check_int = Fixtures.check_int
let check_true = Fixtures.check_true

let id task copy = { Replica.task; copy }

let place m task copy proc sources =
  Mapping.assign m { Replica.id = id task copy; proc; sources }

(* ------------------------------------------------------------------ *)
(* Event heap                                                          *)
(* ------------------------------------------------------------------ *)

let heap_tests =
  [
    case "pops in key order" (fun () ->
        let h = Event_heap.create () in
        List.iter (fun k -> Event_heap.add h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
        let order = ref [] in
        let rec drain () =
          match Event_heap.pop_min h with
          | Some (_, v) ->
              order := v :: !order;
              drain ()
          | None -> ()
        in
        drain ();
        Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order));
    case "ties pop in insertion order" (fun () ->
        let h = Event_heap.create () in
        List.iter (fun v -> Event_heap.add h 1.0 v) [ 10; 20; 30 ];
        let pops = List.init 3 (fun _ ->
            match Event_heap.pop_min h with Some (_, v) -> v | None -> -1)
        in
        Alcotest.(check (list int)) "fifo" [ 10; 20; 30 ] pops);
    case "size and emptiness" (fun () ->
        let h = Event_heap.create () in
        check_true "empty" (Event_heap.is_empty h);
        Event_heap.add h 1.0 ();
        Event_heap.add h 2.0 ();
        check_int "size" 2 (Event_heap.size h);
        check_float "min key" 1.0 (Option.get (Event_heap.min_key h));
        ignore (Event_heap.pop_min h);
        check_int "size after pop" 1 (Event_heap.size h));
    case "pop of empty heap" (fun () ->
        let h : unit Event_heap.t = Event_heap.create () in
        check_true "none" (Event_heap.pop_min h = None);
        check_true "no key" (Event_heap.min_key h = None));
    case "interleaved adds and pops stay sorted" (fun () ->
        let h = Event_heap.create () in
        Event_heap.add h 5.0 5;
        Event_heap.add h 1.0 1;
        (match Event_heap.pop_min h with
        | Some (k, _) -> check_float "first" 1.0 k
        | None -> Alcotest.fail "empty");
        Event_heap.add h 0.5 0;
        match Event_heap.pop_min h with
        | Some (k, _) -> check_float "second" 0.5 k
        | None -> Alcotest.fail "empty");
  ]

(* ------------------------------------------------------------------ *)
(* Engine: exact single-item timings                                   *)
(* ------------------------------------------------------------------ *)

let engine_tests =
  [
    case "sequential chain on one processor" (fun () ->
        let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 2) ~eps:0 in
        place m 0 0 0 [];
        place m 1 0 0 [ (0, [ id 0 0 ]) ];
        place m 2 0 0 [ (1, [ id 1 0 ]) ];
        let r = Engine.run m in
        check_float "t0 start" 0.0 (Option.get (r.Engine.start_time 0 (id 0 0)));
        check_float "t1 start" 1.0 (Option.get (r.Engine.start_time 0 (id 1 0)));
        check_float "t2 finish" 3.0 (Option.get (r.Engine.finish_time 0 (id 2 0)));
        check_float "latency" 3.0 (Option.get r.Engine.item_latency.(0)));
    case "chain across processors pays communications" (fun () ->
        let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 2) ~eps:0 in
        place m 0 0 0 [];
        place m 1 0 1 [ (0, [ id 0 0 ]) ];
        place m 2 0 0 [ (1, [ id 1 0 ]) ];
        let r = Engine.run m in
        (* exec 1 + comm 1 + exec 1 + comm 1 + exec 1 *)
        check_float "latency" 5.0 (Option.get r.Engine.item_latency.(0));
        check_int "two transfers" 2 (List.length r.Engine.messages));
    case "one-port serializes a fan-out" (fun () ->
        let dag =
          Dag.of_edges ~name:"fan2" ~exec:[| 1.0; 1.0; 1.0 |]
            [ (0, 1, 1.0); (0, 2, 1.0) ]
        in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 3) ~eps:0 in
        place m 0 0 0 [];
        place m 1 0 1 [ (0, [ id 0 0 ]) ];
        place m 2 0 2 [ (0, [ id 0 0 ]) ];
        let r = Engine.run m in
        let finishes =
          List.sort compare
            [
              Option.get (r.Engine.finish_time 0 (id 1 0));
              Option.get (r.Engine.finish_time 0 (id 2 0));
            ]
        in
        (* the two messages share P0's send port: arrivals at 2 and 3 *)
        Alcotest.(check (list (float 1e-9))) "serialized" [ 3.0; 4.0 ] finishes;
        check_float "latency" 4.0 (Option.get r.Engine.item_latency.(0)));
    case "co-located data is available immediately" (fun () ->
        let dag =
          Dag.of_edges ~name:"fan2" ~exec:[| 1.0; 1.0; 1.0 |]
            [ (0, 1, 1.0); (0, 2, 1.0) ]
        in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 3) ~eps:0 in
        place m 0 0 0 [];
        place m 1 0 0 [ (0, [ id 0 0 ]) ];
        place m 2 0 0 [ (0, [ id 0 0 ]) ];
        let r = Engine.run m in
        check_float "no messages, pure compute" 3.0
          (Option.get r.Engine.item_latency.(0));
        check_int "no transfers" 0 (List.length r.Engine.messages));
    case "heterogeneous speeds change execution times" (fun () ->
        let m =
          Mapping.create ~dag:Fixtures.chain3 ~platform:Fixtures.hetero4 ~eps:0
        in
        place m 0 0 2 [];
        place m 1 0 2 [ (0, [ id 0 0 ]) ];
        place m 2 0 2 [ (1, [ id 1 0 ]) ];
        let r = Engine.run m in
        (* speed 0.5: each task takes 2 *)
        check_float "latency" 6.0 (Option.get r.Engine.item_latency.(0)));
    case "latency of the empty mapping run" (fun () ->
        let m = Mapping.create ~dag:Fixtures.singleton ~platform:(Fixtures.uniform 1) ~eps:0 in
        place m 0 0 0 [];
        check_float "one task" 1.0 (Option.get (Engine.latency m)));
  ]

(* ------------------------------------------------------------------ *)
(* Engine: replication and failures                                    *)
(* ------------------------------------------------------------------ *)

let lanes () =
  let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4) ~eps:1 in
  place m 0 0 0 [];
  place m 0 1 1 [];
  place m 1 0 0 [ (0, [ id 0 0 ]) ];
  place m 1 1 1 [ (0, [ id 0 1 ]) ];
  place m 2 0 0 [ (1, [ id 1 0 ]) ];
  place m 2 1 1 [ (1, [ id 1 1 ]) ];
  m

let failure_tests =
  [
    case "healthy lanes" (fun () ->
        check_float "latency" 3.0 (Option.get (Engine.latency (lanes ()))));
    case "one lane down still delivers" (fun () ->
        check_float "latency" 3.0 (Option.get (Engine.latency ~failed:[ 0 ] (lanes ()))));
    case "both lanes down lose the item" (fun () ->
        check_true "lost" (Engine.latency ~failed:[ 0; 1 ] (lanes ()) = None));
    case "failing an idle processor changes nothing" (fun () ->
        check_float "latency" 3.0 (Option.get (Engine.latency ~failed:[ 3 ] (lanes ()))));
    case "dead source forces the slower replica" (fun () ->
        (* t1(0) takes from t0(0) only; t0(0) on a failed proc starves the
           fast lane but the other lane delivers *)
        let m = lanes () in
        let r = Engine.run ~failed:[ 0 ] m in
        check_true "lane-0 replicas dead" (r.Engine.finish_time 0 (id 2 0) = None);
        check_float "lane-1 exit" 3.0 (Option.get (r.Engine.finish_time 0 (id 2 1))));
    case "full-group sources fall back on the survivor" (fun () ->
        let dag = Fixtures.chain3 in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 4) ~eps:1 in
        place m 0 0 0 [];
        place m 0 1 1 [];
        place m 1 0 2 [ (0, [ id 0 0; id 0 1 ]) ];
        place m 1 1 3 [ (0, [ id 0 0; id 0 1 ]) ];
        place m 2 0 2 [ (1, [ id 1 0 ]) ];
        place m 2 1 3 [ (1, [ id 1 1 ]) ];
        (* healthy: first arrival enables; with P0 down, t1 replicas wait
           for t0(1)'s messages but still run *)
        check_true "healthy" (Engine.latency m <> None);
        check_true "P0 down survives" (Engine.latency ~failed:[ 0 ] m <> None);
        check_true "P1 down survives" (Engine.latency ~failed:[ 1 ] m <> None));
  ]

(* ------------------------------------------------------------------ *)
(* Engine: pipelined multi-item execution                              *)
(* ------------------------------------------------------------------ *)

let pipeline_tests =
  [
    case "items flow at the injection period" (fun () ->
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 1) ~eps:0 in
        place m 0 0 0 [];
        place m 1 0 0 [ (0, [ id 0 0 ]) ];
        let r = Engine.run ~n_items:3 ~period:2.0 m in
        Array.iter
          (fun l -> check_float "steady latency" 2.0 (Option.get l))
          r.Engine.item_latency);
    case "oversubscription builds a backlog" (fun () ->
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 1) ~eps:0 in
        place m 0 0 0 [];
        place m 1 0 0 [ (0, [ id 0 0 ]) ];
        let r = Engine.run ~n_items:3 ~period:1.0 m in
        let lat i = Option.get r.Engine.item_latency.(i) in
        check_float "item 0" 2.0 (lat 0);
        check_float "item 1" 3.0 (lat 1);
        check_float "item 2" 4.0 (lat 2);
        check_float "sustained = capacity" 0.5
          (Option.get (Engine.sustained_throughput r)));
    case "sustained throughput needs two completions" (fun () ->
        let m = Mapping.create ~dag:Fixtures.singleton ~platform:(Fixtures.uniform 1) ~eps:0 in
        place m 0 0 0 [];
        let r = Engine.run ~n_items:1 m in
        check_true "none" (Engine.sustained_throughput r = None));
    case "earlier items have priority" (fun () ->
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 1) ~eps:0 in
        place m 0 0 0 [];
        place m 1 0 0 [ (0, [ id 0 0 ]) ];
        let r = Engine.run ~n_items:2 ~period:0.0 m in
        (* both items injected at 0: item 0 must fully drain first *)
        check_float "item0 t1 finish" 2.0 (Option.get (r.Engine.finish_time 0 (id 1 0)));
        check_true "item1 finishes later"
          (Option.get (r.Engine.finish_time 1 (id 1 0)) > 2.0));
    case "run rejects bad arguments" (fun () ->
        let m = Mapping.create ~dag:Fixtures.singleton ~platform:(Fixtures.uniform 1) ~eps:0 in
        Alcotest.check_raises "incomplete" (Invalid_argument "") (fun () ->
            try ignore (Engine.run m) with Invalid_argument _ -> raise (Invalid_argument ""));
        place m 0 0 0 [];
        Alcotest.check_raises "n_items" (Invalid_argument "") (fun () ->
            try ignore (Engine.run ~n_items:0 m)
            with Invalid_argument _ -> raise (Invalid_argument "")));
  ]

(* ------------------------------------------------------------------ *)
(* Timed (fail-stop) failures                                          *)
(* ------------------------------------------------------------------ *)

let timed_failure_tests =
  [
    case "a crash after completion changes nothing" (fun () ->
        let m = lanes () in
        let r = Engine.run ~timed_failures:[ (0, 100.0) ] m in
        check_float "latency" 3.0 (Option.get r.Engine.item_latency.(0)));
    case "a crash at time zero equals the fail-silent case" (fun () ->
        let m = lanes () in
        let a = Engine.run ~failed:[ 0 ] m in
        let b = Engine.run ~timed_failures:[ (0, 0.0) ] m in
        check_float "same latency"
          (Option.get a.Engine.item_latency.(0))
          (Option.get b.Engine.item_latency.(0)));
    case "work crossing the crash instant is lost" (fun () ->
        (* lane 0 executes t0 in [0,1], t1 in [1,2], t2 in [2,3]; crash P0
           at 1.5 loses t1(0) and t2(0) but lane 1 still delivers *)
        let m = lanes () in
        let r = Engine.run ~timed_failures:[ (0, 1.5) ] m in
        check_float "t0(0) survived" 1.0
          (Option.get (r.Engine.finish_time 0 (id 0 0)));
        check_true "t1(0) lost" (r.Engine.finish_time 0 (id 1 0) = None);
        check_float "lane 1 delivers" 3.0 (Option.get r.Engine.item_latency.(0)));
    case "work finishing exactly at the crash instant survives" (fun () ->
        let m = lanes () in
        let r = Engine.run ~timed_failures:[ (0, 2.0) ] m in
        check_float "t1(0) survives the boundary" 2.0
          (Option.get (r.Engine.finish_time 0 (id 1 0)));
        check_true "t2(0) lost" (r.Engine.finish_time 0 (id 2 0) = None));
    case "messages in flight are lost with their sender" (fun () ->
        (* t0 on P0 finishes at 1 and sends [1,2] to t1 on P1; crashing P0
           at 1.5 loses the transfer, so t1 never runs and the single-copy
           output is lost *)
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 2) ~eps:0 in
        place m 0 0 0 [];
        place m 1 0 1 [ (0, [ id 0 0 ]) ];
        let r = Engine.run ~timed_failures:[ (0, 1.5) ] m in
        check_true "output lost" (r.Engine.item_latency.(0) = None);
        check_int "no completed transfer" 0 (List.length r.Engine.messages));
    case "later items fail over to the surviving lane mid-stream" (fun () ->
        let m = lanes () in
        (* P0 crashes during item 1: item 0 comes from lane 0, item 1's
           output must still be delivered by lane 1 *)
        let r =
          Engine.run ~n_items:3 ~period:10.0 ~timed_failures:[ (0, 12.0) ] m
        in
        Array.iter
          (fun l -> check_true "every item delivered" (l <> None))
          r.Engine.item_latency);
    case "negative failure times are rejected" (fun () ->
        Alcotest.check_raises "negative" (Invalid_argument "") (fun () ->
            try ignore (Engine.run ~timed_failures:[ (0, -1.0) ] (lanes ()))
            with Invalid_argument _ -> raise (Invalid_argument "")));
    case "duplicate processors in timed_failures are rejected" (fun () ->
        Alcotest.check_raises "duplicate" (Invalid_argument "") (fun () ->
            try
              ignore
                (Engine.run
                   ~timed_failures:[ (0, 1.0); (0, 2.0) ]
                   (lanes ()))
            with Invalid_argument _ -> raise (Invalid_argument "")));
    case "a crash at time zero equals fail-silent on paper instances (QCheck)"
      (fun () ->
        let prop seed =
          let inst = Fixtures.paper_instance ~seed () in
          let throughput = Paper_workload.throughput ~eps:1 in
          let m =
            Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf
              (Types.problem ~dag:inst.Paper_workload.dag
                 ~platform:inst.Paper_workload.plat ~eps:1 ~throughput)
          in
          let p = seed mod Platform.size (Mapping.platform m) in
          let a = Engine.run ~n_items:3 ~failed:[ p ] m in
          let b = Engine.run ~n_items:3 ~timed_failures:[ (p, 0.0) ] m in
          let lat r =
            Array.to_list
              (Array.map
                 (function
                   | None -> Int64.min_int | Some l -> Int64.bits_of_float l)
                 r.Engine.item_latency)
          in
          lat a = lat b
          && Int64.bits_of_float a.Engine.makespan
             = Int64.bits_of_float b.Engine.makespan
          && List.length a.Engine.messages = List.length b.Engine.messages
        in
        QCheck.Test.check_exn
          (QCheck.Test.make ~count:15 ~name:"timed-zero-equals-failed"
             QCheck.(int_range 0 10_000)
             prop));
  ]

(* ------------------------------------------------------------------ *)
(* Engine: epoch resume                                                 *)
(* ------------------------------------------------------------------ *)

let epoch_tests =
  let lat_bits r =
    Array.to_list
      (Array.map
         (function None -> Int64.min_int | Some l -> Int64.bits_of_float l)
         r.Engine.item_latency)
  in
  [
    case "a clock shift leaves per-item latencies bit-identical" (fun () ->
        let m = lanes () in
        let base = Engine.run ~n_items:3 ~period:10.0 m in
        let shifted =
          Engine.run
            ~snapshot:{ Engine.clock = 7.5; down = [] }
            ~n_items:3 ~period:10.0 m
        in
        Alcotest.(check (list int64))
          "latencies are injection-relative" (lat_bits base) (lat_bits shifted);
        check_float "makespan shifts with the clock"
          (base.Engine.makespan +. 7.5)
          shifted.Engine.makespan);
    case "snapshot.down equals failed" (fun () ->
        let m = lanes () in
        let a = Engine.run ~n_items:2 ~period:10.0 ~failed:[ 0 ] m in
        let b =
          Engine.run
            ~snapshot:{ Engine.clock = 0.0; down = [ 0 ] }
            ~n_items:2 ~period:10.0 m
        in
        Alcotest.(check (list int64)) "same outcome" (lat_bits a) (lat_bits b));
    case "a crash at or before the resume clock is statically pruned"
      (fun () ->
        let m = lanes () in
        let via_down =
          Engine.run
            ~snapshot:{ Engine.clock = 5.0; down = [ 0 ] }
            ~n_items:2 ~period:10.0 m
        in
        let via_timed =
          Engine.run
            ~snapshot:{ Engine.clock = 5.0; down = [] }
            ~n_items:2 ~period:10.0 ~timed_failures:[ (0, 3.0) ] m
        in
        Alcotest.(check (list int64))
          "same outcome" (lat_bits via_down) (lat_bits via_timed));
    case "boot snapshot equals not passing one" (fun () ->
        let m = lanes () in
        let a = Engine.run ~n_items:2 ~period:10.0 m in
        let b = Engine.run ~snapshot:Engine.boot ~n_items:2 ~period:10.0 m in
        Alcotest.(check (list int64)) "identical" (lat_bits a) (lat_bits b);
        check_float "same makespan" a.Engine.makespan b.Engine.makespan);
    case "a mid-epoch crash after resume loses the in-flight work" (fun () ->
        (* lane 0 runs items [10,13) and [20,23); crashing P0 at 21.5 after
           resuming at 10 must still deliver every item via lane 1 *)
        let m = lanes () in
        let r =
          Engine.run
            ~snapshot:{ Engine.clock = 10.0; down = [] }
            ~n_items:2 ~period:10.0
            ~timed_failures:[ (0, 21.5) ]
            m
        in
        Array.iter
          (fun l -> check_true "delivered by the survivor" (l <> None))
          r.Engine.item_latency;
        check_true "t2(0) of item 1 lost with P0"
          (r.Engine.finish_time 1 (id 2 0) = None));
    case "negative or non-finite snapshot clocks are rejected" (fun () ->
        List.iter
          (fun clock ->
            Alcotest.check_raises "bad clock" (Invalid_argument "") (fun () ->
                try
                  ignore
                    (Engine.run
                       ~snapshot:{ Engine.clock; down = [] }
                       (lanes ()))
                with Invalid_argument _ -> raise (Invalid_argument "")))
          [ -1.0; Float.nan; Float.infinity ]);
  ]

(* ------------------------------------------------------------------ *)
(* Stage-synchronous latency                                           *)
(* ------------------------------------------------------------------ *)

let stage_latency_tests =
  [
    case "lanes have depth one" (fun () ->
        check_int "depth" 1 (Option.get (Stage_latency.effective_depth (lanes ())));
        check_float "latency = period" 10.0
          (Option.get (Stage_latency.latency (lanes ()) ~throughput:0.1)));
    case "spread diamond has depth three" (fun () ->
        let m = Mapping.create ~dag:Fixtures.diamond4 ~platform:Fixtures.hetero4 ~eps:0 in
        place m 0 0 0 [];
        place m 1 0 1 [ (0, [ id 0 0 ]) ];
        place m 2 0 2 [ (0, [ id 0 0 ]) ];
        place m 3 0 3 [ (1, [ id 1 0 ]); (2, [ id 2 0 ]) ];
        check_int "depth" 3 (Option.get (Stage_latency.effective_depth m)));
    case "effective depth takes the best source" (fun () ->
        (* t1(0) has a local and a remote source: the local one wins *)
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 3) ~eps:1 in
        place m 0 0 0 [];
        place m 0 1 1 [];
        place m 1 0 0 [ (0, [ id 0 0; id 0 1 ]) ];
        place m 1 1 2 [ (0, [ id 0 0; id 0 1 ]) ];
        check_int "official stages take the max" 2 (Metrics.stage_depth m);
        check_int "effective depth takes the min" 1
          (Option.get (Stage_latency.effective_depth m)));
    case "failures can only increase the depth" (fun () ->
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 3) ~eps:1 in
        place m 0 0 0 [];
        place m 0 1 1 [];
        place m 1 0 0 [ (0, [ id 0 0; id 0 1 ]) ];
        place m 1 1 2 [ (0, [ id 0 0; id 0 1 ]) ];
        let healthy = Option.get (Stage_latency.effective_depth m) in
        (* failing P0 kills the lane exit; the survivor pays a hop *)
        let degraded = Option.get (Stage_latency.effective_depth ~failed:[ 0 ] m) in
        check_int "healthy" 1 healthy;
        check_int "degraded" 2 degraded);
    case "defeated schedules return None" (fun () ->
        check_true "both lanes"
          (Stage_latency.effective_depth ~failed:[ 0; 1 ] (lanes ()) = None));
    case "mean crash latency over draws" (fun () ->
        let rng = Rng.create ~seed:3 in
        let mean =
          Stage_latency.mean_crash_latency
            ~rand_int:(fun b -> Rng.int rng b)
            ~crashes:1 ~runs:16 ~throughput:0.1 (lanes ())
        in
        (* any single crash leaves depth 1 *)
        check_float "still one stage" 10.0 (Option.get mean));
    case "empty graph has depth zero" (fun () ->
        let m = Mapping.create ~dag:Fixtures.empty ~platform:(Fixtures.uniform 1) ~eps:0 in
        check_int "zero" 0 (Option.get (Stage_latency.effective_depth m)));
  ]

(* ------------------------------------------------------------------ *)
(* Crash sampling                                                      *)
(* ------------------------------------------------------------------ *)

let estimate_on m method_ =
  Crash.estimate ~source:(Crash.Of_mapping m) ~method_ ()

let crash_tests =
  [
    case "a fixed failure set is deterministic" (fun () ->
        let e = estimate_on (lanes ()) (Crash.Fixed [ 1 ]) in
        check_float "latency" 3.0 (Option.get e.Crash.est_mean);
        Alcotest.(check (list int)) "failed set" [ 1 ] e.Crash.est_failed;
        check_float "survivor defeat probability" 0.0 e.Crash.est_p_defeat;
        check_int "one replay, no draws" 1 e.Crash.est_evaluations;
        check_int "no randomness" 0 e.Crash.est_draws);
    case "sampling draws distinct processors" (fun () ->
        let rng = Rng.create ~seed:9 in
        for _ = 1 to 32 do
          let e =
            estimate_on (lanes ()) (Crash.Sampled { crashes = 3; draws = 1; rng })
          in
          check_int "three distinct" 3
            (List.length (List.sort_uniq compare e.Crash.est_failed))
        done);
    case "sampling rejects too many crashes" (fun () ->
        Alcotest.check_raises "too many" (Invalid_argument "") (fun () ->
            try
              ignore
                (estimate_on (lanes ())
                   (Crash.Sampled
                      { crashes = 5; draws = 1; rng = Rng.create ~seed:1 }))
            with Invalid_argument _ -> raise (Invalid_argument "")));
    case "mean over surviving draws" (fun () ->
        let rng = Rng.create ~seed:4 in
        let e =
          estimate_on (lanes ()) (Crash.Sampled { crashes = 1; draws = 10; rng })
        in
        check_float "all draws survive at 3.0" 3.0 (Option.get e.Crash.est_mean));
    case "zero draws yield an empty estimate and a nan defeat rate" (fun () ->
        let e =
          estimate_on (lanes ())
            (Crash.Sampled { crashes = 1; draws = 0; rng = Rng.create ~seed:3 })
        in
        check_int "no draws" 0 e.Crash.est_draws;
        check_int "no defeats" 0 e.Crash.est_defeated;
        check_true "no mean" (e.Crash.est_mean = None);
        check_true "nan, not zero" (Float.is_nan e.Crash.est_p_defeat);
        (* the stats-record helper keeps the same policy *)
        check_true "defeat_rate nan on empty stats"
          (Float.is_nan
             (Crash.defeat_rate
                { Crash.mean = None; draws = 0; defeated_draws = 0 })));
    case "negative run counts are rejected" (fun () ->
        List.iter
          (fun thunk ->
            Alcotest.check_raises "runs < 0" (Invalid_argument "") (fun () ->
                try ignore (thunk ()) with Invalid_argument _ ->
                  raise (Invalid_argument "")))
          [
            (fun () ->
              ignore
                (estimate_on (lanes ())
                   (Crash.Sampled
                      { crashes = 1; draws = -1; rng = Rng.create ~seed:1 })));
            (fun () ->
              ignore
                (Stage_latency.mean_crash_latency_stats
                   ~rand_int:(fun _ -> 0)
                   ~crashes:1 ~runs:(-1) ~throughput:0.1 (lanes ())));
          ]);
    case "all-defeated runs keep a defined defeat rate" (fun () ->
        (* an unreplicated chain using every processor: any single crash
           defeats it, so the rate is exactly 1 and the mean is None *)
        let m =
          Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 3)
            ~eps:0
        in
        place m 0 0 0 [];
        place m 1 0 1 [ (0, [ id 0 0 ]) ];
        place m 2 0 2 [ (1, [ id 1 0 ]) ];
        let rng = Rng.create ~seed:5 in
        let e = estimate_on m (Crash.Sampled { crashes = 1; draws = 8; rng }) in
        check_int "all defeated" 8 e.Crash.est_defeated;
        check_true "no mean" (e.Crash.est_mean = None);
        check_float "rate one" 1.0 e.Crash.est_p_defeat);
    case "exact defeat rates match the hand count" (fun () ->
        (* lanes: defeat iff {0, 1} is contained in the failure set *)
        let exact c =
          (estimate_on (lanes ())
             (Crash.Exact { crashes = c; max_evaluations = None }))
            .Crash.est_p_defeat
        in
        check_float "c = 1" 0.0 (exact 1);
        check_float "c = 2 is 1/6" (1.0 /. 6.0) (exact 2);
        check_float "c = 3 is 1/2" 0.5 (exact 3));
    case "exact enumeration agrees with the calculus and the engine" (fun () ->
        let e =
          estimate_on (lanes ())
            (Crash.Exact { crashes = 2; max_evaluations = None })
        in
        check_int "all six pairs replayed" 6 e.Crash.est_evaluations;
        check_int "exactly one defeated pair" 1 e.Crash.est_defeated;
        check_float "survivors all deliver 3.0" 3.0
          (Option.get e.Crash.est_mean);
        (* the analytic calculus agrees with the enumeration *)
        let t = Reliability.analyze ~max_cut_card:2 (lanes ()) in
        check_float "calculus agrees"
          (Reliability.defeat_probability t (Reliability.Uniform_crashes 2))
          e.Crash.est_p_defeat;
        let stage =
          Stage_latency.exact_crash_latency_stats ~crashes:2 ~throughput:0.1
            (lanes ())
        in
        check_float "stage model agrees on defeat" e.Crash.est_p_defeat
          stage.Crash.p_defeat;
        check_float "one stage at period 10" 10.0
          (Option.get stage.Crash.degraded_mean));
    case "exact enumeration respects its budget" (fun () ->
        Alcotest.check_raises "over budget" (Invalid_argument "") (fun () ->
            try
              ignore
                (estimate_on (lanes ())
                   (Crash.Exact { crashes = 2; max_evaluations = Some 3 }))
            with Invalid_argument _ -> raise (Invalid_argument "")));
    case "fixed sets mark defeat" (fun () ->
        let alive = estimate_on (lanes ()) (Crash.Fixed [ 1 ]) in
        check_int "survivor not defeated" 0 alive.Crash.est_defeated;
        let dead = estimate_on (lanes ()) (Crash.Fixed [ 0; 1 ]) in
        check_true "no latency" (dead.Crash.est_mean = None);
        check_int "defeated" 1 dead.Crash.est_defeated;
        check_float "certain defeat" 1.0 dead.Crash.est_p_defeat);
    case "sampled estimates count defeated draws" (fun () ->
        (* two crashes on the four-processor lanes: only the {0,1} pair
           (1 of 6) kills both lanes, so a long run sees some but not
           only defeats *)
        let rng = Rng.create ~seed:11 in
        let e =
          estimate_on (lanes ()) (Crash.Sampled { crashes = 2; draws = 48; rng })
        in
        check_int "every draw counted" 48 e.Crash.est_draws;
        check_true "some defeats" (e.Crash.est_defeated > 0);
        check_true "not all defeats" (e.Crash.est_defeated < 48);
        check_float "defeat rate"
          (float_of_int e.Crash.est_defeated /. 48.0)
          e.Crash.est_p_defeat;
        check_float "surviving draws still deliver 3.0" 3.0
          (Option.get e.Crash.est_mean));
    case "equal seeds give equal estimates" (fun () ->
        let run () =
          estimate_on (lanes ())
            (Crash.Sampled
               { crashes = 2; draws = 16; rng = Rng.create ~seed:21 })
        in
        (* the estimate is a pure function of the seed (CRN discipline) *)
        check_true "bit-identical" (run () = run ()));
    case "stage-latency stats expose the defeat rate" (fun () ->
        let rng = Rng.create ~seed:5 in
        let stats =
          Stage_latency.mean_crash_latency_stats
            ~rand_int:(fun b -> Rng.int rng b)
            ~crashes:2 ~runs:48 ~throughput:0.1 (lanes ())
        in
        check_int "draws" 48 stats.Crash.draws;
        check_true "defeats seen" (stats.Crash.defeated_draws > 0);
        check_true "rate in (0,1)"
          (Crash.defeat_rate stats > 0.0 && Crash.defeat_rate stats < 1.0));
  ]

(* ------------------------------------------------------------------ *)
(* Compiled programs: run_compiled ≡ run                               *)
(* ------------------------------------------------------------------ *)

(* Bit-exact serialization of everything a result exposes: the full
   message log, every instance start/finish, per-item latencies, the
   period and the makespan.  Two runs with equal fingerprints replayed
   the exact same event sequence. *)
let result_fingerprint m (r : Engine.result) =
  let n_tasks = Dag.size (Mapping.dag m) and copies = Mapping.n_copies m in
  let n_items = Array.length r.Engine.item_latency in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (msg : Engine.message) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%d.%d->%d:%d.%d@%h..%h;" msg.Engine.msg_src.item
           msg.Engine.msg_src.rep.Replica.task msg.Engine.msg_src.rep.Replica.copy
           msg.Engine.msg_dst.item msg.Engine.msg_dst.rep.Replica.task
           msg.Engine.msg_dst.rep.Replica.copy msg.Engine.msg_start
           msg.Engine.msg_finish))
    r.Engine.messages;
  let add_opt = function
    | None -> Buffer.add_string buf "-;"
    | Some v -> Buffer.add_string buf (Printf.sprintf "%h;" v)
  in
  for item = 0 to n_items - 1 do
    for task = 0 to n_tasks - 1 do
      for copy = 0 to copies - 1 do
        add_opt (r.Engine.start_time item { Replica.task; copy });
        add_opt (r.Engine.finish_time item { Replica.task; copy })
      done
    done
  done;
  Array.iter add_opt r.Engine.item_latency;
  Buffer.add_string buf (Printf.sprintf "P%h;M%h" r.Engine.period r.Engine.makespan);
  Buffer.contents buf

(* The pinned-digest serialization (messages, latencies, period,
   makespan) — shared by the legacy-engine guard and the arena-reuse
   guard so both pin the exact same bytes. *)
let digest_of_result (r : Engine.result) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (msg : Engine.message) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%d.%d->%d:%d.%d@%h..%h;" msg.Engine.msg_src.item
           msg.Engine.msg_src.rep.Replica.task msg.Engine.msg_src.rep.Replica.copy
           msg.Engine.msg_dst.item msg.Engine.msg_dst.rep.Replica.task
           msg.Engine.msg_dst.rep.Replica.copy msg.Engine.msg_start
           msg.Engine.msg_finish))
    r.Engine.messages;
  Array.iter
    (fun l ->
      Buffer.add_string buf
        (match l with None -> "lost;" | Some l -> Printf.sprintf "%h;" l))
    r.Engine.item_latency;
  Buffer.add_string buf
    (Printf.sprintf "P%h;M%h" r.Engine.period r.Engine.makespan);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let compiled_tests =
  [
    case "run_compiled ≡ run on random draws and epochs (QCheck)" (fun () ->
        let prop seed =
          let inst = Fixtures.paper_instance ~seed () in
          let throughput = Paper_workload.throughput ~eps:1 in
          let m =
            Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf
              (Types.problem ~dag:inst.Paper_workload.dag
                 ~platform:inst.Paper_workload.plat ~eps:1 ~throughput)
          in
          (* One program serves every scenario: a run must leave no state
             behind in it. *)
          let prog = Engine.compile m in
          let n_procs = Platform.size (Mapping.platform m) in
          let p1 = seed mod n_procs and p2 = (seed / 7) mod n_procs in
          let scenarios =
            [
              (fun () -> (Engine.run ~n_items:3 m, Engine.run_compiled ~n_items:3 prog));
              (fun () ->
                ( Engine.run ~n_items:2 ~failed:[ p1 ] m,
                  Engine.run_compiled ~n_items:2 ~failed:[ p1 ] prog ));
              (fun () ->
                let tf = [ (p1, 40.0) ] in
                ( Engine.run ~n_items:4 ~timed_failures:tf m,
                  Engine.run_compiled ~n_items:4 ~timed_failures:tf prog ));
              (fun () ->
                let snap = { Engine.clock = 30.0; down = [ p2 ] } in
                let tf = if p1 = p2 then [] else [ (p1, 75.0) ] in
                ( Engine.run ~snapshot:snap ~n_items:3 ~timed_failures:tf m,
                  Engine.run_compiled ~snapshot:snap ~n_items:3 ~timed_failures:tf
                    prog ));
            ]
          in
          List.for_all
            (fun scenario ->
              let legacy, compiled = scenario () in
              result_fingerprint m legacy = result_fingerprint m compiled)
            scenarios
          (* and the stage model's plan replays identically too *)
          && (let plan = Stage_latency.compile m in
              Stage_latency.depth_of_plan plan = Stage_latency.effective_depth m
              && Stage_latency.depth_of_plan ~failed:[ p1; p2 ] plan
                 = Stage_latency.effective_depth ~failed:[ p1; p2 ] m)
        in
        QCheck.Test.check_exn
          (QCheck.Test.make ~count:10 ~name:"run_compiled-equals-run"
             QCheck.(int_range 0 10_000)
             prop));
    case "pinned message-log digest on a paper-scale workload" (fun () ->
        (* Byte-identity guard: this digest was recorded with the legacy
           list-based engine before the compile/run split.  Any change to
           event order, tie-breaks or float expressions breaks it. *)
        let rng = Rng.create ~seed:2009 in
        let inst = Spec.generate Spec.default ~rng ~granularity:1.0 () in
        let throughput = Paper_workload.throughput ~eps:1 in
        let m =
          Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf
            (Types.problem ~dag:inst.Paper_workload.dag
               ~platform:inst.Paper_workload.plat ~eps:1 ~throughput)
        in
        let r =
          Engine.run ~n_items:8 ~timed_failures:[ (1, 55.0); (4, 130.0) ] m
        in
        check_int "message count" 1415 (List.length r.Engine.messages);
        Alcotest.(check string)
          "digest" "86751422180444b1ec5c84c1e9506b12" (digest_of_result r));
    case "identically-shaped messages both serialize on the port" (fun () ->
        (* A source listed twice yields two structurally identical pending
           transfers; removal by index (not structural or physical
           equality) must keep them distinct, so both occupy the one-port
           in turn: [1,2) then [2,3). *)
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 2) ~eps:0 in
        place m 0 0 0 [];
        place m 1 0 1 [ (0, [ id 0 0; id 0 0 ]) ];
        let check_result (r : Engine.result) =
          check_int "both transfers completed" 2 (List.length r.Engine.messages);
          (match r.Engine.messages with
          | [ m1; m2 ] ->
              check_float "first occupies [1,2)" 2.0 m1.Engine.msg_finish;
              check_float "second occupies [2,3)" 3.0 m2.Engine.msg_finish
          | _ -> Alcotest.fail "expected exactly two messages");
          check_float "consumer starts at first arrival" 2.0
            (Option.get (r.Engine.start_time 0 (id 1 0)))
        in
        check_result (Engine.run m);
        check_result (Engine.run_compiled (Engine.compile m)));
    case "a program is reusable: back-to-back runs are identical" (fun () ->
        let m = lanes () in
        let prog = Engine.compile m in
        let a = Engine.run_compiled ~n_items:3 ~period:1.5 prog in
        let b = Engine.run_compiled ~n_items:3 ~period:1.5 prog in
        Alcotest.(check string)
          "no state leaks between runs" (result_fingerprint m a)
          (result_fingerprint m b);
        let crashy =
          Engine.run_compiled ~n_items:2 ~timed_failures:[ (0, 1.5) ] prog
        in
        let again = Engine.run_compiled ~n_items:3 ~period:1.5 prog in
        check_true "a crashy run does not poison the program"
          (result_fingerprint m again = result_fingerprint m a);
        check_true "crashy run lost lane 0's tail"
          (crashy.Engine.finish_time 0 (id 2 0) = None));
    case "program accessors" (fun () ->
        let m = lanes () in
        let prog = Engine.compile m in
        check_true "mapping is the compiled one" (Engine.program_mapping prog == m);
        check_float "cached period" (Metrics.period m)
          (Engine.program_period prog));
    case "compile rejects incomplete mappings" (fun () ->
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let m = Mapping.create ~dag ~platform:(Fixtures.uniform 2) ~eps:0 in
        Alcotest.check_raises "incomplete" (Invalid_argument "") (fun () ->
            try ignore (Engine.compile m)
            with Invalid_argument _ -> raise (Invalid_argument "")));
    case "crash sampling over a program matches the mapping path" (fun () ->
        let m = lanes () in
        let prog = Engine.compile m in
        let method_ seed =
          Crash.Sampled { crashes = 2; draws = 24; rng = Rng.create ~seed }
        in
        let plain =
          Crash.estimate ~source:(Crash.Of_mapping m) ~method_:(method_ 17) ()
        in
        let compiled =
          Crash.estimate ~source:(Crash.Of_program prog) ~method_:(method_ 17) ()
        in
        check_true "same estimate" (plain = compiled));
  ]

(* ------------------------------------------------------------------ *)
(* The run-state arena, the program cache and the parallel estimator.  *)

let estimate_fingerprint (e : Crash.estimate) =
  (* String form so NaN p_defeat (zero draws) still compares equal. *)
  Printf.sprintf "%d;%d;%d;%d;%h;%s;%s" e.Crash.est_crashes e.Crash.est_draws
    e.Crash.est_evaluations e.Crash.est_defeated e.Crash.est_p_defeat
    (match e.Crash.est_mean with None -> "-" | Some v -> Printf.sprintf "%h" v)
    (String.concat "," (List.map string_of_int e.Crash.est_failed))

let chain_mapping exec =
  let dag = Classic.chain ~n:2 ~exec ~volume:1.0 in
  let m = Mapping.create ~dag ~platform:(Fixtures.uniform 2) ~eps:0 in
  place m 0 0 0 [];
  place m 1 0 1 [ (0, [ id 0 0 ]) ];
  m

let arena_cache_tests =
  [
    case "parallel estimate is bit-identical at -j1/-j2/-j4 (QCheck)" (fun () ->
        let prop seed =
          let inst = Fixtures.paper_instance ~seed () in
          let throughput = Paper_workload.throughput ~eps:1 in
          let m =
            Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf
              (Types.problem ~dag:inst.Paper_workload.dag
                 ~platform:inst.Paper_workload.plat ~eps:1 ~throughput)
          in
          let prog = Engine.compile m in
          let crashes = 1 + (seed mod 3) and draws = seed mod 40 in
          let est jobs =
            estimate_fingerprint
              (Crash.estimate ~jobs ~source:(Crash.Of_program prog)
                 ~method_:
                   (Crash.Sampled
                      { crashes; draws; rng = Rng.create ~seed:(seed + 1) })
                 ())
          in
          let sequential = est 1 in
          sequential = est 2 && sequential = est 4
        in
        QCheck.Test.check_exn
          (QCheck.Test.make ~count:6 ~name:"estimate-jobs-identity"
             QCheck.(int_range 0 10_000)
             prop));
    case "arena reuse and reset reproduce the pinned digest" (fun () ->
        (* The exact workload of the pinned message-log digest above, run
           through an arena that a different (open-traffic) scenario has
           already dirtied: reused-and-reset and reused-without-reset must
           both reproduce the legacy engine's bytes. *)
        let rng = Rng.create ~seed:2009 in
        let inst = Spec.generate Spec.default ~rng ~granularity:1.0 () in
        let throughput = Paper_workload.throughput ~eps:1 in
        let m =
          Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf
            (Types.problem ~dag:inst.Paper_workload.dag
               ~platform:inst.Paper_workload.plat ~eps:1 ~throughput)
        in
        let prog = Engine.compile m in
        let pinned =
          {
            Engine.Run.traffic = Engine.Run.Closed { n_items = 8; period = None };
            snapshot = None;
            failed = [];
            timed_failures = [ (1, 55.0); (4, 130.0) ];
            metrics = true;
            record_messages = true;
            faults = Faults.none;
          }
        in
        let state = Engine.Run_state.create prog in
        let dirty () =
          ignore
            (Engine.simulate ~state
               ~config:
                 (Engine.Run.open_ ~n_items:3
                    (Arrival.Trace [ 0.0; 0.5; 40.0 ]))
               prog)
        in
        dirty ();
        let reused = Engine.simulate ~state ~config:pinned prog in
        Alcotest.(check string)
          "dirty arena, no reset" "86751422180444b1ec5c84c1e9506b12"
          (digest_of_result reused);
        dirty ();
        Engine.Run_state.reset state;
        let reset_run = Engine.simulate ~state ~config:pinned prog in
        Alcotest.(check string)
          "dirty arena, explicit reset" "86751422180444b1ec5c84c1e9506b12"
          (digest_of_result reset_run));
    case "an arena is rejected by a program of another shape" (fun () ->
        let state = Engine.Run_state.create (Engine.compile (lanes ())) in
        let other = Engine.compile (chain_mapping 1.0) in
        Alcotest.check_raises "shape mismatch"
          (Invalid_argument
             "Engine.simulate: run state was created for a different program")
          (fun () ->
            ignore
              (Engine.simulate ~state
                 ~config:(Engine.Run.closed ~n_items:1 ())
                 other)));
    case "without_messages drops only the log" (fun () ->
        (* The cross-processor chain actually transfers (lanes are
           co-located and log nothing). *)
        let m = chain_mapping 1.0 in
        let prog = Engine.compile m in
        let with_log =
          Engine.simulate ~config:(Engine.Run.closed ~n_items:3 ()) prog
        in
        let without =
          Engine.simulate
            ~config:(Engine.Run.without_messages (Engine.Run.closed ~n_items:3 ()))
            prog
        in
        check_true "log suppressed" (without.Engine.messages = []);
        check_true "log was non-empty" (with_log.Engine.messages <> []);
        Alcotest.(check string)
          "everything else identical"
          (result_fingerprint m { with_log with Engine.messages = [] })
          (result_fingerprint m without));
    case "cache evicts LRU and counts hits and misses" (fun () ->
        let builds = ref 0 in
        let cache =
          Program_cache.create ~capacity:2 (fun m ->
              incr builds;
              Engine.compile m)
        in
        let m1 = chain_mapping 1.0
        and m2 = chain_mapping 2.0
        and m3 = chain_mapping 3.0 in
        ignore (Program_cache.find cache m1);
        ignore (Program_cache.find cache m2);
        ignore (Program_cache.find cache m1);
        check_int "hit skipped the build" 2 !builds;
        ignore (Program_cache.find cache m3);
        check_int "bounded" 2 (Program_cache.length cache);
        check_true "m1 (recently used) survives" (Program_cache.mem cache m1);
        check_true "m2 (LRU) evicted" (not (Program_cache.mem cache m2));
        ignore (Program_cache.find cache m2);
        check_int "hits" 1 (Program_cache.hits cache);
        check_int "misses" 4 (Program_cache.misses cache);
        check_int "builds = misses" 4 !builds;
        Program_cache.clear cache;
        check_int "cleared" 0 (Program_cache.length cache);
        check_int "counters survive clear" 1 (Program_cache.hits cache));
    case "digest keys content, not identity" (fun () ->
        let m = chain_mapping 1.0 in
        let twin = chain_mapping 1.0 in
        check_true "equal content, equal digest"
          (Program_cache.digest m = Program_cache.digest twin);
        check_true "different exec, different digest"
          (Program_cache.digest m <> Program_cache.digest (chain_mapping 2.0));
        (* Mutating a placement must change the key — the self-correcting
           property that lets mutable mappings share one global cache.
           (Digests accept incomplete mappings, so grow one in place.) *)
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let partial = Mapping.create ~dag ~platform:(Fixtures.uniform 2) ~eps:0 in
        place partial 0 0 0 [];
        let d_before = Program_cache.digest partial in
        place partial 1 0 1 [ (0, [ id 0 0 ]) ];
        check_true "mutation changes the digest"
          (d_before <> Program_cache.digest partial);
        let cache = Program_cache.create ~capacity:4 Engine.compile in
        ignore (Program_cache.find cache twin);
        check_true "structural twin hits" (Program_cache.mem cache (chain_mapping 1.0));
        Alcotest.check_raises "capacity < 1" (Invalid_argument "")
          (fun () ->
            try ignore (Program_cache.create ~capacity:0 Engine.compile)
            with Invalid_argument _ -> raise (Invalid_argument "")));
    case "sojourns_into matches sojourns" (fun () ->
        let prog = Engine.compile (lanes ()) in
        let r =
          Engine.simulate
            ~config:
              (Engine.Run.open_ ~n_items:4
                 (Arrival.Trace [ 0.0; 1.0; 2.0; 3.0 ]))
            prog
        in
        let as_list = Engine.sojourns r in
        let buf = Array.make 4 nan in
        let delivered = Engine.sojourns_into r buf in
        check_int "same count" (List.length as_list) delivered;
        let sorted_list = List.sort compare as_list in
        let sorted_buf =
          List.sort compare (Array.to_list (Array.sub buf 0 delivered))
        in
        check_true "same sojourns" (sorted_list = sorted_buf);
        let q_list = Stats.quantiles as_list in
        let q_slice = Stats.quantiles_slice buf ~len:delivered in
        check_float "same p50" q_list.Stats.p50 q_slice.Stats.p50;
        check_float "same p99" q_list.Stats.p99 q_slice.Stats.p99;
        Alcotest.check_raises "short buffer"
          (Invalid_argument
             "Engine.sojourns_into: buffer shorter than item_latency")
          (fun () -> ignore (Engine.sojourns_into r (Array.make 3 0.0))));
  ]

let () =
  Alcotest.run "stream_sim"
    [
      ("event-heap", heap_tests);
      ("engine-timing", engine_tests);
      ("engine-failures", failure_tests);
      ("engine-timed-failures", timed_failure_tests);
      ("engine-epochs", epoch_tests);
      ("engine-pipeline", pipeline_tests);
      ("stage-latency", stage_latency_tests);
      ("crash", crash_tests);
      ("compiled-program", compiled_tests);
      ("arena-and-cache", arena_cache_tests);
    ]
