open Test_support

let case = Fixtures.case
let check_float = Fixtures.check_float
let check_int = Fixtures.check_int
let check_true = Fixtures.check_true

let id task copy = { Replica.task; copy }

(* A hand-built eps=1 mapping of chain3 on four unit processors: two
   disjoint lanes P0 and P1. *)
let lanes_mapping () =
  let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4) ~eps:1 in
  let place task copy proc sources =
    Mapping.assign m { Replica.id = id task copy; proc; sources }
  in
  place 0 0 0 [];
  place 0 1 1 [];
  place 1 0 0 [ (0, [ id 0 0 ]) ];
  place 1 1 1 [ (0, [ id 0 1 ]) ];
  place 2 0 0 [ (1, [ id 1 0 ]) ];
  place 2 1 1 [ (1, [ id 1 1 ]) ];
  m

(* A spread eps=0 mapping of the diamond on distinct processors. *)
let spread_mapping () =
  let m = Mapping.create ~dag:Fixtures.diamond4 ~platform:Fixtures.hetero4 ~eps:0 in
  let place task proc sources =
    Mapping.assign m { Replica.id = id task 0; proc; sources }
  in
  place 0 0 [];
  place 1 1 [ (0, [ id 0 0 ]) ];
  place 2 2 [ (0, [ id 0 0 ]) ];
  place 3 3 [ (1, [ id 1 0 ]); (2, [ id 2 0 ]) ];
  m

(* ------------------------------------------------------------------ *)
(* Replica                                                             *)
(* ------------------------------------------------------------------ *)

let replica_tests =
  [
    case "compare orders by task then copy" (fun () ->
        check_true "task first" (Replica.compare_id (id 1 5) (id 2 0) < 0);
        check_true "copy second" (Replica.compare_id (id 1 0) (id 1 1) < 0);
        check_int "equal" 0 (Replica.compare_id (id 3 2) (id 3 2)));
    case "printing" (fun () ->
        Alcotest.(check string) "to_string" "t4(1)" (Replica.id_to_string (id 4 1)));
    case "sources_for" (fun () ->
        let r =
          { Replica.id = id 3 0; proc = 0; sources = [ (1, [ id 1 0 ]); (2, [ id 2 1 ]) ] }
        in
        Alcotest.(check int) "found" 1 (List.length (Replica.sources_for r 2));
        Alcotest.check_raises "missing" Not_found (fun () ->
            ignore (Replica.sources_for r 0)));
  ]

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let rejects name f =
  case name (fun () ->
      Alcotest.check_raises name (Invalid_argument "") (fun () ->
          try f () with Invalid_argument _ -> raise (Invalid_argument "")))

let mapping_tests =
  [
    case "incremental completeness" (fun () ->
        let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4) ~eps:1 in
        check_true "empty not complete" (not (Mapping.is_complete m));
        check_true "task not scheduled" (not (Mapping.scheduled m 0));
        Mapping.assign m { Replica.id = id 0 0; proc = 0; sources = [] };
        check_true "half placed" (not (Mapping.scheduled m 0));
        Mapping.assign m { Replica.id = id 0 1; proc = 1; sources = [] };
        check_true "now scheduled" (Mapping.scheduled m 0));
    case "queries on the lane mapping" (fun () ->
        let m = lanes_mapping () in
        check_true "complete" (Mapping.is_complete m);
        check_int "copies" 2 (Mapping.n_copies m);
        check_true "mapped" (Mapping.mapped m 1 0);
        check_true "not mapped" (not (Mapping.mapped m 1 2));
        Alcotest.(check (list int)) "procs of task" [ 0; 1 ] (Mapping.procs_of_task m 2);
        check_int "on proc 0" 3 (List.length (Mapping.on_proc m 0));
        check_int "on proc 2" 0 (List.length (Mapping.on_proc m 2)));
    case "consumers" (fun () ->
        let m = lanes_mapping () in
        let consumers = Mapping.consumers m (id 0 0) in
        check_int "one consumer" 1 (List.length consumers);
        let cid, vol = List.hd consumers in
        check_int "consumer task" 1 cid.Replica.task;
        check_float "edge volume" 1.0 vol);
    case "message counting" (fun () ->
        check_int "lanes are local" 0 (Mapping.n_messages (lanes_mapping ()));
        check_int "spread crosses everywhere" 4
          (Mapping.n_messages (spread_mapping ())));
    rejects "eps too large for the platform" (fun () ->
        ignore (Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 2) ~eps:2));
    rejects "double placement" (fun () ->
        let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4) ~eps:0 in
        Mapping.assign m { Replica.id = id 0 0; proc = 0; sources = [] };
        Mapping.assign m { Replica.id = id 0 0; proc = 1; sources = [] });
    rejects "colocated replicas of one task" (fun () ->
        let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4) ~eps:1 in
        Mapping.assign m { Replica.id = id 0 0; proc = 0; sources = [] };
        Mapping.assign m { Replica.id = id 0 1; proc = 0; sources = [] });
    rejects "missing source coverage" (fun () ->
        let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4) ~eps:0 in
        Mapping.assign m { Replica.id = id 0 0; proc = 0; sources = [] };
        Mapping.assign m { Replica.id = id 1 0; proc = 1; sources = [] });
    rejects "source replica not placed" (fun () ->
        let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4) ~eps:1 in
        Mapping.assign m { Replica.id = id 0 0; proc = 0; sources = [] };
        Mapping.assign m { Replica.id = id 1 0; proc = 1; sources = [ (0, [ id 0 1 ]) ] });
    rejects "source of the wrong task" (fun () ->
        let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4) ~eps:0 in
        Mapping.assign m { Replica.id = id 0 0; proc = 0; sources = [] };
        Mapping.assign m { Replica.id = id 1 0; proc = 1; sources = [ (0, [ id 1 0 ]) ] });
    rejects "empty source list" (fun () ->
        let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4) ~eps:0 in
        Mapping.assign m { Replica.id = id 0 0; proc = 0; sources = [] };
        Mapping.assign m { Replica.id = id 1 0; proc = 1; sources = [ (0, []) ] });
  ]

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let timeline_tests =
  [
    case "earliest fit on empty" (fun () ->
        check_float "at ready" 3.0
          (Timeline.earliest_fit Timeline.empty ~ready:3.0 ~duration:2.0));
    case "fit into a gap" (fun () ->
        let t = Timeline.insert Timeline.empty ~start:0.0 ~duration:2.0 in
        let t = Timeline.insert t ~start:5.0 ~duration:2.0 in
        check_float "gap" 2.0 (Timeline.earliest_fit t ~ready:0.0 ~duration:3.0);
        check_float "too big for gap" 7.0
          (Timeline.earliest_fit t ~ready:0.0 ~duration:4.0));
    case "fit respects ready time" (fun () ->
        let t = Timeline.insert Timeline.empty ~start:0.0 ~duration:2.0 in
        check_float "after busy and ready" 4.0
          (Timeline.earliest_fit t ~ready:4.0 ~duration:1.0));
    case "insert keeps intervals sorted" (fun () ->
        let t = Timeline.insert Timeline.empty ~start:5.0 ~duration:1.0 in
        let t = Timeline.insert t ~start:1.0 ~duration:1.0 in
        let t = Timeline.insert t ~start:3.0 ~duration:1.0 in
        Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
          "sorted"
          [ (1.0, 2.0); (3.0, 4.0); (5.0, 6.0) ]
          (Timeline.intervals t));
    case "overlap is rejected" (fun () ->
        let t = Timeline.insert Timeline.empty ~start:0.0 ~duration:2.0 in
        Alcotest.check_raises "overlap" (Invalid_argument "") (fun () ->
            try ignore (Timeline.insert t ~start:1.0 ~duration:1.0)
            with Invalid_argument _ -> raise (Invalid_argument "")));
    case "zero duration is a no-op" (fun () ->
        let t = Timeline.insert Timeline.empty ~start:1.0 ~duration:0.0 in
        check_int "still empty" 0 (List.length (Timeline.intervals t)));
    case "busy accounting" (fun () ->
        let t = Timeline.insert Timeline.empty ~start:1.0 ~duration:2.0 in
        let t = Timeline.insert t ~start:4.0 ~duration:1.5 in
        check_float "busy until" 5.5 (Timeline.busy_until t);
        check_float "total busy" 3.5 (Timeline.total_busy t));
    case "persistence" (fun () ->
        let base = Timeline.insert Timeline.empty ~start:0.0 ~duration:1.0 in
        let _branch = Timeline.insert base ~start:2.0 ~duration:1.0 in
        check_int "base untouched" 1 (List.length (Timeline.intervals base)));
    case "compact preserves every query" (fun () ->
        (* out-of-order inserts grow the overlay past the compaction
           threshold before the representations are compared *)
        let t =
          List.fold_left
            (fun t s -> Timeline.insert t ~start:s ~duration:0.5)
            Timeline.empty
            [ 10.0; 2.0; 8.0; 4.0; 0.0; 6.0; 12.0; 3.0; 14.0; 16.0; 18.0; 20.0 ]
        in
        let c = Timeline.compact t in
        Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
          "intervals" (Timeline.intervals t) (Timeline.intervals c);
        check_float "busy until" (Timeline.busy_until t) (Timeline.busy_until c);
        check_float "total busy" (Timeline.total_busy t) (Timeline.total_busy c);
        List.iter
          (fun ready ->
            check_float "earliest fit"
              (Timeline.earliest_fit t ~ready ~duration:0.75)
              (Timeline.earliest_fit c ~ready ~duration:0.75))
          [ 0.0; 1.0; 2.25; 5.0; 11.0; 30.0 ]);
    case "compact below the threshold is the identity" (fun () ->
        let t = Timeline.insert Timeline.empty ~start:1.0 ~duration:1.0 in
        check_true "same value" (Timeline.compact t == t);
        check_true "empty too" (Timeline.compact Timeline.empty == Timeline.empty));
  ]

(* ------------------------------------------------------------------ *)
(* Loads, stages, metrics                                              *)
(* ------------------------------------------------------------------ *)

let loads_tests =
  [
    case "lane mapping loads" (fun () ->
        let loads = Loads.of_mapping (lanes_mapping ()) in
        check_float "sigma P0" 3.0 loads.Loads.sigma.(0);
        check_float "sigma P2" 0.0 loads.Loads.sigma.(2);
        check_float "no comm" 0.0 loads.Loads.c_in.(0);
        check_float "cycle time" 3.0 (Loads.max_cycle_time loads));
    case "spread mapping loads include comms" (fun () ->
        let loads = Loads.of_mapping (spread_mapping ()) in
        (* t0 on P0 (speed 2): 15/2 work; sends two 2-unit messages *)
        check_float "sigma P0" 7.5 loads.Loads.sigma.(0);
        check_float "c_out P0"
          (Platform.comm_time Fixtures.hetero4 0 1 2.0
          +. Platform.comm_time Fixtures.hetero4 0 2 2.0)
          loads.Loads.c_out.(0);
        check_float "c_in P3"
          (Platform.comm_time Fixtures.hetero4 1 3 2.0
          +. Platform.comm_time Fixtures.hetero4 2 3 2.0)
          loads.Loads.c_in.(3));
    case "utilization" (fun () ->
        let loads = Loads.of_mapping (lanes_mapping ()) in
        check_float "UP" 0.3 (Loads.utilization loads ~throughput:0.1 0));
    case "stages of the lane mapping collapse to one" (fun () ->
        check_int "S" 1 (Metrics.stage_depth (lanes_mapping ())));
    case "stages of the spread mapping" (fun () ->
        check_int "S" 3 (Metrics.stage_depth (spread_mapping ())));
    case "stage of each replica" (fun () ->
        let stages = Stages.compute (spread_mapping ()) in
        check_int "entry" 1 (Stages.of_replica stages (id 0 0));
        check_int "middle" 2 (Stages.of_replica stages (id 1 0));
        check_int "exit" 3 (Stages.of_replica stages (id 3 0));
        Alcotest.(check (list int))
          "stage members" [ 1; 2 ]
          (List.map
             (fun (r : Replica.id) -> r.Replica.task)
             (Stages.replicas_in_stage stages 2)));
    case "latency bound formula" (fun () ->
        let m = spread_mapping () in
        check_float "L = (2S-1)/T" 50.0 (Metrics.latency_bound m ~throughput:0.1));
    case "achieved throughput and period" (fun () ->
        let m = lanes_mapping () in
        check_float "period = max cycle" 3.0 (Metrics.period m);
        check_float "throughput" (1.0 /. 3.0) (Metrics.achieved_throughput m));
    case "meets_throughput" (fun () ->
        let m = lanes_mapping () in
        check_true "meets 1/3" (Metrics.meets_throughput m ~throughput:(1.0 /. 3.0));
        check_true "fails 1/2" (not (Metrics.meets_throughput m ~throughput:0.5)));
  ]

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate_tests =
  [
    case "valid mapping passes everything" (fun () ->
        Fixtures.check_valid (lanes_mapping ()) ~throughput:(1.0 /. 3.0));
    case "incomplete mapping reports missing replicas" (fun () ->
        let m = Mapping.create ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4) ~eps:1 in
        check_int "all six missing" 6 (List.length (Validate.structure m)));
    case "throughput violations are localized" (fun () ->
        let errors =
          Validate.throughput (lanes_mapping ()) ~throughput:1.0
        in
        check_int "two overloaded lanes" 2 (List.length errors);
        List.iter
          (function
            | Validate.Throughput_violated (p, delta) ->
                check_true "overloaded lane" (p = 0 || p = 1);
                check_float "delta" 3.0 delta
            | e -> Alcotest.failf "unexpected %s" (Validate.error_to_string e))
          errors);
    case "survives with no failures" (fun () ->
        check_true "survives" (Validate.survives (lanes_mapping ()) ~failed:[]));
    case "survives one lane failure" (fun () ->
        check_true "P0 down" (Validate.survives (lanes_mapping ()) ~failed:[ 0 ]);
        check_true "P1 down" (Validate.survives (lanes_mapping ()) ~failed:[ 1 ]));
    case "both lanes down lose the output" (fun () ->
        check_true "not survives"
          (not (Validate.survives (lanes_mapping ()) ~failed:[ 0; 1 ])));
    case "fault tolerance is exhaustive" (fun () ->
        Fixtures.check_tolerant (lanes_mapping ());
        check_int "eps=2 check finds the lane pair" 1
          (List.length (Validate.fault_tolerance ~max_failures:2 (lanes_mapping ()))));
    case "eps=0 spread mapping survives nothing but reports fine" (fun () ->
        (* with eps=0 fault_tolerance checks no subsets *)
        Fixtures.check_tolerant (spread_mapping ()));
    case "error printing" (fun () ->
        let s =
          Validate.error_to_string (Validate.Not_fault_tolerant [ 0; 3 ])
        in
        check_true "mentions processors"
          (String.length s > 0
          && String.split_on_char 'P' s |> List.length >= 3));
  ]

(* ------------------------------------------------------------------ *)
(* Gantt                                                               *)
(* ------------------------------------------------------------------ *)

let gantt_tests =
  [
    case "summary lists every processor" (fun () ->
        let s = Gantt.summary (lanes_mapping ()) in
        check_int "four lines"
          4
          (String.split_on_char '\n' s |> List.filter (fun l -> l <> "") |> List.length));
    case "render shows bars for timed replicas" (fun () ->
        let m = lanes_mapping () in
        let times (r : Replica.id) =
          Some (float_of_int r.Replica.task, float_of_int r.Replica.task +. 1.0)
        in
        let s = Gantt.render ~width:40 m ~times in
        check_true "has bars" (String.contains s '#'));
    case "render with no times" (fun () ->
        let s = Gantt.render (lanes_mapping ()) ~times:(fun _ -> None) in
        check_true "empty note" (String.length s > 0));
  ]

let () =
  Alcotest.run "stream_sched"
    [
      ("replica", replica_tests);
      ("mapping", mapping_tests);
      ("timeline", timeline_tests);
      ("loads-stages-metrics", loads_tests);
      ("validate", validate_tests);
      ("gantt", gantt_tests);
    ]
