open Test_support

(* The fault-injection subsystem: backoff arithmetic, deterministic
   transient draws, failure domains, the engine's retry/timeout/gray
   semantics (exact latencies on hand-built mappings), bit-identity of
   the fault-free fast path against the pinned PR 5 digest, and the
   correlated crash generator. *)

let case = Fixtures.case
let check_float = Fixtures.check_float
let check_int = Fixtures.check_int
let check_true = Fixtures.check_true

let id task copy = { Replica.task; copy }

let place m task copy proc sources =
  Mapping.assign m { Replica.id = id task copy; proc; sources }

(* One task, exec 1.0, alone on processor 0 — the smallest stream whose
   latencies the retry arithmetic predicts exactly. *)
let solo () =
  let dag = Classic.chain ~n:1 ~exec:1.0 ~volume:1.0 in
  let m = Mapping.create ~dag ~platform:(Fixtures.uniform 1) ~eps:0 in
  place m 0 0 0 [];
  Engine.compile m

(* Two tasks on two processors with one unit transfer between them:
   clean single-item latency 3.0 (exec [0,1), transfer [1,2),
   exec [2,3)). *)
let relay () =
  let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
  let m = Mapping.create ~dag ~platform:(Fixtures.uniform 2) ~eps:0 in
  place m 0 0 0 [];
  place m 1 0 1 [ (0, [ id 0 0 ]) ];
  Engine.compile m

let run_with faults ?(n_items = 1) prog =
  Engine.simulate
    ~config:(Engine.Run.with_faults faults (Engine.Run.closed ~n_items ()))
    prog

let exec_faults ?(retry = Faults.Backoff.none) ?(rate = 0.0) ?(seed = 0)
    ?(windows = []) () =
  {
    Faults.none with
    Faults.transient =
      {
        Faults.Transient.none with
        Faults.Transient.exec_rate = rate;
        exec_windows = windows;
        seed;
      };
    retry;
  }

(* ------------------------------------------------------------------ *)
(* Backoff arithmetic                                                   *)
(* ------------------------------------------------------------------ *)

let backoff_tests =
  [
    case "truncated exponential delays" (fun () ->
        let b =
          Faults.Backoff.make ~base_delay:2.0 ~multiplier:3.0 ~max_retries:3 ()
        in
        check_float "first" 2.0 (Faults.Backoff.delay b ~attempt:1);
        check_float "second" 6.0 (Faults.Backoff.delay b ~attempt:2);
        check_float "third" 18.0 (Faults.Backoff.delay b ~attempt:3);
        check_float "total over the budget" 26.0 (Faults.Backoff.total_delay b));
    case "zero base delay is exactly zero at any attempt" (fun () ->
        let b =
          Faults.Backoff.make ~base_delay:0.0 ~multiplier:10.0 ~max_retries:5 ()
        in
        List.iter
          (fun attempt ->
            check_float "zero" 0.0 (Faults.Backoff.delay b ~attempt))
          [ 1; 2; 5 ];
        check_float "zero total" 0.0 (Faults.Backoff.total_delay b));
    case "defaults: immediate retry, doubling" (fun () ->
        let b = Faults.Backoff.make ~max_retries:2 () in
        check_int "retries" 2 b.Faults.Backoff.max_retries;
        check_float "base" 0.0 b.Faults.Backoff.base_delay;
        check_float "multiplier" 2.0 b.Faults.Backoff.multiplier);
    case "rejects malformed policies and attempts" (fun () ->
        let raises f = try f (); false with Invalid_argument _ -> true in
        check_true "negative retries"
          (raises (fun () -> ignore (Faults.Backoff.make ~max_retries:(-1) ())));
        check_true "negative base"
          (raises (fun () ->
               ignore
                 (Faults.Backoff.make ~base_delay:(-1.0) ~max_retries:0 ())));
        check_true "nan multiplier"
          (raises (fun () ->
               ignore
                 (Faults.Backoff.make ~multiplier:nan ~max_retries:0 ())));
        check_true "attempt 0"
          (raises (fun () ->
               ignore
                 (Faults.Backoff.delay Faults.Backoff.none ~attempt:0))));
  ]

(* ------------------------------------------------------------------ *)
(* Deterministic transient draws                                        *)
(* ------------------------------------------------------------------ *)

let draw_tests =
  [
    case "uniform is deterministic and in [0, 1)" (fun () ->
        let ok = ref true in
        for key = 0 to 200 do
          let u = Faults.uniform ~seed:7 ~salt:17 ~key ~attempt:1 in
          if not (u >= 0.0 && u < 1.0) then ok := false;
          if u <> Faults.uniform ~seed:7 ~salt:17 ~key ~attempt:1 then
            ok := false
        done;
        check_true "all draws in range and repeatable" !ok);
    case "failing set is monotone in the rate (CRN)" (fun () ->
        let at rate =
          {
            Faults.Transient.none with
            Faults.Transient.exec_rate = rate;
            seed = 42;
          }
        in
        let lo = at 0.1 and hi = at 0.3 in
        let ok = ref true and low_fired = ref 0 in
        for key = 0 to 500 do
          for attempt = 1 to 3 do
            let f_lo =
              Faults.Transient.exec_fails lo ~proc:0 ~key ~attempt ~at:0.0
            in
            let f_hi =
              Faults.Transient.exec_fails hi ~proc:0 ~key ~attempt ~at:0.0
            in
            if f_lo then incr low_fired;
            if f_lo && not f_hi then ok := false
          done
        done;
        check_true "every low-rate fault also fires at the high rate" !ok;
        check_true "the low rate fires at all" (!low_fired > 0));
    case "windows fail exactly [t0, t1) on the named processor" (fun () ->
        let t =
          {
            Faults.Transient.none with
            Faults.Transient.exec_windows = [ (1, 2.0, 5.0) ];
          }
        in
        let fails ~proc ~at =
          Faults.Transient.exec_fails t ~proc ~key:0 ~attempt:1 ~at
        in
        check_true "inside" (fails ~proc:1 ~at:2.0);
        check_true "inside late" (fails ~proc:1 ~at:4.999);
        check_true "before" (not (fails ~proc:1 ~at:1.999));
        check_true "at the open end" (not (fails ~proc:1 ~at:5.0));
        check_true "other processor" (not (fails ~proc:0 ~at:3.0)));
    case "is_none" (fun () ->
        check_true "none" (Faults.is_none Faults.none);
        check_true "a window arms the model"
          (not
             (Faults.is_none
                (exec_faults ~windows:[ (0, 1e12, 1e12 +. 1.0) ] ()))));
  ]

(* ------------------------------------------------------------------ *)
(* Failure domains                                                     *)
(* ------------------------------------------------------------------ *)

let domain_tests =
  [
    case "racks partition contiguously, last rack smaller" (fun () ->
        let d = Faults.Domains.racks ~size:3 ~procs:8 in
        check_int "count" 3 (Faults.Domains.count d);
        check_int "procs" 8 (Faults.Domains.procs d);
        Alcotest.(check (list int)) "rack 0" [ 0; 1; 2 ]
          (Faults.Domains.members d 0);
        Alcotest.(check (list int)) "rack 2" [ 6; 7 ]
          (Faults.Domains.members d 2);
        check_int "domain of 5" 1 (Faults.Domains.domain_of d 5));
    case "unlisted processors become trailing singletons" (fun () ->
        let d = Faults.Domains.make ~procs:5 [ [ 1; 3 ] ] in
        check_int "count" 4 (Faults.Domains.count d);
        check_int "the listed group is domain 0" 0
          (Faults.Domains.domain_of d 3);
        check_true "singletons are separate domains"
          (Faults.Domains.domain_of d 0 <> Faults.Domains.domain_of d 2));
    case "rejects malformed partitions" (fun () ->
        let raises f = try f (); false with Invalid_argument _ -> true in
        check_true "out of range"
          (raises (fun () -> ignore (Faults.Domains.make ~procs:2 [ [ 2 ] ])));
        check_true "duplicate"
          (raises (fun () ->
               ignore (Faults.Domains.make ~procs:3 [ [ 0 ]; [ 0 ] ])));
        check_true "empty group"
          (raises (fun () -> ignore (Faults.Domains.make ~procs:3 [ [] ])));
        check_true "zero rack size"
          (raises (fun () ->
               ignore (Faults.Domains.racks ~size:0 ~procs:3))));
  ]

(* ------------------------------------------------------------------ *)
(* Engine semantics: timeouts, backoff, escalation, gray windows        *)
(* ------------------------------------------------------------------ *)

let engine_tests =
  [
    case "a failed attempt consumes its whole duration before the retry"
      (fun () ->
        (* Window [0, 0.5): attempt 1 starts at 0 inside it and fails,
           but the fault is only detected at the timeout (t = 1.0); the
           retry waits out the backoff (0.7) and runs [1.7, 2.7). *)
        let faults =
          exec_faults ~windows:[ (0, 0.0, 0.5) ]
            ~retry:
              (Faults.Backoff.make ~base_delay:0.7 ~multiplier:3.0
                 ~max_retries:2 ())
            ()
        in
        let r = run_with faults (solo ()) in
        check_float "latency = timeout + backoff + clean run" 2.7
          (Option.get r.Engine.item_latency.(0));
        check_int "one retry" 1 r.Engine.faults.Engine.retries;
        check_int "one transient exec fault" 1
          r.Engine.faults.Engine.exec_faults;
        check_float "backoff time ledger" 0.7
          r.Engine.faults.Engine.backoff_time;
        check_int "nothing exhausted" 0 r.Engine.faults.Engine.exhausted);
    case "zero-delay backoff re-drives at the detection instant" (fun () ->
        let faults =
          exec_faults ~windows:[ (0, 0.0, 0.5) ]
            ~retry:(Faults.Backoff.make ~max_retries:1 ())
            ()
        in
        let r = run_with faults (solo ()) in
        check_float "latency = one lost attempt + clean run" 2.0
          (Option.get r.Engine.item_latency.(0)));
    case "escalation boundary: the window edge decides survival" (fun () ->
        (* max_retries = 1, immediate retry.  Attempt 2 starts at the
           detection instant t = 1.0: a window [0, 1.0) spares it (the
           interval is half-open), a window [0, 1.5) kills it — and with
           the budget spent the work unit is abandoned. *)
        let survives =
          run_with
            (exec_faults ~windows:[ (0, 0.0, 1.0) ]
               ~retry:(Faults.Backoff.make ~max_retries:1 ())
               ())
            (solo ())
        in
        check_float "retry at the open edge survives" 2.0
          (Option.get survives.Engine.item_latency.(0));
        let exhausted =
          run_with
            (exec_faults ~windows:[ (0, 0.0, 1.5) ]
               ~retry:(Faults.Backoff.make ~max_retries:1 ())
               ())
            (solo ())
        in
        check_true "item lost" (exhausted.Engine.item_latency.(0) = None);
        check_int "exhaustion counted" 1 exhausted.Engine.faults.Engine.exhausted;
        check_int "charged to its processor" 1
          exhausted.Engine.faults.Engine.exhausted_on.(0);
        check_int "the budget was spent first" 1
          exhausted.Engine.faults.Engine.retries);
    case "a gray straggler stretches the whole attempt it starts in"
      (fun () ->
        let gray factor g_until =
          {
            Faults.none with
            Faults.gray =
              {
                Faults.Gray.stragglers =
                  [ (0, { Faults.Gray.g_from = 0.0; g_until; factor }) ];
                links = [];
              };
          }
        in
        let r = run_with (gray 2.5 10.0) (solo ()) in
        check_float "latency scaled" 2.5 (Option.get r.Engine.item_latency.(0));
        check_int "slowdown counted" 1
          r.Engine.faults.Engine.slowed_attempts;
        (* The factor is sampled at attempt start: a window that closes
           mid-attempt still stretches the whole attempt. *)
        let r = run_with (gray 2.0 0.5) (solo ()) in
        check_float "whole attempt stretched" 2.0
          (Option.get r.Engine.item_latency.(0)));
    case "a transient transfer fault holds the port, then retries"
      (fun () ->
        (* Clean relay latency 3.0.  The transfer commits at t = 1.0
           inside the comm window, burns its full duration to the
           timeout at 2.0, waits out the 0.5 backoff and reruns
           [2.5, 3.5); the consumer runs [3.5, 4.5). *)
        let faults =
          {
            Faults.none with
            Faults.transient =
              {
                Faults.Transient.none with
                Faults.Transient.comm_windows = [ (0, 0.0, 1.5) ];
              };
            retry = Faults.Backoff.make ~base_delay:0.5 ~max_retries:2 ();
          }
        in
        let r = run_with faults (relay ()) in
        check_float "latency" 4.5 (Option.get r.Engine.item_latency.(0));
        check_int "one comm fault" 1 r.Engine.faults.Engine.comm_faults;
        check_int "one retry" 1 r.Engine.faults.Engine.retries);
    case "a degraded link stretches the transfer" (fun () ->
        let faults =
          {
            Faults.none with
            Faults.gray =
              {
                Faults.Gray.stragglers = [];
                links =
                  [
                    ( (0, 1),
                      {
                        Faults.Gray.g_from = 0.0;
                        g_until = 10.0;
                        factor = 3.0;
                      } );
                  ];
              };
          }
        in
        let r = run_with faults (relay ()) in
        (* exec [0,1), transfer 3x [1,4), exec [4,5). *)
        check_float "latency" 5.0 (Option.get r.Engine.item_latency.(0));
        check_int "degradation counted" 1
          r.Engine.faults.Engine.degraded_transfers);
    case "latency inflates with the fault rate at a fixed budget" (fun () ->
        let rng = Rng.create ~seed:2009 in
        let inst = Spec.generate Spec.default ~rng ~granularity:1.0 () in
        let throughput = Paper_workload.throughput ~eps:1 in
        let m =
          Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf
            (Types.problem ~dag:inst.Paper_workload.dag
               ~platform:inst.Paper_workload.plat ~eps:1 ~throughput)
        in
        let prog = Engine.compile m in
        let retry =
          Faults.Backoff.make
            ~base_delay:(0.3 *. Engine.program_period prog)
            ~max_retries:5 ()
        in
        let mean_latency rate =
          let r =
            run_with (exec_faults ~retry ~rate ~seed:7 ()) ~n_items:20 prog
          in
          let s = Engine.sojourns r in
          ( List.fold_left ( +. ) 0.0 s /. float_of_int (List.length s),
            r.Engine.faults.Engine.retries )
        in
        let clean, r0 = mean_latency 0.0 in
        let faulty, r1 = mean_latency 0.2 in
        check_int "no retries without faults" 0 r0;
        check_true "retries fired" (r1 > 0);
        check_true "latency strictly inflated" (faulty > clean));
  ]

(* ------------------------------------------------------------------ *)
(* Bit-identity: faults = none is the pre-faults engine                 *)
(* ------------------------------------------------------------------ *)

(* The same digest as test_sim's pinned-digest case: any divergence in
   event order, tie-breaks or float expressions breaks it. *)
let digest_of_result (r : Engine.result) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (msg : Engine.message) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%d.%d->%d:%d.%d@%h..%h;" msg.Engine.msg_src.item
           msg.Engine.msg_src.rep.Replica.task msg.Engine.msg_src.rep.Replica.copy
           msg.Engine.msg_dst.item msg.Engine.msg_dst.rep.Replica.task
           msg.Engine.msg_dst.rep.Replica.copy msg.Engine.msg_start
           msg.Engine.msg_finish))
    r.Engine.messages;
  Array.iter
    (fun l ->
      Buffer.add_string buf
        (match l with None -> "lost;" | Some l -> Printf.sprintf "%h;" l))
    r.Engine.item_latency;
  Buffer.add_string buf
    (Printf.sprintf "P%h;M%h" r.Engine.period r.Engine.makespan);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Armed but inert: a transient window in the far future and a factor-1
   straggler force the instrumented dispatch path while changing no
   duration and failing no attempt. *)
let inert_faults =
  {
    Faults.transient =
      {
        Faults.Transient.none with
        Faults.Transient.exec_windows = [ (0, 1e12, 1e12 +. 1.0) ];
        comm_windows = [ (0, 1e12, 1e12 +. 1.0) ];
      };
    retry = Faults.Backoff.make ~base_delay:1.0 ~max_retries:3 ();
    gray =
      {
        Faults.Gray.stragglers =
          [ (0, { Faults.Gray.g_from = 0.0; g_until = 1e12; factor = 1.0 }) ];
        links = [];
      };
  }

let paper_mapping () =
  let rng = Rng.create ~seed:2009 in
  let inst = Spec.generate Spec.default ~rng ~granularity:1.0 () in
  let throughput = Paper_workload.throughput ~eps:1 in
  Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf
    (Types.problem ~dag:inst.Paper_workload.dag
       ~platform:inst.Paper_workload.plat ~eps:1 ~throughput)

let identity_tests =
  [
    case "faults = none reproduces the pinned PR 5 digest (closed)"
      (fun () ->
        let m = paper_mapping () in
        let prog = Engine.compile m in
        let config faults =
          {
            Engine.Run.traffic =
              Engine.Run.Closed { n_items = 8; period = None };
            snapshot = None;
            failed = [];
            timed_failures = [ (1, 55.0); (4, 130.0) ];
            metrics = true;
            record_messages = true;
            faults;
          }
        in
        let fast = Engine.simulate ~config:(config Faults.none) prog in
        check_int "message count" 1415 (List.length fast.Engine.messages);
        Alcotest.(check string)
          "fast path digest" "86751422180444b1ec5c84c1e9506b12"
          (digest_of_result fast);
        let armed = Engine.simulate ~config:(config inert_faults) prog in
        Alcotest.(check string)
          "armed-but-inert digest" "86751422180444b1ec5c84c1e9506b12"
          (digest_of_result armed));
    case "armed-but-inert equals the fast path on random draws (QCheck)"
      (fun () ->
        let prog = Engine.compile (paper_mapping ()) in
        let n_procs =
          Platform.size (Mapping.platform (Engine.program_mapping prog))
        in
        let prop seed =
          let rng = Rng.create ~seed in
          let crash = (Rng.int rng n_procs, 20.0 +. Rng.float rng 200.0) in
          let closed faults =
            Engine.simulate
              ~config:
                {
                  Engine.Run.traffic =
                    Engine.Run.Closed { n_items = 6; period = None };
                  snapshot = None;
                  failed = [];
                  timed_failures = [ crash ];
                  metrics = true;
                  record_messages = true;
                  faults;
                }
              prog
          in
          let opened faults =
            Engine.simulate
              ~config:
                (Engine.Run.with_faults faults
                   (Engine.Run.open_ ~queue_bound:3 ~n_items:10
                      ~rng:(Rng.create ~seed:(seed + 1))
                      (Arrival.Poisson
                         { rate = 0.8 /. Engine.program_period prog })))
              prog
          in
          digest_of_result (closed Faults.none)
          = digest_of_result (closed inert_faults)
          && digest_of_result (opened Faults.none)
             = digest_of_result (opened inert_faults)
        in
        QCheck.Test.check_exn
          (QCheck.Test.make ~count:10 ~name:"inert-faults-identity"
             QCheck.(int_range 0 10_000)
             prop));
  ]

(* ------------------------------------------------------------------ *)
(* Correlated crash draws                                               *)
(* ------------------------------------------------------------------ *)

let correlated_tests =
  [
    case "shock rate zero reproduces the independent timeline" (fun () ->
        let plat = Fixtures.uniform 9 in
        let hazard = Failure_gen.uniform ~lambda:0.01 in
        let correlation =
          {
            Failure_gen.domains = Faults.Domains.racks ~size:3 ~procs:9;
            shock_lambda = 0.0;
          }
        in
        let independent =
          Failure_gen.lifetimes ~rng:(Rng.create ~seed:31) hazard plat
        in
        let correlated =
          Failure_gen.correlated_lifetimes ~rng:(Rng.create ~seed:31) hazard
            correlation plat
        in
        check_true "bit-identical" (independent = correlated));
    case "a pure shock kills whole domains at one instant" (fun () ->
        (* Zero own hazard: every crash is a domain shock, so each
           domain's members share exactly one crash time. *)
        let plat = Fixtures.uniform 9 in
        let domains = Faults.Domains.racks ~size:3 ~procs:9 in
        let correlation = { Failure_gen.domains; shock_lambda = 0.05 } in
        let crashes =
          Failure_gen.correlated_lifetimes ~rng:(Rng.create ~seed:5)
            (Failure_gen.uniform ~lambda:0.0)
            correlation plat
        in
        check_int "everyone eventually dies" 9 (List.length crashes);
        let time_of = Hashtbl.create 4 in
        let ok = ref true in
        List.iter
          (fun (p, t) ->
            let d = Faults.Domains.domain_of domains p in
            match Hashtbl.find_opt time_of d with
            | None -> Hashtbl.add time_of d t
            | Some t' -> if t <> t' then ok := false)
          crashes;
        check_true "one shock instant per domain" !ok;
        check_int "three distinct shocks" 3 (Hashtbl.length time_of));
    case "rejects mismatched domains and negative rates" (fun () ->
        let plat = Fixtures.uniform 4 in
        let raises f = try f (); false with Invalid_argument _ -> true in
        check_true "wrong platform size"
          (raises (fun () ->
               ignore
                 (Failure_gen.correlated_lifetimes ~rng:(Rng.create ~seed:1)
                    (Failure_gen.uniform ~lambda:0.1)
                    {
                      Failure_gen.domains =
                        Faults.Domains.racks ~size:2 ~procs:6;
                      shock_lambda = 0.1;
                    }
                    plat)));
        check_true "negative shock rate"
          (raises (fun () ->
               ignore
                 (Failure_gen.correlated_lifetimes ~rng:(Rng.create ~seed:1)
                    (Failure_gen.uniform ~lambda:0.1)
                    {
                      Failure_gen.domains =
                        Faults.Domains.racks ~size:2 ~procs:4;
                      shock_lambda = -1.0;
                    }
                    plat))));
  ]

let () =
  Alcotest.run "stream_faults"
    [
      ("backoff", backoff_tests);
      ("transient-draws", draw_tests);
      ("failure-domains", domain_tests);
      ("engine-semantics", engine_tests);
      ("bit-identity", identity_tests);
      ("correlated-crashes", correlated_tests);
    ]
