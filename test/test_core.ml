open Test_support

let case = Fixtures.case
let slow_case = Fixtures.slow_case
let check_int = Fixtures.check_int
let check_true = Fixtures.check_true

let rejects name f =
  case name (fun () ->
      Alcotest.check_raises name (Invalid_argument "") (fun () ->
          try f () with Invalid_argument _ -> raise (Invalid_argument "")))

(* ------------------------------------------------------------------ *)
(* Problem statements                                                  *)
(* ------------------------------------------------------------------ *)

let types_tests =
  [
    case "period is the inverse throughput" (fun () ->
        let p =
          Types.problem ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4)
            ~eps:1 ~throughput:0.05
        in
        Fixtures.check_float "period" 20.0 (Types.period p));
    rejects "negative eps" (fun () ->
        ignore
          (Types.problem ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4)
             ~eps:(-1) ~throughput:0.1));
    rejects "eps >= m" (fun () ->
        ignore
          (Types.problem ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 2)
             ~eps:2 ~throughput:0.1));
    rejects "non-positive throughput" (fun () ->
        ignore
          (Types.problem ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 2)
             ~eps:0 ~throughput:0.0));
    case "failure rendering" (fun () ->
        let s = Types.failure_to_string (Types.No_feasible_processor (7, 2)) in
        check_true "mentions the replica"
          (String.length s > 0
          &&
          let rec has i =
            i + 5 <= String.length s && (String.sub s i 5 = "t7(2)" || has (i + 1))
          in
          has 0));
  ]

(* ------------------------------------------------------------------ *)
(* LTF and R-LTF on fixed graphs                                       *)
(* ------------------------------------------------------------------ *)

let problem ?(eps = 1) ?(m = 8) ?(throughput = 0.05) dag =
  Types.problem ~dag ~platform:(Classic.fig2_platform ~m) ~eps ~throughput

let classic_tests =
  [
    case "chain schedules into disjoint lanes" (fun () ->
        let prob = problem ~m:4 ~throughput:0.1 Fixtures.chain3 in
        let m = Fixtures.must_schedule `Ltf prob in
        Fixtures.check_valid m ~throughput:0.1;
        check_int "single stage" 1 (Metrics.stage_depth m);
        check_int "no messages" 0 (Mapping.n_messages m));
    case "rltf on the chain also collapses stages" (fun () ->
        let prob = problem ~m:4 ~throughput:0.1 Fixtures.chain3 in
        let m = Fixtures.must_schedule `Rltf prob in
        Fixtures.check_valid m ~throughput:0.1;
        check_int "single stage" 1 (Metrics.stage_depth m));
    case "fig2: LTF with ten processors succeeds and is valid" (fun () ->
        let m = Fixtures.must_schedule `Ltf (problem ~m:10 Classic.fig2_graph) in
        Fixtures.check_valid m ~throughput:0.05);
    case "fig2: R-LTF with ten processors needs fewer stages" (fun () ->
        let ltf = Fixtures.must_schedule `Ltf (problem ~m:10 Classic.fig2_graph) in
        let rltf = Fixtures.must_schedule `Rltf (problem ~m:10 Classic.fig2_graph) in
        Fixtures.check_valid rltf ~throughput:0.05;
        check_true "R-LTF stage count <= LTF's"
          (Metrics.stage_depth rltf <= Metrics.stage_depth ltf));
    case "fig2: strict R-LTF cannot do m=8 (the paper's own schedule is overloaded)"
      (fun () ->
        match Rltf.schedule (problem ~m:8 Classic.fig2_graph) with
        | Error (Types.No_feasible_processor _ | Types.Derived_overload _) -> ()
        | Ok m ->
            (* if it ever succeeds, it must be genuinely valid *)
            Fixtures.check_valid m ~throughput:0.05);
    case "best-effort mode always places fig2" (fun () ->
        let m =
          Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf
            (problem ~m:8 Classic.fig2_graph)
        in
        Fixtures.check_tolerant m);
    case "eps=0 gives one replica per task" (fun () ->
        let m = Fixtures.must_schedule `Ltf (problem ~eps:0 ~m:4 Fixtures.fork3) in
        Dag.iter_tasks Fixtures.fork3 (fun t ->
            check_int "one copy" 1 (List.length (Mapping.replicas_of_task m t))));
    case "eps=2 places three replicas on distinct processors" (fun () ->
        let prob = problem ~eps:2 ~m:10 ~throughput:0.02 Fixtures.fork3 in
        let m = Fixtures.must_schedule `Rltf prob in
        Dag.iter_tasks Fixtures.fork3 (fun t ->
            check_int "three distinct processors" 3
              (List.length (Mapping.procs_of_task m t)));
        Fixtures.check_valid m ~throughput:0.02);
    case "single processor with eps=0 works when the load fits" (fun () ->
        let prob =
          Types.problem ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 1)
            ~eps:0 ~throughput:0.1
        in
        let m = Fixtures.must_schedule `Ltf prob in
        check_int "one stage" 1 (Metrics.stage_depth m));
    case "impossible throughput fails in strict mode" (fun () ->
        let prob =
          Types.problem ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 4)
            ~eps:1 ~throughput:2.0
        in
        (match Ltf.schedule prob with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "LTF accepted an impossible throughput");
        match Rltf.schedule prob with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "R-LTF accepted an impossible throughput");
    case "best-effort never refuses feasible structure" (fun () ->
        let prob =
          Types.problem ~dag:Fixtures.fft8 ~platform:(Fixtures.uniform 6)
            ~eps:1 ~throughput:1.0 (* far too demanding *)
        in
        let m = Fixtures.must_schedule ~mode:Scheduler.Best_effort `Ltf prob in
        (* tolerance still holds even though the throughput cannot *)
        Fixtures.check_tolerant m);
  ]

(* ------------------------------------------------------------------ *)
(* Scheduler internals via run_state                                   *)
(* ------------------------------------------------------------------ *)

let state_tests =
  [
    case "state stages agree with the mapping stages" (fun () ->
        let prob = problem ~m:10 Classic.fig2_graph in
        match Ltf.schedule_state prob with
        | Error f -> Alcotest.failf "LTF failed: %s" (Types.failure_to_string f)
        | Ok state ->
            let mapping = State.mapping state in
            let stages = Stages.compute mapping in
            Mapping.iter mapping (fun r ->
                check_int
                  (Printf.sprintf "stage of %s" (Replica.id_to_string r.Replica.id))
                  (Stages.of_replica stages r.Replica.id)
                  (State.stage state r.Replica.id)));
    case "state loads agree with recomputed loads" (fun () ->
        let prob = problem ~m:10 Classic.fig2_graph in
        match Ltf.schedule_state prob with
        | Error f -> Alcotest.failf "LTF failed: %s" (Types.failure_to_string f)
        | Ok state ->
            let loads = Loads.of_mapping (State.mapping state) in
            Array.iteri
              (fun u sigma ->
                Fixtures.check_float "sigma" sigma (State.sigma state u);
                Fixtures.check_float "c_in" loads.Loads.c_in.(u) (State.c_in state u);
                Fixtures.check_float "c_out" loads.Loads.c_out.(u)
                  (State.c_out state u))
              loads.Loads.sigma);
    case "finish times respect dependencies" (fun () ->
        let prob = problem ~m:10 Classic.fig2_graph in
        match Ltf.schedule_state prob with
        | Error f -> Alcotest.failf "LTF failed: %s" (Types.failure_to_string f)
        | Ok state ->
            let mapping = State.mapping state in
            Mapping.iter mapping (fun r ->
                List.iter
                  (fun (_, ids) ->
                    List.iter
                      (fun src ->
                        check_true "source finishes before consumer"
                          (State.finish state src <= State.finish state r.Replica.id
                          +. 1e-9))
                      ids)
                  r.Replica.sources));
    case "supports of siblings are pairwise disjoint" (fun () ->
        let prob = problem ~eps:2 ~m:10 ~throughput:0.02 Fixtures.gauss5 in
        match Ltf.schedule_state prob with
        | Error f -> Alcotest.failf "LTF failed: %s" (Types.failure_to_string f)
        | Ok state ->
            Dag.iter_tasks Fixtures.gauss5 (fun t ->
                for a = 0 to 2 do
                  for b = a + 1 to 2 do
                    check_true "disjoint"
                      (State.Pset.disjoint
                         (State.support state { Replica.task = t; copy = a })
                         (State.support state { Replica.task = t; copy = b }))
                  done
                done));
  ]

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let fingerprint mapping =
  let parts = ref [] in
  Mapping.iter mapping (fun r ->
      parts :=
        Printf.sprintf "%s@%d" (Replica.id_to_string r.Replica.id) r.Replica.proc
        :: !parts);
  String.concat ";" (List.rev !parts)

let determinism_tests =
  [
    case "LTF is deterministic" (fun () ->
        let prob = problem ~m:10 Classic.fig2_graph in
        let a = Fixtures.must_schedule `Ltf prob in
        let b = Fixtures.must_schedule `Ltf prob in
        Alcotest.(check string) "same mapping" (fingerprint a) (fingerprint b));
    case "R-LTF is deterministic" (fun () ->
        let prob = problem ~m:10 Classic.fig2_graph in
        let a = Fixtures.must_schedule `Rltf prob in
        let b = Fixtures.must_schedule `Rltf prob in
        Alcotest.(check string) "same mapping" (fingerprint a) (fingerprint b));
    case "paper instances are reproducible" (fun () ->
        let fingerprint_of_seed seed =
          let inst = Fixtures.paper_instance ~seed () in
          let prob =
            Types.problem ~dag:inst.Paper_workload.dag
              ~platform:inst.Paper_workload.plat ~eps:1
              ~throughput:(Paper_workload.throughput ~eps:1)
          in
          match Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob with
          | Ok m -> fingerprint m
          | Error _ -> "failed"
        in
        Alcotest.(check string)
          "same seed, same schedule"
          (fingerprint_of_seed 11) (fingerprint_of_seed 11);
        check_true "different seeds differ"
          (fingerprint_of_seed 11 <> fingerprint_of_seed 12));
  ]

(* ------------------------------------------------------------------ *)
(* Source derivation                                                   *)
(* ------------------------------------------------------------------ *)

let derivation_tests =
  [
    case "derive reproduces the lane structure" (fun () ->
        let proc_of _task copy = copy in
        let m =
          Source_derivation.derive ~dag:Fixtures.chain3
            ~platform:(Fixtures.uniform 4) ~eps:1 ~proc_of ()
        in
        check_int "no cross messages" 0 (Mapping.n_messages m);
        Fixtures.check_tolerant m);
    case "derive on spread placements stays tolerant" (fun () ->
        (* replicas of consecutive tasks on alternating processor pairs *)
        let proc_of task copy = (2 * (task mod 2)) + copy in
        let m =
          Source_derivation.derive ~dag:Fixtures.chain5
            ~platform:(Fixtures.uniform 4) ~eps:1 ~proc_of ()
        in
        Fixtures.check_tolerant m);
    case "derive handles eps=0 with co-location" (fun () ->
        let proc_of _ _ = 0 in
        let m =
          Source_derivation.derive ~dag:Fixtures.gauss5
            ~platform:(Fixtures.uniform 2) ~eps:0 ~proc_of ()
        in
        check_int "all local" 0 (Mapping.n_messages m);
        check_int "one stage" 1 (Metrics.stage_depth m));
    case "derive with eps=2 on a fan keeps every group coverable" (fun () ->
        let proc_of task copy = ((task + copy) mod 3) + (3 * copy) in
        let m =
          Source_derivation.derive ~dag:Fixtures.fork3
            ~platform:(Fixtures.uniform 9) ~eps:2 ~proc_of ()
        in
        Fixtures.check_tolerant m);
    case "hints steer the pairing" (fun () ->
        (* two lanes; the hint crosses them on purpose for t1, which the
           derivation honours only if safe — here crossing is unsafe for
           tolerance (it would tie both replicas to P0), so the local
           source must win for copy 0 and the crossing is rejected for the
           sibling too *)
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let proc_of _ copy = copy in
        let hint task copy _pred =
          if task = 1 then [ { Replica.task = 0; copy = 1 - copy } ] else []
        in
        let m =
          Source_derivation.derive ~hint ~dag ~platform:(Fixtures.uniform 4)
            ~eps:1 ~proc_of ()
        in
        Fixtures.check_tolerant m);
  ]

(* ------------------------------------------------------------------ *)
(* Fault-free reference and symmetric problems                         *)
(* ------------------------------------------------------------------ *)

let extension_tests =
  [
    case "fault-free schedule has single replicas" (fun () ->
        match
          Fault_free.run ~dag:Fixtures.gauss5 ~platform:(Fixtures.uniform 4)
            ~throughput:0.1 ()
        with
        | Error f -> Alcotest.failf "fault-free failed: %s" (Types.failure_to_string f)
        | Ok m ->
            check_int "eps" 0 (Mapping.eps m);
            Fixtures.check_valid m ~throughput:0.1);
    case "fault-free latency exists when schedulable" (fun () ->
        check_true "latency"
          (Fault_free.latency ~dag:Fixtures.gauss5 ~platform:(Fixtures.uniform 4)
             ~throughput:0.1 ()
          <> None));
    slow_case "max_throughput returns a feasible point" (fun () ->
        let r =
          Symmetric.max_throughput ~iterations:10 ~dag:Fixtures.gauss5
            ~platform:(Fixtures.uniform 6) ~eps:1 ~latency_bound:200.0 ()
        in
        match r.Symmetric.best with
        | None -> Alcotest.fail "expected a feasible throughput"
        | Some (t, m) ->
            check_true "positive" (t > 0.0);
            check_true "latency bound respected"
              (Metrics.latency_bound m ~throughput:t <= 200.0 +. 1e-6);
            Fixtures.check_tolerant m);
    slow_case "max_throughput grows with a looser latency bound" (fun () ->
        let best bound =
          match
            (Symmetric.max_throughput ~iterations:10 ~dag:Fixtures.gauss5
               ~platform:(Fixtures.uniform 6) ~eps:1 ~latency_bound:bound ())
              .Symmetric.best
          with
          | Some (t, _) -> t
          | None -> 0.0
        in
        check_true "monotone" (best 400.0 >= best 80.0 -. 1e-9));
    slow_case "platform cost minimization keeps a feasible subset" (fun () ->
        match
          Platform_cost.minimize ~dag:Fixtures.gauss5
            ~platform:(Fixtures.uniform 8) ~eps:1 ~throughput:0.05 ()
        with
        | None -> Alcotest.fail "expected the full platform to be feasible"
        | Some r ->
            check_true "kept a strict subset or everything"
              (List.length r.Platform_cost.kept <= 8);
            check_true "cheaper or equal"
              (r.Platform_cost.cost <= r.Platform_cost.full_cost +. 1e-9);
            check_true "still enough processors for the replicas"
              (List.length r.Platform_cost.kept >= 2);
            Fixtures.check_valid r.Platform_cost.mapping ~throughput:0.05;
            check_true "oracle calls counted" (r.Platform_cost.evaluations >= 1));
    slow_case "cost minimization is None on impossible instances" (fun () ->
        check_true "infeasible"
          (Platform_cost.minimize ~dag:Fixtures.gauss5
             ~platform:(Fixtures.uniform 4) ~eps:1 ~throughput:100.0 ()
          = None));
    slow_case "a custom cost function steers the eviction" (fun () ->
        (* make processor 0 absurdly expensive: it must be evicted first
           whenever the rest suffices *)
        match
          Platform_cost.minimize
            ~cost_of:(fun p -> if p = 0 then 1000.0 else 1.0)
            ~dag:Fixtures.chain3 ~platform:(Fixtures.uniform 6) ~eps:1
            ~throughput:0.1 ()
        with
        | None -> Alcotest.fail "expected feasible"
        | Some r ->
            check_true "P0 evicted" (not (List.mem 0 r.Platform_cost.kept)));
    slow_case "max_failures finds at least eps=1 on an easy instance" (fun () ->
        let r =
          Symmetric.max_failures ~dag:Fixtures.chain3
            ~platform:(Fixtures.uniform 6) ~throughput:0.05 ~latency_bound:100.0
            ()
        in
        match r.Symmetric.best with
        | None -> Alcotest.fail "expected a feasible eps"
        | Some (eps, m) ->
            check_true "eps >= 1" (eps >= 1.0);
            check_int "replica count matches" (int_of_float eps) (Mapping.eps m));
  ]

(* ------------------------------------------------------------------ *)
(* Integration over the paper workload                                 *)
(* ------------------------------------------------------------------ *)

let integration_tests =
  [
    slow_case "strict schedules are fully valid when they exist" (fun () ->
        List.iter
          (fun (seed, g, eps) ->
            let inst = Fixtures.paper_instance ~seed ~granularity:g () in
            let throughput = Paper_workload.throughput ~eps in
            let prob =
              Types.problem ~dag:inst.Paper_workload.dag
                ~platform:inst.Paper_workload.plat ~eps ~throughput
            in
            List.iter
              (fun (name, outcome) ->
                match outcome with
                | Error _ -> ()
                | Ok m ->
                    Fixtures.check_valid
                      ~what:(Printf.sprintf "%s seed=%d g=%.1f eps=%d" name seed g eps)
                      m ~throughput)
              [ ("LTF", Ltf.schedule prob); ("R-LTF", Rltf.schedule prob) ])
          [
            (11, 1.0, 1); (12, 1.4, 1); (13, 2.0, 1);
            (14, 1.0, 3); (15, 2.0, 3); (16, 0.6, 1);
          ]);
    slow_case "best-effort schedules always keep the tolerance guarantee"
      (fun () ->
        List.iter
          (fun (seed, g, eps) ->
            let inst = Fixtures.paper_instance ~seed ~granularity:g () in
            let throughput = Paper_workload.throughput ~eps in
            let prob =
              Types.problem ~dag:inst.Paper_workload.dag
                ~platform:inst.Paper_workload.plat ~eps ~throughput
            in
            List.iter
              (fun (name, outcome) ->
                match outcome with
                | Error f ->
                    Alcotest.failf "%s failed in best-effort mode: %s" name
                      (Types.failure_to_string f)
                | Ok m ->
                    Fixtures.check_tolerant
                      ~what:(Printf.sprintf "%s seed=%d g=%.1f eps=%d" name seed g eps)
                      m)
              [
                ("LTF", Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob);
                ("R-LTF", Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob);
              ])
          [
            (21, 0.2, 1); (22, 0.6, 1); (23, 1.0, 1); (24, 2.0, 1);
            (25, 0.2, 3); (26, 1.0, 3); (27, 2.0, 3); (28, 0.4, 2);
          ]);
    slow_case "R-LTF tends to fewer stages than LTF" (fun () ->
        let wins = ref 0 and total = ref 0 in
        for seed = 31 to 40 do
          let inst = Fixtures.paper_instance ~seed ~granularity:1.6 () in
          let throughput = Paper_workload.throughput ~eps:1 in
          let prob =
            Types.problem ~dag:inst.Paper_workload.dag
              ~platform:inst.Paper_workload.plat ~eps:1 ~throughput
          in
          match
            ( Ltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob,
              Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob )
          with
          | Ok ltf, Ok rltf ->
              incr total;
              if Metrics.stage_depth rltf <= Metrics.stage_depth ltf then incr wins
          | _ -> ()
        done;
        check_true "at least 8 of 10 instances"
          (!total >= 8 && !wins * 10 >= !total * 8));
  ]

(* ------------------------------------------------------------------ *)
(* Exact small-instance optimum                                         *)
(* ------------------------------------------------------------------ *)

let optimal_tests =
  [
    case "a chain with a loose period fits in one stage" (fun () ->
        match
          Optimal.minimum_stages ~dag:Fixtures.chain3
            ~platform:(Fixtures.uniform 3) ~throughput:0.2 ()
        with
        | None -> Alcotest.fail "expected a solution"
        | Some r ->
            check_int "one stage" 1 r.Optimal.stages;
            check_int "mapping agrees" 1 (Metrics.stage_depth r.Optimal.mapping));
    case "a tight period forces a split and a second stage" (fun () ->
        (* chain of 3 unit tasks, period 1.2: at most one task per
           processor, so the chain must cross processors *)
        match
          Optimal.minimum_stages ~dag:Fixtures.chain3
            ~platform:(Fixtures.uniform 3)
            ~throughput:(1.0 /. 1.2) ()
        with
        | None -> Alcotest.fail "expected a solution"
        | Some r -> check_int "three stages" 3 r.Optimal.stages);
    case "impossible throughput yields None" (fun () ->
        check_true "none"
          (Optimal.minimum_stages ~dag:Fixtures.chain3
             ~platform:(Fixtures.uniform 3) ~throughput:10.0 ()
          = None));
    case "the optimum never exceeds a heuristic" (fun () ->
        let rng = Rng.create ~seed:77 in
        for _ = 1 to 5 do
          let plat = Fixtures.uniform 4 in
          let dag =
            Calibrate.calibrated (Random_dag.layered ~rng ~tasks:8 ()) plat
              ~granularity:1.0
          in
          let throughput = 0.25 in
          match Optimal.minimum_stages ~dag ~platform:plat ~throughput () with
          | None -> ()
          | Some exact -> (
              Fixtures.check_valid ~what:"optimal mapping" exact.Optimal.mapping
                ~throughput;
              match
                Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort)
                  (Types.problem ~dag ~platform:plat ~eps:0 ~throughput)
              with
              | Ok heuristic ->
                  check_true "optimal <= heuristic"
                    (exact.Optimal.stages <= Metrics.stage_depth heuristic)
              | Error _ -> ())
        done);
    case "homogeneous symmetry breaking is sound" (fun () ->
        (* same instance, once on a homogeneous platform (symmetry cuts)
           and once with an epsilon-heterogeneous one (full search): both
           must find the same optimum *)
        let rng = Rng.create ~seed:78 in
        let base = Random_dag.layered ~rng ~tasks:7 () in
        let homo = Fixtures.uniform 3 in
        let nearly =
          Platform.create
            ~speeds:[| 1.0; 1.0 +. 1e-12; 1.0 |]
            ~bandwidth:(Array.make_matrix 3 3 1.0)
            ()
        in
        let dag = Calibrate.calibrated base homo ~granularity:1.0 in
        let get plat =
          match Optimal.minimum_stages ~dag ~platform:plat ~throughput:0.3 () with
          | Some r -> r.Optimal.stages
          | None -> -1
        in
        check_int "same optimum" (get homo) (get nearly));
    rejects "too many tasks" (fun () ->
        let dag = Classic.chain ~n:30 ~exec:1.0 ~volume:1.0 in
        ignore
          (Optimal.minimum_stages ~dag ~platform:(Fixtures.uniform 2)
             ~throughput:0.01 ()));
  ]

(* ------------------------------------------------------------------ *)
(* Recovery                                                             *)
(* ------------------------------------------------------------------ *)

(* chain2 with both tasks replicated on {P0, P1} of a uniform platform of
   [m] processors: killing P0 forces every re-placement onto the same
   survivors, which lets a throughput bound make the chain degrade on
   cue. *)
let two_on_shared_lanes ?(m = 3) () =
  let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
  let mapping = Mapping.create ~dag ~platform:(Fixtures.uniform m) ~eps:1 in
  let id task copy = { Replica.task; copy } in
  let place task copy proc sources =
    Mapping.assign mapping { Replica.id = id task copy; proc; sources }
  in
  place 0 0 0 [];
  place 0 1 1 [];
  place 1 0 0 [ (0, [ id 0 0 ]) ];
  place 1 1 1 [ (0, [ id 0 1 ]) ];
  mapping

let recovery_tests =
  let scheduled ?(eps = 1) ?(m = 8) ?(throughput = 0.05) dag =
    Fixtures.must_schedule `Rltf
      (Types.problem ~dag ~platform:(Classic.fig2_platform ~m) ~eps ~throughput)
  in
  [
    case "recovery after one crash restores full tolerance" (fun () ->
        let m = scheduled Fixtures.gauss5 in
        (* pick a processor that actually hosts replicas *)
        let victim =
          List.find
            (fun p -> Mapping.on_proc m p <> [])
            (Platform.procs (Mapping.platform m))
        in
        match Recovery.restore ~throughput:0.05 m ~failed:[ victim ] with
        | Error e -> Alcotest.failf "recovery failed: %s" (Recovery.error_to_string e)
        | Ok restored ->
            check_int "victim hosts nothing" 0
              (List.length (Mapping.on_proc restored victim));
            Fixtures.check_tolerant ~what:"restored mapping" restored);
    case "survivors keep their placement" (fun () ->
        let m = scheduled Fixtures.gauss5 in
        let victim =
          List.find
            (fun p -> Mapping.on_proc m p <> [])
            (Platform.procs (Mapping.platform m))
        in
        match Recovery.restore m ~failed:[ victim ] with
        | Error e -> Alcotest.failf "recovery failed: %s" (Recovery.error_to_string e)
        | Ok restored ->
            Mapping.iter m (fun (r : Replica.t) ->
                if r.Replica.proc <> victim then
                  check_int
                    (Printf.sprintf "%s stayed" (Replica.id_to_string r.Replica.id))
                    r.Replica.proc
                    (Mapping.replica_exn restored r.Replica.id.Replica.task
                       r.Replica.id.Replica.copy)
                      .Replica.proc));
    case "recovered schedules survive fresh failures" (fun () ->
        let m = scheduled Fixtures.chain5 in
        match Recovery.restore m ~failed:[ 0 ] with
        | Error e -> Alcotest.failf "recovery failed: %s" (Recovery.error_to_string e)
        | Ok restored ->
            (* the restored mapping tolerates the failure of any single
               surviving processor *)
            List.iter
              (fun p ->
                if p <> 0 then
                  check_true
                    (Printf.sprintf "survives P%d" p)
                    (Validate.survives restored ~failed:[ 0; p ]))
              (Platform.procs (Mapping.platform m)));
    case "recovery refuses when too few processors survive" (fun () ->
        let m = scheduled ~eps:2 ~m:4 ~throughput:0.02 Fixtures.chain3 in
        match Recovery.restore m ~failed:[ 0; 1 ] with
        | Error Recovery.Not_enough_processors -> ()
        | Error e -> Alcotest.failf "unexpected error: %s" (Recovery.error_to_string e)
        | Ok _ -> Alcotest.fail "expected Not_enough_processors");
    case "recovery with no failures is a re-derivation" (fun () ->
        let m = scheduled Fixtures.fork3 in
        match Recovery.restore m ~failed:[] with
        | Error e -> Alcotest.failf "recovery failed: %s" (Recovery.error_to_string e)
        | Ok restored -> Fixtures.check_tolerant restored);
    case "recovery refuses when no survivor has room" (fun () ->
        (* Two chained tasks, both replicated on {P0, P1}; killing P0
           leaves P2 the only sibling-free survivor.  Under a 0.6
           throughput bound (load cap 1/0.6) P2 takes t0's replica (load
           1) but has no room for t1's, so restoration must report
           No_room rather than overload it. *)
        let m = two_on_shared_lanes () in
        (match Recovery.restore ~throughput:0.6 m ~failed:[ 0 ] with
        | Error (Recovery.No_room (task, copy)) ->
            check_int "second task is stuck" 1 task;
            check_int "its lane-0 copy" 0 copy
        | Error e -> Alcotest.failf "unexpected error: %s" (Recovery.error_to_string e)
        | Ok _ -> Alcotest.fail "expected No_room");
        (* without the bound the same restoration goes through *)
        match Recovery.restore m ~failed:[ 0 ] with
        | Error e -> Alcotest.failf "unbounded restore failed: %s" (Recovery.error_to_string e)
        | Ok restored -> Fixtures.check_tolerant ~what:"unbounded restore" restored);
    case "restored mappings pass Validate with disjoint survivor kills (QCheck)"
      (fun () ->
        let prop seed =
          let inst = Fixtures.paper_instance ~seed () in
          let throughput = Paper_workload.throughput ~eps:1 in
          let m =
            Fixtures.must_schedule ~mode:Scheduler.Best_effort `Rltf
              (Types.problem ~dag:inst.Paper_workload.dag
                 ~platform:inst.Paper_workload.plat ~eps:1 ~throughput)
          in
          let n = Platform.size (Mapping.platform m) in
          let victim = seed mod n in
          match Recovery.restore m ~failed:[ victim ] with
          | Error e ->
              Alcotest.failf "restore failed: %s" (Recovery.error_to_string e)
          | Ok restored ->
              Fixtures.check_tolerant ~what:"restored" restored;
              (* the victim is already dead: the restored mapping must
                 survive {victim, p} for every surviving processor p *)
              List.for_all
                (fun p ->
                  p = victim || Validate.survives restored ~failed:[ victim; p ])
                (Platform.procs (Mapping.platform restored))
        in
        QCheck.Test.check_exn
          (QCheck.Test.make ~count:15 ~name:"restored-validates"
             QCheck.(int_range 0 10_000)
             prop));
  ]

(* ------------------------------------------------------------------ *)
(* Recovery policy: the degradation chain                               *)
(* ------------------------------------------------------------------ *)

let policy_tests =
  let level_of = function
    | Recovery_policy.Restored o -> Recovery_policy.level_to_string o.Recovery_policy.level
    | Recovery_policy.Outage _ -> "outage"
  in
  [
    case "a feasible restore keeps full strength" (fun () ->
        let m = two_on_shared_lanes ~m:4 () in
        match Recovery_policy.react ~throughput:0.4 ~failed:[ 0 ] m with
        | Recovery_policy.Restored o ->
            check_int "one attempt" 1 o.Recovery_policy.attempts;
            check_int "tolerance back to eps" 1 o.Recovery_policy.tolerance;
            check_true "full strength"
              (o.Recovery_policy.level = Recovery_policy.Full_strength);
            check_true "identity processor table"
              (o.Recovery_policy.procs = [| 0; 1; 2; 3 |]);
            Fixtures.check_tolerant ~what:"full-strength" o.Recovery_policy.mapping
        | v -> Alcotest.failf "expected Full_strength, got %s" (level_of v));
    case "a throughput-bound failure relaxes to the achieved period" (fun () ->
        (* same instance as the No_room test: the bounded restore fails,
           the unbounded one succeeds on the next rung *)
        let m = two_on_shared_lanes () in
        match Recovery_policy.react ~throughput:0.6 ~failed:[ 0 ] m with
        | Recovery_policy.Restored o ->
            check_int "two attempts" 2 o.Recovery_policy.attempts;
            check_true "relaxed"
              (o.Recovery_policy.level = Recovery_policy.Relaxed_throughput);
            check_int "tolerance kept" 1 o.Recovery_policy.tolerance;
            Fixtures.check_tolerant ~what:"relaxed" o.Recovery_policy.mapping
        | v -> Alcotest.failf "expected Relaxed_throughput, got %s" (level_of v));
    case "too few survivors reduce the replication degree" (fun () ->
        (* eps = 2 needs 3 processors; kill 2 of 4 and only eps' = 1 fits
           the surviving pair *)
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let m =
          Fixtures.must_schedule `Rltf
            (Types.problem ~dag ~platform:(Fixtures.uniform 4) ~eps:2
               ~throughput:0.01)
        in
        match Recovery_policy.react ~throughput:0.01 ~failed:[ 0; 1 ] m with
        | Recovery_policy.Restored o ->
            check_true "reduced degree"
              (o.Recovery_policy.level = Recovery_policy.Reduced_eps 1);
            check_int "tolerance is eps'" 1 o.Recovery_policy.tolerance;
            check_true "survivor sub-platform"
              (o.Recovery_policy.procs = [| 2; 3 |]);
            check_int "remapped on the survivors" 2
              (Platform.size
                 (Mapping.platform o.Recovery_policy.mapping))
        | v -> Alcotest.failf "expected Reduced_eps 1, got %s" (level_of v));
    case "a single survivor gets the unreplicated remap" (fun () ->
        let dag = Classic.chain ~n:2 ~exec:1.0 ~volume:1.0 in
        let m =
          Fixtures.must_schedule `Rltf
            (Types.problem ~dag ~platform:(Fixtures.uniform 3) ~eps:1
               ~throughput:0.01)
        in
        match Recovery_policy.react ~throughput:0.01 ~failed:[ 0; 1 ] m with
        | Recovery_policy.Restored o ->
            check_true "best effort"
              (o.Recovery_policy.level = Recovery_policy.Best_effort_remap);
            check_int "no tolerance left" 0 o.Recovery_policy.tolerance;
            check_true "lives on the last survivor"
              (o.Recovery_policy.procs = [| 2 |])
        | v -> Alcotest.failf "expected Best_effort_remap, got %s" (level_of v));
    case "no survivors is a terminal outage" (fun () ->
        let m = two_on_shared_lanes () in
        match Recovery_policy.react ~throughput:0.6 ~failed:[ 0; 1; 2 ] m with
        | Recovery_policy.Outage { attempts } -> check_int "no rungs tried" 0 attempts
        | v -> Alcotest.failf "expected Outage, got %s" (level_of v));
    case "the retry budget cuts the chain short" (fun () ->
        (* one attempt only: the bounded restore fails and nothing else
           may be tried *)
        let m = two_on_shared_lanes () in
        match
          Recovery_policy.react ~max_attempts:1 ~throughput:0.6 ~failed:[ 0 ] m
        with
        | Recovery_policy.Outage { attempts } -> check_int "one rung" 1 attempts
        | v -> Alcotest.failf "expected Outage, got %s" (level_of v));
    case "react validates its arguments" (fun () ->
        let m = two_on_shared_lanes () in
        Alcotest.check_raises "out of range" (Invalid_argument "") (fun () ->
            try ignore (Recovery_policy.react ~throughput:0.6 ~failed:[ 9 ] m)
            with Invalid_argument _ -> raise (Invalid_argument ""));
        Alcotest.check_raises "bad budget" (Invalid_argument "") (fun () ->
            try
              ignore
                (Recovery_policy.react ~max_attempts:0 ~throughput:0.6
                   ~failed:[ 0 ] m)
            with Invalid_argument _ -> raise (Invalid_argument "")));
  ]

(* ------------------------------------------------------------------ *)
(* Ablation options                                                     *)
(* ------------------------------------------------------------------ *)

let options_tests =
  let run_with opts =
    let inst = Fixtures.paper_instance ~seed:55 ~granularity:1.0 () in
    let prob =
      Types.problem ~dag:inst.Paper_workload.dag
        ~platform:inst.Paper_workload.plat ~eps:1
        ~throughput:(Paper_workload.throughput ~eps:1)
    in
    Rltf.schedule ~opts:Scheduler.(opts |> with_mode Best_effort) prob
  in
  [
    case "every ablation configuration stays fault tolerant" (fun () ->
        List.iter
          (fun (name, opts) ->
            match run_with opts with
            | Error f ->
                Alcotest.failf "%s failed: %s" name (Types.failure_to_string f)
            | Ok m -> Fixtures.check_tolerant ~what:name m)
          Fig_ablation.configurations);
    case "disabling one-to-one changes the pairing structure" (fun () ->
        let default = Option.get (Result.to_option (run_with Scheduler.default)) in
        let without =
          Option.get
            (Result.to_option
               (run_with Scheduler.(default |> with_use_one_to_one false)))
        in
        (* not necessarily more messages, but a different schedule *)
        check_true "different schedules"
          (fingerprint default <> fingerprint without
          || Mapping.n_messages default <> Mapping.n_messages without));
    case "a tiny lane budget forces full groups" (fun () ->
        match run_with Scheduler.(default |> with_lane_budget_factor 0.01) with
        | Error _ -> ()
        | Ok m ->
            Fixtures.check_tolerant m;
            (* with budget 1 every remote sole-source is rejected, so the
               message count approaches the full-replication regime *)
            check_true "many messages" (Mapping.n_messages m > 0));
    case "options default equals not passing them" (fun () ->
        let a = Option.get (Result.to_option (run_with Scheduler.default)) in
        let inst = Fixtures.paper_instance ~seed:55 ~granularity:1.0 () in
        let prob =
          Types.problem ~dag:inst.Paper_workload.dag
            ~platform:inst.Paper_workload.plat ~eps:1
            ~throughput:(Paper_workload.throughput ~eps:1)
        in
        let b =
          Option.get (Result.to_option (Rltf.schedule ~opts:Scheduler.(default |> with_mode Best_effort) prob))
        in
        Alcotest.(check string) "identical" (fingerprint a) (fingerprint b));
  ]

let () =
  Alcotest.run "streamsched-core"
    [
      ("types", types_tests);
      ("classic-graphs", classic_tests);
      ("scheduler-state", state_tests);
      ("determinism", determinism_tests);
      ("source-derivation", derivation_tests);
      ("extensions", extension_tests);
      ("exact-optimum", optimal_tests);
      ("recovery", recovery_tests);
      ("recovery-policy", policy_tests);
      ("ablation-options", options_tests);
      ("integration", integration_tests);
    ]
